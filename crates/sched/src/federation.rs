//! Predictor federation: RPV lookups as a service.
//!
//! The scale engine ([`crate::backfill`]) does not embed a model; it asks
//! an [`RpvProvider`] for predicted relative-performance vectors, one
//! *batch per decision point* (every job arriving at a simulated instant
//! is predicted in a single call). Two providers ship here:
//!
//! * [`FnRpvProvider`] wraps a closure — the in-process path, used by
//!   `mphpc-core` to adapt its quantized compiled engine;
//! * [`FederatedRpv`] queries a live `mphpc serve` endpoint over the
//!   keep-alive pipelined HTTP client, with a bounded in-flight window,
//!   per-request timeouts, and degradation to a local fallback provider:
//!   the first transport or protocol error permanently fails the
//!   connection over to the fallback, and the whole in-flight batch is
//!   recomputed locally so a half-answered batch can never mix a stale
//!   server snapshot with fresh local predictions mid-decision.
//!
//! Federated predictions are **bit-exact** with local ones when both ends
//! run the same model: the request serialises features with Rust's
//! shortest-roundtrip `{}` float formatting, the server parses and
//! re-renders `f64`s the same way, so values survive the JSON hop
//! unchanged and a simulation that degrades mid-run still produces the
//! job outcomes a pure-local run would (asserted in the test suite).
//!
//! Serving latency is a first-class simulator metric: every response's
//! send→receive time lands in the `sched.federation.lookup_us` histogram
//! and in [`FederationStats`], so `exp_sched_scale` can report scheduler
//! throughput *with* the prediction-service term the same way Li et al.
//! (2310.16792) argue it must be measured.

use crate::job::N_MACHINES;
use mphpc_errors::MphpcError;
use mphpc_serve::client::ClientConn;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// A source of predicted RPVs for a batch of feature rows.
///
/// `predict` receives one row per job and must return one
/// `[f64; N_MACHINES]` per row, in order. Implementations must be
/// deterministic functions of the rows (the engine replays batches across
/// engines and thread counts and asserts bit-identical schedules).
pub trait RpvProvider {
    /// Predict RPVs for `rows` (one feature vector per job).
    fn predict(&mut self, rows: &[&[f64]]) -> Result<Vec<[f64; N_MACHINES]>, MphpcError>;
    /// Display name for telemetry and experiment tables.
    fn name(&self) -> &str {
        "local"
    }
}

/// [`RpvProvider`] over a closure — the in-process adapter.
pub struct FnRpvProvider<F> {
    f: F,
    name: &'static str,
}

impl<F> FnRpvProvider<F>
where
    F: FnMut(&[&[f64]]) -> Result<Vec<[f64; N_MACHINES]>, MphpcError>,
{
    /// Wrap `f` as a provider named `name`.
    pub fn new(name: &'static str, f: F) -> Self {
        Self { f, name }
    }
}

impl<F> RpvProvider for FnRpvProvider<F>
where
    F: FnMut(&[&[f64]]) -> Result<Vec<[f64; N_MACHINES]>, MphpcError>,
{
    fn predict(&mut self, rows: &[&[f64]]) -> Result<Vec<[f64; N_MACHINES]>, MphpcError> {
        let got = (self.f)(rows)?;
        if got.len() != rows.len() {
            return Err(MphpcError::Simulation(format!(
                "rpv provider {}: {} rows in, {} predictions out",
                self.name,
                rows.len(),
                got.len()
            )));
        }
        Ok(got)
    }

    fn name(&self) -> &str {
        self.name
    }
}

/// Counters and latency accounting for one federated provider.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FederationStats {
    /// Requests sent to the server.
    pub requests: u64,
    /// Responses successfully received and parsed.
    pub responses: u64,
    /// Requests that failed on a read/write timeout.
    pub timeouts: u64,
    /// Rows answered by the local fallback provider.
    pub fallbacks: u64,
    /// True once the provider has permanently degraded to the fallback.
    pub degraded: bool,
    /// Sum of send→receive latency over all responses, microseconds.
    pub latency_us_total: u64,
    /// Worst single send→receive latency, microseconds.
    pub latency_us_max: u64,
}

impl FederationStats {
    /// Mean per-lookup serving latency in microseconds (0 when no
    /// response ever arrived).
    pub fn mean_latency_us(&self) -> f64 {
        if self.responses == 0 {
            0.0
        } else {
            self.latency_us_total as f64 / self.responses as f64
        }
    }
}

/// Federated provider: RPVs from a live `mphpc serve` endpoint, degrading
/// permanently to `fallback` on the first error.
pub struct FederatedRpv<'a> {
    addr: String,
    model: String,
    timeout: Duration,
    max_inflight: usize,
    conn: Option<ClientConn>,
    fallback: Box<dyn RpvProvider + 'a>,
    stats: FederationStats,
}

impl<'a> FederatedRpv<'a> {
    /// A provider for `POST /predict` on `addr`, predicting with model
    /// `model` ("default" unless the server hosts several), with at most
    /// `max_inflight` pipelined requests outstanding and `timeout` on
    /// every socket operation. `fallback` answers everything after the
    /// first failure (and the rows of the failing batch itself).
    pub fn new(
        addr: &str,
        model: &str,
        timeout: Duration,
        max_inflight: usize,
        fallback: Box<dyn RpvProvider + 'a>,
    ) -> Self {
        Self {
            addr: addr.to_string(),
            model: model.to_string(),
            timeout,
            max_inflight: max_inflight.max(1),
            conn: None,
            fallback,
            stats: FederationStats::default(),
        }
    }

    /// Counters so far (latency, timeouts, fallbacks, degraded flag).
    pub fn stats(&self) -> FederationStats {
        self.stats
    }

    /// Mark the connection permanently failed. `err` is classified so
    /// timeouts count separately from hard transport errors.
    fn degrade(&mut self, err: &std::io::Error) {
        if matches!(
            err.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            self.stats.timeouts += 1;
            if mphpc_telemetry::enabled() {
                mphpc_telemetry::counter_add("sched.federation.timeouts", 1);
            }
        }
        self.stats.degraded = true;
        self.conn = None;
    }

    /// Pipelined round trip for the whole batch; any error returns `Err`
    /// and the caller falls back for the entire batch.
    fn predict_remote(&mut self, rows: &[&[f64]]) -> std::io::Result<Vec<[f64; N_MACHINES]>> {
        if self.conn.is_none() {
            self.conn = Some(ClientConn::connect(&self.addr, self.timeout)?);
        }
        let mut out = Vec::with_capacity(rows.len());
        let mut inflight: VecDeque<Instant> = VecDeque::with_capacity(self.max_inflight);
        let mut next = 0usize;
        let telemetry = mphpc_telemetry::enabled();
        let conn = self.conn.as_mut().expect("connected above");
        while out.len() < rows.len() {
            // Fill the window before draining: the server answers
            // strictly in order, so send/recv pair up FIFO.
            while next < rows.len() && inflight.len() < self.max_inflight {
                let body = request_body(&self.model, rows[next]);
                conn.send("POST", "/predict", &body)?;
                self.stats.requests += 1;
                inflight.push_back(Instant::now());
                next += 1;
            }
            let sent_at = inflight.pop_front().expect("window non-empty");
            let resp = conn.recv()?;
            let us = sent_at.elapsed().as_micros() as u64;
            self.stats.responses += 1;
            self.stats.latency_us_total += us;
            self.stats.latency_us_max = self.stats.latency_us_max.max(us);
            if telemetry {
                mphpc_telemetry::histogram_record("sched.federation.lookup_us", us as f64);
            }
            if resp.status != 200 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("predict returned status {}", resp.status),
                ));
            }
            let rpv = parse_outputs(&resp.text()).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "predict response without a 4-float outputs array",
                )
            })?;
            out.push(rpv);
        }
        Ok(out)
    }
}

impl RpvProvider for FederatedRpv<'_> {
    fn predict(&mut self, rows: &[&[f64]]) -> Result<Vec<[f64; N_MACHINES]>, MphpcError> {
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        if !self.stats.degraded {
            match self.predict_remote(rows) {
                Ok(out) => {
                    if mphpc_telemetry::enabled() {
                        mphpc_telemetry::counter_add(
                            "sched.federation.requests",
                            rows.len() as u64,
                        );
                    }
                    return Ok(out);
                }
                Err(e) => {
                    self.degrade(&e);
                }
            }
        }
        // Degraded (now or earlier): the whole batch comes from the local
        // fallback — never a mix of a partially-answered remote batch and
        // local rows, so every decision point is answered by exactly one
        // model snapshot.
        self.stats.fallbacks += rows.len() as u64;
        if mphpc_telemetry::enabled() {
            mphpc_telemetry::counter_add("sched.federation.fallbacks", rows.len() as u64);
        }
        self.fallback.predict(rows)
    }

    fn name(&self) -> &str {
        "federated"
    }
}

/// One `POST /predict` body. `{}` is shortest-roundtrip for f64: the
/// server's parse recovers the exact bits, which is what keeps federated
/// schedules identical to local ones.
fn request_body(model: &str, row: &[f64]) -> String {
    let mut body = String::with_capacity(32 + 24 * row.len());
    body.push_str("{\"model\":\"");
    body.push_str(model);
    body.push_str("\",\"features\":[");
    for (i, v) in row.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let _ = write!(body, "{v}");
    }
    body.push_str("]}");
    body
}

/// Extract the `"outputs":[a,b,c,d]` array from a predict response body.
/// The server's JSON is machine-generated with a fixed shape, so a
/// positional scan is exact (and keeps `serde` off the simulator's hot
/// path).
fn parse_outputs(body: &str) -> Option<[f64; N_MACHINES]> {
    let start = body.find("\"outputs\":[")? + "\"outputs\":[".len();
    let end = start + body[start..].find(']')?;
    let mut out = [0.0; N_MACHINES];
    let mut n = 0;
    for tok in body[start..end].split(',') {
        if n >= N_MACHINES {
            return None;
        }
        out[n] = tok.trim().parse().ok()?;
        n += 1;
    }
    (n == N_MACHINES).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpListener;

    fn local(scale: f64) -> Box<dyn RpvProvider> {
        Box::new(FnRpvProvider::new("test-local", move |rows: &[&[f64]]| {
            Ok(rows
                .iter()
                .map(|r| {
                    let s: f64 = r.iter().sum::<f64>() * scale;
                    [s, s + 1.0, s + 2.0, s + 3.0]
                })
                .collect())
        }))
    }

    /// A fake predict server: answers `n_ok` requests with the same
    /// function `local(1.0)` computes, then drops the connection.
    fn fake_server(n_ok: usize) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            for _ in 0..n_ok {
                // Read one request: headers then content-length body.
                let mut len = 0usize;
                loop {
                    let mut line = String::new();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 {
                        return;
                    }
                    let t = line.trim();
                    if t.is_empty() {
                        break;
                    }
                    if let Some(v) = t.to_ascii_lowercase().strip_prefix("content-length:") {
                        len = v.trim().parse().unwrap();
                    }
                }
                let mut body = vec![0u8; len];
                reader.read_exact(&mut body).unwrap();
                let body = String::from_utf8(body).unwrap();
                let s = body.find("\"features\":[").unwrap() + "\"features\":[".len();
                let e = s + body[s..].find(']').unwrap();
                let sum: f64 = body[s..e]
                    .split(',')
                    .map(|t| t.trim().parse::<f64>().unwrap())
                    .sum();
                let resp_body = format!(
                    "{{\"model\":\"default@v1\",\"batch_rows\":1,\"outputs\":[{},{},{},{}]}}",
                    sum,
                    sum + 1.0,
                    sum + 2.0,
                    sum + 3.0
                );
                let head = format!(
                    "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
                    resp_body.len()
                );
                writer.write_all(head.as_bytes()).unwrap();
                writer.write_all(resp_body.as_bytes()).unwrap();
            }
            // Connection drops here; further recv() on the client errors.
        });
        (addr, handle)
    }

    fn rows(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64, 0.5, 2.0]).collect()
    }

    #[test]
    fn parse_outputs_round_trip() {
        let body = "{\"model\":\"m@v2\",\"batch_rows\":1,\"outputs\":[1.5,-2.25,1e-3,0.1]}";
        assert_eq!(parse_outputs(body), Some([1.5, -2.25, 1e-3, 0.1]));
        assert_eq!(parse_outputs("{\"outputs\":[1,2,3]}"), None);
        assert_eq!(parse_outputs("{\"outputs\":[1,2,3,4,5]}"), None);
        assert_eq!(parse_outputs("no outputs here"), None);
        // Shortest-roundtrip display survives the hop bit-exactly.
        let v = 0.1f64 + 0.2f64;
        let body = format!("{{\"outputs\":[{v},{v},{v},{v}]}}");
        assert_eq!(parse_outputs(&body).unwrap()[0].to_bits(), v.to_bits());
    }

    #[test]
    fn healthy_server_answers_pipelined_batches() {
        let (addr, handle) = fake_server(12);
        let mut fed = FederatedRpv::new(&addr, "default", Duration::from_secs(2), 4, local(1.0));
        let data = rows(12);
        let refs: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        // Two batches (5 + 7) across one keep-alive connection.
        let a = fed.predict(&refs[..5]).unwrap();
        let b = fed.predict(&refs[5..]).unwrap();
        let expect = |r: &[f64]| {
            let s: f64 = r.iter().sum();
            [s, s + 1.0, s + 2.0, s + 3.0]
        };
        for (i, got) in a.iter().chain(b.iter()).enumerate() {
            assert_eq!(*got, expect(&data[i]), "row {i}");
        }
        let st = fed.stats();
        assert_eq!(st.requests, 12);
        assert_eq!(st.responses, 12);
        assert_eq!(st.fallbacks, 0);
        assert!(!st.degraded);
        assert!(st.latency_us_max >= 1, "latency was measured");
        handle.join().unwrap();
    }

    #[test]
    fn server_death_mid_batch_degrades_to_fallback_for_whole_batch() {
        // Server answers 3 requests then drops; the 8-row batch must be
        // answered entirely by the fallback (no remote/local mixing).
        let (addr, handle) = fake_server(3);
        let mut fed = FederatedRpv::new(&addr, "default", Duration::from_secs(2), 4, local(1.0));
        let data = rows(8);
        let refs: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let out = fed.predict(&refs).unwrap();
        // Fallback computes the same function here, so outputs match the
        // healthy path — which is exactly the bit-identity the real
        // deployment gets from running the same model on both sides.
        for (i, r) in data.iter().enumerate() {
            let s: f64 = r.iter().sum();
            assert_eq!(out[i], [s, s + 1.0, s + 2.0, s + 3.0]);
        }
        let st = fed.stats();
        assert!(st.degraded);
        assert_eq!(st.fallbacks, 8, "whole batch recomputed locally");
        // Next batch goes straight to the fallback without reconnecting.
        let more = fed.predict(&refs[..2]).unwrap();
        assert_eq!(more.len(), 2);
        assert_eq!(fed.stats().fallbacks, 10);
        handle.join().unwrap();
    }

    #[test]
    fn unreachable_server_is_a_clean_immediate_fallback() {
        // Port 1 on localhost refuses connections.
        let mut fed = FederatedRpv::new(
            "127.0.0.1:1",
            "default",
            Duration::from_millis(200),
            4,
            local(2.0),
        );
        let data = rows(3);
        let refs: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        let out = fed.predict(&refs).unwrap();
        assert_eq!(out.len(), 3);
        let s: f64 = data[0].iter().sum::<f64>() * 2.0;
        assert_eq!(out[0], [s, s + 1.0, s + 2.0, s + 3.0]);
        assert!(fed.stats().degraded);
        assert_eq!(fed.stats().requests, 0);
    }

    #[test]
    fn provider_length_mismatch_is_an_error() {
        let mut bad = FnRpvProvider::new("bad", |rows: &[&[f64]]| {
            Ok(vec![[1.0; N_MACHINES]; rows.len() + 1])
        });
        let data = rows(2);
        let refs: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        assert!(bad.predict(&refs).is_err());
    }
}
