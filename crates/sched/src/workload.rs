//! Workload generation: sample jobs with replacement from dataset-derived
//! templates (§VII: "a workload of 50,000 jobs randomly sampled from our
//! existing data set with replacement").

use crate::job::{Job, N_MACHINES};
use mphpc_errors::MphpcError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A sampleable job shape: one (app, input, scale) row of the dataset with
/// its paired runtimes and the model's prediction for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobTemplate {
    /// Nodes the job occupies.
    pub nodes_required: u32,
    /// GPU capability of the application.
    pub gpu_capable: bool,
    /// True runtime on each machine (Table-I order).
    pub runtimes: [f64; N_MACHINES],
    /// Predicted relative runtimes for the model-based strategy.
    pub predicted_rpv: Option<[f64; N_MACHINES]>,
}

/// Poisson-process arrival times: exponential inter-arrival gaps with the
/// given mean rate (jobs per second). `rate <= 0` puts every arrival at 0.
pub fn poisson_arrivals(n: usize, rate: f64, seed: u64) -> Vec<f64> {
    if rate <= 0.0 {
        return vec![0.0; n];
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            let u: f64 = 1.0 - rng.gen::<f64>();
            t += -u.ln() / rate;
            t
        })
        .collect()
}

/// Sample `n` jobs with replacement from `templates`, with Poisson
/// arrivals at `rate` jobs/second (0 = all at time zero). Errors when
/// `templates` is empty.
pub fn sample_jobs(
    templates: &[JobTemplate],
    n: usize,
    rate: f64,
    seed: u64,
) -> Result<Vec<Job>, MphpcError> {
    sample_jobs_indexed(templates, n, rate, seed).map(|(jobs, _)| jobs)
}

/// [`sample_jobs`], additionally returning which template each job was
/// drawn from (`indices[i]` is job `i`'s template). Same seed ⇒ the same
/// jobs as `sample_jobs` — callers that need per-job side data (e.g. the
/// raw feature rows the scale engine predicts from inline) use the index
/// to line it up without re-deriving the RNG stream.
pub fn sample_jobs_indexed(
    templates: &[JobTemplate],
    n: usize,
    rate: f64,
    seed: u64,
) -> Result<(Vec<Job>, Vec<usize>), MphpcError> {
    if templates.is_empty() {
        return Err(MphpcError::EmptyInput(
            "sample_jobs: no job templates to sample from",
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x10B5);
    let arrivals = poisson_arrivals(n, rate, seed ^ 0xA441);
    let mut jobs = Vec::with_capacity(n);
    let mut indices = Vec::with_capacity(n);
    for i in 0..n {
        let ti = rng.gen_range(0..templates.len());
        let t = &templates[ti];
        indices.push(ti);
        jobs.push(Job {
            id: i as u64,
            submit_time: arrivals[i],
            nodes_required: t.nodes_required,
            gpu_capable: t.gpu_capable,
            runtimes: t.runtimes,
            predicted_rpv: t.predicted_rpv,
        });
    }
    Ok((jobs, indices))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template(nodes: u32) -> JobTemplate {
        JobTemplate {
            nodes_required: nodes,
            gpu_capable: nodes == 2,
            runtimes: [1.0, 2.0, 3.0, 4.0],
            predicted_rpv: Some([1.0, 2.0, 3.0, 4.0]),
        }
    }

    #[test]
    fn arrivals_monotone_with_correct_mean() {
        let times = poisson_arrivals(10_000, 2.0, 1);
        for w in times.windows(2) {
            assert!(w[1] >= w[0]);
        }
        let mean_gap = times.last().unwrap() / 10_000.0;
        assert!((mean_gap - 0.5).abs() < 0.05, "mean gap {mean_gap}");
    }

    #[test]
    fn zero_rate_means_batch_arrival() {
        assert!(poisson_arrivals(5, 0.0, 1).iter().all(|&t| t == 0.0));
    }

    #[test]
    fn sampling_covers_templates_and_is_deterministic() {
        let templates = vec![template(1), template(2)];
        let a = sample_jobs(&templates, 1000, 1.0, 42).unwrap();
        let b = sample_jobs(&templates, 1000, 1.0, 42).unwrap();
        assert_eq!(a, b);
        let ones = a.iter().filter(|j| j.nodes_required == 1).count();
        assert!(ones > 300 && ones < 700, "both templates drawn: {ones}");
        // Ids unique and sequential.
        for (i, j) in a.iter().enumerate() {
            assert_eq!(j.id, i as u64);
        }
    }

    #[test]
    fn sampled_jobs_inherit_template_fields() {
        let templates = vec![template(2)];
        let jobs = sample_jobs(&templates, 10, 0.0, 7).unwrap();
        for j in jobs {
            assert_eq!(j.nodes_required, 2);
            assert!(j.gpu_capable);
            assert_eq!(j.runtimes, [1.0, 2.0, 3.0, 4.0]);
            assert_eq!(j.submit_time, 0.0);
        }
    }

    #[test]
    fn empty_templates_are_an_error() {
        let err = sample_jobs(&[], 1, 0.0, 1).unwrap_err();
        assert!(matches!(err, MphpcError::EmptyInput(_)), "{err}");
    }

    #[test]
    fn indexed_sampling_matches_plain_and_reports_true_indices() {
        let templates = vec![template(1), template(2)];
        let plain = sample_jobs(&templates, 500, 0.5, 13).unwrap();
        let (jobs, indices) = sample_jobs_indexed(&templates, 500, 0.5, 13).unwrap();
        assert_eq!(plain, jobs, "same seed, same stream, same jobs");
        assert_eq!(indices.len(), jobs.len());
        for (j, &ti) in jobs.iter().zip(&indices) {
            assert_eq!(j.nodes_required, templates[ti].nodes_required);
            assert_eq!(j.gpu_capable, templates[ti].gpu_capable);
        }
        assert!(indices.contains(&0) && indices.contains(&1));
    }
}
