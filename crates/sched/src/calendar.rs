//! Calendar-queue event structure for the large-scale scheduling engine.
//!
//! A [calendar queue][brown88] holds pending events in an array of time
//! buckets ("days"), each `width` seconds wide; the array as a whole
//! spans one "year" of `n_buckets × width` seconds and wraps, so bucket
//! `i` holds days `i`, `i + n_buckets`, `i + 2·n_buckets`, … of simulated
//! time. With the width adapted to the observed event density, enqueue
//! lands in the right bucket in O(1) and dequeue-min scans an O(1)
//! expected number of buckets — versus `O(log n)` for the binary heap
//! the original engine used. Discrete-event schedulers enqueue mostly
//! near-future completions, exactly the access pattern the calendar
//! shape rewards.
//!
//! [brown88]: R. Brown, "Calendar queues: a fast O(1) priority queue
//! implementation for the simulation event set problem", CACM 31(10).
//!
//! Determinism: keys are `(time, seq)` where `seq` is the engine's
//! monotonic tie-break counter, so the full order is total and the drain
//! order is identical to the binary heap's — the property the old-vs-new
//! engine bit-identity suite leans on. Nothing in here hashes, samples,
//! or otherwise depends on anything but the inserted keys.
//!
//! Degenerate inputs are first-class: a workload submitted as one batch
//! puts *every* arrival at `t = 0` with ascending `seq`, which lands in
//! a single bucket. Buckets are kept sorted ascending in a `VecDeque`,
//! so those same-time, ascending-seq inserts are all O(1) `push_back`s
//! and dequeues are O(1) `pop_front`s; only a genuinely out-of-order
//! insert pays a binary search plus mid-insert within its bucket.

use std::collections::VecDeque;

/// Totally ordered event key: `(time, tie-break sequence)`.
///
/// Times order by `f64::total_cmp`, encoded into monotone `u64` bits so
/// bucket mapping and comparisons never touch floats; `seq` breaks ties
/// deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    bits: u64,
    /// Tie-break sequence (unique per enqueue within one simulation).
    pub seq: u64,
}

/// Map an `f64` to `u64` bits whose unsigned order equals
/// [`f64::total_cmp`] order (the standard sign-fold trick).
fn total_cmp_bits(t: f64) -> u64 {
    let b = t.to_bits() as i64;
    (b ^ (((b >> 63) as u64) >> 1) as i64) as u64
}

impl EventKey {
    /// Key for an event at `time` with tie-break `seq`.
    pub fn new(time: f64, seq: u64) -> EventKey {
        EventKey {
            bits: total_cmp_bits(time),
            seq,
        }
    }

    /// The event's time.
    pub fn time(self) -> f64 {
        // Invert the sign fold.
        let b = self.bits as i64;
        f64::from_bits((b ^ (((b >> 63) as u64) >> 1) as i64) as u64)
    }
}

/// Minimum bucket width: protects the width estimate against a sample of
/// identical (or denormal-close) event times collapsing the calendar to
/// zero-width days.
const MIN_WIDTH: f64 = 1e-9;

/// One pending event: key plus payload.
type Entry<T> = (EventKey, T);

/// A calendar queue: O(1) amortized enqueue and dequeue-min over
/// `(time, seq)` keys.
///
/// The queue resizes (doubling or halving the day count and re-estimating
/// the day width from the live event population) when the population
/// leaves the `[n_buckets / 2, 2 × n_buckets]` band, so both operations
/// stay O(1) amortized as the event set grows to millions.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    /// `buckets[i]` sorted ascending by key; front = earliest.
    buckets: Vec<VecDeque<Entry<T>>>,
    /// Day width in seconds.
    width: f64,
    /// Number of events stored.
    len: usize,
    /// Bucket the next dequeue starts scanning from.
    cur: usize,
    /// Exclusive upper time bound of `cur`'s current day: an entry in
    /// `cur` belongs to this year iff `time < bucket_top`.
    bucket_top: f64,
    /// Start of `cur`'s current day (`bucket_top - width`), kept so
    /// resize can re-anchor the scan at the present instead of t = 0.
    day_start: f64,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// An empty queue (2 day-buckets, 1-second days, anchored at t = 0;
    /// the first resize re-estimates both from the real events).
    pub fn new() -> CalendarQueue<T> {
        let mut q = CalendarQueue {
            buckets: Vec::new(),
            width: 1.0,
            len: 0,
            cur: 0,
            bucket_top: 1.0,
            day_start: 0.0,
        };
        q.buckets.resize_with(2, VecDeque::new);
        q
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bucket index for a time under the current geometry.
    fn bucket_of(&self, time: f64) -> usize {
        // Times are simulation clocks: finite and non-negative. The
        // division is safe (width >= MIN_WIDTH); the day number can
        // exceed usize on absurd times, so go through f64 modulo.
        let day = (time / self.width).floor();
        let nb = self.buckets.len() as f64;
        let idx = day - (day / nb).floor() * nb;
        (idx as usize).min(self.buckets.len() - 1)
    }

    /// Insert an event. O(1) amortized; same-bucket inserts arriving in
    /// ascending key order (the common DES pattern) are O(1) worst case.
    pub fn push(&mut self, key: EventKey, value: T) {
        let b = self.bucket_of(key.time());
        let bucket = &mut self.buckets[b];
        // Fast path: new maximum for its bucket.
        if bucket.back().is_none_or(|(k, _)| *k < key) {
            bucket.push_back((key, value));
        } else if bucket.front().is_some_and(|(k, _)| key < *k) {
            bucket.push_front((key, value));
        } else {
            let pos = bucket.partition_point(|(k, _)| *k < key);
            bucket.insert(pos, (key, value));
        }
        self.len += 1;
        // A new event can precede the dequeue scan position; rewind so
        // the scan can't skip the year (and bucket) it lives in.
        if key.time() < self.day_start {
            self.anchor_at(key.time());
        }
        if self.len > 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// Remove and return the earliest event. O(1) amortized.
    pub fn pop(&mut self) -> Option<Entry<T>> {
        if self.len == 0 {
            return None;
        }
        // Scan at most one full year of days from the current position;
        // each day only inspects its bucket's front (buckets are sorted).
        for _ in 0..self.buckets.len() {
            if let Some((k, _)) = self.buckets[self.cur].front() {
                if k.time() < self.bucket_top {
                    let entry = self.buckets[self.cur].pop_front().expect("front checked");
                    self.len -= 1;
                    if self.len < self.buckets.len() / 2 && self.buckets.len() > 2 {
                        self.resize(self.buckets.len() / 2);
                    }
                    return Some(entry);
                }
            }
            self.cur = (self.cur + 1) % self.buckets.len();
            self.day_start = self.bucket_top;
            self.bucket_top += self.width;
        }
        // A whole year was empty at the scan position: the remaining
        // events are far in the future (or the width collapsed). Jump
        // straight to the globally earliest bucket front — O(n_buckets),
        // rare by construction — then re-anchor the calendar there.
        let earliest = self
            .buckets
            .iter()
            .filter_map(|b| b.front().map(|(k, _)| *k))
            .min()
            .expect("len > 0 but every bucket empty");
        self.anchor_at(earliest.time());
        let b = self.bucket_of(earliest.time());
        let entry = self.buckets[b].pop_front().expect("anchored at an entry");
        self.len -= 1;
        Some(entry)
    }

    /// Key of the earliest event without removing it.
    pub fn peek_key(&self) -> Option<EventKey> {
        if self.len == 0 {
            return None;
        }
        // Mirror `pop`'s scan without mutating the position.
        let (mut cur, mut top) = (self.cur, self.bucket_top);
        for _ in 0..self.buckets.len() {
            if let Some((k, _)) = self.buckets[cur].front() {
                if k.time() < top {
                    return Some(*k);
                }
            }
            cur = (cur + 1) % self.buckets.len();
            top += self.width;
        }
        self.buckets.iter().filter_map(|b| b.front()).map(|(k, _)| *k).min()
    }

    /// Re-position the dequeue scan so `time` falls inside the current
    /// day of bucket `cur`.
    fn anchor_at(&mut self, time: f64) {
        self.cur = self.bucket_of(time);
        let day = (time / self.width).floor();
        self.day_start = day * self.width;
        self.bucket_top = self.day_start + self.width;
    }

    /// Rebuild with `n_buckets` days, re-estimating the day width from
    /// the live population, and re-anchor at the earliest pending event.
    fn resize(&mut self, n_buckets: usize) {
        let n_buckets = n_buckets.max(2);
        let mut entries: Vec<Entry<T>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            entries.extend(bucket.drain(..));
        }
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        self.width = estimate_width(&entries);
        self.buckets = Vec::new();
        self.buckets.resize_with(n_buckets, VecDeque::new);
        let earliest = entries.first().map(|(k, _)| k.time());
        for (key, value) in entries {
            let b = self.bucket_of(key.time());
            // Sorted insertion order keeps every bucket sorted with
            // nothing but push_back.
            self.buckets[b].push_back((key, value));
        }
        match earliest {
            Some(t) if t.is_finite() => self.anchor_at(t),
            _ => self.anchor_at(0.0),
        }
    }
}

/// Day-width estimate: a small multiple of the mean gap between distinct
/// *adjacent* event times — the classic calendar-queue heuristic (aim
/// for a few events per day so dequeue scans O(1) buckets and bucket
/// insertions stay short). `entries` must already be sorted; the gaps
/// are taken between truly adjacent pairs at 64 positions spread across
/// the population, so the estimate tracks local density rather than
/// range/64 (a decimated sample would make days ~n/64 events deep and
/// turn every insertion into a long memmove). Falls back to
/// [`MIN_WIDTH`] when every sampled pair is simultaneous.
fn estimate_width<T>(entries: &[Entry<T>]) -> f64 {
    const SAMPLE: usize = 64;
    if entries.len() < 2 {
        return 1.0;
    }
    let step = ((entries.len() - 1) / SAMPLE).max(1);
    let mut gap_sum = 0.0;
    let mut gaps = 0u32;
    let mut i = 0;
    while i + 1 < entries.len() {
        let gap = entries[i + 1].0.time() - entries[i].0.time();
        if gap > 0.0 && gap.is_finite() {
            gap_sum += gap;
            gaps += 1;
        }
        i += step;
    }
    if gaps == 0 {
        return MIN_WIDTH;
    }
    ((gap_sum / gaps as f64) * 3.0).max(MIN_WIDTH)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn key_order_matches_total_cmp_then_seq() {
        let times = [0.0, 1e-300, 0.5, 1.0, 1.5, 1e300];
        for (i, &a) in times.iter().enumerate() {
            for &b in &times[i + 1..] {
                assert!(EventKey::new(a, 5) < EventKey::new(b, 0), "{a} < {b}");
            }
        }
        assert!(EventKey::new(2.0, 1) < EventKey::new(2.0, 2));
        assert_eq!(EventKey::new(1.25, 7).time(), 1.25);
        assert_eq!(EventKey::new(0.0, 0).time(), 0.0);
    }

    #[test]
    fn drains_in_sorted_order() {
        let mut q = CalendarQueue::new();
        let times = [5.0, 1.0, 3.0, 1.0, 0.0, 2.5, 7.75, 3.0];
        for (seq, &t) in times.iter().enumerate() {
            q.push(EventKey::new(t, seq as u64), seq);
        }
        assert_eq!(q.len(), times.len());
        let mut drained = Vec::new();
        while let Some((k, v)) = q.pop() {
            drained.push((k, v));
        }
        let mut expected: Vec<(EventKey, usize)> = times
            .iter()
            .enumerate()
            .map(|(seq, &t)| (EventKey::new(t, seq as u64), seq))
            .collect();
        expected.sort_by_key(|(k, _)| *k);
        assert_eq!(drained, expected);
        assert!(q.is_empty());
    }

    #[test]
    fn all_events_at_the_same_instant() {
        // The batch-submission degenerate case: a million-jobs-at-t=0
        // workload must not quadratic-blow the bucket. 50k here keeps the
        // test fast while being far past every resize threshold.
        let mut q = CalendarQueue::new();
        for seq in 0..50_000u64 {
            q.push(EventKey::new(0.0, seq), seq);
        }
        for seq in 0..50_000u64 {
            let (k, v) = q.pop().expect("pending");
            assert_eq!((k.seq, v), (seq, seq));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        let mut rng = StdRng::seed_from_u64(7);
        for seq in 0..1000u64 {
            q.push(EventKey::new(rng.gen_range(0.0..100.0), seq), ());
        }
        while let Some(k) = q.peek_key() {
            assert_eq!(q.pop().unwrap().0, k);
        }
        assert!(q.is_empty() && q.peek_key().is_none());
    }

    #[test]
    fn interleaved_matches_binary_heap_model() {
        // Differential model check: random interleaving of pushes and
        // pops against BinaryHeap, including past-the-scan-position
        // inserts, duplicate times, and wide dynamic range.
        let mut rng = StdRng::seed_from_u64(0xCA1E);
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        let mut model: BinaryHeap<Reverse<(EventKey, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0.0f64;
        for _ in 0..20_000 {
            if rng.gen_bool(0.55) || model.is_empty() {
                // Mostly near-future events, some bursts of simultaneity,
                // occasional far future.
                let t = match rng.gen_range(0..10) {
                    0..=5 => now + rng.gen_range(0.0..10.0),
                    6..=7 => now,
                    8 => now + rng.gen_range(0.0..1e4),
                    _ => rng.gen_range(0.0..now.max(1.0)), // behind the scan
                };
                q.push(EventKey::new(t, seq), seq);
                model.push(Reverse((EventKey::new(t, seq), seq)));
                seq += 1;
            } else {
                let got = q.pop().expect("model non-empty");
                let Reverse(want) = model.pop().unwrap();
                assert_eq!(got, want);
                now = got.0.time();
            }
        }
        while let Some(Reverse(want)) = model.pop() {
            assert_eq!(q.pop().expect("model non-empty"), want);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn sparse_far_future_events_are_found() {
        // Events separated by huge gaps force the year-scan fallback.
        let mut q = CalendarQueue::new();
        for (seq, t) in [0.0, 1e6, 2e9, 3e12].into_iter().enumerate() {
            q.push(EventKey::new(t, seq as u64), seq);
        }
        let drained: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(drained, vec![0, 1, 2, 3]);
    }
}
