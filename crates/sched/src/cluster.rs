//! Machine state: node accounting and EASY reservation computation.

use crate::job::N_MACHINES;
use mphpc_errors::MphpcError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Static description of one machine in the pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Display name.
    pub name: &'static str,
    /// Nodes available to the scheduler.
    pub total_nodes: u32,
    /// Whether the machine has GPUs (for the User+RR strategy).
    pub has_gpu: bool,
}

/// The paper's pool: Quartz, Ruby, Lassen, Corona with their real
/// partition sizes.
pub fn table1_cluster() -> [MachineConfig; N_MACHINES] {
    [
        MachineConfig {
            name: "Quartz",
            total_nodes: 3004,
            has_gpu: false,
        },
        MachineConfig {
            name: "Ruby",
            total_nodes: 1480,
            has_gpu: false,
        },
        MachineConfig {
            name: "Lassen",
            total_nodes: 795,
            has_gpu: true,
        },
        MachineConfig {
            name: "Corona",
            total_nodes: 121,
            has_gpu: true,
        },
    ]
}

/// A running job's footprint on a machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningJob {
    /// Job id.
    pub job_id: u64,
    /// Absolute end time.
    pub end_time: f64,
    /// Nodes held.
    pub nodes: u32,
}

/// Dynamic state of the machine pool.
#[derive(Debug, Clone)]
pub struct Cluster {
    configs: [MachineConfig; N_MACHINES],
    free: [u32; N_MACHINES],
    running: [Vec<RunningJob>; N_MACHINES],
    /// `job_id → index into running[m]`, so completion is O(1) instead of
    /// a linear scan (at 1M jobs with ~4k concurrently running, the scan
    /// was the second-hottest loop in the simulator).
    slot: [HashMap<u64, usize>; N_MACHINES],
}

impl Cluster {
    /// Fresh, empty cluster.
    pub fn new(configs: [MachineConfig; N_MACHINES]) -> Self {
        let free = [
            configs[0].total_nodes,
            configs[1].total_nodes,
            configs[2].total_nodes,
            configs[3].total_nodes,
        ];
        Self {
            configs,
            free,
            running: Default::default(),
            slot: Default::default(),
        }
    }

    /// Machine configurations.
    pub fn configs(&self) -> &[MachineConfig; N_MACHINES] {
        &self.configs
    }

    /// Free nodes on machine `m` right now.
    pub fn free_nodes(&self, m: usize) -> u32 {
        self.free[m]
    }

    /// True if `nodes` can start on machine `m` immediately.
    pub fn can_start(&self, m: usize, nodes: u32) -> bool {
        nodes <= self.configs[m].total_nodes && nodes <= self.free[m]
    }

    /// True if the machine could *ever* run the job.
    pub fn can_ever_run(&self, m: usize, nodes: u32) -> bool {
        nodes <= self.configs[m].total_nodes
    }

    /// Start a job on machine `m`. A capacity violation is an internal
    /// scheduling bug, reported as [`MphpcError::InvariantViolation`]
    /// (callers gate with [`Cluster::can_start`]).
    pub fn start(
        &mut self,
        m: usize,
        job_id: u64,
        nodes: u32,
        end_time: f64,
    ) -> Result<(), MphpcError> {
        if !self.can_start(m, nodes) {
            return Err(MphpcError::InvariantViolation(format!(
                "cluster: starting job {job_id} needing {nodes} nodes on {} with {} free",
                self.configs[m].name, self.free[m]
            )));
        }
        self.free[m] -= nodes;
        self.slot[m].insert(job_id, self.running[m].len());
        self.running[m].push(RunningJob {
            job_id,
            end_time,
            nodes,
        });
        Ok(())
    }

    /// Complete a job; returns the freed node count. Completing a job that
    /// is not running on `m` is an internal scheduling bug. O(1): the
    /// `slot` map locates the job, `swap_remove` fills the hole, and the
    /// swapped-in job's slot entry is patched.
    pub fn complete(&mut self, m: usize, job_id: u64) -> Result<u32, MphpcError> {
        let pos = self.slot[m].remove(&job_id).ok_or_else(|| {
            MphpcError::InvariantViolation(format!(
                "cluster: completing job {job_id} that is not running on {}",
                self.configs[m].name
            ))
        })?;
        let freed = self.running[m].swap_remove(pos).nodes;
        if let Some(moved) = self.running[m].get(pos) {
            self.slot[m].insert(moved.job_id, pos);
        }
        self.free[m] += freed;
        Ok(freed)
    }

    /// Test-only hook: overwrite the free-node counter to simulate
    /// bookkeeping corruption when exercising the invariant auditor.
    #[cfg(test)]
    pub(crate) fn corrupt_free_nodes(&mut self, m: usize, free: u32) {
        self.free[m] = free;
    }

    /// Jobs currently running on machine `m`.
    pub fn running(&self, m: usize) -> &[RunningJob] {
        &self.running[m]
    }

    /// EASY reservation for a head job needing `nodes` on machine `m`:
    /// returns `(shadow_time, extra_nodes)` where `shadow_time` is the
    /// earliest the head can start and `extra_nodes` is how many nodes
    /// remain free at that moment after the head starts. Backfilled jobs
    /// must either finish by `shadow_time` or fit in `extra_nodes`.
    ///
    /// Completions are walked in `(end_time, job_id)` order. Equal end
    /// times free their nodes at the same simulated instant, so only
    /// `extra_nodes` (which depends on where the walk stops) is sensitive
    /// to the tie order — the canonical `(end_time, job_id)` key makes it
    /// a pure function of cluster *state*, independent of the history of
    /// insertions and `swap_remove`s that produced `running[m]`'s order.
    /// The scale engine's incremental free-slot profile recomputes the
    /// same value from a sorted map, which is what makes old-vs-new
    /// schedule bit-identity provable.
    pub fn reservation(&self, m: usize, nodes: u32, now: f64) -> (f64, u32) {
        if self.can_start(m, nodes) {
            return (now, self.free[m] - nodes);
        }
        let mut ends: Vec<(f64, u64, u32)> = self.running[m]
            .iter()
            .map(|r| (r.end_time, r.job_id, r.nodes))
            .collect();
        ends.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut avail = self.free[m];
        for (end, _, freed) in ends {
            avail += freed;
            if avail >= nodes {
                return (end, avail - nodes);
            }
        }
        // Machine can never fit the job (checked by can_ever_run upstream).
        (f64::INFINITY, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster() -> Cluster {
        let mut configs = table1_cluster();
        configs[0].total_nodes = 4;
        Cluster::new(configs)
    }

    #[test]
    fn start_complete_accounting() {
        let mut c = small_cluster();
        assert_eq!(c.free_nodes(0), 4);
        c.start(0, 1, 3, 10.0).unwrap();
        assert_eq!(c.free_nodes(0), 1);
        assert!(!c.can_start(0, 2));
        assert!(c.can_start(0, 1));
        assert_eq!(c.complete(0, 1).unwrap(), 3);
        assert_eq!(c.free_nodes(0), 4);
    }

    #[test]
    fn overcommit_is_an_invariant_violation() {
        let mut c = small_cluster();
        let err = c.start(0, 1, 5, 1.0).unwrap_err();
        assert!(matches!(err, MphpcError::InvariantViolation(_)), "{err}");
        assert_eq!(c.free_nodes(0), 4, "failed start must not leak nodes");
        let err = c.complete(0, 42).unwrap_err();
        assert!(matches!(err, MphpcError::InvariantViolation(_)), "{err}");
    }

    #[test]
    fn reservation_immediate_when_free() {
        let c = small_cluster();
        let (shadow, extra) = c.reservation(0, 2, 5.0);
        assert_eq!(shadow, 5.0);
        assert_eq!(extra, 2);
    }

    #[test]
    fn reservation_waits_for_earliest_sufficient_completion() {
        let mut c = small_cluster();
        c.start(0, 1, 2, 10.0).unwrap();
        c.start(0, 2, 2, 20.0).unwrap();
        // Needs 3 nodes: at t=10 two nodes free (0 + 2), not enough; at
        // t=20 four free.
        let (shadow, extra) = c.reservation(0, 3, 0.0);
        assert_eq!(shadow, 20.0);
        assert_eq!(extra, 1);
        // Needs 2: at t=10.
        let (shadow2, extra2) = c.reservation(0, 2, 0.0);
        assert_eq!(shadow2, 10.0);
        assert_eq!(extra2, 0);
    }

    #[test]
    fn reservation_impossible_job() {
        let c = small_cluster();
        let (shadow, _) = c.reservation(0, 100, 0.0);
        assert!(shadow.is_infinite());
        assert!(!c.can_ever_run(0, 100));
        assert!(c.can_ever_run(0, 4));
    }

    #[test]
    fn out_of_order_completions_keep_slot_map_consistent() {
        // swap_remove moves the last running job into the vacated index;
        // the slot map must follow it or later completions free the
        // wrong footprint.
        let mut c = small_cluster();
        c.start(0, 10, 1, 5.0).unwrap();
        c.start(0, 11, 2, 6.0).unwrap();
        c.start(0, 12, 1, 7.0).unwrap();
        assert_eq!(c.complete(0, 10).unwrap(), 1); // 12 swaps into index 0
        assert_eq!(c.complete(0, 12).unwrap(), 1);
        assert_eq!(c.complete(0, 11).unwrap(), 2);
        assert_eq!(c.free_nodes(0), 4);
        assert!(c.running(0).is_empty());
    }

    #[test]
    fn reservation_tie_break_is_state_not_history() {
        // Two clusters with the same running set reached through
        // different insertion/removal histories must agree on the
        // reservation, including extra_nodes at tied end times.
        let mut a = small_cluster();
        a.start(0, 1, 1, 10.0).unwrap();
        a.start(0, 2, 3, 10.0).unwrap();
        let mut b = small_cluster();
        b.start(0, 9, 4, 1.0).unwrap();
        b.complete(0, 9).unwrap();
        b.start(0, 2, 3, 10.0).unwrap();
        b.start(0, 1, 1, 10.0).unwrap();
        // Canonical (end, job_id) walk: job 1 frees first, so the walk
        // must continue through job 2 → extra = 2. A Vec-order walk over
        // cluster `b` would stop at job 2 and report extra = 1.
        assert_eq!(a.reservation(0, 2, 0.0), (10.0, 2));
        assert_eq!(b.reservation(0, 2, 0.0), (10.0, 2));
    }

    #[test]
    fn table1_capacities() {
        let cfg = table1_cluster();
        assert_eq!(cfg[0].total_nodes, 3004);
        assert_eq!(cfg[3].total_nodes, 121);
        assert!(!cfg[0].has_gpu && !cfg[1].has_gpu);
        assert!(cfg[2].has_gpu && cfg[3].has_gpu);
    }
}
