//! Jobs: units of work sampled from the MP-HPC dataset.

use mphpc_errors::MphpcError;
use serde::{Deserialize, Serialize};

/// Number of machines in the multi-resource pool (Table I).
pub const N_MACHINES: usize = 4;

/// One schedulable job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Unique id (also used to seed per-job random choices).
    pub id: u64,
    /// Submission time in seconds.
    pub submit_time: f64,
    /// Nodes the job needs (1 or 2 in the paper's run matrix).
    pub nodes_required: u32,
    /// Whether the application has a GPU implementation (drives the
    /// User+RR strategy).
    pub gpu_capable: bool,
    /// True runtime on each machine, Table-I order (observed in the
    /// dataset; drives the simulation clock).
    pub runtimes: [f64; N_MACHINES],
    /// Model-predicted relative runtimes (lower = faster). The prediction
    /// the Model-based strategy consults; `None` for strategies that don't
    /// need it.
    pub predicted_rpv: Option<[f64; N_MACHINES]>,
}

impl Job {
    /// True runtime on machine `m` (Table-I index).
    pub fn runtime_on(&self, m: usize) -> f64 {
        self.runtimes[m]
    }

    /// Basic validity: positive runtimes and node count.
    pub fn validate(&self) -> Result<(), MphpcError> {
        if self.nodes_required == 0 {
            return Err(MphpcError::InvalidJob(format!(
                "job {}: zero nodes",
                self.id
            )));
        }
        if self.runtimes.iter().any(|t| !t.is_finite() || *t <= 0.0) {
            return Err(MphpcError::InvalidJob(format!(
                "job {}: non-positive runtime",
                self.id
            )));
        }
        if !self.submit_time.is_finite() || self.submit_time < 0.0 {
            return Err(MphpcError::InvalidJob(format!(
                "job {}: bad submit time",
                self.id
            )));
        }
        if let Some(rpv) = &self.predicted_rpv {
            if rpv.iter().any(|v| !v.is_finite() || *v <= 0.0) {
                return Err(MphpcError::InvalidJob(format!(
                    "job {}: non-positive predicted RPV",
                    self.id
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> Job {
        Job {
            id: 1,
            submit_time: 0.0,
            nodes_required: 1,
            gpu_capable: false,
            runtimes: [1.0, 2.0, 3.0, 4.0],
            predicted_rpv: None,
        }
    }

    #[test]
    fn accessors_and_validation() {
        let j = job();
        assert_eq!(j.runtime_on(2), 3.0);
        assert!(j.validate().is_ok());
        let mut bad = j.clone();
        bad.nodes_required = 0;
        assert!(bad.validate().is_err());
        let mut neg = j.clone();
        neg.runtimes[1] = -1.0;
        assert!(neg.validate().is_err());
        let mut sub = j;
        sub.submit_time = f64::NAN;
        assert!(sub.validate().is_err());
    }
}
