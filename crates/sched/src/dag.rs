//! Workflow (DAG) scheduling — the use case the paper's motivation opens
//! with: "an increasing number of scientific workloads are being expressed
//! as workflows with sets of computational tasks and dependencies between
//! them", where "each task may be better suited for a different
//! architecture".
//!
//! A [`Workflow`] is a DAG of tasks (each an ordinary [`Job`] shape); a
//! task becomes *eligible* when all of its predecessors have completed.
//! [`simulate_workflows`] lowers every workflow into one job set with
//! dependency edges and runs the FCFS+EASY engine's native dependency
//! support ([`crate::engine::simulate_with_deps`]): eligible tasks join
//! the global queue the moment their last dependency finishes and contend
//! with every other running workflow, so cross-architecture placement
//! decisions propagate along the critical path — a task placed on a slow
//! machine delays every successor.

use crate::engine::{simulate_with_deps, SimConfig};
use crate::job::{Job, N_MACHINES};
use crate::metrics::JobRecord;
use crate::strategy::MachineAssigner;
use mphpc_errors::MphpcError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One task of a workflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Task id, unique within its workflow.
    pub id: u32,
    /// Ids of tasks that must complete before this one may start.
    pub deps: Vec<u32>,
    /// Nodes required.
    pub nodes_required: u32,
    /// GPU capability of the task's application.
    pub gpu_capable: bool,
    /// True runtime on each machine (Table-I order).
    pub runtimes: [f64; N_MACHINES],
    /// Predicted RPV for the model-based strategy.
    pub predicted_rpv: Option<[f64; N_MACHINES]>,
}

/// A directed acyclic graph of tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workflow {
    /// Submission time of the workflow (its source tasks).
    pub submit_time: f64,
    /// Tasks; dependencies refer to ids within this vector.
    pub tasks: Vec<Task>,
}

impl Workflow {
    /// Validate: ids unique, dependencies resolvable, graph acyclic.
    pub fn validate(&self) -> Result<(), MphpcError> {
        let ids: HashMap<u32, usize> = self
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (t.id, i))
            .collect();
        if ids.len() != self.tasks.len() {
            return Err(MphpcError::InvalidJob("duplicate task ids".into()));
        }
        for t in &self.tasks {
            for d in &t.deps {
                if !ids.contains_key(d) {
                    return Err(MphpcError::InvalidJob(format!(
                        "task {} depends on unknown task {d}",
                        t.id
                    )));
                }
                if *d == t.id {
                    return Err(MphpcError::InvalidJob(format!(
                        "task {} depends on itself",
                        t.id
                    )));
                }
            }
        }
        // Kahn's algorithm to detect cycles.
        let mut indegree: HashMap<u32, usize> =
            self.tasks.iter().map(|t| (t.id, t.deps.len())).collect();
        let mut ready: Vec<u32> = indegree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&id, _)| id)
            .collect();
        let mut visited = 0;
        while let Some(id) = ready.pop() {
            visited += 1;
            for t in &self.tasks {
                if t.deps.contains(&id) {
                    let e = indegree.get_mut(&t.id).expect("id known");
                    *e -= 1;
                    if *e == 0 {
                        ready.push(t.id);
                    }
                }
            }
        }
        if visited != self.tasks.len() {
            return Err(MphpcError::InvalidJob("workflow graph has a cycle".into()));
        }
        Ok(())
    }

    /// Lower bound on the workflow's span: the critical path assuming every
    /// task runs on its fastest machine with no queueing.
    pub fn critical_path_seconds(&self) -> f64 {
        let mut finish: HashMap<u32, f64> = HashMap::new();
        // Tasks are processed in dependency order via fixpoint iteration
        // (valid because validate() guarantees acyclicity).
        let mut remaining: Vec<&Task> = self.tasks.iter().collect();
        while !remaining.is_empty() {
            let before = remaining.len();
            remaining.retain(|t| {
                if t.deps.iter().all(|d| finish.contains_key(d)) {
                    let start = t.deps.iter().map(|d| finish[d]).fold(0.0f64, f64::max);
                    let best = t.runtimes.iter().cloned().fold(f64::INFINITY, f64::min);
                    finish.insert(t.id, start + best);
                    false
                } else {
                    true
                }
            });
            assert!(remaining.len() < before, "cycle despite validation");
        }
        finish.values().cloned().fold(0.0, f64::max)
    }
}

/// Results of a workflow-scheduling simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowSimResult {
    /// Underlying per-task engine result of the final wave.
    pub strategy: &'static str,
    /// Time from first workflow submission to last task completion.
    pub makespan: f64,
    /// Mean workflow span (submission → last task completion), the
    /// user-facing turnaround metric.
    pub mean_workflow_span: f64,
    /// Per-task records keyed by (workflow index, task id).
    pub task_records: HashMap<(usize, u32), JobRecord>,
}

/// Simulate a set of workflows under a machine-assignment strategy.
///
/// All tasks of all workflows are lowered into one dependency-annotated
/// job set and simulated in a single discrete-event run, so tasks of
/// different workflows (and different DAG depths) genuinely contend for
/// nodes.
pub fn simulate_workflows(
    workflows: &[Workflow],
    strategy: &mut dyn MachineAssigner,
    config: &SimConfig,
) -> Result<WorkflowSimResult, MphpcError> {
    for (wi, w) in workflows.iter().enumerate() {
        w.validate()
            .map_err(|e| e.context(format!("workflow {wi}")))?;
    }
    if workflows.is_empty() {
        return Ok(WorkflowSimResult {
            strategy: strategy.name(),
            makespan: 0.0,
            mean_workflow_span: 0.0,
            task_records: HashMap::new(),
        });
    }

    // Global job ids encode (workflow, task); job indices are assigned in
    // iteration order so dependency edges can reference them directly.
    let encode = |wi: usize, tid: u32| ((wi as u64) << 32) | tid as u64;
    let decode = |id: u64| ((id >> 32) as usize, id as u32);

    let mut jobs: Vec<Job> = Vec::new();
    let mut deps: Vec<Vec<usize>> = Vec::new();
    let mut index_of: HashMap<(usize, u32), usize> = HashMap::new();
    for (wi, w) in workflows.iter().enumerate() {
        for t in &w.tasks {
            index_of.insert((wi, t.id), jobs.len());
            jobs.push(Job {
                id: encode(wi, t.id),
                submit_time: w.submit_time,
                nodes_required: t.nodes_required,
                gpu_capable: t.gpu_capable,
                runtimes: t.runtimes,
                predicted_rpv: t.predicted_rpv,
            });
            deps.push(Vec::new()); // filled below once all indices exist
        }
    }
    for (wi, w) in workflows.iter().enumerate() {
        for t in &w.tasks {
            let ji = index_of[&(wi, t.id)];
            deps[ji] = t.deps.iter().map(|d| index_of[&(wi, *d)]).collect();
        }
    }

    let result = simulate_with_deps(&jobs, &deps, strategy, config)?;
    let strategy_name = result.strategy;
    let mut completed: HashMap<(usize, u32), JobRecord> = HashMap::new();
    for rec in result.records {
        completed.insert(decode(rec.job_id), rec);
    }

    let first_submit = workflows
        .iter()
        .map(|w| w.submit_time)
        .fold(f64::INFINITY, f64::min);
    let last_end = completed.values().map(|r| r.end).fold(0.0f64, f64::max);
    let mean_span = workflows
        .iter()
        .enumerate()
        .map(|(wi, w)| {
            let end = w
                .tasks
                .iter()
                .map(|t| completed[&(wi, t.id)].end)
                .fold(0.0f64, f64::max);
            end - w.submit_time
        })
        .sum::<f64>()
        / workflows.len().max(1) as f64;

    Ok(WorkflowSimResult {
        strategy: strategy_name,
        makespan: last_end - first_submit,
        mean_workflow_span: mean_span,
        task_records: completed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{Oracle, RoundRobin};

    fn task(id: u32, deps: Vec<u32>, runtimes: [f64; 4]) -> Task {
        Task {
            id,
            deps,
            nodes_required: 1,
            gpu_capable: false,
            runtimes,
            predicted_rpv: Some(runtimes),
        }
    }

    fn pipeline(submit: f64) -> Workflow {
        // 0 -> 1 -> 2, plus a parallel branch 0 -> 3.
        Workflow {
            submit_time: submit,
            tasks: vec![
                task(0, vec![], [5.0, 10.0, 10.0, 10.0]),
                task(1, vec![0], [10.0, 2.0, 10.0, 10.0]),
                task(2, vec![1], [10.0, 10.0, 3.0, 10.0]),
                task(3, vec![0], [4.0, 4.0, 4.0, 4.0]),
            ],
        }
    }

    #[test]
    fn validation_catches_bad_graphs() {
        let mut w = pipeline(0.0);
        assert!(w.validate().is_ok());
        w.tasks[1].deps = vec![99];
        assert!(w.validate().is_err());
        let mut cyc = pipeline(0.0);
        cyc.tasks[0].deps = vec![2];
        assert!(cyc.validate().is_err());
        let mut dup = pipeline(0.0);
        dup.tasks[1].id = 0;
        assert!(dup.validate().is_err());
        let mut selfdep = pipeline(0.0);
        selfdep.tasks[0].deps = vec![0];
        assert!(selfdep.validate().is_err());
    }

    #[test]
    fn critical_path_lower_bound() {
        let w = pipeline(0.0);
        // Best-machine chain: 5 + 2 + 3 = 10 (branch 0->3 is shorter).
        assert!((w.critical_path_seconds() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn dependencies_are_respected() {
        let w = pipeline(0.0);
        let mut s = RoundRobin::new();
        let r = simulate_workflows(&[w.clone()], &mut s, &SimConfig::default()).unwrap();
        let rec = |tid: u32| r.task_records[&(0usize, tid)];
        assert!(rec(1).start >= rec(0).end - 1e-9, "1 after 0");
        assert!(rec(2).start >= rec(1).end - 1e-9, "2 after 1");
        assert!(rec(3).start >= rec(0).end - 1e-9, "3 after 0");
        assert!(r.makespan >= w.critical_path_seconds() - 1e-9);
    }

    #[test]
    fn oracle_tracks_critical_path_on_an_empty_cluster() {
        let w = pipeline(0.0);
        let mut s = Oracle::new();
        let r = simulate_workflows(&[w.clone()], &mut s, &SimConfig::default()).unwrap();
        // With perfect placement and no contention, the span equals the
        // critical path.
        assert!(
            (r.mean_workflow_span - w.critical_path_seconds()).abs() < 1e-6,
            "span {} vs critical path {}",
            r.mean_workflow_span,
            w.critical_path_seconds()
        );
    }

    #[test]
    fn placement_quality_shows_in_workflow_span() {
        // Each pipeline stage strongly prefers a different machine: the
        // oracle chains fast placements, round-robin does not.
        let workflows: Vec<Workflow> = (0..20).map(|i| pipeline(i as f64 * 0.1)).collect();
        let mut rr = RoundRobin::new();
        let mut oracle = Oracle::new();
        let r_rr = simulate_workflows(&workflows, &mut rr, &SimConfig::default()).unwrap();
        let r_o = simulate_workflows(&workflows, &mut oracle, &SimConfig::default()).unwrap();
        assert!(
            r_o.mean_workflow_span < r_rr.mean_workflow_span,
            "oracle {} vs round-robin {}",
            r_o.mean_workflow_span,
            r_rr.mean_workflow_span
        );
    }

    #[test]
    fn staggered_submissions_flow_through() {
        let workflows = vec![pipeline(0.0), pipeline(100.0)];
        let mut s = Oracle::new();
        let r = simulate_workflows(&workflows, &mut s, &SimConfig::default()).unwrap();
        let late_start = r.task_records[&(1usize, 0u32)].start;
        assert!(late_start >= 100.0, "second workflow cannot start early");
    }

    #[test]
    fn empty_workflow_set() {
        let mut s = RoundRobin::new();
        let r = simulate_workflows(&[], &mut s, &SimConfig::default()).unwrap();
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.task_records.len(), 0);
    }
}
