//! Runtime invariant auditor for the scheduling engine.
//!
//! The discrete-event engine maintains several invariants that, if broken,
//! silently corrupt every downstream metric (makespan, slowdown, machine
//! utilisation) rather than crashing. The [`InvariantAuditor`] checks them
//! as the simulation runs and reports a violation as
//! [`MphpcError::InvariantViolation`] naming the machine, job, and times
//! involved:
//!
//! * **event-time monotonicity** — the event clock never moves backwards;
//! * **node conservation** — on every machine, free nodes plus the nodes
//!   held by running jobs always equal the machine's total, and free never
//!   exceeds total;
//! * **queue/cluster consistency** — every running job's completion lies
//!   at or after the current clock (no job is "running" past its end);
//! * **reservation honoured** — once the queue head is given an EASY
//!   reservation, backfilled jobs must never delay it past the promised
//!   shadow time; the head must start at or before the latest shadow
//!   recorded for it;
//! * **free-slot-profile consistency** (scale engine) — the incremental
//!   completion profile that [`crate::backfill`] maintains per machine
//!   must stay a faithful mirror of the cluster's running set;
//! * **calendar-queue time ordering** (scale engine) — events leave the
//!   calendar queue in nondecreasing `(time, seq)` order, i.e. the O(1)
//!   bucket structure never reorders the schedule.
//!
//! The auditor is on in debug builds (`cfg!(debug_assertions)`) and can be
//! forced on in release builds via [`crate::engine::SimConfig::audit`].
//! When disabled every check is an early-return, keeping the hot path
//! free of HashMap traffic.

use crate::cluster::Cluster;
use crate::job::N_MACHINES;
use mphpc_errors::MphpcError;
use std::collections::HashMap;

/// Slack for floating-point time comparisons.
const EPS: f64 = 1e-9;

/// Checks engine invariants during a simulation run. One auditor instance
/// lives for the duration of one `simulate` call.
#[derive(Debug)]
pub struct InvariantAuditor {
    enabled: bool,
    last_event_time: f64,
    /// job id → (reserved machine, shadow time) for queue heads that
    /// blocked and received an EASY reservation.
    reservations: HashMap<u64, (usize, f64)>,
    /// Last `(time, seq)` dequeued from the calendar queue (scale engine).
    last_dequeue: Option<(f64, u64)>,
    /// Checks that ran and passed (for the telemetry layer; a failed
    /// check aborts the simulation, so "ran" and "passed" coincide for
    /// every completed run).
    checks: u64,
}

impl InvariantAuditor {
    /// A new auditor; `enabled = false` turns every check into a no-op.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            last_event_time: f64::NEG_INFINITY,
            reservations: HashMap::new(),
            last_dequeue: None,
            checks: 0,
        }
    }

    /// Whether checks are active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Number of invariant checks that have run (and therefore passed).
    pub fn checks_passed(&self) -> u64 {
        self.checks
    }

    /// The event clock advanced to `now`: it must be monotone.
    pub fn observe_event_time(&mut self, now: f64) -> Result<(), MphpcError> {
        if !self.enabled {
            return Ok(());
        }
        if !now.is_finite() {
            return Err(MphpcError::InvariantViolation(format!(
                "auditor: non-finite event time {now}"
            )));
        }
        if now < self.last_event_time - EPS {
            return Err(MphpcError::InvariantViolation(format!(
                "auditor: event time moved backwards ({} -> {now})",
                self.last_event_time
            )));
        }
        self.last_event_time = self.last_event_time.max(now);
        self.checks += 1;
        Ok(())
    }

    /// The queue head `job_id` blocked and was promised machine `machine`
    /// no later than `shadow`. Later promises overwrite earlier ones: the
    /// engine recomputes the reservation whenever cluster or strategy
    /// state changes, and only the latest promise is binding.
    pub fn record_reservation(&mut self, job_id: u64, machine: usize, shadow: f64) {
        if !self.enabled {
            return;
        }
        self.reservations.insert(job_id, (machine, shadow));
    }

    /// Job `job_id` started at `now`. If it had an outstanding
    /// reservation, it must not start later than the promised shadow time
    /// (backfilled work must never delay the head).
    pub fn observe_start(&mut self, job_id: u64, now: f64) -> Result<(), MphpcError> {
        if !self.enabled {
            return Ok(());
        }
        if let Some((machine, shadow)) = self.reservations.remove(&job_id) {
            if shadow.is_finite() && now > shadow + EPS {
                return Err(MphpcError::InvariantViolation(format!(
                    "auditor: job {job_id} was reserved machine {machine} by t={shadow} \
                     but only started at t={now} (backfill delayed the head)"
                )));
            }
        }
        self.checks += 1;
        Ok(())
    }

    /// An event left the calendar queue with key `(time, seq)`. Keys must
    /// be nondecreasing in `(total_cmp time, seq)` order — the bucket
    /// structure rotates and resizes internally, and any ordering slip
    /// would silently reorder the whole schedule.
    pub fn observe_calendar_dequeue(&mut self, time: f64, seq: u64) -> Result<(), MphpcError> {
        if !self.enabled {
            return Ok(());
        }
        if let Some((pt, ps)) = self.last_dequeue {
            let ord = pt.total_cmp(&time).then(ps.cmp(&seq));
            if ord != std::cmp::Ordering::Less {
                return Err(MphpcError::InvariantViolation(format!(
                    "auditor: calendar queue dequeued ({time}, seq {seq}) \
                     after ({pt}, seq {ps})"
                )));
            }
        }
        self.last_dequeue = Some((time, seq));
        self.checks += 1;
        Ok(())
    }

    /// Free-slot-profile consistency (scale engine): `profile` is machine
    /// `m`'s incremental completion profile as `(end_time, job_id, nodes)`
    /// triples in iteration order. It must (a) be sorted ascending by
    /// `(end_time, job_id)` and (b) hold exactly the cluster's running
    /// set for `m` — same jobs, same end times, same node counts.
    pub fn check_free_slot_profile(
        &mut self,
        cluster: &Cluster,
        m: usize,
        profile: impl Iterator<Item = (f64, u64, u32)>,
    ) -> Result<(), MphpcError> {
        if !self.enabled {
            return Ok(());
        }
        self.checks += 1;
        let name = cluster.configs()[m].name;
        let mut entries: Vec<(f64, u64, u32)> = Vec::with_capacity(cluster.running(m).len());
        let mut prev: Option<(f64, u64)> = None;
        for (end, job_id, nodes) in profile {
            if let Some((pe, pj)) = prev {
                if pe.total_cmp(&end).then(pj.cmp(&job_id)) != std::cmp::Ordering::Less {
                    return Err(MphpcError::InvariantViolation(format!(
                        "auditor: {name} free-slot profile out of order: \
                         ({pe}, job {pj}) before ({end}, job {job_id})"
                    )));
                }
            }
            prev = Some((end, job_id));
            entries.push((end, job_id, nodes));
        }
        let mut expected: Vec<(f64, u64, u32)> = cluster
            .running(m)
            .iter()
            .map(|r| (r.end_time, r.job_id, r.nodes))
            .collect();
        expected.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        if entries != expected {
            return Err(MphpcError::InvariantViolation(format!(
                "auditor: {name} free-slot profile diverged from cluster: \
                 profile has {} entries, cluster {} running",
                entries.len(),
                expected.len()
            )));
        }
        Ok(())
    }

    /// Full cluster consistency sweep at time `now`: node conservation per
    /// machine and no running job whose completion is already in the past.
    pub fn check_cluster(&mut self, cluster: &Cluster, now: f64) -> Result<(), MphpcError> {
        if !self.enabled {
            return Ok(());
        }
        self.checks += 1;
        for m in 0..N_MACHINES {
            let name = cluster.configs()[m].name;
            let total = cluster.configs()[m].total_nodes;
            let free = cluster.free_nodes(m);
            if free > total {
                return Err(MphpcError::InvariantViolation(format!(
                    "auditor: machine {name} has {free} free of {total} total nodes"
                )));
            }
            let held: u32 = cluster.running(m).iter().map(|r| r.nodes).sum();
            if free + held != total {
                return Err(MphpcError::InvariantViolation(format!(
                    "auditor: machine {name} leaks nodes: {free} free + {held} running != {total}"
                )));
            }
            if let Some(r) = cluster.running(m).iter().find(|r| r.end_time < now - EPS) {
                return Err(MphpcError::InvariantViolation(format!(
                    "auditor: job {} still running on {name} past its end time {} (now {now})",
                    r.job_id, r.end_time
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        let mut machines = crate::cluster::table1_cluster();
        for m in &mut machines {
            m.total_nodes = 4;
        }
        Cluster::new(machines)
    }

    #[test]
    fn disabled_auditor_accepts_everything() {
        let mut a = InvariantAuditor::new(false);
        a.observe_event_time(5.0).unwrap();
        a.observe_event_time(1.0).unwrap(); // would violate if enabled
        a.record_reservation(1, 0, 2.0);
        a.observe_start(1, 99.0).unwrap();
        assert_eq!(a.checks_passed(), 0, "disabled auditor counts no checks");
    }

    #[test]
    fn enabled_auditor_counts_checks() {
        let mut a = InvariantAuditor::new(true);
        a.observe_event_time(1.0).unwrap();
        a.observe_event_time(2.0).unwrap();
        a.observe_start(1, 2.0).unwrap();
        a.check_cluster(&cluster(), 2.0).unwrap();
        assert_eq!(a.checks_passed(), 4);
    }

    #[test]
    fn detects_backwards_time() {
        let mut a = InvariantAuditor::new(true);
        a.observe_event_time(5.0).unwrap();
        let err = a.observe_event_time(1.0).unwrap_err();
        assert!(matches!(err, MphpcError::InvariantViolation(_)), "{err}");
    }

    #[test]
    fn detects_broken_reservation() {
        let mut a = InvariantAuditor::new(true);
        a.record_reservation(7, 1, 10.0);
        let err = a.observe_start(7, 11.0).unwrap_err();
        assert!(err.to_string().contains("job 7"), "{err}");
        // Honoured (and recomputed) reservations pass.
        a.record_reservation(8, 1, 10.0);
        a.record_reservation(8, 0, 12.0);
        a.observe_start(8, 12.0).unwrap();
    }

    #[test]
    fn detects_node_leak() {
        let mut a = InvariantAuditor::new(true);
        let mut c = cluster();
        a.check_cluster(&c, 0.0).unwrap();
        c.start(0, 1, 2, 10.0).unwrap();
        a.check_cluster(&c, 0.0).unwrap();
        // Corrupt the books: free a node that is still held.
        c.corrupt_free_nodes(0, 3);
        let err = a.check_cluster(&c, 0.0).unwrap_err();
        assert!(err.to_string().contains("leak"), "{err}");
    }

    #[test]
    fn detects_calendar_order_violation() {
        let mut a = InvariantAuditor::new(true);
        a.observe_calendar_dequeue(1.0, 0).unwrap();
        a.observe_calendar_dequeue(1.0, 3).unwrap();
        a.observe_calendar_dequeue(2.0, 1).unwrap();
        let err = a.observe_calendar_dequeue(2.0, 1).unwrap_err();
        assert!(err.to_string().contains("calendar"), "{err}");
        let mut b = InvariantAuditor::new(true);
        b.observe_calendar_dequeue(5.0, 0).unwrap();
        assert!(b.observe_calendar_dequeue(4.0, 1).is_err());
    }

    #[test]
    fn detects_profile_divergence() {
        let mut a = InvariantAuditor::new(true);
        let mut c = cluster();
        c.start(0, 1, 2, 10.0).unwrap();
        c.start(0, 2, 1, 5.0).unwrap();
        // Faithful, sorted profile passes.
        let good = [(5.0, 2u64, 1u32), (10.0, 1, 2)];
        a.check_free_slot_profile(&c, 0, good.iter().copied())
            .unwrap();
        // Out of order.
        let unsorted = [(10.0, 1u64, 2u32), (5.0, 2, 1)];
        let err = a
            .check_free_slot_profile(&c, 0, unsorted.iter().copied())
            .unwrap_err();
        assert!(err.to_string().contains("out of order"), "{err}");
        // Wrong node count.
        let wrong = [(5.0, 2u64, 1u32), (10.0, 1, 3)];
        let err = a
            .check_free_slot_profile(&c, 0, wrong.iter().copied())
            .unwrap_err();
        assert!(err.to_string().contains("diverged"), "{err}");
        // Missing entry.
        let short = [(5.0, 2u64, 1u32)];
        assert!(a
            .check_free_slot_profile(&c, 0, short.iter().copied())
            .is_err());
    }

    #[test]
    fn detects_overdue_running_job() {
        let mut a = InvariantAuditor::new(true);
        let mut c = cluster();
        c.start(0, 1, 2, 10.0).unwrap();
        a.check_cluster(&c, 10.0).unwrap();
        let err = a.check_cluster(&c, 10.1).unwrap_err();
        assert!(err.to_string().contains("past its end time"), "{err}");
    }
}
