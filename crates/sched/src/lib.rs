//! Multi-resource scheduling simulation (§VII of the paper).
//!
//! A discrete-event simulator of a **global FCFS queue with EASY
//! backfilling** (Algorithm 1) feeding four machines, where the `Machine`
//! function that assigns jobs to machines is pluggable (Algorithm 2's
//! strategies):
//!
//! * [`strategy::RoundRobin`] — rotate across machines per started job;
//! * [`strategy::RandomAssign`] — uniform random machine per job;
//! * [`strategy::UserRoundRobin`] — "typical user behaviour": GPU-capable
//!   jobs round-robin over the GPU machines, CPU-only jobs over the CPU
//!   machines;
//! * [`strategy::ModelBased`] — pick the machine with the best predicted
//!   relative performance, falling back to the next best while machines
//!   are full (Algorithm 2);
//! * [`strategy::Oracle`] — same, but using true runtimes (an upper bound
//!   the paper does not plot; useful for calibrating how much of the
//!   oracle gap the model closes).
//!
//! Jobs carry their *true* runtime on every machine (from the paired
//! dataset runs, exactly like the paper: "we use the observed run times on
//! each machine from the data set"), plus the model's predicted RPV for the
//! model-based strategy. [`metrics`] reports makespan and average bounded
//! slowdown (Figs. 7–8).

#![warn(missing_docs)]

pub mod audit;
pub mod backfill;
pub mod calendar;
pub mod cluster;
pub mod dag;
pub mod engine;
pub mod federation;
pub mod job;
pub mod metrics;
pub mod strategy;
pub mod workload;

pub use audit::InvariantAuditor;
pub use backfill::{simulate_scale, InlineRpv, ScaleStats};
pub use calendar::{CalendarQueue, EventKey};
pub use cluster::{Cluster, MachineConfig};
pub use dag::{simulate_workflows, Task, Workflow, WorkflowSimResult};
pub use engine::{simulate, simulate_with_deps, BackfillOrder, SimConfig, SimResult};
pub use federation::{FederatedRpv, FederationStats, FnRpvProvider, RpvProvider};
pub use job::Job;
pub use metrics::{avg_bounded_slowdown, makespan, SLOWDOWN_BOUND_SECONDS};
pub use strategy::{MachineAssigner, ModelBased, Oracle, RandomAssign, RoundRobin, UserRoundRobin};
pub use workload::{poisson_arrivals, sample_jobs, sample_jobs_indexed, JobTemplate};
