//! Scheduler evaluation metrics (§VII-A): makespan and average bounded
//! slowdown.

use serde::{Deserialize, Serialize};

/// Bound applied to the slowdown denominator so very short jobs don't
/// dominate the average (the standard 10-second bound).
pub const SLOWDOWN_BOUND_SECONDS: f64 = 10.0;

/// Lifecycle of one scheduled job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job id.
    pub job_id: u64,
    /// Submission time.
    pub submit: f64,
    /// Start time.
    pub start: f64,
    /// Completion time.
    pub end: f64,
    /// Machine index the job ran on.
    pub machine: usize,
}

impl JobRecord {
    /// Time spent waiting in the queue.
    pub fn wait(&self) -> f64 {
        self.start - self.submit
    }

    /// Execution time.
    pub fn run(&self) -> f64 {
        self.end - self.start
    }

    /// Bounded slowdown: `max(1, (wait + run) / max(run, bound))`.
    pub fn bounded_slowdown(&self) -> f64 {
        let denom = self.run().max(SLOWDOWN_BOUND_SECONDS);
        ((self.wait() + self.run()) / denom).max(1.0)
    }
}

/// Time from the earliest submission to the last completion.
pub fn makespan(records: &[JobRecord]) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    let first_submit = records
        .iter()
        .map(|r| r.submit)
        .fold(f64::INFINITY, f64::min);
    let last_end = records
        .iter()
        .map(|r| r.end)
        .fold(f64::NEG_INFINITY, f64::max);
    last_end - first_submit
}

/// Mean bounded slowdown over all jobs.
pub fn avg_bounded_slowdown(records: &[JobRecord]) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    records.iter().map(JobRecord::bounded_slowdown).sum::<f64>() / records.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(submit: f64, start: f64, end: f64) -> JobRecord {
        JobRecord {
            job_id: 0,
            submit,
            start,
            end,
            machine: 0,
        }
    }

    #[test]
    fn makespan_spans_first_submit_to_last_end() {
        let rs = [rec(0.0, 0.0, 10.0), rec(2.0, 5.0, 30.0)];
        assert_eq!(makespan(&rs), 30.0);
        assert_eq!(makespan(&[]), 0.0);
    }

    #[test]
    fn slowdown_bounded_below_by_one() {
        // No wait: slowdown exactly 1.
        assert_eq!(rec(0.0, 0.0, 100.0).bounded_slowdown(), 1.0);
    }

    #[test]
    fn short_jobs_use_the_bound() {
        // 1-second job waiting 9 seconds: unbounded slowdown would be 10;
        // bounded uses max(run, 10) => (9 + 1) / 10 = 1.
        let r = rec(0.0, 9.0, 10.0);
        assert_eq!(r.bounded_slowdown(), 1.0);
        // 1-second job waiting 99 seconds: (99+1)/10 = 10.
        let r2 = rec(0.0, 99.0, 100.0);
        assert_eq!(r2.bounded_slowdown(), 10.0);
    }

    #[test]
    fn long_jobs_use_their_runtime() {
        // 100-second job waiting 100: (100+100)/100 = 2.
        let r = rec(0.0, 100.0, 200.0);
        assert_eq!(r.bounded_slowdown(), 2.0);
    }

    #[test]
    fn average_over_jobs() {
        let rs = [rec(0.0, 0.0, 100.0), rec(0.0, 100.0, 200.0)];
        assert_eq!(avg_bounded_slowdown(&rs), 1.5);
        assert_eq!(avg_bounded_slowdown(&[]), 0.0);
    }
}
