//! The large-scale scheduling engine: calendar-queue events, incremental
//! EASY backfill, and batched inline RPV prediction.
//!
//! [`simulate_scale`] is a drop-in replacement for [`crate::engine::simulate`]
//! built to push the simulator from 50k jobs to millions while producing
//! **bit-identical schedules**. Three structural changes carry the scale:
//!
//! 1. **Calendar queue** ([`crate::calendar`]): the global event structure
//!    is O(1) amortized instead of the binary heap's O(log n), with the
//!    same deterministic `(time, seq)` total order.
//!
//! 2. **Incremental EASY with a free-slot profile.** The reference engine
//!    recomputes the head's reservation by collecting and sorting every
//!    running job — O(R log R) per blocked pass. Here each machine keeps a
//!    sorted completion profile (a `BTreeMap` keyed by canonical
//!    `(end_time, job_id)`), maintained in O(log R) per start/completion,
//!    so a reservation is a short in-order prefix walk. On top of that, a
//!    *blocked-pass snapshot* skips provably-unchanged work: when a pass
//!    ends with the head blocked and the next event batch is arrivals
//!    only, nothing the previous scan observed has changed — the cluster
//!    is untouched, strategy state only advances on starts
//!    ([`crate::strategy::MachineAssigner`] requires `choose` to be
//!    side-effect free), and every previously rejected candidate stays
//!    rejected (a candidate that fails `can_start` still fails on an
//!    unchanged cluster, and the `now + dur > shadow` backfill guard is
//!    monotone in `now`, so candidates held back by the reservation stay
//!    held back as `now` grows). Only the newly arrived suffix of the
//!    window needs scanning: a job completion touches O(affected) work
//!    instead of rescanning the whole queue. Completions or starts
//!    invalidate the snapshot and force a full rescan — counted
//!    separately in [`ScaleStats`] and the
//!    `sched.backfill.{incremental_updates,full_rescans}` telemetry.
//!
//! 3. **Batched inline prediction.** Jobs may arrive without a predicted
//!    RPV; every decision point gathers all rows arriving at that
//!    simulated instant into a single [`RpvProvider::predict`] call —
//!    the quantized compiled engine is batch-size invariant, so inline
//!    predictions are bitwise the ones a precomputed run would use, and
//!    a federated provider ([`crate::federation::FederatedRpv`]) amortises
//!    a network round trip the same way.

use crate::audit::InvariantAuditor;
use crate::calendar::{CalendarQueue, EventKey};
use crate::cluster::Cluster;
use crate::engine::{BackfillOrder, SimConfig, SimResult};
use crate::federation::RpvProvider;
use crate::job::{Job, N_MACHINES};
use crate::metrics::{avg_bounded_slowdown, makespan, JobRecord};
use crate::strategy::MachineAssigner;
use mphpc_errors::MphpcError;
use std::collections::{BTreeMap, VecDeque};

/// Inline prediction hookup: per-job feature rows plus the provider that
/// turns them into RPVs. Rows align with the `jobs` slice by index; jobs
/// that already carry `predicted_rpv` are not re-predicted.
pub struct InlineRpv<'a> {
    /// One feature row per job (same order as the `jobs` slice).
    pub features: &'a [Vec<f64>],
    /// Predictor answering one batch per decision point.
    pub provider: &'a mut dyn RpvProvider,
}

/// Operational counters from one [`simulate_scale`] run. Schedule outputs
/// live in [`SimResult`]; these describe how the engine got there.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScaleStats {
    /// Events pushed into the calendar queue.
    pub events_enqueued: u64,
    /// Events popped from the calendar queue.
    pub events_dequeued: u64,
    /// Decision points answered by the blocked-pass snapshot (only the
    /// newly arrived window suffix was scanned).
    pub incremental_updates: u64,
    /// Decision points that ran a full scheduling pass.
    pub full_rescans: u64,
    /// EASY reservations computed (full passes only; snapshot hits reuse
    /// the stored reservation).
    pub reservations: u64,
    /// Backfill candidates examined.
    pub backfill_attempts: u64,
    /// Jobs started by backfilling past a blocked head.
    pub backfill_starts: u64,
    /// Inline prediction batches issued.
    pub predict_batches: u64,
    /// Feature rows predicted inline.
    pub predict_rows: u64,
    /// Wall-clock microseconds spent inside the provider (the serving
    /// latency term when the provider is federated).
    pub predict_us_total: u64,
}

/// Per-machine sorted completion profile: canonical `(end_time, job_id)`
/// order, maintained incrementally. [`EventKey`] already encodes exactly
/// that order (total_cmp time bits, then a u64 tie-break — here the job
/// id), so it doubles as the map key.
struct FreeSlotProfile {
    ends: [BTreeMap<EventKey, u32>; N_MACHINES],
}

impl FreeSlotProfile {
    fn new() -> Self {
        Self {
            ends: Default::default(),
        }
    }

    fn insert(&mut self, m: usize, end: f64, job_id: u64, nodes: u32) {
        self.ends[m].insert(EventKey::new(end, job_id), nodes);
    }

    fn remove(&mut self, m: usize, end: f64, job_id: u64) -> Result<(), MphpcError> {
        self.ends[m].remove(&EventKey::new(end, job_id)).ok_or_else(|| {
            MphpcError::InvariantViolation(format!(
                "free-slot profile: completing job {job_id} (end {end}) missing on machine {m}"
            ))
        })?;
        Ok(())
    }

    /// EASY reservation from the profile: identical semantics (and, since
    /// [`Cluster::reservation`] walks the same canonical order, identical
    /// *values*) to the reference engine's sort-per-call, but the sorted
    /// order is maintained rather than recomputed — the walk usually
    /// stops after a handful of entries.
    fn reservation(&self, cluster: &Cluster, m: usize, nodes: u32, now: f64) -> (f64, u32) {
        if cluster.can_start(m, nodes) {
            return (now, cluster.free_nodes(m) - nodes);
        }
        let mut avail = cluster.free_nodes(m);
        for (k, &freed) in &self.ends[m] {
            avail += freed;
            if avail >= nodes {
                return (k.time(), avail - nodes);
            }
        }
        (f64::INFINITY, 0)
    }

    /// Entries for machine `m` as `(end_time, job_id, nodes)` in profile
    /// order, for the auditor's consistency sweep.
    fn entries(&self, m: usize) -> impl Iterator<Item = (f64, u64, u32)> + '_ {
        self.ends[m].iter().map(|(k, &n)| (k.time(), k.seq, n))
    }
}

#[derive(Clone, Copy)]
enum Ev {
    Arrival(usize),
    Completion { machine: usize, job: usize },
}

/// Snapshot of a pass that ended with the head blocked: while no job
/// starts or completes, the reservation and every scanned candidate's
/// verdict remain valid, so later arrivals only need the unscanned
/// window suffix examined.
struct Blocked {
    head_idx: usize,
    machine: usize,
    shadow: f64,
    extra: u32,
    /// Candidates `1..scanned` are known to fail; scanning resumes here.
    scanned: usize,
}

/// How often (in event timestamps) the auditor cross-checks the free-slot
/// profile against the cluster when auditing is on. The check is
/// O(R log R) per machine — exhaustive per-timestamp verification would
/// dominate debug runs; sampling still catches any divergence quickly
/// because profile corruption persists once introduced.
const PROFILE_AUDIT_STRIDE: u64 = 64;

/// Run the scale engine over `jobs`: calendar-queue events, incremental
/// EASY backfill, optional inline batched RPV prediction.
///
/// Produces schedules bit-identical to [`crate::engine::simulate`] on the
/// same inputs (asserted by the cross-engine test suite), in
/// O(events × window) with O(log R) structure maintenance instead of the
/// reference engine's per-pass O(R log R) reservation sort.
pub fn simulate_scale(
    jobs: &[Job],
    strategy: &mut dyn MachineAssigner,
    config: &SimConfig,
    mut inline: Option<InlineRpv<'_>>,
) -> Result<(SimResult, ScaleStats), MphpcError> {
    for j in jobs {
        j.validate()?;
        if !(0..N_MACHINES).any(|m| j.nodes_required <= config.machines[m].total_nodes) {
            return Err(MphpcError::InvalidJob(format!(
                "job {} needs {} nodes and fits on no machine",
                j.id, j.nodes_required
            )));
        }
    }
    if let Some(inl) = &inline {
        if inl.features.len() != jobs.len() {
            return Err(MphpcError::Simulation(format!(
                "inline rpv: {} feature rows for {} jobs",
                inl.features.len(),
                jobs.len()
            )));
        }
    }
    let _sim_span = mphpc_telemetry::span!("sched.simulate_scale", jobs = jobs.len());
    let mut auditor = InvariantAuditor::new(config.audit || cfg!(debug_assertions));
    let mut stats = ScaleStats::default();

    // Local copy so inline predictions can be patched in as jobs arrive;
    // strategies then see exactly the jobs a precomputed run would.
    let mut jobs: Vec<Job> = jobs.to_vec();

    let mut cluster = Cluster::new(config.machines);
    let mut profile = FreeSlotProfile::new();
    let mut events: CalendarQueue<Ev> = CalendarQueue::new();
    let mut seq = 0u64;
    for (idx, job) in jobs.iter().enumerate() {
        events.push(EventKey::new(job.submit_time, seq), Ev::Arrival(idx));
        seq += 1;
        stats.events_enqueued += 1;
    }

    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut start_time = vec![f64::NAN; jobs.len()];
    let mut end_time = vec![f64::NAN; jobs.len()];
    let mut machine_of = vec![usize::MAX; jobs.len()];
    let mut jobs_per_machine = [0u64; N_MACHINES];
    let mut node_seconds = [0.0f64; N_MACHINES];
    let mut blocked: Option<Blocked> = None;
    let mut arrivals_this_ts: Vec<usize> = Vec::new();
    let mut rows_buf: Vec<&[f64]> = Vec::new();
    let mut pred_idx: Vec<usize> = Vec::new();
    let mut timestamps = 0u64;

    // One job start: cluster + profile + bookkeeping + completion event.
    // Starts invalidate the blocked-pass snapshot (cluster and strategy
    // state both change), which the caller does by construction: every
    // call site either holds `blocked == None` or clears it.
    macro_rules! start_job {
        ($idx:expr, $m:expr, $now:expr) => {{
            let idx = $idx;
            let m = $m;
            let now = $now;
            let job = &jobs[idx];
            let dur = job.runtime_on(m);
            auditor.observe_start(job.id, now)?;
            cluster.start(m, job.id, job.nodes_required, now + dur)?;
            profile.insert(m, now + dur, job.id, job.nodes_required);
            start_time[idx] = now;
            end_time[idx] = now + dur;
            machine_of[idx] = m;
            jobs_per_machine[m] += 1;
            node_seconds[m] += dur * job.nodes_required as f64;
            events.push(
                EventKey::new(now + dur, seq),
                Ev::Completion { machine: m, job: idx },
            );
            seq += 1;
            stats.events_enqueued += 1;
            strategy.notify_started(&jobs[idx], m);
        }};
    }

    while let Some(first) = events.peek_key() {
        let now = first.time();
        timestamps += 1;
        arrivals_this_ts.clear();
        // Apply every event at this timestamp before scheduling (same
        // IEEE `>` batching as the reference engine, so -0.0 and 0.0
        // coalesce identically).
        while let Some(k) = events.peek_key() {
            if k.time() > now {
                break;
            }
            let (k, ev) = events.pop().expect("peeked");
            stats.events_dequeued += 1;
            auditor.observe_calendar_dequeue(k.time(), k.seq)?;
            match ev {
                Ev::Arrival(idx) => {
                    queue.push_back(idx);
                    arrivals_this_ts.push(idx);
                }
                Ev::Completion { machine, job } => {
                    cluster.complete(machine, jobs[job].id)?;
                    profile.remove(machine, end_time[job], jobs[job].id)?;
                    // Cluster changed: every cached backfill verdict is
                    // stale.
                    blocked = None;
                }
            }
        }
        auditor.observe_event_time(now)?;

        // Inline prediction: one batch for everything arriving now.
        if let Some(inl) = &mut inline {
            rows_buf.clear();
            pred_idx.clear();
            for &idx in &arrivals_this_ts {
                if jobs[idx].predicted_rpv.is_none() {
                    rows_buf.push(inl.features[idx].as_slice());
                    pred_idx.push(idx);
                }
            }
            if !rows_buf.is_empty() {
                let t0 = std::time::Instant::now();
                let rpvs = inl.provider.predict(&rows_buf)?;
                let us = t0.elapsed().as_micros() as u64;
                stats.predict_batches += 1;
                stats.predict_rows += rows_buf.len() as u64;
                stats.predict_us_total += us;
                if mphpc_telemetry::enabled() {
                    mphpc_telemetry::histogram_record(
                        "sched.predict.lookup_us",
                        us as f64 / rows_buf.len() as f64,
                    );
                }
                if rpvs.len() != pred_idx.len() {
                    return Err(MphpcError::Simulation(format!(
                        "rpv provider returned {} predictions for {} rows",
                        rpvs.len(),
                        pred_idx.len()
                    )));
                }
                for (&idx, rpv) in pred_idx.iter().zip(&rpvs) {
                    jobs[idx].predicted_rpv = Some(*rpv);
                }
            }
        }

        // Incremental path: the head blocked earlier, nothing it saw has
        // changed — scan only the arrivals that extended the window.
        let mut handled_incrementally = false;
        if let Some(b) = blocked.take() {
            debug_assert_eq!(queue.front(), Some(&b.head_idx));
            let window = queue.len().min(1 + config.backfill_depth);
            let mut chosen: Option<(usize, usize, f64)> = None;
            for qi in b.scanned..window {
                stats.backfill_attempts += 1;
                let cand = &jobs[queue[qi]];
                let cm = strategy.choose(cand, &cluster);
                if !cluster.can_start(cm, cand.nodes_required) {
                    continue;
                }
                let dur = cand.runtime_on(cm);
                let uses_extra = cm == b.machine && now + dur > b.shadow;
                if uses_extra && cand.nodes_required > b.extra {
                    continue;
                }
                match config.backfill_order {
                    BackfillOrder::Fcfs => {
                        chosen = Some((qi, cm, dur));
                        break;
                    }
                    BackfillOrder::ShortestFirst => {
                        if chosen.map_or(true, |(_, _, best)| dur < best) {
                            chosen = Some((qi, cm, dur));
                        }
                    }
                }
            }
            match chosen {
                None => {
                    // Still blocked; remember how far we looked.
                    blocked = Some(Blocked {
                        scanned: window,
                        ..b
                    });
                    stats.incremental_updates += 1;
                    handled_incrementally = true;
                }
                Some((qi, cm, _)) => {
                    // A new arrival backfills. Starting it invalidates
                    // the snapshot; fall through to the full pass for
                    // the rest of this decision point.
                    stats.backfill_starts += 1;
                    let cand_idx = queue[qi];
                    queue.remove(qi);
                    start_job!(cand_idx, cm, now);
                }
            }
        }

        if !handled_incrementally {
            stats.full_rescans += 1;
            'pass: loop {
                let Some(&head_idx) = queue.front() else {
                    break;
                };
                let head = &jobs[head_idx];
                let m = strategy.choose(head, &cluster);
                if cluster.can_start(m, head.nodes_required) {
                    queue.pop_front();
                    start_job!(head_idx, m, now);
                    continue 'pass;
                }
                // Head blocks: reserve from the profile and backfill.
                // Semantics identical to the reference engine, including
                // the restart-after-every-start rule (see the stale
                // reservation note there).
                let (shadow, extra) = profile.reservation(&cluster, m, head.nodes_required, now);
                auditor.record_reservation(head.id, m, shadow);
                stats.reservations += 1;
                let window = queue.len().min(1 + config.backfill_depth);
                let mut chosen: Option<(usize, usize, f64)> = None;
                for qi in 1..window {
                    stats.backfill_attempts += 1;
                    let cand = &jobs[queue[qi]];
                    let cm = strategy.choose(cand, &cluster);
                    if !cluster.can_start(cm, cand.nodes_required) {
                        continue;
                    }
                    let dur = cand.runtime_on(cm);
                    let uses_extra = cm == m && now + dur > shadow;
                    if uses_extra && cand.nodes_required > extra {
                        continue;
                    }
                    match config.backfill_order {
                        BackfillOrder::Fcfs => {
                            chosen = Some((qi, cm, dur));
                            break;
                        }
                        BackfillOrder::ShortestFirst => {
                            if chosen.map_or(true, |(_, _, best)| dur < best) {
                                chosen = Some((qi, cm, dur));
                            }
                        }
                    }
                }
                let Some((qi, cm, _dur)) = chosen else {
                    blocked = Some(Blocked {
                        head_idx,
                        machine: m,
                        shadow,
                        extra,
                        scanned: window,
                    });
                    break 'pass;
                };
                stats.backfill_starts += 1;
                let cand_idx = queue[qi];
                queue.remove(qi);
                start_job!(cand_idx, cm, now);
            }
        }

        auditor.check_cluster(&cluster, now)?;
        if auditor.enabled() && timestamps % PROFILE_AUDIT_STRIDE == 0 {
            for m in 0..N_MACHINES {
                auditor.check_free_slot_profile(&cluster, m, profile.entries(m))?;
            }
        }
    }

    // Final exhaustive profile check: both structures must drain empty.
    if auditor.enabled() {
        for m in 0..N_MACHINES {
            auditor.check_free_slot_profile(&cluster, m, profile.entries(m))?;
        }
    }

    if mphpc_telemetry::enabled() {
        mphpc_telemetry::counter_add("sched.events.enqueued", stats.events_enqueued);
        mphpc_telemetry::counter_add("sched.events.dequeued", stats.events_dequeued);
        mphpc_telemetry::counter_add(
            "sched.backfill.incremental_updates",
            stats.incremental_updates,
        );
        mphpc_telemetry::counter_add("sched.backfill.full_rescans", stats.full_rescans);
        mphpc_telemetry::counter_add("sched.jobs", jobs.len() as u64);
        mphpc_telemetry::counter_add("sched.audit.checks_passed", auditor.checks_passed());
    }

    if let Some(idx) = (0..jobs.len()).find(|&i| end_time[i].is_nan()) {
        return Err(MphpcError::Simulation(format!(
            "job {} never completed",
            jobs[idx].id
        )));
    }

    let records: Vec<JobRecord> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| JobRecord {
            job_id: j.id,
            submit: j.submit_time,
            start: start_time[i],
            end: end_time[i],
            machine: machine_of[i],
        })
        .collect();

    Ok((
        SimResult {
            strategy: strategy.name(),
            makespan: makespan(&records),
            avg_bounded_slowdown: avg_bounded_slowdown(&records),
            jobs_per_machine,
            node_seconds_per_machine: node_seconds,
            records,
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::federation::FnRpvProvider;
    use crate::strategy::{ModelBased, Oracle, RandomAssign, RoundRobin, UserRoundRobin};
    use crate::workload::{sample_jobs, JobTemplate};

    fn small_config() -> SimConfig {
        let mut machines = crate::cluster::table1_cluster();
        for m in &mut machines {
            m.total_nodes = 3;
        }
        SimConfig {
            machines,
            backfill_depth: 16,
            backfill_order: Default::default(),
            audit: true,
        }
    }

    fn templates() -> Vec<JobTemplate> {
        vec![
            JobTemplate {
                nodes_required: 1,
                gpu_capable: false,
                runtimes: [10.0, 12.0, 14.0, 16.0],
                predicted_rpv: Some([1.0, 1.2, 1.4, 1.6]),
            },
            JobTemplate {
                nodes_required: 2,
                gpu_capable: true,
                runtimes: [30.0, 25.0, 12.0, 15.0],
                predicted_rpv: Some([2.5, 2.1, 1.0, 1.25]),
            },
            JobTemplate {
                nodes_required: 1,
                gpu_capable: true,
                runtimes: [45.0, 40.0, 20.0, 22.0],
                predicted_rpv: Some([2.3, 2.0, 1.0, 1.1]),
            },
        ]
    }

    fn strategies() -> Vec<Box<dyn MachineAssigner>> {
        vec![
            Box::new(RoundRobin::new()),
            Box::new(RandomAssign::new(11)),
            Box::new(UserRoundRobin::new()),
            Box::new(ModelBased::new()),
            Box::new(Oracle::new()),
        ]
    }

    #[test]
    fn matches_reference_engine_bitwise_across_strategies() {
        // Poisson arrivals → time actually advances, exercising both the
        // incremental path and full rescans.
        let jobs = sample_jobs(&templates(), 600, 0.15, 42).unwrap();
        let cfg = small_config();
        for (mut old_s, mut new_s) in strategies().into_iter().zip(strategies()) {
            let reference = simulate(&jobs, old_s.as_mut(), &cfg).unwrap();
            let (scale, stats) = simulate_scale(&jobs, new_s.as_mut(), &cfg, None).unwrap();
            assert_eq!(reference, scale, "strategy {}", scale.strategy);
            assert!(stats.events_dequeued == stats.events_enqueued);
            assert!(stats.full_rescans > 0);
        }
    }

    #[test]
    fn batch_submission_matches_reference_engine() {
        // Everything at t=0: the calendar queue's degenerate case, and
        // a single giant decision point.
        let jobs = sample_jobs(&templates(), 500, 0.0, 7).unwrap();
        let cfg = small_config();
        let mut a = ModelBased::new();
        let mut b = ModelBased::new();
        let reference = simulate(&jobs, &mut a, &cfg).unwrap();
        let (scale, _) = simulate_scale(&jobs, &mut b, &cfg, None).unwrap();
        assert_eq!(reference, scale);
    }

    #[test]
    fn incremental_path_used_and_identical() {
        // Arrivals far faster than service: heads block for long
        // stretches, so most arrival timestamps hit the snapshot.
        let jobs = sample_jobs(&templates(), 400, 1.0, 3).unwrap();
        let cfg = small_config();
        let mut a = Oracle::new();
        let mut b = Oracle::new();
        let reference = simulate(&jobs, &mut a, &cfg).unwrap();
        let (scale, stats) = simulate_scale(&jobs, &mut b, &cfg, None).unwrap();
        assert_eq!(reference, scale);
        assert!(
            stats.incremental_updates > 0,
            "congested trickle must hit the snapshot path: {stats:?}"
        );
    }

    #[test]
    fn inline_prediction_equals_precomputed() {
        // A deterministic fake predictor: rpv derived from the feature
        // row. Precomputing through it and predicting inline through it
        // must give identical schedules AND identical predictions.
        let predict_row = |row: &[f64]| -> [f64; N_MACHINES] {
            [
                1.0 + row[0] * 0.125,
                1.0 + row[1] * 0.25,
                1.0 + row[2] * 0.0625,
                1.5,
            ]
        };
        let mut jobs = sample_jobs(&templates(), 300, 0.1, 9).unwrap();
        // Quantise submissions onto a 30 s grid so several jobs share
        // each arrival instant — that's what makes batching observable.
        for j in &mut jobs {
            j.submit_time = (j.submit_time / 30.0).floor() * 30.0;
        }
        let features: Vec<Vec<f64>> = jobs
            .iter()
            .map(|j| vec![j.id as f64 % 7.0, j.nodes_required as f64, j.runtimes[0] % 5.0])
            .collect();
        // Precomputed run: patch rpvs up front.
        let mut pre = jobs.clone();
        for (j, f) in pre.iter_mut().zip(&features) {
            j.predicted_rpv = Some(predict_row(f));
        }
        let cfg = small_config();
        let mut s1 = ModelBased::new();
        let reference = simulate(&pre, &mut s1, &cfg).unwrap();
        // Inline run: strip rpvs, let the engine batch-predict.
        for j in &mut jobs {
            j.predicted_rpv = None;
        }
        let mut provider = FnRpvProvider::new("fake", |rows: &[&[f64]]| {
            Ok(rows.iter().map(|r| predict_row(r)).collect())
        });
        let mut s2 = ModelBased::new();
        let (scale, stats) = simulate_scale(
            &jobs,
            &mut s2,
            &cfg,
            Some(InlineRpv {
                features: &features,
                provider: &mut provider,
            }),
        )
        .unwrap();
        assert_eq!(reference, scale);
        assert_eq!(stats.predict_rows, jobs.len() as u64);
        assert!(stats.predict_batches > 0);
        assert!(
            stats.predict_batches < jobs.len() as u64,
            "arrivals sharing a timestamp must share a batch"
        );
    }

    #[test]
    fn rejects_mismatched_features() {
        let jobs = sample_jobs(&templates(), 10, 0.0, 1).unwrap();
        let features: Vec<Vec<f64>> = vec![vec![0.0]; 9];
        let mut provider = FnRpvProvider::new("fake", |rows: &[&[f64]]| {
            Ok(vec![[1.0; N_MACHINES]; rows.len()])
        });
        let mut s = ModelBased::new();
        let err = simulate_scale(
            &jobs,
            &mut s,
            &small_config(),
            Some(InlineRpv {
                features: &features,
                provider: &mut provider,
            }),
        )
        .unwrap_err();
        assert!(err.to_string().contains("feature rows"), "{err}");
    }

    #[test]
    fn sjf_order_also_matches_reference() {
        let mut cfg = small_config();
        cfg.backfill_order = BackfillOrder::ShortestFirst;
        let jobs = sample_jobs(&templates(), 400, 0.05, 21).unwrap();
        let mut a = UserRoundRobin::new();
        let mut b = UserRoundRobin::new();
        let reference = simulate(&jobs, &mut a, &cfg).unwrap();
        let (scale, _) = simulate_scale(&jobs, &mut b, &cfg, None).unwrap();
        assert_eq!(reference, scale);
    }

    #[test]
    fn empty_and_single_job() {
        let cfg = small_config();
        let mut s = RoundRobin::new();
        let (r, stats) = simulate_scale(&[], &mut s, &cfg, None).unwrap();
        assert!(r.records.is_empty());
        assert_eq!(stats.events_enqueued, 0);
        let jobs = sample_jobs(&templates(), 1, 0.0, 5).unwrap();
        let mut s = RoundRobin::new();
        let (r, _) = simulate_scale(&jobs, &mut s, &cfg, None).unwrap();
        assert_eq!(r.records.len(), 1);
    }
}
