//! Machine-assignment strategies: implementations of the paper's
//! `Machine(j, i, M)` function (Algorithms 1–2).

use crate::cluster::Cluster;
use crate::job::{Job, N_MACHINES};
use mphpc_archsim::noise::derive_seed;

/// A machine-assignment policy. `choose` must be side-effect free with
/// respect to queue scanning (it may be called for jobs that do not start);
/// stateful policies advance their counters in `notify_started`, matching
/// Algorithm 1 where `i` increments per `Start`.
pub trait MachineAssigner {
    /// Pick a machine (Table-I index) for `job` given current cluster
    /// state.
    fn choose(&mut self, job: &Job, cluster: &Cluster) -> usize;
    /// Observe that `job` started on `machine`.
    fn notify_started(&mut self, _job: &Job, _machine: usize) {}
    /// Display name (figure labels).
    fn name(&self) -> &'static str;
}

/// Rotate over all machines, advancing per started job.
#[derive(Debug, Default)]
pub struct RoundRobin {
    counter: usize,
}

impl RoundRobin {
    /// Fresh rotation starting at machine 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MachineAssigner for RoundRobin {
    fn choose(&mut self, job: &Job, cluster: &Cluster) -> usize {
        // Skip machines that could never run the job.
        for off in 0..N_MACHINES {
            let m = (self.counter + off) % N_MACHINES;
            if cluster.can_ever_run(m, job.nodes_required) {
                return m;
            }
        }
        self.counter % N_MACHINES
    }

    fn notify_started(&mut self, _job: &Job, _machine: usize) {
        self.counter = (self.counter + 1) % N_MACHINES;
    }

    fn name(&self) -> &'static str {
        "Round-Robin"
    }
}

/// Uniform random machine, deterministic per (seed, job id).
#[derive(Debug)]
pub struct RandomAssign {
    seed: u64,
}

impl RandomAssign {
    /// Seeded random assigner.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl MachineAssigner for RandomAssign {
    fn choose(&mut self, job: &Job, cluster: &Cluster) -> usize {
        let draw = derive_seed(self.seed, &[job.id]) as usize % N_MACHINES;
        for off in 0..N_MACHINES {
            let m = (draw + off) % N_MACHINES;
            if cluster.can_ever_run(m, job.nodes_required) {
                return m;
            }
        }
        draw
    }

    fn name(&self) -> &'static str {
        "Random"
    }
}

/// "Typical user behaviour" (§VII): GPU-enabled applications round-robin
/// over the GPU systems, CPU-only applications over the CPU systems.
#[derive(Debug, Default)]
pub struct UserRoundRobin {
    gpu_counter: usize,
    cpu_counter: usize,
}

impl UserRoundRobin {
    /// Fresh strategy.
    pub fn new() -> Self {
        Self::default()
    }

    fn group(cluster: &Cluster, gpu: bool) -> Vec<usize> {
        (0..N_MACHINES)
            .filter(|&m| cluster.configs()[m].has_gpu == gpu)
            .collect()
    }
}

impl MachineAssigner for UserRoundRobin {
    fn choose(&mut self, job: &Job, cluster: &Cluster) -> usize {
        let group = Self::group(cluster, job.gpu_capable);
        let counter = if job.gpu_capable {
            self.gpu_counter
        } else {
            self.cpu_counter
        };
        for off in 0..group.len() {
            let m = group[(counter + off) % group.len()];
            if cluster.can_ever_run(m, job.nodes_required) {
                return m;
            }
        }
        group[counter % group.len()]
    }

    fn notify_started(&mut self, job: &Job, _machine: usize) {
        if job.gpu_capable {
            self.gpu_counter += 1;
        } else {
            self.cpu_counter += 1;
        }
    }

    fn name(&self) -> &'static str {
        "User+RR"
    }
}

/// Algorithm 2: consult the model's predicted RPV and pick the fastest
/// machine with capacity free *now*; if every machine is full, reserve on
/// the overall-fastest one.
///
/// Note on the paper's pseudocode: Algorithm 2 writes `argmax rpv`, but
/// with RPVs defined as relative *runtimes* (the §IV example) the fastest
/// machine is the `argmin`; we implement the argmin, which is what makes
/// the strategy beneficial.
#[derive(Debug, Default)]
pub struct ModelBased;

impl ModelBased {
    /// Fresh strategy.
    pub fn new() -> Self {
        Self
    }

    fn pick(scores: &[f64; N_MACHINES], job: &Job, cluster: &Cluster) -> usize {
        let feasible = |m: usize| cluster.can_ever_run(m, job.nodes_required);
        // Fastest machine with capacity free right now.
        let mut best_now: Option<usize> = None;
        let mut best_any: Option<usize> = None;
        for m in 0..N_MACHINES {
            if !feasible(m) {
                continue;
            }
            if best_any.map_or(true, |b| scores[m] < scores[b]) {
                best_any = Some(m);
            }
            if cluster.can_start(m, job.nodes_required)
                && best_now.map_or(true, |b| scores[m] < scores[b])
            {
                best_now = Some(m);
            }
        }
        best_now.or(best_any).unwrap_or(0)
    }
}

impl MachineAssigner for ModelBased {
    fn choose(&mut self, job: &Job, cluster: &Cluster) -> usize {
        match &job.predicted_rpv {
            Some(rpv) => Self::pick(rpv, job, cluster),
            // No prediction available: behave like the true-runtime oracle
            // would be cheating, so fall back to machine 0 ordering.
            None => (0..N_MACHINES)
                .find(|&m| cluster.can_ever_run(m, job.nodes_required))
                .unwrap_or(0),
        }
    }

    fn name(&self) -> &'static str {
        "Model-based"
    }
}

/// Like [`ModelBased`] but consulting the *true* runtimes — the
/// perfect-information upper bound.
#[derive(Debug, Default)]
pub struct Oracle;

impl Oracle {
    /// Fresh strategy.
    pub fn new() -> Self {
        Self
    }
}

impl MachineAssigner for Oracle {
    fn choose(&mut self, job: &Job, cluster: &Cluster) -> usize {
        ModelBased::pick(&job.runtimes, job, cluster)
    }

    fn name(&self) -> &'static str {
        "Oracle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::table1_cluster;

    fn job(id: u64, gpu: bool) -> Job {
        Job {
            id,
            submit_time: 0.0,
            nodes_required: 1,
            gpu_capable: gpu,
            runtimes: [4.0, 2.0, 1.0, 3.0],
            predicted_rpv: Some([4.0, 2.0, 1.0, 3.0]),
        }
    }

    #[test]
    fn round_robin_rotates_on_start_only() {
        let cluster = Cluster::new(table1_cluster());
        let mut rr = RoundRobin::new();
        let j = job(1, false);
        assert_eq!(rr.choose(&j, &cluster), 0);
        assert_eq!(rr.choose(&j, &cluster), 0, "no start, no advance");
        rr.notify_started(&j, 0);
        assert_eq!(rr.choose(&j, &cluster), 1);
    }

    #[test]
    fn random_is_deterministic_per_job() {
        let cluster = Cluster::new(table1_cluster());
        let mut r = RandomAssign::new(7);
        let a = r.choose(&job(1, false), &cluster);
        assert_eq!(a, r.choose(&job(1, false), &cluster));
        // Across many jobs, all machines get used.
        let used: std::collections::HashSet<usize> = (0..100)
            .map(|i| r.choose(&job(i, false), &cluster))
            .collect();
        assert_eq!(used.len(), 4);
    }

    #[test]
    fn user_rr_respects_gpu_capability() {
        let cluster = Cluster::new(table1_cluster());
        let mut u = UserRoundRobin::new();
        for i in 0..10 {
            let g = u.choose(&job(i, true), &cluster);
            assert!(cluster.configs()[g].has_gpu, "GPU job on GPU machine");
            let c = u.choose(&job(i, false), &cluster);
            assert!(!cluster.configs()[c].has_gpu, "CPU job on CPU machine");
            u.notify_started(&job(i, true), g);
            u.notify_started(&job(i, false), c);
        }
    }

    #[test]
    fn user_rr_alternates_within_group() {
        let cluster = Cluster::new(table1_cluster());
        let mut u = UserRoundRobin::new();
        let first = u.choose(&job(0, true), &cluster);
        u.notify_started(&job(0, true), first);
        let second = u.choose(&job(1, true), &cluster);
        assert_ne!(first, second, "two GPU machines alternate");
    }

    #[test]
    fn model_based_picks_predicted_fastest() {
        let cluster = Cluster::new(table1_cluster());
        let mut m = ModelBased::new();
        assert_eq!(m.choose(&job(1, false), &cluster), 2, "lowest rpv wins");
    }

    #[test]
    fn model_based_falls_back_when_fastest_full() {
        let mut cluster = Cluster::new(table1_cluster());
        // Fill Lassen (795 nodes).
        cluster.start(2, 99, 795, 100.0).unwrap();
        let mut m = ModelBased::new();
        assert_eq!(
            m.choose(&job(1, false), &cluster),
            1,
            "next-fastest with free nodes"
        );
    }

    #[test]
    fn model_based_reserves_on_fastest_when_all_full() {
        let mut cluster = Cluster::new(table1_cluster());
        for (m, cfg) in table1_cluster().iter().enumerate() {
            cluster
                .start(m, 90 + m as u64, cfg.total_nodes, 100.0)
                .unwrap();
        }
        let mut m = ModelBased::new();
        assert_eq!(m.choose(&job(1, false), &cluster), 2, "reserve on fastest");
    }

    #[test]
    fn oracle_uses_true_runtimes() {
        let cluster = Cluster::new(table1_cluster());
        let mut o = Oracle::new();
        let mut j = job(1, false);
        j.predicted_rpv = Some([1.0, 9.0, 9.0, 9.0]); // wrong prediction
        assert_eq!(o.choose(&j, &cluster), 2, "oracle ignores predictions");
    }
}
