//! The discrete-event FCFS + EASY-backfilling engine (Algorithm 1).
//!
//! Events are job arrivals and completions. At every event the scheduler
//! runs a pass: start queue heads while they fit on their assigned
//! machines; once the head blocks, reserve it (shadow time + extra nodes on
//! its machine) and backfill later jobs that cannot delay the reservation.
//! Backfill candidates on *other* machines can never delay the head, so
//! they only need free capacity; candidates on the head's machine must
//! finish before the shadow time or fit in the extra nodes.
//!
//! This is the *reference* engine: a binary heap for events and a full
//! reservation recomputation per blocked pass, kept deliberately simple
//! as the semantic baseline. Its only O(n) removal — `VecDeque::remove`
//! when a backfill candidate leaves the middle of the queue — is bounded
//! by `backfill_depth` (128 by default), not by queue length, so it does
//! not grow with workload size; the once-O(n) completion scan in
//! [`Cluster::complete`] is now an O(1) slot-map lookup shared with the
//! scale engine. For million-job workloads use [`crate::backfill`]'s
//! [`crate::simulate_scale`]: calendar-queue events and incremental EASY,
//! bit-identical schedules (see `benches/event_queue.rs` for the queue
//! crossover numbers).

use crate::audit::InvariantAuditor;
use crate::cluster::{Cluster, MachineConfig};
use crate::job::{Job, N_MACHINES};
use crate::metrics::{avg_bounded_slowdown, makespan, JobRecord};
use crate::strategy::MachineAssigner;
use mphpc_errors::MphpcError;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Machines in the pool.
    pub machines: [MachineConfig; N_MACHINES],
    /// How many queued jobs beyond the head each pass may examine for
    /// backfilling (production schedulers bound this; it also bounds the
    /// simulation's worst case to O(events × depth)).
    pub backfill_depth: usize,
    /// Order in which backfill candidates are tried (Algorithm 1's `R2`
    /// policy; the paper uses FCFS).
    pub backfill_order: BackfillOrder,
    /// Force the [`crate::audit::InvariantAuditor`] on even in release
    /// builds. Debug builds (and release builds compiled with
    /// `-C debug-assertions`) always audit.
    pub audit: bool,
}

/// Backfill candidate ordering (Algorithm 1's `R2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackfillOrder {
    /// Queue order (the paper's choice).
    #[default]
    Fcfs,
    /// Shortest estimated runtime first — the classic EASY-SJF variant,
    /// provided as an extension for scheduling ablations.
    ShortestFirst,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            machines: crate::cluster::table1_cluster(),
            backfill_depth: 128,
            backfill_order: BackfillOrder::Fcfs,
            audit: false,
        }
    }
}

/// Aggregate results of one simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Strategy display name.
    pub strategy: &'static str,
    /// Total time from first submission to last completion (seconds).
    pub makespan: f64,
    /// Average bounded slowdown over all jobs.
    pub avg_bounded_slowdown: f64,
    /// Jobs started on each machine.
    pub jobs_per_machine: [u64; N_MACHINES],
    /// Node-seconds of work executed on each machine.
    pub node_seconds_per_machine: [f64; N_MACHINES],
    /// Per-job records (submit/start/end).
    pub records: Vec<JobRecord>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    Arrival(usize),
    Completion { machine: usize, job: usize },
}

/// Totally ordered event key: (time, tiebreak sequence).
#[derive(Debug, Clone, Copy, PartialEq)]
struct EventKey(f64, u64);

impl Eq for EventKey {}
impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// Run the simulation of `jobs` under `strategy`.
///
/// Jobs may arrive in any order; the queue is FCFS by submit time (ties by
/// id). Invalid jobs are rejected up front as
/// [`MphpcError::InvalidJob`]; internal bookkeeping bugs surface as
/// [`MphpcError::InvariantViolation`] (see [`crate::audit`]) instead of
/// panicking.
pub fn simulate(
    jobs: &[Job],
    strategy: &mut dyn MachineAssigner,
    config: &SimConfig,
) -> Result<SimResult, MphpcError> {
    simulate_with_deps(jobs, &[], strategy, config)
}

/// [`simulate`] with job dependencies: `deps[i]` lists the indices of jobs
/// that must complete before job `i` becomes eligible (its effective
/// submit time is then the max of its own submit time and its last
/// dependency's completion). An empty `deps` slice means no dependencies.
/// Dependent jobs join the same global queue and contend for the same
/// nodes as everything else — this is the substrate for workflow (DAG)
/// scheduling in [`crate::dag`].
pub fn simulate_with_deps(
    jobs: &[Job],
    deps: &[Vec<usize>],
    strategy: &mut dyn MachineAssigner,
    config: &SimConfig,
) -> Result<SimResult, MphpcError> {
    for j in jobs {
        j.validate()?;
        if !(0..N_MACHINES).any(|m| j.nodes_required <= config.machines[m].total_nodes) {
            return Err(MphpcError::InvalidJob(format!(
                "job {} needs {} nodes and fits on no machine",
                j.id, j.nodes_required
            )));
        }
    }
    if !deps.is_empty() && deps.len() != jobs.len() {
        return Err(MphpcError::Simulation(format!(
            "deps length {} does not match {} jobs",
            deps.len(),
            jobs.len()
        )));
    }
    for (i, d) in deps.iter().enumerate() {
        if let Some(&bad) = d.iter().find(|&&j| j >= jobs.len()) {
            return Err(MphpcError::Simulation(format!(
                "job {i} depends on out-of-range index {bad}"
            )));
        }
        if d.contains(&i) {
            return Err(MphpcError::Simulation(format!("job {i} depends on itself")));
        }
    }
    let _sim_span = mphpc_telemetry::span!("sched.simulate", jobs = jobs.len());
    let mut auditor = InvariantAuditor::new(config.audit || cfg!(debug_assertions));
    // Telemetry counters accumulate in locals and flush once at the end:
    // the event loop is the simulator's hot path and must not touch the
    // global metric registry per event.
    let mut n_events = 0u64;
    let mut n_reservations = 0u64;
    let mut n_backfill_attempts = 0u64;
    let mut n_backfill_starts = 0u64;

    // Dependency bookkeeping: dependents[c] lists jobs unblocked by c's
    // completion; jobs with open dependencies arrive only once released.
    let mut remaining_deps: Vec<usize> = (0..jobs.len())
        .map(|i| deps.get(i).map_or(0, Vec::len))
        .collect();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); jobs.len()];
    for (i, d) in deps.iter().enumerate() {
        for &c in d {
            dependents[c].push(i);
        }
    }

    let mut cluster = Cluster::new(config.machines);
    let mut events: BinaryHeap<Reverse<(EventKey, Event)>> = BinaryHeap::new();
    // Monotonic tie-break for simultaneous events, shared by the start-job
    // closure and the completion handler.
    let seq = std::cell::Cell::new(0u64);
    let next_seq = || {
        let v = seq.get();
        seq.set(v + 1);
        v
    };
    for (idx, job) in jobs.iter().enumerate() {
        if remaining_deps[idx] == 0 {
            events.push(Reverse((
                EventKey(job.submit_time, next_seq()),
                Event::Arrival(idx),
            )));
        }
    }

    // Queue holds job indices, FCFS order (arrival events come in submit
    // order, so push_back maintains it).
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut start_time = vec![f64::NAN; jobs.len()];
    let mut end_time = vec![f64::NAN; jobs.len()];
    let mut machine_of = vec![usize::MAX; jobs.len()];
    let mut jobs_per_machine = [0u64; N_MACHINES];
    let mut node_seconds = [0.0f64; N_MACHINES];

    let mut start_job = |cluster: &mut Cluster,
                         events: &mut BinaryHeap<Reverse<(EventKey, Event)>>,
                         strategy: &mut dyn MachineAssigner,
                         auditor: &mut InvariantAuditor,
                         idx: usize,
                         m: usize,
                         now: f64|
     -> Result<(), MphpcError> {
        let job = &jobs[idx];
        let dur = job.runtime_on(m);
        auditor.observe_start(job.id, now)?;
        cluster.start(m, job.id, job.nodes_required, now + dur)?;
        start_time[idx] = now;
        end_time[idx] = now + dur;
        machine_of[idx] = m;
        jobs_per_machine[m] += 1;
        node_seconds[m] += dur * job.nodes_required as f64;
        events.push(Reverse((
            EventKey(now + dur, next_seq()),
            Event::Completion {
                machine: m,
                job: idx,
            },
        )));
        strategy.notify_started(job, m);
        Ok(())
    };

    #[allow(clippy::while_let_loop)]
    while let Some(&Reverse((EventKey(now, _), _))) = events.peek() {
        // Apply every event at this timestamp before scheduling.
        while let Some(&Reverse((EventKey(t, _), ev))) = events.peek() {
            if t > now {
                break;
            }
            events.pop();
            n_events += 1;
            match ev {
                Event::Arrival(idx) => queue.push_back(idx),
                Event::Completion { machine, job } => {
                    cluster.complete(machine, jobs[job].id)?;
                    // Release dependents whose last dependency just ended.
                    for &d in &dependents[job] {
                        remaining_deps[d] -= 1;
                        if remaining_deps[d] == 0 {
                            let at = jobs[d].submit_time.max(now);
                            events.push(Reverse((EventKey(at, next_seq()), Event::Arrival(d))));
                        }
                    }
                }
            }
        }
        auditor.observe_event_time(now)?;

        // Scheduling pass.
        'pass: loop {
            let Some(&head_idx) = queue.front() else {
                break;
            };
            let head = &jobs[head_idx];
            let m = strategy.choose(head, &cluster);
            if cluster.can_start(m, head.nodes_required) {
                queue.pop_front();
                start_job(
                    &mut cluster,
                    &mut events,
                    strategy,
                    &mut auditor,
                    head_idx,
                    m,
                    now,
                )?;
                continue 'pass;
            }
            // Head blocks: reserve and backfill (EASY). Candidates are
            // tried in R2 order. After each successful backfill the whole
            // pass restarts: the start may have advanced a stateful
            // strategy's counters (moving the head to a different
            // machine) and changed cluster state, so the reservation is
            // recomputed from scratch rather than reused stale — a stale
            // (shadow, extra) pair lets later candidates slip past a
            // reservation that no longer describes the head's machine,
            // delaying the head indefinitely.
            let (shadow, extra) = cluster.reservation(m, head.nodes_required, now);
            auditor.record_reservation(head.id, m, shadow);
            n_reservations += 1;
            let window = queue.len().min(1 + config.backfill_depth);
            // Pick the first (FCFS) or shortest (SJF) startable candidate
            // in the window that cannot delay the reservation: on another
            // machine free capacity suffices; on the head's machine it
            // must finish by the shadow time or fit in the extra nodes.
            let mut chosen: Option<(usize, usize, f64)> = None;
            #[allow(clippy::needless_range_loop)]
            for qi in 1..window {
                n_backfill_attempts += 1;
                let cand_idx = queue[qi];
                let cand = &jobs[cand_idx];
                let cm = strategy.choose(cand, &cluster);
                if !cluster.can_start(cm, cand.nodes_required) {
                    continue;
                }
                let dur = cand.runtime_on(cm);
                let uses_extra = cm == m && now + dur > shadow;
                if uses_extra && cand.nodes_required > extra {
                    continue;
                }
                match config.backfill_order {
                    BackfillOrder::Fcfs => {
                        chosen = Some((qi, cm, dur));
                        break;
                    }
                    BackfillOrder::ShortestFirst => {
                        if chosen.map_or(true, |(_, _, best)| dur < best) {
                            chosen = Some((qi, cm, dur));
                        }
                    }
                }
            }
            let Some((qi, cm, _dur)) = chosen else {
                break 'pass;
            };
            n_backfill_starts += 1;
            let cand_idx = queue[qi];
            queue.remove(qi);
            start_job(
                &mut cluster,
                &mut events,
                strategy,
                &mut auditor,
                cand_idx,
                cm,
                now,
            )?;
        }
        auditor.check_cluster(&cluster, now)?;
    }

    if mphpc_telemetry::enabled() {
        mphpc_telemetry::counter_add("sched.events", n_events);
        mphpc_telemetry::counter_add("sched.jobs", jobs.len() as u64);
        mphpc_telemetry::counter_add("sched.reservations", n_reservations);
        mphpc_telemetry::counter_add("sched.backfill.attempts", n_backfill_attempts);
        mphpc_telemetry::counter_add("sched.backfill.starts", n_backfill_starts);
        mphpc_telemetry::counter_add("sched.audit.checks_passed", auditor.checks_passed());
    }

    if let Some(idx) = (0..jobs.len()).find(|&i| end_time[i].is_nan()) {
        return Err(MphpcError::Simulation(format!(
            "job {} never completed (unsatisfiable or cyclic dependencies?)",
            jobs[idx].id
        )));
    }

    let records: Vec<JobRecord> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| JobRecord {
            job_id: j.id,
            submit: j.submit_time,
            start: start_time[i],
            end: end_time[i],
            machine: machine_of[i],
        })
        .collect();

    Ok(SimResult {
        strategy: strategy.name(),
        makespan: makespan(&records),
        avg_bounded_slowdown: avg_bounded_slowdown(&records),
        jobs_per_machine,
        node_seconds_per_machine: node_seconds,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{ModelBased, Oracle, RoundRobin, UserRoundRobin};

    fn small_config() -> SimConfig {
        let mut machines = crate::cluster::table1_cluster();
        for m in &mut machines {
            m.total_nodes = 2;
        }
        SimConfig {
            machines,
            backfill_depth: 16,
            backfill_order: Default::default(),
            audit: true,
        }
    }

    fn job(id: u64, submit: f64, nodes: u32, runtimes: [f64; 4]) -> Job {
        Job {
            id,
            submit_time: submit,
            nodes_required: nodes,
            gpu_capable: false,
            runtimes,
            predicted_rpv: Some(runtimes),
        }
    }

    #[test]
    fn single_job_runs_immediately() {
        let jobs = vec![job(1, 0.0, 1, [5.0, 5.0, 5.0, 5.0])];
        let mut s = RoundRobin::new();
        let r = simulate(&jobs, &mut s, &small_config()).unwrap();
        assert_eq!(r.makespan, 5.0);
        assert_eq!(r.avg_bounded_slowdown, 1.0);
        assert_eq!(r.jobs_per_machine.iter().sum::<u64>(), 1);
    }

    #[test]
    fn oracle_places_on_fastest() {
        let jobs = vec![job(1, 0.0, 1, [10.0, 2.0, 30.0, 40.0])];
        let mut s = Oracle::new();
        let r = simulate(&jobs, &mut s, &small_config()).unwrap();
        assert_eq!(r.makespan, 2.0);
        assert_eq!(r.jobs_per_machine[1], 1);
    }

    #[test]
    fn model_based_follows_predictions_even_when_wrong() {
        let mut j = job(1, 0.0, 1, [10.0, 2.0, 30.0, 40.0]);
        j.predicted_rpv = Some([1.0, 5.0, 5.0, 5.0]); // wrongly prefers m0
        let mut s = ModelBased::new();
        let r = simulate(&[j], &mut s, &small_config()).unwrap();
        assert_eq!(r.jobs_per_machine[0], 1);
        assert_eq!(r.makespan, 10.0, "pays the true runtime on the wrong pick");
    }

    #[test]
    fn queueing_when_machine_full() {
        // Two 2-node jobs on the same machine: second must wait.
        let jobs = vec![
            job(1, 0.0, 2, [10.0, 10.0, 10.0, 10.0]),
            job(2, 0.0, 2, [10.0, 10.0, 10.0, 10.0]),
        ];
        let mut s = Oracle::new();
        let r = simulate(&jobs, &mut s, &small_config()).unwrap();
        // Oracle fallback sends the second to another machine (all equal
        // speed, first free one wins): both finish at 10.
        assert_eq!(r.makespan, 10.0);
    }

    #[test]
    fn backfill_small_job_does_not_delay_head() {
        // Machine 0 only (make the others unusable by requiring 2 nodes
        // and shrinking them).
        let mut machines = crate::cluster::table1_cluster();
        machines[0].total_nodes = 3;
        for m in &mut machines[1..] {
            m.total_nodes = 0;
        }
        let cfg = SimConfig {
            machines,
            backfill_depth: 16,
            backfill_order: Default::default(),
            audit: true,
        };
        let jobs = vec![
            job(1, 0.0, 2, [10.0; 4]), // running 0..10, leaves 1 node free
            job(2, 1.0, 3, [10.0; 4]), // head, must wait until 10
            job(3, 2.0, 1, [5.0; 4]),  // ends 7 <= shadow 10: backfills
            job(4, 2.0, 1, [20.0; 4]), // ends 22 > 10 and extra = 0: no backfill
        ];
        let mut s = RoundRobin::new();
        let r = simulate(&jobs, &mut s, &cfg).unwrap();
        let rec = |id: u64| r.records.iter().find(|x| x.job_id == id).unwrap();
        assert_eq!(rec(2).start, 10.0, "head starts exactly at shadow time");
        assert_eq!(rec(3).start, 2.0, "short job backfills");
        assert!(rec(4).start >= 10.0, "long job cannot backfill");
    }

    #[test]
    fn sjf_backfill_prefers_short_jobs() {
        // One 3-node machine; a 2-node job runs 0..10 leaving 1 node; the
        // 3-node head must wait. Two 1-node backfill candidates fit the
        // shadow window, but only one can hold the single free node at a
        // time: FCFS picks the earlier (long) one first, SJF the shorter.
        let mut machines = crate::cluster::table1_cluster();
        machines[0].total_nodes = 3;
        for m in &mut machines[1..] {
            m.total_nodes = 0;
        }
        let jobs = vec![
            job(1, 0.0, 2, [10.0; 4]),
            job(2, 1.0, 3, [10.0; 4]), // head, reserved at t=10
            job(3, 2.0, 1, [8.0; 4]),  // earlier, longer (ends 10 <= shadow)
            job(4, 2.0, 1, [2.0; 4]),  // later, shorter
        ];
        let fcfs = SimConfig {
            machines,
            backfill_depth: 16,
            backfill_order: BackfillOrder::Fcfs,
            audit: true,
        };
        let sjf = SimConfig {
            machines,
            backfill_depth: 16,
            backfill_order: BackfillOrder::ShortestFirst,
            audit: true,
        };
        let mut s1 = RoundRobin::new();
        let r_fcfs = simulate(&jobs, &mut s1, &fcfs).unwrap();
        let mut s2 = RoundRobin::new();
        let r_sjf = simulate(&jobs, &mut s2, &sjf).unwrap();
        let start =
            |r: &SimResult, id: u64| r.records.iter().find(|x| x.job_id == id).unwrap().start;
        assert_eq!(start(&r_fcfs, 3), 2.0, "FCFS backfills the earlier job");
        assert!(start(&r_fcfs, 4) > 2.0);
        assert_eq!(start(&r_sjf, 4), 2.0, "SJF backfills the shorter job");
        assert!(start(&r_sjf, 3) > 2.0);
    }

    #[test]
    fn stale_reservation_regression() {
        // Regression for the stale EASY reservation bug: the engine used
        // to compute the head's (machine, shadow, extra) once per pass
        // and keep backfilling against it, even though each backfill
        // start advances a stateful strategy's counters and moves the
        // head's machine choice. A long candidate could then land on the
        // machine the head would actually be assigned to, without being
        // subject to its reservation, and delay the head indefinitely.
        //
        // Scenario (UserRoundRobin over CPU machines quartz=3 nodes and
        // ruby=2 nodes; all jobs CPU-only, runtimes identical across
        // machines):
        //   t=0  job1 (2 nodes, 10s) -> quartz; job2 (1 node, 10s) -> ruby
        //   t=1  job3 = HEAD (2 nodes, 5s) blocks; job4 (1 node, 2s)
        //        backfills on quartz. The counter now points at ruby.
        //        Stale engine: job5 (1 node, 100s) is then checked against
        //        quartz's reservation, lands on ruby unconstrained, and
        //        the head — whose choice moved to ruby — waits for it
        //        until t=101.
        //   Fixed engine: the reservation is recomputed after job4
        //        starts; job5 cannot delay the head and the head starts
        //        exactly at the promised shadow time t=10.
        let mut machines = crate::cluster::table1_cluster();
        machines[0].total_nodes = 3; // quartz (CPU)
        machines[1].total_nodes = 2; // ruby (CPU)
        machines[2].total_nodes = 0; // lassen (GPU) unusable
        machines[3].total_nodes = 0; // corona (GPU) unusable
        let cfg = SimConfig {
            machines,
            backfill_depth: 16,
            backfill_order: BackfillOrder::Fcfs,
            audit: true,
        };
        let jobs = vec![
            job(1, 0.0, 2, [10.0; 4]),
            job(2, 0.0, 1, [10.0; 4]),
            job(3, 1.0, 2, [5.0; 4]), // the head the stale engine starves
            job(4, 1.0, 1, [2.0; 4]),
            job(5, 1.0, 1, [100.0; 4]),
            job(6, 5.0, 1, [1.0; 4]),
        ];
        let mut s = UserRoundRobin::new();
        let r = simulate(&jobs, &mut s, &cfg).unwrap();
        let rec = |id: u64| r.records.iter().find(|x| x.job_id == id).unwrap();
        assert_eq!(
            rec(3).start,
            10.0,
            "head must start at its shadow time, not behind a 100s backfill"
        );
    }

    #[test]
    fn impossible_job_rejected() {
        let jobs = vec![job(1, 0.0, 100, [1.0; 4])];
        let mut s = RoundRobin::new();
        assert!(simulate(&jobs, &mut s, &small_config()).is_err());
    }

    #[test]
    fn all_jobs_complete_under_load() {
        let jobs: Vec<Job> = (0..200)
            .map(|i| {
                job(
                    i,
                    (i as f64) * 0.1,
                    1 + (i % 2) as u32,
                    [3.0 + (i % 5) as f64, 4.0, 5.0, 6.0],
                )
            })
            .collect();
        let mut s = RoundRobin::new();
        let r = simulate(&jobs, &mut s, &small_config()).unwrap();
        assert_eq!(r.records.len(), 200);
        assert!(r
            .records
            .iter()
            .all(|x| x.end >= x.start && x.start >= x.submit));
        assert!(r.avg_bounded_slowdown >= 1.0);
    }

    #[test]
    fn fcfs_order_respected_on_one_machine() {
        let mut machines = crate::cluster::table1_cluster();
        machines[0].total_nodes = 1;
        for m in &mut machines[1..] {
            m.total_nodes = 0;
        }
        let cfg = SimConfig {
            machines,
            backfill_depth: 0, // no backfill: strict FCFS
            backfill_order: Default::default(),
            audit: true,
        };
        let jobs: Vec<Job> = (0..5)
            .map(|i| job(i, i as f64 * 0.01, 1, [2.0; 4]))
            .collect();
        let mut s = RoundRobin::new();
        let r = simulate(&jobs, &mut s, &cfg).unwrap();
        let mut starts: Vec<(u64, f64)> = r.records.iter().map(|x| (x.job_id, x.start)).collect();
        starts.sort_by_key(|s| s.0);
        for w in starts.windows(2) {
            assert!(w[0].1 < w[1].1, "earlier submit starts earlier");
        }
    }
}
