//! Randomized invariant tests for the FCFS + EASY engine, run at several
//! thread counts.
//!
//! Unlike `properties.rs` (proptest shrinking over engine liveness), these
//! tests drive seeded random workloads through *every* assignment strategy
//! and both backfill orders with the runtime auditor forced on
//! (`SimConfig::audit = true`), then re-verify the core safety invariants
//! from the emitted records alone:
//!
//! * node conservation — at no instant does any machine run more nodes
//!   than it has (checked by an interval sweep over the records);
//! * completeness — every job runs exactly once, starts no earlier than
//!   its submission, and runs exactly its runtime on the chosen machine;
//! * FCFS head priority — with backfilling disabled, starts on a single
//!   machine are ordered by submission;
//! * thread independence — simulations batched through `mphpc_par` give
//!   bit-identical results at 1, 2, and 8 worker threads.

use mphpc_sched::cluster::{table1_cluster, MachineConfig};
use mphpc_sched::engine::{simulate, BackfillOrder, SimConfig, SimResult};
use mphpc_sched::strategy::{ModelBased, Oracle, RandomAssign, RoundRobin, UserRoundRobin};
use mphpc_sched::{Job, MachineAssigner};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Small machines so random workloads actually queue and backfill.
/// Largest CPU and GPU machines hold 4 nodes, so every generated job
/// (1..=4 nodes) fits somewhere regardless of GPU capability.
fn small_machines() -> [MachineConfig; 4] {
    let mut machines = table1_cluster();
    machines[0].total_nodes = 4; // quartz (CPU)
    machines[1].total_nodes = 3; // ruby (CPU)
    machines[2].total_nodes = 4; // lassen (GPU)
    machines[3].total_nodes = 2; // corona (GPU)
    machines
}

fn random_jobs(seed: u64, n: usize) -> Vec<Job> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n as u64)
        .map(|id| {
            let runtimes = [
                rng.gen_range(1.0..50.0),
                rng.gen_range(1.0..50.0),
                rng.gen_range(1.0..50.0),
                rng.gen_range(1.0..50.0),
            ];
            Job {
                id,
                submit_time: rng.gen_range(0.0..100.0),
                nodes_required: rng.gen_range(1..5) as u32,
                gpu_capable: rng.gen::<bool>(),
                runtimes,
                predicted_rpv: rng.gen::<bool>().then_some(runtimes),
            }
        })
        .collect()
}

fn strategies(seed: u64) -> Vec<Box<dyn MachineAssigner>> {
    vec![
        Box::new(RoundRobin::new()),
        Box::new(RandomAssign::new(seed)),
        Box::new(UserRoundRobin::new()),
        Box::new(ModelBased::new()),
        Box::new(Oracle::new()),
    ]
}

/// Re-verify safety invariants from the records alone (independently of
/// the engine's internal auditor).
fn check_invariants(jobs: &[Job], r: &SimResult, machines: &[MachineConfig; 4]) {
    assert_eq!(r.records.len(), jobs.len(), "every job completes once");
    for rec in &r.records {
        let job = jobs
            .iter()
            .find(|j| j.id == rec.job_id)
            .expect("record for a submitted job");
        assert!(
            rec.start >= job.submit_time - 1e-9,
            "job {} started at {} before submission {}",
            job.id,
            rec.start,
            job.submit_time
        );
        assert!(rec.machine < 4);
        let dur = rec.end - rec.start;
        assert!(
            (dur - job.runtimes[rec.machine]).abs() < 1e-9,
            "job {} ran {dur}s, expected {}s on machine {}",
            job.id,
            job.runtimes[rec.machine],
            rec.machine
        );
    }
    // Node conservation via interval sweep: +nodes at start, -nodes at
    // end, releases applied before acquisitions at equal times.
    for m in 0..4 {
        let mut events: Vec<(f64, i64)> = Vec::new();
        for rec in r.records.iter().filter(|rec| rec.machine == m) {
            let nodes = jobs
                .iter()
                .find(|j| j.id == rec.job_id)
                .unwrap()
                .nodes_required as i64;
            events.push((rec.start, nodes));
            events.push((rec.end, -nodes));
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut in_use = 0i64;
        for (t, delta) in events {
            in_use += delta;
            assert!(
                in_use <= machines[m].total_nodes as i64,
                "machine {m} over-subscribed at t={t}: {in_use} > {}",
                machines[m].total_nodes
            );
            assert!(in_use >= 0, "machine {m} released more than it held");
        }
    }
}

/// One simulation batch over all strategies and both backfill orders for a
/// seed; returns makespans for cross-thread-count comparison.
fn run_batch(seed: u64) -> Vec<f64> {
    let machines = small_machines();
    let jobs = random_jobs(seed, 40);
    let mut makespans = Vec::new();
    for order in [BackfillOrder::Fcfs, BackfillOrder::ShortestFirst] {
        for mut s in strategies(seed) {
            let cfg = SimConfig {
                machines,
                backfill_depth: 8,
                backfill_order: order,
                audit: true,
            };
            let r = simulate(&jobs, s.as_mut(), &cfg)
                .unwrap_or_else(|e| panic!("seed {seed} {order:?}: {e}"));
            check_invariants(&jobs, &r, &machines);
            makespans.push(r.makespan);
        }
    }
    makespans
}

#[test]
fn randomized_invariants_hold_at_1_2_and_8_threads() {
    let seeds: Vec<u64> = (0..12).map(|i| 0xABC0 + i).collect();
    let mut per_thread_count: Vec<Vec<Vec<f64>>> = Vec::new();
    for &threads in &[1usize, 2, 8] {
        mphpc_par::set_thread_override(Some(threads));
        let results = mphpc_par::par_map(&seeds, |_, &seed| run_batch(seed));
        per_thread_count.push(results);
    }
    mphpc_par::set_thread_override(None);
    assert_eq!(
        per_thread_count[0], per_thread_count[1],
        "results differ between 1 and 2 threads"
    );
    assert_eq!(
        per_thread_count[0], per_thread_count[2],
        "results differ between 1 and 8 threads"
    );
}

#[test]
fn strict_fcfs_without_backfill_is_submit_ordered() {
    // One machine, no backfill window: starts must follow submission
    // order exactly, for every seed.
    let mut machines = table1_cluster();
    machines[0].total_nodes = 3;
    for m in &mut machines[1..] {
        m.total_nodes = 0;
    }
    for seed in 0..8u64 {
        let jobs: Vec<Job> = random_jobs(seed, 25)
            .into_iter()
            .map(|mut j| {
                j.nodes_required = j.nodes_required.min(3);
                j.gpu_capable = false;
                j
            })
            .collect();
        let cfg = SimConfig {
            machines,
            backfill_depth: 0,
            backfill_order: BackfillOrder::Fcfs,
            audit: true,
        };
        let mut s = RoundRobin::new();
        let r = simulate(&jobs, &mut s, &cfg).unwrap();
        let mut by_submit: Vec<(f64, f64)> = r
            .records
            .iter()
            .map(|rec| {
                let j = jobs.iter().find(|j| j.id == rec.job_id).unwrap();
                (j.submit_time, rec.start)
            })
            .collect();
        by_submit.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in by_submit.windows(2) {
            assert!(
                w[0].1 <= w[1].1 + 1e-9,
                "later submission started first: {:?} vs {:?}",
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn audited_run_matches_unaudited_run() {
    // The auditor must be a pure observer: forcing it on cannot change
    // any scheduling decision.
    let machines = small_machines();
    let jobs = random_jobs(0xFEED, 30);
    for audit in [false, true] {
        let cfg = SimConfig {
            machines,
            backfill_depth: 8,
            backfill_order: BackfillOrder::Fcfs,
            audit,
        };
        let mut s = RoundRobin::new();
        let r = simulate(&jobs, &mut s, &cfg).unwrap();
        check_invariants(&jobs, &r, &machines);
    }
    let run = |audit: bool| {
        let cfg = SimConfig {
            machines,
            backfill_depth: 8,
            backfill_order: BackfillOrder::Fcfs,
            audit,
        };
        let mut s = Oracle::new();
        simulate(&jobs, &mut s, &cfg).unwrap()
    };
    assert_eq!(run(false), run(true));
}
