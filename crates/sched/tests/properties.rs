//! Property-based tests of the scheduling engine's safety and liveness
//! invariants under arbitrary workloads.

use mphpc_sched::cluster::table1_cluster;
use mphpc_sched::engine::{simulate, SimConfig};
use mphpc_sched::strategy::{ModelBased, Oracle, RandomAssign, RoundRobin, UserRoundRobin};
use mphpc_sched::{Job, MachineAssigner};
use proptest::prelude::*;

prop_compose! {
    fn arb_job(id: u64)(
        submit in 0.0f64..1000.0,
        nodes in 1u32..4,
        gpu in any::<bool>(),
        t0 in 1.0f64..500.0,
        t1 in 1.0f64..500.0,
        t2 in 1.0f64..500.0,
        t3 in 1.0f64..500.0,
        has_pred in any::<bool>(),
    ) -> Job {
        Job {
            id,
            submit_time: submit,
            nodes_required: nodes,
            gpu_capable: gpu,
            runtimes: [t0, t1, t2, t3],
            predicted_rpv: has_pred.then_some([t0, t1, t2, t3]),
        }
    }
}

fn arb_jobs(max: usize) -> impl Strategy<Value = Vec<Job>> {
    proptest::collection::vec(any::<u64>(), 1..max).prop_flat_map(|ids| {
        let n = ids.len();
        (0..n as u64).map(arb_job).collect::<Vec<_>>()
    })
}

fn strategies() -> Vec<Box<dyn MachineAssigner>> {
    vec![
        Box::new(RoundRobin::new()),
        Box::new(RandomAssign::new(99)),
        Box::new(UserRoundRobin::new()),
        Box::new(ModelBased::new()),
        Box::new(Oracle::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Liveness + safety: every job completes exactly once, no job starts
    /// before submission, runs exactly its machine runtime, and capacity
    /// is never exceeded (enforced by the cluster's internal assertions).
    #[test]
    fn every_strategy_completes_every_job(jobs in arb_jobs(60)) {
        let config = SimConfig::default();
        for mut s in strategies() {
            let r = simulate(&jobs, s.as_mut(), &config).unwrap();
            prop_assert_eq!(r.records.len(), jobs.len());
            for rec in &r.records {
                let job = jobs.iter().find(|j| j.id == rec.job_id).unwrap();
                prop_assert!(rec.start >= job.submit_time - 1e-9);
                let dur = rec.end - rec.start;
                prop_assert!((dur - job.runtimes[rec.machine]).abs() < 1e-9,
                    "job must run exactly its runtime on the chosen machine");
            }
            prop_assert_eq!(r.jobs_per_machine.iter().sum::<u64>(), jobs.len() as u64);
            prop_assert!(r.avg_bounded_slowdown >= 1.0);
        }
    }

    /// Makespan is bounded below by the best-case single job and above by
    /// fully serial execution on the slowest machine.
    #[test]
    fn makespan_bounds(jobs in arb_jobs(40)) {
        let config = SimConfig::default();
        let mut s = Oracle::new();
        let r = simulate(&jobs, &mut s, &config).unwrap();
        let min_any: f64 = jobs
            .iter()
            .map(|j| j.runtimes.iter().cloned().fold(f64::INFINITY, f64::min))
            .fold(0.0, f64::max);
        let serial_worst: f64 = jobs
            .iter()
            .map(|j| j.runtimes.iter().cloned().fold(0.0, f64::max))
            .sum::<f64>()
            + jobs.iter().map(|j| j.submit_time).fold(0.0, f64::max);
        prop_assert!(r.makespan >= min_any - 1e-9, "{} < {}", r.makespan, min_any);
        prop_assert!(r.makespan <= serial_worst + 1e-6, "{} > {}", r.makespan, serial_worst);
    }

    /// The oracle is never beaten by the model-based strategy when the
    /// model's predictions are exactly the true runtimes (they make the
    /// same choices, so results are identical).
    #[test]
    fn perfect_predictions_match_oracle(jobs in arb_jobs(40)) {
        let jobs: Vec<Job> = jobs
            .into_iter()
            .map(|mut j| {
                j.predicted_rpv = Some(j.runtimes);
                j
            })
            .collect();
        let config = SimConfig::default();
        let mut m = ModelBased::new();
        let mut o = Oracle::new();
        let rm = simulate(&jobs, &mut m, &config).unwrap();
        let ro = simulate(&jobs, &mut o, &config).unwrap();
        prop_assert_eq!(rm.makespan, ro.makespan);
        prop_assert_eq!(rm.jobs_per_machine, ro.jobs_per_machine);
    }

    /// Work conservation on a single machine: the machine is never fully
    /// idle while a submitted job is still waiting. (Note that "EASY never
    /// exceeds strict FCFS's makespan" is NOT an invariant — backfilled
    /// jobs can pack worse for later arrivals — so we assert the guarantee
    /// EASY actually makes.)
    #[test]
    fn never_idle_while_work_waits(jobs in arb_jobs(30), depth in 0usize..64) {
        // Single-machine cluster isolates queueing effects; every job fits
        // when the machine is empty.
        let mut machines = table1_cluster();
        machines[0].total_nodes = 3;
        for m in &mut machines[1..] {
            m.total_nodes = 0;
        }
        let jobs: Vec<Job> = jobs
            .into_iter()
            .map(|mut j| {
                j.nodes_required = j.nodes_required.min(3);
                j
            })
            .collect();
        let config = SimConfig {
            machines,
            backfill_depth: depth,
            backfill_order: Default::default(),
            audit: true,
        };
        let mut s = RoundRobin::new();
        let r = simulate(&jobs, &mut s, &config).unwrap();
        // Merge running intervals.
        let mut intervals: Vec<(f64, f64)> =
            r.records.iter().map(|rec| (rec.start, rec.end)).collect();
        intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut merged: Vec<(f64, f64)> = Vec::new();
        for (s0, e0) in intervals {
            match merged.last_mut() {
                Some((_, e)) if s0 <= *e + 1e-9 => *e = e.max(e0),
                _ => merged.push((s0, e0)),
            }
        }
        // Every job's waiting window must be covered by running intervals.
        for rec in &r.records {
            if rec.start <= rec.submit + 1e-9 {
                continue;
            }
            let covered = merged
                .iter()
                .any(|&(s0, e0)| s0 <= rec.submit + 1e-9 && rec.start <= e0 + 1e-9);
            prop_assert!(
                covered,
                "job {} waited [{}, {}) while the machine sat idle",
                rec.job_id, rec.submit, rec.start
            );
        }
    }
}
