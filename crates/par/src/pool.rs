//! Scoped parallel drivers: ordered map, for-each, and chunked mutation.

use crate::cursor::ChunkCursor;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide worker-thread cap consulted by [`ParConfig::resolve`] when
/// a config does not pin a thread count. 0 means "unset".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cap the worker-thread count of every driver whose [`ParConfig`] does
/// not pin one explicitly; `None` restores hardware parallelism.
///
/// Intended for determinism tests and benchmark rigs that need to sweep
/// thread counts without plumbing a config through every call site. The
/// drivers guarantee bit-identical results for any thread count, and this
/// knob is how tests prove it.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

/// The currently active global thread override, if any.
pub fn thread_override() -> Option<usize> {
    match THREAD_OVERRIDE.load(Ordering::SeqCst) {
        0 => None,
        n => Some(n),
    }
}

/// Tuning knobs for the parallel drivers.
///
/// The defaults (`threads = None`, `chunk = None`) pick the number of
/// available hardware threads and a chunk size that gives each thread roughly
/// four chunks, which balances load without excessive atomic traffic.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParConfig {
    /// Worker thread count; `None` means [`available_threads`]. A value of
    /// 0 or 1 runs sequentially on the caller thread.
    pub threads: Option<usize>,
    /// Items claimed per atomic increment; `None` derives it from the input
    /// size and thread count.
    pub chunk: Option<usize>,
}

impl ParConfig {
    /// Run everything on the caller thread; useful for debugging and for
    /// making benchmarks of sequential baselines honest.
    pub fn sequential() -> Self {
        Self {
            threads: Some(1),
            chunk: None,
        }
    }

    /// Use exactly `n` worker threads.
    pub fn with_threads(n: usize) -> Self {
        Self {
            threads: Some(n),
            chunk: None,
        }
    }

    fn resolve(&self, items: usize) -> (usize, usize) {
        let threads = self
            .threads
            .or_else(thread_override)
            .unwrap_or_else(available_threads)
            .max(1);
        let threads = threads.min(items.max(1));
        let chunk = self.chunk.unwrap_or_else(|| (items / (threads * 4)).max(1));
        (threads, chunk)
    }
}

/// Number of hardware threads available to this process.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Slot buffer that lets disjoint indices be written from multiple threads.
///
/// Safety contract: every index is written at most once, and only by the
/// thread that claimed it from the `ChunkCursor`; the buffer is only read
/// after all writers have been joined.
struct SlotBuffer<R> {
    slots: UnsafeCell<Vec<MaybeUninit<R>>>,
}

// SAFETY: access is coordinated by ChunkCursor (disjoint ranges) and the
// crossbeam scope join provides the happens-before edge for reads.
unsafe impl<R: Send> Sync for SlotBuffer<R> {}

impl<R> SlotBuffer<R> {
    fn new(len: usize) -> Self {
        let mut slots = Vec::with_capacity(len);
        for _ in 0..len {
            slots.push(MaybeUninit::uninit());
        }
        Self {
            slots: UnsafeCell::new(slots),
        }
    }

    /// SAFETY: caller must hold exclusive claim to `idx`.
    unsafe fn write(&self, idx: usize, value: R) {
        let slots = &mut *self.slots.get();
        slots[idx].write(value);
    }

    /// SAFETY: caller must guarantee all `len` slots were written and all
    /// writers joined.
    unsafe fn into_vec(self) -> Vec<R> {
        let slots = self.slots.into_inner();
        // Reinterpret Vec<MaybeUninit<R>> as Vec<R>; every slot is
        // initialised per the contract.
        let mut slots = std::mem::ManuallyDrop::new(slots);
        Vec::from_raw_parts(slots.as_mut_ptr() as *mut R, slots.len(), slots.capacity())
    }
}

/// Map `f` over `items` in parallel, preserving input order in the output.
///
/// `f` receives the item index alongside the item so seeded per-item work
/// (e.g. deriving an RNG sub-seed) stays deterministic.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(items, ParConfig::default(), f)
}

/// [`par_map`] with explicit configuration.
#[allow(clippy::needless_range_loop)]
pub fn par_map_with<T, R, F>(items: &[T], cfg: ParConfig, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let (threads, chunk) = cfg.resolve(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = ChunkCursor::new(items.len(), chunk);
    let out = SlotBuffer::<R>::new(items.len());
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| {
                while let Some((start, end)) = cursor.next() {
                    for i in start..end {
                        let v = f(i, &items[i]);
                        // SAFETY: i came from the cursor, claimed exactly once.
                        unsafe { out.write(i, v) };
                    }
                }
            });
        }
    })
    .expect("mphpc-par worker panicked");
    // SAFETY: cursor exhausted => every slot written; scope join done.
    unsafe { out.into_vec() }
}

/// Map with per-worker mutable state: `init` runs once per worker thread
/// and the resulting state is passed to every `f` call that worker makes.
///
/// This is the reuse hook for expensive per-worker scratch (e.g. the
/// trace-driven cache simulator's buffers in the collection driver):
/// allocation happens `threads` times instead of `items.len()` times.
/// Output order is input order, exactly as [`par_map`].
#[allow(clippy::needless_range_loop)]
pub fn par_map_init<T, R, S, I, F>(items: &[T], cfg: ParConfig, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let (threads, chunk) = cfg.resolve(items.len());
    if threads <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }
    let cursor = ChunkCursor::new(items.len(), chunk);
    let out = SlotBuffer::<R>::new(items.len());
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| {
                let mut state = init();
                while let Some((start, end)) = cursor.next() {
                    for i in start..end {
                        let v = f(&mut state, i, &items[i]);
                        // SAFETY: i came from the cursor, claimed exactly once.
                        unsafe { out.write(i, v) };
                    }
                }
            });
        }
    })
    .expect("mphpc-par worker panicked");
    // SAFETY: cursor exhausted => every slot written; scope join done.
    unsafe { out.into_vec() }
}

/// Run `f` for each item in parallel, discarding results.
#[allow(clippy::needless_range_loop)]
pub fn par_for_each<T, F>(items: &[T], f: F)
where
    T: Sync,
    F: Fn(usize, &T) + Sync,
{
    if items.is_empty() {
        return;
    }
    let (threads, chunk) = ParConfig::default().resolve(items.len());
    if threads <= 1 {
        for (i, t) in items.iter().enumerate() {
            f(i, t);
        }
        return;
    }
    let cursor = ChunkCursor::new(items.len(), chunk);
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| {
                while let Some((start, end)) = cursor.next() {
                    for i in start..end {
                        f(i, &items[i]);
                    }
                }
            });
        }
    })
    .expect("mphpc-par worker panicked");
}

/// Mutate `data` in parallel by disjoint chunks of `chunk_len` elements.
///
/// `f` receives the chunk index and the mutable chunk. This is the in-place
/// counterpart of [`par_map`] used by the matrix and simulation kernels.
#[allow(clippy::needless_range_loop)]
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    let n_chunks = data.len().div_ceil(chunk_len);
    if n_chunks <= 1 {
        if !data.is_empty() {
            f(0, data);
        }
        return;
    }
    let threads = thread_override()
        .unwrap_or_else(available_threads)
        .min(n_chunks)
        .max(1);
    if threads <= 1 {
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(ci, chunk);
        }
        return;
    }
    let cursor = ChunkCursor::new(n_chunks, 1);
    // Collect raw chunk pointers up front so workers can index them.
    let chunks: Vec<&mut [T]> = data.chunks_mut(chunk_len).collect();
    let chunks: Vec<UnsafeSendPtr<T>> = chunks
        .into_iter()
        .map(|c| UnsafeSendPtr {
            ptr: c.as_mut_ptr(),
            len: c.len(),
        })
        .collect();
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| {
                while let Some((start, end)) = cursor.next() {
                    for ci in start..end {
                        let c = &chunks[ci];
                        // SAFETY: chunks are disjoint by construction and each
                        // chunk index is claimed exactly once.
                        let slice = unsafe { std::slice::from_raw_parts_mut(c.ptr, c.len) };
                        f(ci, slice);
                    }
                }
            });
        }
    })
    .expect("mphpc-par worker panicked");
}

struct UnsafeSendPtr<T> {
    ptr: *mut T,
    len: usize,
}
// SAFETY: pointers refer to disjoint sub-slices of one exclusive borrow.
unsafe impl<T: Send> Sync for UnsafeSendPtr<T> {}
unsafe impl<T: Send> Send for UnsafeSendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..10_000).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out.len(), 10_000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn par_map_empty() {
        let out: Vec<u32> = par_map(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn par_map_single_item() {
        let out = par_map(&[42u32], |_, &x| x + 1);
        assert_eq!(out, vec![43]);
    }

    #[test]
    fn sequential_config_runs_inline() {
        let tid = std::thread::current().id();
        let out = par_map_with(&[1, 2, 3], ParConfig::sequential(), |_, &x| {
            assert_eq!(std::thread::current().id(), tid);
            x
        });
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn par_map_matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..517).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(2654435761)).collect();
        for threads in [1, 2, 3, 8, 32] {
            let got = par_map_with(&items, ParConfig::with_threads(threads), |_, &x| {
                x.wrapping_mul(2654435761)
            });
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_for_each_visits_everything() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let items: Vec<u64> = (1..=1000).collect();
        let sum = AtomicU64::new(0);
        par_for_each(&items, |_, &x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 500_500);
    }

    #[test]
    fn par_chunks_mut_disjoint_writes() {
        let mut data = vec![0u64; 1003];
        par_chunks_mut(&mut data, 17, |ci, chunk| {
            for v in chunk.iter_mut() {
                *v = ci as u64 + 1;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, (i / 17) as u64 + 1);
        }
    }

    #[test]
    fn par_chunks_mut_chunk_larger_than_data() {
        let mut data = vec![1u32; 5];
        par_chunks_mut(&mut data, 100, |ci, chunk| {
            assert_eq!(ci, 0);
            for v in chunk.iter_mut() {
                *v += 1;
            }
        });
        assert_eq!(data, vec![2; 5]);
    }

    #[test]
    fn par_map_init_reuses_state_and_preserves_order() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static INITS: AtomicUsize = AtomicUsize::new(0);
        let items: Vec<u64> = (0..2000).collect();
        let out = par_map_init(
            &items,
            ParConfig::with_threads(4),
            || {
                INITS.fetch_add(1, Ordering::Relaxed);
                Vec::<u64>::new()
            },
            |scratch, i, &x| {
                scratch.push(x);
                x + i as u64
            },
        );
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
        let inits = INITS.load(Ordering::Relaxed);
        assert!(inits <= 4, "at most one init per worker, got {inits}");
    }

    #[test]
    fn par_map_init_sequential_single_state() {
        let items = vec![1u32, 2, 3];
        let out = par_map_init(
            &items,
            ParConfig::sequential(),
            || 0u32,
            |acc, _, &x| {
                *acc += x;
                *acc
            },
        );
        assert_eq!(out, vec![1, 3, 6], "sequential state threads through");
    }

    #[test]
    fn thread_override_caps_unpinned_configs() {
        // Safe to race with sibling tests: a lower cap never changes
        // results, only how many workers produce them.
        set_thread_override(Some(2));
        assert_eq!(thread_override(), Some(2));
        let items: Vec<u64> = (0..257).collect();
        let out = par_map(&items, |_, &x| x + 1);
        assert_eq!(out, (1..=257).collect::<Vec<u64>>());
        // Explicitly pinned configs are unaffected.
        let (threads, _) = ParConfig::with_threads(5).resolve(100);
        assert_eq!(threads, 5);
        set_thread_override(None);
        assert_eq!(thread_override(), None);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..100).collect();
        par_map_with(&items, ParConfig::with_threads(4), |_, &x| {
            if x == 57 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn drops_are_correct_for_owned_results() {
        // Results that own heap memory must be moved out intact.
        let items: Vec<usize> = (0..256).collect();
        let out = par_map(&items, |_, &x| vec![x; 3]);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v, &vec![i; 3]);
        }
    }
}
