//! Lightweight, deterministic parallel-execution utilities for the `mphpc`
//! workspace.
//!
//! The collection, training, and simulation drivers in `mphpc` all share the
//! same shape of parallelism: a known list of independent work items whose
//! results must be collected *in input order* so that seeded experiments stay
//! bit-reproducible regardless of thread count. This crate provides that as
//! [`par_map`] (and friends) built on `crossbeam` scoped threads with an
//! atomic-cursor work queue, so no work item is ever processed twice and no
//! ordering decision is left to thread timing.
//!
//! Design notes:
//! * Results are written into pre-allocated slots by item index, making the
//!   output order independent of scheduling.
//! * Work is claimed in contiguous chunks to amortise the atomic increment;
//!   chunk size adapts to the item count so small inputs still balance.
//! * Panics in workers are propagated to the caller (the scope join
//!   re-raises), never swallowed.
//!
//! # Example
//! ```
//! let squares = mphpc_par::par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![warn(missing_docs)]

mod cursor;
mod pool;

pub use cursor::ChunkCursor;
pub use pool::{
    available_threads, par_chunks_mut, par_for_each, par_map, par_map_init, par_map_with,
    set_thread_override, thread_override, ParConfig,
};

/// Reduce the per-thread partial results of a parallel map.
///
/// `par_map_reduce(items, map, identity, fold)` is equivalent to
/// `items.iter().map(map).fold(identity, fold)` but runs the `map` in
/// parallel. The fold itself is performed sequentially over the ordered
/// mapped values, so non-commutative folds behave identically to the
/// sequential program.
pub fn par_map_reduce<T, M, A, F>(items: &[T], map: M, identity: A, mut fold: F) -> A
where
    T: Sync,
    M: Fn(usize, &T) -> A + Sync,
    A: Send,
    F: FnMut(A, A) -> A,
{
    let mapped = par_map(items, map);
    let mut acc = identity;
    for v in mapped {
        acc = fold(acc, v);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_reduce_matches_sequential() {
        let items: Vec<u64> = (0..1000).collect();
        let par = par_map_reduce(&items, |_, &x| x * 3 + 1, 0u64, |a, b| a + b);
        let seq: u64 = items.iter().map(|&x| x * 3 + 1).sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn map_reduce_non_commutative_fold_is_ordered() {
        let items: Vec<u32> = (0..64).collect();
        let par = par_map_reduce(
            &items,
            |_, &x| x.to_string(),
            String::new(),
            |mut a, b| {
                a.push_str(&b);
                a.push(',');
                a
            },
        );
        let mut seq = String::new();
        for x in &items {
            seq.push_str(&x.to_string());
            seq.push(',');
        }
        assert_eq!(par, seq);
    }
}
