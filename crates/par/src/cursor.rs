//! Atomic chunk cursor: the work-distribution primitive behind the parallel
//! drivers.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Hands out contiguous, non-overlapping `[start, end)` index ranges from
/// `0..len` to competing threads.
///
/// Each call to [`ChunkCursor::next`] claims the next chunk of at most
/// `chunk` items with a single `fetch_add`, so contention stays low even with
/// many small items. Once the range is exhausted, `next` returns `None`
/// forever.
#[derive(Debug)]
pub struct ChunkCursor {
    next: AtomicUsize,
    len: usize,
    chunk: usize,
}

impl ChunkCursor {
    /// Create a cursor over `0..len` handing out chunks of `chunk` items.
    ///
    /// `chunk` is clamped to at least 1.
    pub fn new(len: usize, chunk: usize) -> Self {
        Self {
            next: AtomicUsize::new(0),
            len,
            chunk: chunk.max(1),
        }
    }

    /// Total number of items the cursor distributes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the cursor was created over an empty range.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Claim the next chunk, returning its `[start, end)` bounds.
    pub fn next(&self) -> Option<(usize, usize)> {
        // Relaxed is sufficient: the fetch_add itself is the only
        // synchronisation needed for mutual exclusion of ranges, and result
        // publication happens via the scope join, not via this counter.
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.len {
            return None;
        }
        Some((start, (start + self.chunk).min(self.len)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn covers_range_exactly_once() {
        let c = ChunkCursor::new(103, 7);
        let mut seen = HashSet::new();
        while let Some((s, e)) = c.next() {
            for i in s..e {
                assert!(seen.insert(i), "index {i} handed out twice");
            }
        }
        assert_eq!(seen.len(), 103);
    }

    #[test]
    fn empty_range_yields_nothing() {
        let c = ChunkCursor::new(0, 16);
        assert!(c.next().is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn chunk_clamped_to_one() {
        let c = ChunkCursor::new(3, 0);
        assert_eq!(c.next(), Some((0, 1)));
        assert_eq!(c.next(), Some((1, 2)));
        assert_eq!(c.next(), Some((2, 3)));
        assert_eq!(c.next(), None);
    }

    #[test]
    fn concurrent_claims_are_disjoint() {
        let c = ChunkCursor::new(10_000, 13);
        let claimed: Vec<Vec<(usize, usize)>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|_| {
                        let mut mine = Vec::new();
                        while let Some(r) = c.next() {
                            mine.push(r);
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        let mut seen = HashSet::new();
        for ranges in claimed {
            for (s, e) in ranges {
                for i in s..e {
                    assert!(seen.insert(i));
                }
            }
        }
        assert_eq!(seen.len(), 10_000);
    }
}
