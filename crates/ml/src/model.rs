//! Uniform model interface and the exportable trained-model container.
//!
//! The paper's pipeline trains four model families on identical splits
//! (Fig. 2) and exports the winner for use in the scheduler (§VI-A). The
//! [`ModelKind`] enum names a family + hyper-parameters; [`TrainedModel`]
//! is the serialisable result that predicts RPVs and can be written to /
//! read from JSON.
//!
//! Fitting and prediction are fallible: empty or non-finite training data
//! and feature-count mismatches return [`MphpcError`] instead of
//! panicking inside the numeric kernels.

use crate::data::MlDataset;
use crate::forest::{ForestParams, ForestRegressor};
use crate::gbt::{GbtParams, GbtRegressor};
use crate::importance::FeatureImportance;
use crate::linear::{LinearParams, LinearRegressor};
use crate::matrix::Matrix;
use crate::mean::MeanRegressor;
use mphpc_errors::{MphpcError, ResultExt};
use serde::{Deserialize, Serialize};

/// Common behaviour of every trained regressor.
pub trait Regressor {
    /// Predict the `n × k` target matrix for `n` feature rows. Errors if
    /// `x` does not match the feature count the model was trained with.
    fn predict(&self, x: &Matrix) -> Result<Matrix, MphpcError>;
    /// Short display name ("XGBoost", "Linear", ...).
    fn model_name(&self) -> &'static str;
}

/// A model family plus its hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Mean-RPV baseline.
    Mean,
    /// Ridge linear regression.
    Linear(LinearParams),
    /// Bagged decision forest.
    Forest(ForestParams),
    /// Gradient-boosted trees (the paper's XGBoost).
    Gbt(GbtParams),
}

impl ModelKind {
    /// The four families at their default settings, in the paper's Fig. 2
    /// order.
    pub fn paper_lineup() -> Vec<ModelKind> {
        vec![
            ModelKind::Mean,
            ModelKind::Linear(LinearParams::default()),
            ModelKind::Forest(ForestParams::default()),
            ModelKind::Gbt(GbtParams::default()),
        ]
    }

    /// Display name (matching the paper's figure labels).
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Mean => "Mean",
            ModelKind::Linear(_) => "Linear",
            ModelKind::Forest(_) => "Decision Forest",
            ModelKind::Gbt(_) => "XGBoost",
        }
    }

    /// Train this family on a dataset.
    pub fn fit(&self, dataset: &MlDataset) -> Result<TrainedModel, MphpcError> {
        let fitted = match self {
            ModelKind::Mean => TrainedModel::Mean(MeanRegressor::fit(dataset)?),
            ModelKind::Linear(p) => TrainedModel::Linear(LinearRegressor::fit(dataset, *p)?),
            ModelKind::Forest(p) => TrainedModel::Forest(ForestRegressor::fit(dataset, *p)?),
            ModelKind::Gbt(p) => TrainedModel::Gbt(GbtRegressor::fit(dataset, *p)?),
        };
        Ok(fitted)
    }
}

/// A trained, serialisable model of any family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub enum TrainedModel {
    /// Mean baseline.
    Mean(MeanRegressor),
    /// Ridge regression.
    Linear(LinearRegressor),
    /// Decision forest.
    Forest(ForestRegressor),
    /// Gradient-boosted trees.
    Gbt(GbtRegressor),
}

impl TrainedModel {
    /// Feature importance, if the family exposes one (tree ensembles only —
    /// §VI-B selects features "using those reported by XGBoost and the
    /// decision forest, since these models expose feature importances").
    pub fn feature_importance(&self) -> Option<FeatureImportance> {
        match self {
            TrainedModel::Forest(m) => Some(m.feature_importance()),
            TrainedModel::Gbt(m) => Some(m.feature_importance()),
            _ => None,
        }
    }

    /// Predict with the reference (uncompiled) traversal where one
    /// exists. Tree ensembles route to their per-row enum-tree oracle;
    /// mean/linear models have a single implementation, so this equals
    /// [`Regressor::predict`]. Used by equivalence tests for the
    /// compiled inference engine ([`crate::compiled`]).
    pub fn predict_reference(&self, x: &Matrix) -> Result<Matrix, MphpcError> {
        match self {
            TrainedModel::Forest(m) => m.predict_reference(x),
            TrainedModel::Gbt(m) => m.predict_reference(x),
            other => other.predict(x),
        }
    }

    /// Warm-start continuation on (usually grown) training data.
    ///
    /// Tree ensembles extend their existing ensemble: the forest grows
    /// `extra` more trees, the GBT continues boosting for `extra` more
    /// rounds — both deterministic, and bit-identical to one longer
    /// training run when the dataset is unchanged (see
    /// [`GbtRegressor::warm_start`] / [`ForestRegressor::warm_start`]).
    /// Mean and linear models have cheap closed-form fits with nothing to
    /// continue, so they refit from scratch with their stored
    /// hyper-parameters.
    pub fn warm_start(
        &self,
        dataset: &MlDataset,
        extra: usize,
    ) -> Result<TrainedModel, MphpcError> {
        match self {
            TrainedModel::Mean(_) => Ok(TrainedModel::Mean(MeanRegressor::fit(dataset)?)),
            TrainedModel::Linear(m) => Ok(TrainedModel::Linear(LinearRegressor::fit(
                dataset,
                *m.params(),
            )?)),
            TrainedModel::Forest(m) => Ok(TrainedModel::Forest(m.warm_start(dataset, extra)?)),
            TrainedModel::Gbt(m) => Ok(TrainedModel::Gbt(m.warm_start(dataset, extra)?)),
        }
    }

    /// Serialise to JSON (the paper's "model is exported" step).
    pub fn to_json(&self) -> Result<String, MphpcError> {
        serde_json::to_string(self)
            .map_err(MphpcError::serde)
            .context("exporting trained model to JSON")
    }

    /// Load a model previously exported with [`TrainedModel::to_json`].
    pub fn from_json(json: &str) -> Result<Self, MphpcError> {
        serde_json::from_str(json)
            .map_err(MphpcError::serde)
            .context("loading trained model from JSON")
    }
}

impl Regressor for TrainedModel {
    fn predict(&self, x: &Matrix) -> Result<Matrix, MphpcError> {
        match self {
            TrainedModel::Mean(m) => m.predict(x),
            TrainedModel::Linear(m) => m.predict(x),
            TrainedModel::Forest(m) => m.predict(x),
            TrainedModel::Gbt(m) => m.predict(x),
        }
    }

    fn model_name(&self) -> &'static str {
        match self {
            TrainedModel::Mean(_) => "Mean",
            TrainedModel::Linear(_) => "Linear",
            TrainedModel::Forest(_) => "Decision Forest",
            TrainedModel::Gbt(_) => "XGBoost",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mae;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn data(n: usize, seed: u64) -> MlDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        let ys: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| vec![r[0] + r[1], r[0] - r[1]])
            .collect();
        MlDataset::new(
            Matrix::from_rows(&rows),
            Matrix::from_rows(&ys),
            vec!["u".into(), "v".into()],
        )
        .unwrap()
    }

    #[test]
    fn lineup_has_four_families() {
        let lineup = ModelKind::paper_lineup();
        assert_eq!(lineup.len(), 4);
        let names: Vec<&str> = lineup.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["Mean", "Linear", "Decision Forest", "XGBoost"]);
    }

    #[test]
    fn every_family_trains_and_predicts() {
        let train = data(400, 1);
        let test = data(50, 2);
        for kind in ModelKind::paper_lineup() {
            let model = kind.fit(&train).unwrap();
            let pred = model.predict(&test.x).unwrap();
            assert_eq!(pred.rows(), 50);
            assert_eq!(pred.cols(), 2);
            assert_eq!(model.model_name(), kind.name());
        }
    }

    #[test]
    fn every_family_rejects_empty_training_data() {
        let empty = data(10, 1).take(&[]);
        for kind in ModelKind::paper_lineup() {
            assert!(kind.fit(&empty).is_err(), "{} must reject", kind.name());
        }
    }

    #[test]
    fn every_family_rejects_nan_training_data() {
        let mut d = data(50, 2);
        d.x.set(7, 0, f64::NAN);
        for kind in ModelKind::paper_lineup() {
            let err = kind.fit(&d).unwrap_err();
            assert!(
                matches!(err.root_cause(), MphpcError::NonFinite { .. }),
                "{}: {err}",
                kind.name()
            );
        }
    }

    #[test]
    fn every_family_rejects_wrong_feature_count() {
        let train = data(100, 3);
        let wide = Matrix::zeros(5, 7);
        for kind in ModelKind::paper_lineup() {
            let model = kind.fit(&train).unwrap();
            if matches!(kind, ModelKind::Mean) {
                // The mean baseline ignores features entirely; any width is
                // accepted by design.
                assert!(model.predict(&wide).is_ok());
                continue;
            }
            let err = model.predict(&wide).unwrap_err();
            assert!(
                matches!(
                    err.root_cause(),
                    MphpcError::DimensionMismatch {
                        expected: 2,
                        found: 7,
                        ..
                    }
                ),
                "{}: {err}",
                kind.name()
            );
        }
    }

    #[test]
    fn learned_models_beat_mean() {
        let train = data(600, 3);
        let test = data(100, 4);
        let mean_err = mae(
            &ModelKind::Mean
                .fit(&train)
                .unwrap()
                .predict(&test.x)
                .unwrap(),
            &test.y,
        )
        .unwrap();
        for kind in [
            ModelKind::Linear(LinearParams::default()),
            ModelKind::Forest(ForestParams::default()),
            ModelKind::Gbt(GbtParams::default()),
        ] {
            let err = mae(
                &kind.fit(&train).unwrap().predict(&test.x).unwrap(),
                &test.y,
            )
            .unwrap();
            assert!(
                err < mean_err,
                "{} ({err}) must beat mean ({mean_err})",
                kind.name()
            );
        }
    }

    #[test]
    fn importance_only_for_tree_models() {
        let train = data(200, 5);
        assert!(ModelKind::Mean
            .fit(&train)
            .unwrap()
            .feature_importance()
            .is_none());
        assert!(ModelKind::Linear(LinearParams::default())
            .fit(&train)
            .unwrap()
            .feature_importance()
            .is_none());
        assert!(ModelKind::Forest(ForestParams::default())
            .fit(&train)
            .unwrap()
            .feature_importance()
            .is_some());
        assert!(ModelKind::Gbt(GbtParams::default())
            .fit(&train)
            .unwrap()
            .feature_importance()
            .is_some());
    }

    #[test]
    fn json_export_round_trips_all_families() {
        let train = data(150, 6);
        let probe = data(10, 7);
        for kind in ModelKind::paper_lineup() {
            let model = kind.fit(&train).unwrap();
            let back = TrainedModel::from_json(&model.to_json().unwrap()).unwrap();
            assert_eq!(
                model.predict(&probe.x).unwrap(),
                back.predict(&probe.x).unwrap()
            );
        }
        assert!(TrainedModel::from_json("not json").is_err());
    }
}
