//! From-scratch machine-learning substrate for relative-performance-vector
//! regression.
//!
//! The paper trains an **XGBoost** regressor and compares it against linear
//! regression, a decision forest, and a mean predictor (Fig. 2). This crate
//! implements all four:
//!
//! * [`gbt`] — second-order gradient tree boosting in the XGBoost
//!   formulation: regularised objective `Σ l(ŷ,y) + γT + ½λ‖w‖²`,
//!   histogram-based exact-greedy splits over quantile bins ([`binning`])
//!   via the pooled single-pass histogram engine with sibling subtraction
//!   ([`hist`]), shrinkage, row/column subsampling, leaf-routed
//!   prediction updates, and gain-based feature importance
//!   ([`importance`]) exactly as §VI-B describes (average gain across
//!   splits, averaged over the vector outputs).
//! * [`forest`] — bagged multi-output CART trees with variance-reduction
//!   splits (the scikit-learn `RandomForestRegressor` stand-in).
//! * [`linear`] — multi-output ridge regression via normal equations and
//!   Cholesky factorisation ([`matrix`]).
//! * [`mean`] — predicts the training-set mean RPV (the paper's baseline).
//!
//! Supporting machinery: [`metrics`] (MAE, MSE, R², and the paper's
//! Same-Order Score), [`cv`] (seeded train/test splits and k-fold
//! cross-validation, parallelised with `mphpc-par`), [`model`] (a
//! common [`model::Regressor`] trait plus a serialisable [`model::TrainedModel`]
//! for export to the scheduler, as §VI-A's "model is exported" step),
//! [`compiled`] (a flat struct-of-arrays f64 inference engine both tree
//! ensembles lower into lazily, giving blocked, parallel, bit-identical
//! batch prediction), and [`quantized`] (the serving engine: node
//! thresholds re-indexed as integer bin ids, rows pre-binned once,
//! branchless 8-lane traversal, interleaved tree packing for single-row
//! latency, and an optional AVX2 kernel behind the `simd` feature —
//! still bit-identical to the reference traversal).
//!
//! Everything is deterministic given seeds and free of external ML
//! dependencies.

#![warn(missing_docs)]

pub mod binning;
pub mod compiled;
pub mod cv;
pub mod data;
pub mod forest;
pub mod gbt;
pub mod hist;
pub mod importance;
pub mod linear;
pub mod matrix;
pub mod mean;
pub mod metrics;
pub mod model;
pub mod quantized;
pub mod tree;

pub use compiled::CompiledEnsemble;
pub use data::MlDataset;
pub use forest::{ForestParams, ForestRegressor};
pub use gbt::{GbtParams, GbtRegressor};
pub use importance::FeatureImportance;
pub use linear::{LinearParams, LinearRegressor};
pub use matrix::Matrix;
pub use mean::MeanRegressor;
pub use metrics::{mae, mse, r2, r2_per_output, same_order_score};
pub use model::{ModelKind, Regressor, TrainedModel};
pub use quantized::QuantizedEnsemble;
pub use tree::TreeParams;
