//! Quantile binning for histogram-based tree construction (XGBoost's
//! `tree_method = hist`).
//!
//! Features are discretised once per training run into at most `max_bins`
//! quantile bins; tree split search then scans per-bin statistics instead
//! of sorting rows at every node. Split thresholds are recorded as real
//! feature values (bin upper edges) so trained trees predict directly on
//! unbinned data.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Per-feature quantile bin edges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileBinner {
    /// `cuts[f]` holds ascending thresholds; value `v` falls in the first
    /// bin whose cut is `>= v`, i.e. bin `b` covers `(cuts[b-1], cuts[b]]`.
    pub cuts: Vec<Vec<f64>>,
    /// Maximum bins per feature.
    pub max_bins: usize,
}

impl QuantileBinner {
    /// Fit bin edges on the feature matrix.
    pub fn fit(x: &Matrix, max_bins: usize) -> Self {
        let max_bins = max_bins.clamp(2, 255);
        let mut cuts = Vec::with_capacity(x.cols());
        let mut scratch: Vec<f64> = Vec::with_capacity(x.rows());
        for f in 0..x.cols() {
            scratch.clear();
            // Non-finite values carry no quantile information and would
            // poison the cut list (a NaN cut makes every bin comparison
            // false); bin edges are fit on the finite values only. NaN
            // inputs to `bin` still land deterministically in the last bin.
            scratch.extend((0..x.rows()).map(|i| x.get(i, f)).filter(|v| v.is_finite()));
            scratch.sort_by(f64::total_cmp);
            scratch.dedup();
            // Build the cut list in place: exactly one allocation per
            // feature, sized for the worst case, no intermediate vectors.
            let mut feature_cuts = Vec::with_capacity(scratch.len().min(max_bins));
            if scratch.len() <= max_bins {
                // Few distinct values: one bin per value.
                feature_cuts.extend_from_slice(&scratch);
            } else {
                // Quantile cut points over the distinct values, deduplicated
                // as they are produced.
                for q in 1..=max_bins {
                    let pos = (q * (scratch.len() - 1)) / max_bins;
                    let v = scratch[pos];
                    if feature_cuts.last() != Some(&v) {
                        feature_cuts.push(v);
                    }
                }
            }
            cuts.push(feature_cuts);
        }
        Self { cuts, max_bins }
    }

    /// Number of bins for feature `f` (at least 1).
    pub fn n_bins(&self, f: usize) -> usize {
        self.cuts[f].len().max(1)
    }

    /// Bin index of value `v` for feature `f` (binary search over cuts).
    pub fn bin(&self, f: usize, v: f64) -> u16 {
        let cuts = &self.cuts[f];
        if cuts.is_empty() {
            return 0;
        }
        // First cut >= v.
        let mut lo = 0usize;
        let mut hi = cuts.len() - 1;
        if v > cuts[hi] {
            return hi as u16;
        }
        while lo < hi {
            let mid = (lo + hi) / 2;
            if cuts[mid] >= v {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo as u16
    }

    /// The real-valued threshold a split "bin <= b" corresponds to.
    ///
    /// A feature with no finite training values has no cuts (and a single
    /// bin, so it is never split); its threshold degenerates to +∞ — the
    /// always-true split — rather than indexing out of bounds.
    pub fn threshold(&self, f: usize, b: u16) -> f64 {
        match self.cuts[f].len() {
            0 => f64::INFINITY,
            len => self.cuts[f][(b as usize).min(len - 1)],
        }
    }

    /// Bin the whole matrix; output is row-major `rows × cols` of bin ids.
    pub fn transform(&self, x: &Matrix) -> Vec<u16> {
        let mut out = vec![0u16; x.rows() * x.cols()];
        for i in 0..x.rows() {
            let row = x.row(i);
            for (f, &v) in row.iter().enumerate() {
                out[i * x.cols() + f] = self.bin(f, v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn few_distinct_values_get_exact_bins() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![0.0], vec![2.0]]);
        let b = QuantileBinner::fit(&x, 64);
        assert_eq!(b.n_bins(0), 3);
        assert_eq!(b.bin(0, 0.0), 0);
        assert_eq!(b.bin(0, 1.0), 1);
        assert_eq!(b.bin(0, 2.0), 2);
        // Between cuts: lands in the upper bin of the interval.
        assert_eq!(b.bin(0, 0.5), 1);
        // Beyond the top cut: clamped.
        assert_eq!(b.bin(0, 99.0), 2);
    }

    #[test]
    fn many_values_capped_at_max_bins() {
        let rows: Vec<Vec<f64>> = (0..1000).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows);
        let b = QuantileBinner::fit(&x, 32);
        assert!(b.n_bins(0) <= 32);
        // Monotone binning.
        let mut prev = 0u16;
        for i in 0..1000 {
            let bin = b.bin(0, i as f64);
            assert!(bin >= prev);
            prev = bin;
        }
    }

    #[test]
    fn threshold_recovers_cut_value() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows);
        let b = QuantileBinner::fit(&x, 10);
        for bin in 0..b.n_bins(0) as u16 {
            let t = b.threshold(0, bin);
            assert_eq!(b.bin(0, t), bin, "cut value must land in its own bin");
        }
    }

    #[test]
    fn fit_survives_nan_and_infinity() {
        // A NaN in the feature column used to panic (or, worse, produce
        // NaN cut points that silently disable every split comparison).
        let x = Matrix::from_rows(&[
            vec![1.0, f64::NAN],
            vec![f64::NAN, 0.5],
            vec![2.0, f64::INFINITY],
            vec![3.0, 0.25],
            vec![f64::NEG_INFINITY, 0.75],
        ]);
        let b = QuantileBinner::fit(&x, 16);
        for f in 0..2 {
            assert!(
                b.cuts[f].iter().all(|c| c.is_finite()),
                "cuts must be finite: {:?}",
                b.cuts[f]
            );
        }
        // Finite values still bin in order; NaN lands (deterministically)
        // in the last bin instead of panicking.
        assert!(b.bin(0, 1.0) < b.bin(0, 3.0));
        assert_eq!(b.bin(0, f64::NAN) as usize, b.n_bins(0) - 1);
        let _ = b.transform(&x); // must not panic

        // A column with no finite values at all: one bin, +∞ threshold.
        let all_nan = Matrix::from_rows(&[vec![f64::NAN], vec![f64::NAN]]);
        let nb = QuantileBinner::fit(&all_nan, 8);
        assert_eq!(nb.n_bins(0), 1);
        assert_eq!(nb.threshold(0, 0), f64::INFINITY);
    }

    #[test]
    fn transform_layout() {
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![2.0, 20.0]]);
        let b = QuantileBinner::fit(&x, 8);
        let binned = b.transform(&x);
        assert_eq!(binned.len(), 4);
        assert_eq!(binned[0], b.bin(0, 1.0));
        assert_eq!(binned[3], b.bin(1, 20.0));
    }

    proptest! {
        #[test]
        fn binning_preserves_order(mut values in proptest::collection::vec(-1e6f64..1e6, 10..200)) {
            let rows: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
            let x = Matrix::from_rows(&rows);
            let b = QuantileBinner::fit(&x, 16);
            values.sort_by(f64::total_cmp);
            let mut prev = 0u16;
            for v in values {
                let bin = b.bin(0, v);
                prop_assert!(bin >= prev, "binning must be monotone");
                prev = bin;
            }
        }
    }
}
