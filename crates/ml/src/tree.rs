//! Regression trees over quantile-binned features.
//!
//! One tree structure ([`Tree`]) serves both ensemble types; what differs
//! is the split criterion:
//!
//! * [`build_gbt_tree`] — XGBoost's second-order criterion. With gradient
//!   and hessian sums `G`, `H` of a node, the gain of a split into (L, R)
//!   is `½·(G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)) − γ` and the leaf
//!   weight is `−G/(H+λ)`.
//! * [`build_variance_tree`] — CART variance reduction, generalised to
//!   vector targets by summing the per-output SSE reduction; leaves hold
//!   the mean target vector.
//!
//! Both builders run on the pooled histogram engine in [`crate::hist`]:
//! one row-major pass per node fills per-bin statistics for *all*
//! features into a contiguous arena, each split builds only the smaller
//! child's histogram and derives the larger sibling by subtraction, and a
//! prefix scan (feature-parallel for wide feature spaces) finds the best
//! cut. Split thresholds are stored as real feature values, so prediction
//! does not need the binner.

use crate::binning::QuantileBinner;
use crate::hist::{self, HistLayout, HistPool, SplitCandidate};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One node of a trained tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// Leaf with output values (length 1 for GBT trees, k for forest trees).
    Leaf(Vec<f64>),
    /// Internal split: rows with `feature <= threshold` go left.
    Split {
        /// Feature column index.
        feature: usize,
        /// Real-valued split threshold (inclusive on the left).
        threshold: f64,
        /// Left child node index.
        left: usize,
        /// Right child node index.
        right: usize,
    },
}

/// A trained regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    /// Nodes in construction order; node 0 is the root.
    pub nodes: Vec<Node>,
}

impl Tree {
    /// Predict the output vector for one feature row.
    pub fn predict_row<'a>(&'a self, row: &[f64]) -> &'a [f64] {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf(values) => return values,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Total node count (splits + leaves).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Leaf value slices in node-storage order. The ensemble compiler
    /// ([`crate::compiled`]) uses this to size its leaf arena.
    pub fn leaves(&self) -> impl Iterator<Item = &[f64]> {
        self.nodes.iter().filter_map(|n| match n {
            Node::Leaf(values) => Some(values.as_slice()),
            Node::Split { .. } => None,
        })
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.leaves().count()
    }

    /// Maximum depth (root = 0). Iterative with an explicit stack, so a
    /// pathologically deep (chain-shaped) tree cannot overflow the call
    /// stack.
    pub fn depth(&self) -> usize {
        if self.nodes.is_empty() {
            return 0;
        }
        let mut max = 0usize;
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        while let Some((idx, d)) = stack.pop() {
            match &self.nodes[idx] {
                Node::Leaf(_) => max = max.max(d),
                Node::Split { left, right, .. } => {
                    stack.push((*left, d + 1));
                    stack.push((*right, d + 1));
                }
            }
        }
        max
    }
}

/// Per-feature split accounting for gain-based importance (§VI-B).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SplitStats {
    /// Summed gain of all splits on each feature.
    pub gains: Vec<f64>,
    /// Number of splits on each feature.
    pub counts: Vec<u64>,
}

impl SplitStats {
    /// Zeroed stats for `n_features`.
    pub fn new(n_features: usize) -> Self {
        Self {
            gains: vec![0.0; n_features],
            counts: vec![0; n_features],
        }
    }

    /// Fold another tree's stats into this accumulator.
    pub fn merge(&mut self, other: &SplitStats) {
        for (a, b) in self.gains.iter_mut().zip(&other.gains) {
            *a += b;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

/// Hyper-parameters shared by the tree builders.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// L2 regularisation λ on leaf weights (GBT).
    pub lambda: f64,
    /// Minimum gain γ to accept a split (GBT).
    pub gamma: f64,
    /// Minimum hessian sum per child (GBT) / samples per leaf (forest).
    pub min_child_weight: f64,
    /// Fraction of features considered per split (0..=1).
    pub colsample: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 6,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            colsample: 1.0,
        }
    }
}

/// Binned view of a feature matrix (row-major bins + the binner).
pub struct BinnedMatrix<'a> {
    /// Row-major bin ids, `rows × cols`.
    pub bins: &'a [u16],
    /// Feature count.
    pub cols: usize,
    /// The binner that produced `bins`.
    pub binner: &'a QuantileBinner,
}

impl BinnedMatrix<'_> {
    #[inline]
    fn bin(&self, row: u32, feature: usize) -> u16 {
        self.bins[row as usize * self.cols + feature]
    }
}

/// Draw `ceil(n·colsample)` distinct feature indices by a partial
/// Fisher–Yates pass over a caller-owned scratch permutation.
///
/// Only `take` RNG draws and swaps are performed (the old implementation
/// allocated and fully shuffled all `n` indices at every node). The
/// scratch keeps whatever permutation earlier nodes left behind, which is
/// statistically irrelevant: a partial Fisher–Yates draw from *any*
/// permutation is a uniform sample without replacement. When every
/// feature is taken no RNG is consumed, matching the old behaviour.
pub(crate) fn sample_features<'a>(
    scratch: &'a mut [usize],
    colsample: f64,
    rng: &mut impl Rng,
) -> &'a [usize] {
    let n = scratch.len();
    let take = sampled_count(n, colsample);
    if take < n {
        for i in 0..take {
            let j = rng.gen_range(i..n);
            scratch.swap(i, j);
        }
    }
    &scratch[..take]
}

/// Features drawn per node by [`sample_features`] — fixed for a given
/// feature count, so histogram cost estimates can use it up front.
pub(crate) fn sampled_count(n_features: usize, colsample: f64) -> usize {
    ((n_features as f64 * colsample).ceil() as usize).clamp(1, n_features)
}

/// Routes rows that do not contribute split statistics down the tree and
/// applies leaf weights straight to a prediction vector.
///
/// Used by [`crate::gbt::GbtRegressor::fit`]: every training row (both
/// the subsampled stats rows and `extra_rows` — the out-of-subsample and
/// early-stopping holdout rows) ends up in exactly one leaf during
/// construction, so `pred[row] += eta * leaf_weight` replaces a full
/// re-traversal of the finished tree per row. Routing compares bin ids,
/// which is equivalent to comparing raw values against the recorded
/// thresholds because binning is monotone and thresholds are bin upper
/// edges.
pub struct PredUpdate<'a> {
    /// Rows routed in addition to the stats rows.
    pub extra_rows: Vec<u32>,
    /// Prediction vector indexed by absolute row id.
    pub pred: &'a mut [f64],
    /// Multiplier (learning rate) applied to leaf weights.
    pub eta: f64,
}

/// One pending node during tree growth.
struct WorkItem {
    node: usize,
    rows: Vec<u32>,
    extra: Vec<u32>,
    depth: usize,
    /// Arena histogram of this node, when inherited from the parent via
    /// sibling subtraction; `None` means build on first use.
    hist: Option<Vec<f64>>,
}

/// Decide child histograms after a split. When the parent has a
/// full-arena histogram and subtraction pays for itself
/// ([`hist::subtract_profitable`]), accumulate the smaller child in a
/// single pass and derive the larger as `parent − smaller`; otherwise
/// release the parent buffer and let each child re-accumulate its own
/// sampled features when popped. `accumulate` fills a zeroed arena buffer
/// for the given rows over all features.
#[allow(clippy::too_many_arguments)]
fn child_hists(
    pool: &mut HistPool,
    layout: &HistLayout,
    n_sampled: usize,
    parent: Option<Vec<f64>>,
    left_rows: &[u32],
    right_rows: &[u32],
    left_live: bool,
    right_live: bool,
    mut accumulate: impl FnMut(&[u32], &mut [f64]),
) -> (Option<Vec<f64>>, Option<Vec<f64>>) {
    let left_smaller = left_rows.len() <= right_rows.len();
    let (small_rows, large_rows, small_live, large_live) = if left_smaller {
        (left_rows, right_rows, left_live, right_live)
    } else {
        (right_rows, left_rows, right_live, left_live)
    };
    let parent = match parent {
        Some(p)
            if large_live
                && hist::subtract_profitable(
                    layout,
                    n_sampled,
                    small_rows.len(),
                    large_rows.len(),
                    small_live,
                ) =>
        {
            p
        }
        Some(p) => {
            pool.release(p);
            return (None, None);
        }
        None => return (None, None),
    };
    let mut small = pool.acquire();
    accumulate(small_rows, &mut small);
    let mut large = parent;
    hist::subtract(&mut large, &small);
    let small = if small_live {
        Some(small)
    } else {
        pool.release(small);
        None
    };
    if left_smaller {
        (small, Some(large))
    } else {
        (Some(large), small)
    }
}

/// Build one tree for gradient boosting (single output).
///
/// `rows` are the (possibly subsampled) training rows; `grad`/`hess` are
/// indexed by absolute row id. Returns the tree and its split stats.
pub fn build_gbt_tree(
    data: &BinnedMatrix<'_>,
    rows: Vec<u32>,
    grad: &[f64],
    hess: &[f64],
    params: &TreeParams,
    rng: &mut impl Rng,
) -> (Tree, SplitStats) {
    let layout = HistLayout::for_gbt(data.binner);
    build_gbt_tree_with(data, &layout, rows, grad, hess, params, rng, None)
}

/// [`build_gbt_tree`] over a precomputed histogram layout, optionally
/// applying leaf weights to a prediction vector as leaves are finalised.
#[allow(clippy::too_many_arguments)]
pub fn build_gbt_tree_with(
    data: &BinnedMatrix<'_>,
    layout: &HistLayout,
    rows: Vec<u32>,
    grad: &[f64],
    hess: &[f64],
    params: &TreeParams,
    rng: &mut impl Rng,
    update: Option<PredUpdate<'_>>,
) -> (Tree, SplitStats) {
    let mut tree = Tree {
        nodes: vec![Node::Leaf(vec![0.0])],
    };
    let mut stats = SplitStats::new(data.cols);
    let mut pool = HistPool::new(layout);
    let mut feat_scratch: Vec<usize> = (0..data.cols).collect();
    let mut row_scratch = hist::RowwiseScratch::new(layout);
    let n_sampled = sampled_count(data.cols, params.colsample);
    let (mut pred_eta, root_extra) = match update {
        Some(u) => (Some((u.pred, u.eta)), u.extra_rows),
        None => (None, Vec::new()),
    };
    let mut stack = vec![WorkItem {
        node: 0,
        rows,
        extra: root_extra,
        depth: 0,
        hist: None,
    }];

    while let Some(WorkItem {
        node,
        rows: node_rows,
        extra,
        depth,
        mut hist,
    }) = stack.pop()
    {
        let g_sum: f64 = node_rows.iter().map(|&r| grad[r as usize]).sum();
        let h_sum: f64 = node_rows.iter().map(|&r| hess[r as usize]).sum();
        let leaf_weight = -g_sum / (h_sum + params.lambda);

        let make_leaf = depth >= params.max_depth || node_rows.len() < 2;
        let mut best = None;
        let mut scratch_hist: Option<Vec<f64>> = None;
        if !make_leaf {
            let feats = sample_features(&mut feat_scratch, params.colsample, rng);
            if hist.is_none() && node_rows.len() <= hist::ROWWISE_MAX_ROWS {
                // Tiny node without an inherited histogram: search
                // splits row-wise instead of touching the arena.
                best = hist::best_split_gh_rowwise(
                    layout,
                    data,
                    &node_rows,
                    feats,
                    grad,
                    hess,
                    g_sum,
                    h_sum,
                    params,
                    &mut row_scratch,
                );
            } else {
                let arena: &[f64] = match &hist {
                    Some(h) => h,
                    // Accumulate the full arena only when the children
                    // could profitably subtract from it; otherwise fill
                    // just this node's sampled features in a scratch
                    // buffer.
                    None if depth + 1 < params.max_depth
                        && hist::subtract_profitable(
                            layout,
                            n_sampled,
                            node_rows.len() / 2,
                            node_rows.len() / 2,
                            true,
                        ) =>
                    {
                        let mut buf = pool.acquire();
                        hist::accumulate_gh(layout, data, &node_rows, grad, hess, &mut buf);
                        &*hist.insert(buf)
                    }
                    None => {
                        let mut buf = pool.acquire_raw();
                        hist::zero_features(layout, feats, &mut buf);
                        hist::accumulate_gh_sampled(
                            layout, data, &node_rows, grad, hess, feats, &mut buf,
                        );
                        &*scratch_hist.insert(buf)
                    }
                };
                best = hist::best_split_gh(layout, feats, arena, g_sum, h_sum, params);
            }
        }
        if let Some(buf) = scratch_hist {
            pool.release(buf);
        }

        match best {
            None => {
                if let Some((pred, eta)) = &mut pred_eta {
                    for &r in node_rows.iter().chain(extra.iter()) {
                        pred[r as usize] += *eta * leaf_weight;
                    }
                }
                tree.nodes[node] = Node::Leaf(vec![leaf_weight]);
                if let Some(buf) = hist {
                    pool.release(buf);
                }
            }
            Some(SplitCandidate { feature, bin, gain }) => {
                stats.gains[feature] += gain;
                stats.counts[feature] += 1;
                let (left_rows, right_rows): (Vec<u32>, Vec<u32>) = node_rows
                    .into_iter()
                    .partition(|&r| data.bin(r, feature) <= bin);
                let (left_extra, right_extra): (Vec<u32>, Vec<u32>) = extra
                    .into_iter()
                    .partition(|&r| data.bin(r, feature) <= bin);
                let child_live = |rows: &[u32]| depth + 1 < params.max_depth && rows.len() >= 2;
                let (left_hist, right_hist) = child_hists(
                    &mut pool,
                    layout,
                    n_sampled,
                    hist.take(),
                    &left_rows,
                    &right_rows,
                    child_live(&left_rows),
                    child_live(&right_rows),
                    |rows, buf| hist::accumulate_gh(layout, data, rows, grad, hess, buf),
                );
                let left = tree.nodes.len();
                tree.nodes.push(Node::Leaf(vec![0.0]));
                let right = tree.nodes.len();
                tree.nodes.push(Node::Leaf(vec![0.0]));
                tree.nodes[node] = Node::Split {
                    feature,
                    threshold: data.binner.threshold(feature, bin),
                    left,
                    right,
                };
                stack.push(WorkItem {
                    node: left,
                    rows: left_rows,
                    extra: left_extra,
                    depth: depth + 1,
                    hist: left_hist,
                });
                stack.push(WorkItem {
                    node: right,
                    rows: right_rows,
                    extra: right_extra,
                    depth: depth + 1,
                    hist: right_hist,
                });
            }
        }
    }
    (tree, stats)
}

/// Build one CART tree with multi-output variance-reduction splits.
pub fn build_variance_tree(
    data: &BinnedMatrix<'_>,
    rows: Vec<u32>,
    targets: &crate::matrix::Matrix,
    params: &TreeParams,
    rng: &mut impl Rng,
) -> (Tree, SplitStats) {
    let layout = HistLayout::for_targets(data.binner, targets.cols());
    build_variance_tree_with(data, &layout, rows, targets, params, rng)
}

/// [`build_variance_tree`] over a precomputed histogram layout.
pub fn build_variance_tree_with(
    data: &BinnedMatrix<'_>,
    layout: &HistLayout,
    rows: Vec<u32>,
    targets: &crate::matrix::Matrix,
    params: &TreeParams,
    rng: &mut impl Rng,
) -> (Tree, SplitStats) {
    let k = targets.cols();
    let mut tree = Tree {
        nodes: vec![Node::Leaf(vec![0.0; k])],
    };
    let mut stats = SplitStats::new(data.cols);
    let mut pool = HistPool::new(layout);
    let mut feat_scratch: Vec<usize> = (0..data.cols).collect();
    let mut row_scratch = hist::RowwiseScratch::new(layout);
    let n_sampled = sampled_count(data.cols, params.colsample);
    let min_leaf = params.min_child_weight.max(1.0);
    let mut stack = vec![WorkItem {
        node: 0,
        rows,
        extra: Vec::new(),
        depth: 0,
        hist: None,
    }];

    while let Some(WorkItem {
        node,
        rows: node_rows,
        depth,
        mut hist,
        ..
    }) = stack.pop()
    {
        let n = node_rows.len() as f64;
        let mut mean = vec![0.0; k];
        for &r in &node_rows {
            for (m, &t) in mean.iter_mut().zip(targets.row(r as usize)) {
                *m += t;
            }
        }
        for m in &mut mean {
            *m /= n.max(1.0);
        }

        let make_leaf = depth >= params.max_depth || n < 2.0 * min_leaf;
        let mut best = None;
        let mut scratch_hist: Option<Vec<f64>> = None;
        if !make_leaf {
            // Parent score: Σ_k S_k²/n (constant shift of SSE reduction).
            let sums: Vec<f64> = mean.iter().map(|m| m * n).collect();
            let feats = sample_features(&mut feat_scratch, params.colsample, rng);
            if hist.is_none() && node_rows.len() <= hist::ROWWISE_MAX_ROWS {
                // Tiny node without an inherited histogram: search
                // splits row-wise instead of touching the arena.
                best = hist::best_split_targets_rowwise(
                    layout,
                    data,
                    &node_rows,
                    feats,
                    targets,
                    &sums,
                    n,
                    min_leaf,
                    &mut row_scratch,
                );
            } else {
                let arena: &[f64] = match &hist {
                    Some(h) => h,
                    // Full arena only if the children could profitably
                    // subtract from it; else fill just the sampled
                    // features.
                    None if depth + 1 < params.max_depth
                        && hist::subtract_profitable(
                            layout,
                            n_sampled,
                            node_rows.len() / 2,
                            node_rows.len() / 2,
                            true,
                        ) =>
                    {
                        let mut buf = pool.acquire();
                        hist::accumulate_targets(layout, data, &node_rows, targets, &mut buf);
                        &*hist.insert(buf)
                    }
                    None => {
                        let mut buf = pool.acquire_raw();
                        hist::zero_features(layout, feats, &mut buf);
                        hist::accumulate_targets_sampled(
                            layout, data, &node_rows, targets, feats, &mut buf,
                        );
                        &*scratch_hist.insert(buf)
                    }
                };
                best = hist::best_split_targets(layout, feats, arena, &sums, n, min_leaf);
            }
        }
        if let Some(buf) = scratch_hist {
            pool.release(buf);
        }

        match best {
            None => {
                tree.nodes[node] = Node::Leaf(mean);
                if let Some(buf) = hist {
                    pool.release(buf);
                }
            }
            Some(SplitCandidate { feature, bin, gain }) => {
                stats.gains[feature] += gain;
                stats.counts[feature] += 1;
                let (left_rows, right_rows): (Vec<u32>, Vec<u32>) = node_rows
                    .into_iter()
                    .partition(|&r| data.bin(r, feature) <= bin);
                let child_live = |rows: &[u32]| {
                    depth + 1 < params.max_depth && rows.len() as f64 >= 2.0 * min_leaf
                };
                let (left_hist, right_hist) = child_hists(
                    &mut pool,
                    layout,
                    n_sampled,
                    hist.take(),
                    &left_rows,
                    &right_rows,
                    child_live(&left_rows),
                    child_live(&right_rows),
                    |rows, buf| hist::accumulate_targets(layout, data, rows, targets, buf),
                );
                let left = tree.nodes.len();
                tree.nodes.push(Node::Leaf(vec![0.0; k]));
                let right = tree.nodes.len();
                tree.nodes.push(Node::Leaf(vec![0.0; k]));
                tree.nodes[node] = Node::Split {
                    feature,
                    threshold: data.binner.threshold(feature, bin),
                    left,
                    right,
                };
                stack.push(WorkItem {
                    node: left,
                    rows: left_rows,
                    extra: Vec::new(),
                    depth: depth + 1,
                    hist: left_hist,
                });
                stack.push(WorkItem {
                    node: right,
                    rows: right_rows,
                    extra: Vec::new(),
                    depth: depth + 1,
                    hist: right_hist,
                });
            }
        }
    }
    (tree, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn step_data(n: usize) -> (Matrix, Vec<f64>) {
        // y = 1 if x > 0.5 else 0: one split suffices.
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn gbt_tree_learns_a_step() {
        let (x, y) = step_data(200);
        let binner = QuantileBinner::fit(&x, 64);
        let bins = binner.transform(&x);
        let data = BinnedMatrix {
            bins: &bins,
            cols: 1,
            binner: &binner,
        };
        // Squared loss from prediction 0: grad = -(y - 0) = -y, hess = 1.
        let grad: Vec<f64> = y.iter().map(|&v| -v).collect();
        let hess = vec![1.0; y.len()];
        let mut rng = StdRng::seed_from_u64(1);
        let (tree, stats) = build_gbt_tree(
            &data,
            (0..200u32).collect(),
            &grad,
            &hess,
            &TreeParams {
                max_depth: 2,
                lambda: 0.0,
                ..TreeParams::default()
            },
            &mut rng,
        );
        assert!(stats.counts[0] >= 1, "must split on the only feature");
        let low = tree.predict_row(&[0.2])[0];
        let high = tree.predict_row(&[0.8])[0];
        assert!(low.abs() < 0.1, "low side ≈ 0, got {low}");
        assert!((high - 1.0).abs() < 0.1, "high side ≈ 1, got {high}");
    }

    #[test]
    fn gbt_leaf_weight_is_regularised_mean() {
        // Single leaf (max_depth 0): weight = -G/(H+λ) = ȳ·n/(n+λ).
        let (x, y) = step_data(10);
        let binner = QuantileBinner::fit(&x, 8);
        let bins = binner.transform(&x);
        let data = BinnedMatrix {
            bins: &bins,
            cols: 1,
            binner: &binner,
        };
        let grad: Vec<f64> = y.iter().map(|&v| -v).collect();
        let hess = vec![1.0; y.len()];
        let mut rng = StdRng::seed_from_u64(2);
        let (tree, _) = build_gbt_tree(
            &data,
            (0..10u32).collect(),
            &grad,
            &hess,
            &TreeParams {
                max_depth: 0,
                lambda: 2.0,
                ..TreeParams::default()
            },
            &mut rng,
        );
        let expected = y.iter().sum::<f64>() / (10.0 + 2.0);
        assert!((tree.predict_row(&[0.0])[0] - expected).abs() < 1e-12);
    }

    #[test]
    fn gamma_suppresses_weak_splits() {
        let (x, y) = step_data(100);
        let binner = QuantileBinner::fit(&x, 32);
        let bins = binner.transform(&x);
        let data = BinnedMatrix {
            bins: &bins,
            cols: 1,
            binner: &binner,
        };
        let grad: Vec<f64> = y.iter().map(|&v| -v).collect();
        let hess = vec![1.0; y.len()];
        let mut rng = StdRng::seed_from_u64(3);
        let (tree, _) = build_gbt_tree(
            &data,
            (0..100u32).collect(),
            &grad,
            &hess,
            &TreeParams {
                max_depth: 4,
                gamma: 1e9,
                ..TreeParams::default()
            },
            &mut rng,
        );
        assert_eq!(tree.n_leaves(), 1, "huge gamma must prevent any split");
    }

    #[test]
    fn variance_tree_learns_vector_step() {
        let n = 200usize;
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
        let x = Matrix::from_rows(&rows);
        let y_rows: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| {
                if r[0] > 0.5 {
                    vec![1.0, -1.0]
                } else {
                    vec![0.0, 2.0]
                }
            })
            .collect();
        let y = Matrix::from_rows(&y_rows);
        let binner = QuantileBinner::fit(&x, 64);
        let bins = binner.transform(&x);
        let data = BinnedMatrix {
            bins: &bins,
            cols: 1,
            binner: &binner,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let (tree, stats) = build_variance_tree(
            &data,
            (0..n as u32).collect(),
            &y,
            &TreeParams {
                max_depth: 3,
                ..TreeParams::default()
            },
            &mut rng,
        );
        assert!(stats.gains[0] > 0.0);
        let lo = tree.predict_row(&[0.1]);
        let hi = tree.predict_row(&[0.9]);
        assert!((lo[0] - 0.0).abs() < 0.1 && (lo[1] - 2.0).abs() < 0.1);
        assert!((hi[0] - 1.0).abs() < 0.1 && (hi[1] + 1.0).abs() < 0.1);
    }

    #[test]
    fn depth_limit_respected() {
        let (x, y) = step_data(512);
        let binner = QuantileBinner::fit(&x, 128);
        let bins = binner.transform(&x);
        let data = BinnedMatrix {
            bins: &bins,
            cols: 1,
            binner: &binner,
        };
        // Noisy targets force many candidate splits.
        let grad: Vec<f64> = y
            .iter()
            .enumerate()
            .map(|(i, &v)| -(v + (i % 7) as f64 * 0.1))
            .collect();
        let hess = vec![1.0; y.len()];
        let mut rng = StdRng::seed_from_u64(5);
        let (tree, _) = build_gbt_tree(
            &data,
            (0..512u32).collect(),
            &grad,
            &hess,
            &TreeParams {
                max_depth: 3,
                ..TreeParams::default()
            },
            &mut rng,
        );
        assert!(tree.depth() <= 3);
        assert!(tree.n_leaves() <= 8);
    }

    #[test]
    fn min_child_weight_blocks_tiny_children() {
        let (x, y) = step_data(20);
        let binner = QuantileBinner::fit(&x, 32);
        let bins = binner.transform(&x);
        let data = BinnedMatrix {
            bins: &bins,
            cols: 1,
            binner: &binner,
        };
        let grad: Vec<f64> = y.iter().map(|&v| -v).collect();
        let hess = vec![1.0; y.len()];
        let mut rng = StdRng::seed_from_u64(6);
        let (tree, _) = build_gbt_tree(
            &data,
            (0..20u32).collect(),
            &grad,
            &hess,
            &TreeParams {
                max_depth: 8,
                min_child_weight: 100.0, // more than the node has
                ..TreeParams::default()
            },
            &mut rng,
        );
        assert_eq!(tree.n_leaves(), 1);
    }

    #[test]
    fn serde_round_trip() {
        let tree = Tree {
            nodes: vec![
                Node::Split {
                    feature: 0,
                    threshold: 0.5,
                    left: 1,
                    right: 2,
                },
                Node::Leaf(vec![1.0]),
                Node::Leaf(vec![2.0]),
            ],
        };
        let json = serde_json::to_string(&tree).unwrap();
        let back: Tree = serde_json::from_str(&json).unwrap();
        assert_eq!(tree, back);
        assert_eq!(back.predict_row(&[0.4])[0], 1.0);
        assert_eq!(back.predict_row(&[0.6])[0], 2.0);
    }
}

/// The pre-histogram-engine builders, kept verbatim as a semantic oracle:
/// the engine must pick the same splits (and the same RNG-driven feature
/// samples) as a per-(node, feature) scan over the same rows.
#[cfg(test)]
mod reference {
    use super::*;

    pub fn build_gbt_tree_naive(
        data: &BinnedMatrix<'_>,
        rows: Vec<u32>,
        grad: &[f64],
        hess: &[f64],
        params: &TreeParams,
        rng: &mut impl Rng,
    ) -> (Tree, SplitStats) {
        let mut tree = Tree { nodes: Vec::new() };
        let mut stats = SplitStats::new(data.cols);
        tree.nodes.push(Node::Leaf(vec![0.0]));
        let mut stack = vec![(0usize, rows, 0usize)];
        let mut feat_scratch: Vec<usize> = (0..data.cols).collect();
        let mut g_hist: Vec<f64> = Vec::new();
        let mut h_hist: Vec<f64> = Vec::new();

        while let Some((node_idx, node_rows, depth)) = stack.pop() {
            let g_sum: f64 = node_rows.iter().map(|&r| grad[r as usize]).sum();
            let h_sum: f64 = node_rows.iter().map(|&r| hess[r as usize]).sum();
            let leaf_weight = -g_sum / (h_sum + params.lambda);

            let make_leaf = depth >= params.max_depth || node_rows.len() < 2;
            let mut best: Option<(usize, u16, f64)> = None;
            if !make_leaf {
                let parent_score = g_sum * g_sum / (h_sum + params.lambda);
                for &f in sample_features(&mut feat_scratch, params.colsample, rng) {
                    let n_bins = data.binner.n_bins(f);
                    if n_bins < 2 {
                        continue;
                    }
                    g_hist.clear();
                    g_hist.resize(n_bins, 0.0);
                    h_hist.clear();
                    h_hist.resize(n_bins, 0.0);
                    for &r in &node_rows {
                        let b = data.bin(r, f) as usize;
                        g_hist[b] += grad[r as usize];
                        h_hist[b] += hess[r as usize];
                    }
                    let mut gl = 0.0;
                    let mut hl = 0.0;
                    for b in 0..n_bins - 1 {
                        gl += g_hist[b];
                        hl += h_hist[b];
                        let gr = g_sum - gl;
                        let hr = h_sum - hl;
                        if hl < params.min_child_weight || hr < params.min_child_weight {
                            continue;
                        }
                        let gain = 0.5
                            * (gl * gl / (hl + params.lambda) + gr * gr / (hr + params.lambda)
                                - parent_score)
                            - params.gamma;
                        if gain > 0.0 && best.map_or(true, |(_, _, g)| gain > g) {
                            best = Some((f, b as u16, gain));
                        }
                    }
                }
            }

            match best {
                None => {
                    tree.nodes[node_idx] = Node::Leaf(vec![leaf_weight]);
                }
                Some((feature, bin, gain)) => {
                    stats.gains[feature] += gain;
                    stats.counts[feature] += 1;
                    let (left_rows, right_rows): (Vec<u32>, Vec<u32>) = node_rows
                        .into_iter()
                        .partition(|&r| data.bin(r, feature) <= bin);
                    let left = tree.nodes.len();
                    tree.nodes.push(Node::Leaf(vec![0.0]));
                    let right = tree.nodes.len();
                    tree.nodes.push(Node::Leaf(vec![0.0]));
                    tree.nodes[node_idx] = Node::Split {
                        feature,
                        threshold: data.binner.threshold(feature, bin),
                        left,
                        right,
                    };
                    stack.push((left, left_rows, depth + 1));
                    stack.push((right, right_rows, depth + 1));
                }
            }
        }
        (tree, stats)
    }

    pub fn build_variance_tree_naive(
        data: &BinnedMatrix<'_>,
        rows: Vec<u32>,
        targets: &crate::matrix::Matrix,
        params: &TreeParams,
        rng: &mut impl Rng,
    ) -> (Tree, SplitStats) {
        let k = targets.cols();
        let mut tree = Tree { nodes: Vec::new() };
        let mut stats = SplitStats::new(data.cols);
        tree.nodes.push(Node::Leaf(vec![0.0; k]));
        let mut stack = vec![(0usize, rows, 0usize)];
        let mut feat_scratch: Vec<usize> = (0..data.cols).collect();
        let mut sum_hist: Vec<f64> = Vec::new();
        let mut count_hist: Vec<f64> = Vec::new();
        let min_leaf = params.min_child_weight.max(1.0);

        while let Some((node_idx, node_rows, depth)) = stack.pop() {
            let n = node_rows.len() as f64;
            let mut mean = vec![0.0; k];
            for &r in &node_rows {
                for (m, &t) in mean.iter_mut().zip(targets.row(r as usize)) {
                    *m += t;
                }
            }
            for m in &mut mean {
                *m /= n.max(1.0);
            }

            let make_leaf = depth >= params.max_depth || n < 2.0 * min_leaf;
            let mut best: Option<(usize, u16, f64)> = None;
            if !make_leaf {
                let sums: Vec<f64> = mean.iter().map(|m| m * n).collect();
                let parent_score: f64 = sums.iter().map(|s| s * s).sum::<f64>() / n;
                for &f in sample_features(&mut feat_scratch, params.colsample, rng) {
                    let n_bins = data.binner.n_bins(f);
                    if n_bins < 2 {
                        continue;
                    }
                    sum_hist.clear();
                    sum_hist.resize(n_bins * k, 0.0);
                    count_hist.clear();
                    count_hist.resize(n_bins, 0.0);
                    for &r in &node_rows {
                        let b = data.bin(r, f) as usize;
                        count_hist[b] += 1.0;
                        let t = targets.row(r as usize);
                        for (slot, &v) in sum_hist[b * k..(b + 1) * k].iter_mut().zip(t) {
                            *slot += v;
                        }
                    }
                    let mut nl = 0.0;
                    let mut sl = vec![0.0; k];
                    for b in 0..n_bins - 1 {
                        nl += count_hist[b];
                        for (s, &v) in sl.iter_mut().zip(&sum_hist[b * k..(b + 1) * k]) {
                            *s += v;
                        }
                        let nr = n - nl;
                        if nl < min_leaf || nr < min_leaf {
                            continue;
                        }
                        let mut score = 0.0;
                        for (j, &s) in sl.iter().enumerate() {
                            let sr = sums[j] - s;
                            score += s * s / nl + sr * sr / nr;
                        }
                        let gain = score - parent_score;
                        if gain > 1e-12 && best.map_or(true, |(_, _, g)| gain > g) {
                            best = Some((f, b as u16, gain));
                        }
                    }
                }
            }

            match best {
                None => {
                    tree.nodes[node_idx] = Node::Leaf(mean);
                }
                Some((feature, bin, gain)) => {
                    stats.gains[feature] += gain;
                    stats.counts[feature] += 1;
                    let (left_rows, right_rows): (Vec<u32>, Vec<u32>) = node_rows
                        .into_iter()
                        .partition(|&r| data.bin(r, feature) <= bin);
                    let left = tree.nodes.len();
                    tree.nodes.push(Node::Leaf(vec![0.0; k]));
                    let right = tree.nodes.len();
                    tree.nodes.push(Node::Leaf(vec![0.0; k]));
                    tree.nodes[node_idx] = Node::Split {
                        feature,
                        threshold: data.binner.threshold(feature, bin),
                        left,
                        right,
                    };
                    stack.push((left, left_rows, depth + 1));
                    stack.push((right, right_rows, depth + 1));
                }
            }
        }
        (tree, stats)
    }
}

#[cfg(test)]
mod equivalence {
    use super::*;
    use crate::matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_fixture(n: usize, p: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..p).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        Matrix::from_rows(&rows)
    }

    /// Trees must agree split-for-split; leaf values may differ only by
    /// floating-point reassociation from sibling subtraction.
    fn assert_trees_equivalent(a: &Tree, b: &Tree) {
        assert_eq!(a.nodes.len(), b.nodes.len(), "node count");
        for (i, (na, nb)) in a.nodes.iter().zip(&b.nodes).enumerate() {
            match (na, nb) {
                (Node::Leaf(va), Node::Leaf(vb)) => {
                    for (x, y) in va.iter().zip(vb) {
                        assert!((x - y).abs() < 1e-9, "leaf {i}: {x} vs {y}");
                    }
                }
                (sa @ Node::Split { .. }, sb @ Node::Split { .. }) => {
                    assert_eq!(sa, sb, "split {i}");
                }
                _ => panic!("node {i} kind mismatch: {na:?} vs {nb:?}"),
            }
        }
    }

    #[test]
    fn gbt_hist_engine_matches_naive_builder() {
        let x = random_fixture(400, 8, 42);
        let binner = QuantileBinner::fit(&x, 32);
        let bins = binner.transform(&x);
        let data = BinnedMatrix {
            bins: &bins,
            cols: x.cols(),
            binner: &binner,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let grad: Vec<f64> = (0..400)
            .map(|i| x.get(i, 0) * 2.0 - x.get(i, 3) + rng.gen_range(-0.01..0.01))
            .collect();
        let hess = vec![1.0; 400];
        let params = TreeParams {
            max_depth: 6,
            colsample: 0.75,
            min_child_weight: 2.0,
            ..TreeParams::default()
        };
        let rows: Vec<u32> = (0..400u32).collect();
        let (naive, naive_stats) = reference::build_gbt_tree_naive(
            &data,
            rows.clone(),
            &grad,
            &hess,
            &params,
            &mut StdRng::seed_from_u64(99),
        );
        let (fast, fast_stats) = build_gbt_tree(
            &data,
            rows,
            &grad,
            &hess,
            &params,
            &mut StdRng::seed_from_u64(99),
        );
        assert_trees_equivalent(&naive, &fast);
        assert_eq!(naive_stats.counts, fast_stats.counts);
        assert!(naive.n_leaves() > 4, "fixture must actually grow a tree");
    }

    #[test]
    fn variance_hist_engine_matches_naive_builder() {
        let x = random_fixture(300, 6, 11);
        let binner = QuantileBinner::fit(&x, 24);
        let bins = binner.transform(&x);
        let data = BinnedMatrix {
            bins: &bins,
            cols: x.cols(),
            binner: &binner,
        };
        let y_rows: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![x.get(i, 1) + x.get(i, 2), x.get(i, 0) * x.get(i, 4)])
            .collect();
        let y = Matrix::from_rows(&y_rows);
        let params = TreeParams {
            max_depth: 7,
            colsample: 0.7,
            min_child_weight: 2.0,
            ..TreeParams::default()
        };
        let rows: Vec<u32> = (0..300u32).collect();
        let (naive, naive_stats) = reference::build_variance_tree_naive(
            &data,
            rows.clone(),
            &y,
            &params,
            &mut StdRng::seed_from_u64(123),
        );
        let (fast, fast_stats) =
            build_variance_tree(&data, rows, &y, &params, &mut StdRng::seed_from_u64(123));
        assert_trees_equivalent(&naive, &fast);
        assert_eq!(naive_stats.counts, fast_stats.counts);
        assert!(naive.n_leaves() > 4, "fixture must actually grow a tree");
    }

    #[test]
    fn leaf_routed_updates_match_tree_traversal() {
        // PredUpdate must leave `pred` exactly where predict_row would.
        let x = random_fixture(250, 5, 5);
        let binner = QuantileBinner::fit(&x, 32);
        let bins = binner.transform(&x);
        let data = BinnedMatrix {
            bins: &bins,
            cols: x.cols(),
            binner: &binner,
        };
        let grad: Vec<f64> = (0..250).map(|i| x.get(i, 2) - 0.5 * x.get(i, 0)).collect();
        let hess = vec![1.0; 250];
        let params = TreeParams {
            max_depth: 5,
            ..TreeParams::default()
        };
        // Stats rows: every third row withheld (simulates subsampling).
        let rows: Vec<u32> = (0..250u32).filter(|r| r % 3 != 0).collect();
        let extra: Vec<u32> = (0..250u32).filter(|r| r % 3 == 0).collect();
        let layout = HistLayout::for_gbt(&binner);
        let mut pred = vec![0.0; 250];
        let eta = 0.3;
        let (tree, _) = build_gbt_tree_with(
            &data,
            &layout,
            rows,
            &grad,
            &hess,
            &params,
            &mut StdRng::seed_from_u64(31),
            Some(PredUpdate {
                extra_rows: extra,
                pred: &mut pred,
                eta,
            }),
        );
        for i in 0..250 {
            let expected = eta * tree.predict_row(x.row(i))[0];
            assert!(
                (pred[i] - expected).abs() < 1e-12,
                "row {i}: routed {} vs traversed {expected}",
                pred[i]
            );
        }
    }
}
