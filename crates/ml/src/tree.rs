//! Regression trees over quantile-binned features.
//!
//! One tree structure ([`Tree`]) serves both ensemble types; what differs
//! is the split criterion:
//!
//! * [`build_gbt_tree`] — XGBoost's second-order criterion. With gradient
//!   and hessian sums `G`, `H` of a node, the gain of a split into (L, R)
//!   is `½·(G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)) − γ` and the leaf
//!   weight is `−G/(H+λ)`.
//! * [`build_variance_tree`] — CART variance reduction, generalised to
//!   vector targets by summing the per-output SSE reduction; leaves hold
//!   the mean target vector.
//!
//! Both builders are histogram-based: a single pass per (node, feature)
//! accumulates per-bin statistics, then a prefix scan finds the best cut.
//! Split thresholds are stored as real feature values, so prediction does
//! not need the binner.

use crate::binning::QuantileBinner;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One node of a trained tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// Leaf with output values (length 1 for GBT trees, k for forest trees).
    Leaf(Vec<f64>),
    /// Internal split: rows with `feature <= threshold` go left.
    Split {
        /// Feature column index.
        feature: usize,
        /// Real-valued split threshold (inclusive on the left).
        threshold: f64,
        /// Left child node index.
        left: usize,
        /// Right child node index.
        right: usize,
    },
}

/// A trained regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    /// Nodes in construction order; node 0 is the root.
    pub nodes: Vec<Node>,
}

impl Tree {
    /// Predict the output vector for one feature row.
    pub fn predict_row<'a>(&'a self, row: &[f64]) -> &'a [f64] {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf(values) => return values,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf(_)))
            .count()
    }

    /// Maximum depth (root = 0).
    pub fn depth(&self) -> usize {
        fn walk(tree: &Tree, idx: usize) -> usize {
            match &tree.nodes[idx] {
                Node::Leaf(_) => 0,
                Node::Split { left, right, .. } => 1 + walk(tree, *left).max(walk(tree, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(self, 0)
        }
    }
}

/// Per-feature split accounting for gain-based importance (§VI-B).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SplitStats {
    /// Summed gain of all splits on each feature.
    pub gains: Vec<f64>,
    /// Number of splits on each feature.
    pub counts: Vec<u64>,
}

impl SplitStats {
    /// Zeroed stats for `n_features`.
    pub fn new(n_features: usize) -> Self {
        Self {
            gains: vec![0.0; n_features],
            counts: vec![0; n_features],
        }
    }

    /// Fold another tree's stats into this accumulator.
    pub fn merge(&mut self, other: &SplitStats) {
        for (a, b) in self.gains.iter_mut().zip(&other.gains) {
            *a += b;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

/// Hyper-parameters shared by the tree builders.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// L2 regularisation λ on leaf weights (GBT).
    pub lambda: f64,
    /// Minimum gain γ to accept a split (GBT).
    pub gamma: f64,
    /// Minimum hessian sum per child (GBT) / samples per leaf (forest).
    pub min_child_weight: f64,
    /// Fraction of features considered per split (0..=1).
    pub colsample: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 6,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            colsample: 1.0,
        }
    }
}

/// Binned view of a feature matrix (row-major bins + the binner).
pub struct BinnedMatrix<'a> {
    /// Row-major bin ids, `rows × cols`.
    pub bins: &'a [u16],
    /// Feature count.
    pub cols: usize,
    /// The binner that produced `bins`.
    pub binner: &'a QuantileBinner,
}

impl BinnedMatrix<'_> {
    #[inline]
    fn bin(&self, row: u32, feature: usize) -> u16 {
        self.bins[row as usize * self.cols + feature]
    }
}

fn sample_features(n: usize, colsample: f64, rng: &mut impl Rng) -> Vec<usize> {
    let take = ((n as f64 * colsample).ceil() as usize).clamp(1, n);
    if take == n {
        (0..n).collect()
    } else {
        let mut all: Vec<usize> = (0..n).collect();
        all.shuffle(rng);
        all.truncate(take);
        all
    }
}

/// Build one tree for gradient boosting (single output).
///
/// `rows` are the (possibly subsampled) training rows; `grad`/`hess` are
/// indexed by absolute row id. Returns the tree and its split stats.
pub fn build_gbt_tree(
    data: &BinnedMatrix<'_>,
    rows: Vec<u32>,
    grad: &[f64],
    hess: &[f64],
    params: &TreeParams,
    rng: &mut impl Rng,
) -> (Tree, SplitStats) {
    let mut tree = Tree { nodes: Vec::new() };
    let mut stats = SplitStats::new(data.cols);
    // Work stack of (node index, rows, depth); children patched in later.
    tree.nodes.push(Node::Leaf(vec![0.0]));
    let mut stack = vec![(0usize, rows, 0usize)];
    let mut g_hist: Vec<f64> = Vec::new();
    let mut h_hist: Vec<f64> = Vec::new();

    while let Some((node_idx, node_rows, depth)) = stack.pop() {
        let g_sum: f64 = node_rows.iter().map(|&r| grad[r as usize]).sum();
        let h_sum: f64 = node_rows.iter().map(|&r| hess[r as usize]).sum();
        let leaf_weight = -g_sum / (h_sum + params.lambda);

        let make_leaf = depth >= params.max_depth || node_rows.len() < 2;
        let mut best: Option<(usize, u16, f64)> = None; // (feature, bin, gain)
        if !make_leaf {
            let parent_score = g_sum * g_sum / (h_sum + params.lambda);
            for &f in &sample_features(data.cols, params.colsample, rng) {
                let n_bins = data.binner.n_bins(f);
                if n_bins < 2 {
                    continue;
                }
                g_hist.clear();
                g_hist.resize(n_bins, 0.0);
                h_hist.clear();
                h_hist.resize(n_bins, 0.0);
                for &r in &node_rows {
                    let b = data.bin(r, f) as usize;
                    g_hist[b] += grad[r as usize];
                    h_hist[b] += hess[r as usize];
                }
                let mut gl = 0.0;
                let mut hl = 0.0;
                for b in 0..n_bins - 1 {
                    gl += g_hist[b];
                    hl += h_hist[b];
                    let gr = g_sum - gl;
                    let hr = h_sum - hl;
                    if hl < params.min_child_weight || hr < params.min_child_weight {
                        continue;
                    }
                    let gain = 0.5
                        * (gl * gl / (hl + params.lambda) + gr * gr / (hr + params.lambda)
                            - parent_score)
                        - params.gamma;
                    if gain > 0.0 && best.map_or(true, |(_, _, g)| gain > g) {
                        best = Some((f, b as u16, gain));
                    }
                }
            }
        }

        match best {
            None => {
                tree.nodes[node_idx] = Node::Leaf(vec![leaf_weight]);
            }
            Some((feature, bin, gain)) => {
                stats.gains[feature] += gain;
                stats.counts[feature] += 1;
                let (left_rows, right_rows): (Vec<u32>, Vec<u32>) = node_rows
                    .into_iter()
                    .partition(|&r| data.bin(r, feature) <= bin);
                let left = tree.nodes.len();
                tree.nodes.push(Node::Leaf(vec![0.0]));
                let right = tree.nodes.len();
                tree.nodes.push(Node::Leaf(vec![0.0]));
                tree.nodes[node_idx] = Node::Split {
                    feature,
                    threshold: data.binner.threshold(feature, bin),
                    left,
                    right,
                };
                stack.push((left, left_rows, depth + 1));
                stack.push((right, right_rows, depth + 1));
            }
        }
    }
    (tree, stats)
}

/// Build one CART tree with multi-output variance-reduction splits.
pub fn build_variance_tree(
    data: &BinnedMatrix<'_>,
    rows: Vec<u32>,
    targets: &crate::matrix::Matrix,
    params: &TreeParams,
    rng: &mut impl Rng,
) -> (Tree, SplitStats) {
    let k = targets.cols();
    let mut tree = Tree { nodes: Vec::new() };
    let mut stats = SplitStats::new(data.cols);
    tree.nodes.push(Node::Leaf(vec![0.0; k]));
    let mut stack = vec![(0usize, rows, 0usize)];
    let mut sum_hist: Vec<f64> = Vec::new();
    let mut count_hist: Vec<f64> = Vec::new();
    let min_leaf = params.min_child_weight.max(1.0);

    while let Some((node_idx, node_rows, depth)) = stack.pop() {
        let n = node_rows.len() as f64;
        let mut mean = vec![0.0; k];
        for &r in &node_rows {
            for (m, &t) in mean.iter_mut().zip(targets.row(r as usize)) {
                *m += t;
            }
        }
        for m in &mut mean {
            *m /= n.max(1.0);
        }

        let make_leaf = depth >= params.max_depth || n < 2.0 * min_leaf;
        let mut best: Option<(usize, u16, f64)> = None;
        if !make_leaf {
            // Parent score: Σ_k S_k²/n (constant shift of SSE reduction).
            let sums: Vec<f64> = mean.iter().map(|m| m * n).collect();
            let parent_score: f64 = sums.iter().map(|s| s * s).sum::<f64>() / n;
            for &f in &sample_features(data.cols, params.colsample, rng) {
                let n_bins = data.binner.n_bins(f);
                if n_bins < 2 {
                    continue;
                }
                sum_hist.clear();
                sum_hist.resize(n_bins * k, 0.0);
                count_hist.clear();
                count_hist.resize(n_bins, 0.0);
                for &r in &node_rows {
                    let b = data.bin(r, f) as usize;
                    count_hist[b] += 1.0;
                    let t = targets.row(r as usize);
                    for (slot, &v) in sum_hist[b * k..(b + 1) * k].iter_mut().zip(t) {
                        *slot += v;
                    }
                }
                let mut nl = 0.0;
                let mut sl = vec![0.0; k];
                for b in 0..n_bins - 1 {
                    nl += count_hist[b];
                    for (s, &v) in sl.iter_mut().zip(&sum_hist[b * k..(b + 1) * k]) {
                        *s += v;
                    }
                    let nr = n - nl;
                    if nl < min_leaf || nr < min_leaf {
                        continue;
                    }
                    let mut score = 0.0;
                    for (j, &s) in sl.iter().enumerate() {
                        let sr = sums[j] - s;
                        score += s * s / nl + sr * sr / nr;
                    }
                    let gain = score - parent_score;
                    if gain > 1e-12 && best.map_or(true, |(_, _, g)| gain > g) {
                        best = Some((f, b as u16, gain));
                    }
                }
            }
        }

        match best {
            None => {
                tree.nodes[node_idx] = Node::Leaf(mean);
            }
            Some((feature, bin, gain)) => {
                stats.gains[feature] += gain;
                stats.counts[feature] += 1;
                let (left_rows, right_rows): (Vec<u32>, Vec<u32>) = node_rows
                    .into_iter()
                    .partition(|&r| data.bin(r, feature) <= bin);
                let left = tree.nodes.len();
                tree.nodes.push(Node::Leaf(vec![0.0; k]));
                let right = tree.nodes.len();
                tree.nodes.push(Node::Leaf(vec![0.0; k]));
                tree.nodes[node_idx] = Node::Split {
                    feature,
                    threshold: data.binner.threshold(feature, bin),
                    left,
                    right,
                };
                stack.push((left, left_rows, depth + 1));
                stack.push((right, right_rows, depth + 1));
            }
        }
    }
    (tree, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn step_data(n: usize) -> (Matrix, Vec<f64>) {
        // y = 1 if x > 0.5 else 0: one split suffices.
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn gbt_tree_learns_a_step() {
        let (x, y) = step_data(200);
        let binner = QuantileBinner::fit(&x, 64);
        let bins = binner.transform(&x);
        let data = BinnedMatrix {
            bins: &bins,
            cols: 1,
            binner: &binner,
        };
        // Squared loss from prediction 0: grad = -(y - 0) = -y, hess = 1.
        let grad: Vec<f64> = y.iter().map(|&v| -v).collect();
        let hess = vec![1.0; y.len()];
        let mut rng = StdRng::seed_from_u64(1);
        let (tree, stats) = build_gbt_tree(
            &data,
            (0..200u32).collect(),
            &grad,
            &hess,
            &TreeParams {
                max_depth: 2,
                lambda: 0.0,
                ..TreeParams::default()
            },
            &mut rng,
        );
        assert!(stats.counts[0] >= 1, "must split on the only feature");
        let low = tree.predict_row(&[0.2])[0];
        let high = tree.predict_row(&[0.8])[0];
        assert!(low.abs() < 0.1, "low side ≈ 0, got {low}");
        assert!((high - 1.0).abs() < 0.1, "high side ≈ 1, got {high}");
    }

    #[test]
    fn gbt_leaf_weight_is_regularised_mean() {
        // Single leaf (max_depth 0): weight = -G/(H+λ) = ȳ·n/(n+λ).
        let (x, y) = step_data(10);
        let binner = QuantileBinner::fit(&x, 8);
        let bins = binner.transform(&x);
        let data = BinnedMatrix {
            bins: &bins,
            cols: 1,
            binner: &binner,
        };
        let grad: Vec<f64> = y.iter().map(|&v| -v).collect();
        let hess = vec![1.0; y.len()];
        let mut rng = StdRng::seed_from_u64(2);
        let (tree, _) = build_gbt_tree(
            &data,
            (0..10u32).collect(),
            &grad,
            &hess,
            &TreeParams {
                max_depth: 0,
                lambda: 2.0,
                ..TreeParams::default()
            },
            &mut rng,
        );
        let expected = y.iter().sum::<f64>() / (10.0 + 2.0);
        assert!((tree.predict_row(&[0.0])[0] - expected).abs() < 1e-12);
    }

    #[test]
    fn gamma_suppresses_weak_splits() {
        let (x, y) = step_data(100);
        let binner = QuantileBinner::fit(&x, 32);
        let bins = binner.transform(&x);
        let data = BinnedMatrix {
            bins: &bins,
            cols: 1,
            binner: &binner,
        };
        let grad: Vec<f64> = y.iter().map(|&v| -v).collect();
        let hess = vec![1.0; y.len()];
        let mut rng = StdRng::seed_from_u64(3);
        let (tree, _) = build_gbt_tree(
            &data,
            (0..100u32).collect(),
            &grad,
            &hess,
            &TreeParams {
                max_depth: 4,
                gamma: 1e9,
                ..TreeParams::default()
            },
            &mut rng,
        );
        assert_eq!(tree.n_leaves(), 1, "huge gamma must prevent any split");
    }

    #[test]
    fn variance_tree_learns_vector_step() {
        let n = 200usize;
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
        let x = Matrix::from_rows(&rows);
        let y_rows: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| {
                if r[0] > 0.5 {
                    vec![1.0, -1.0]
                } else {
                    vec![0.0, 2.0]
                }
            })
            .collect();
        let y = Matrix::from_rows(&y_rows);
        let binner = QuantileBinner::fit(&x, 64);
        let bins = binner.transform(&x);
        let data = BinnedMatrix {
            bins: &bins,
            cols: 1,
            binner: &binner,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let (tree, stats) = build_variance_tree(
            &data,
            (0..n as u32).collect(),
            &y,
            &TreeParams {
                max_depth: 3,
                ..TreeParams::default()
            },
            &mut rng,
        );
        assert!(stats.gains[0] > 0.0);
        let lo = tree.predict_row(&[0.1]);
        let hi = tree.predict_row(&[0.9]);
        assert!((lo[0] - 0.0).abs() < 0.1 && (lo[1] - 2.0).abs() < 0.1);
        assert!((hi[0] - 1.0).abs() < 0.1 && (hi[1] + 1.0).abs() < 0.1);
    }

    #[test]
    fn depth_limit_respected() {
        let (x, y) = step_data(512);
        let binner = QuantileBinner::fit(&x, 128);
        let bins = binner.transform(&x);
        let data = BinnedMatrix {
            bins: &bins,
            cols: 1,
            binner: &binner,
        };
        // Noisy targets force many candidate splits.
        let grad: Vec<f64> = y
            .iter()
            .enumerate()
            .map(|(i, &v)| -(v + (i % 7) as f64 * 0.1))
            .collect();
        let hess = vec![1.0; y.len()];
        let mut rng = StdRng::seed_from_u64(5);
        let (tree, _) = build_gbt_tree(
            &data,
            (0..512u32).collect(),
            &grad,
            &hess,
            &TreeParams {
                max_depth: 3,
                ..TreeParams::default()
            },
            &mut rng,
        );
        assert!(tree.depth() <= 3);
        assert!(tree.n_leaves() <= 8);
    }

    #[test]
    fn min_child_weight_blocks_tiny_children() {
        let (x, y) = step_data(20);
        let binner = QuantileBinner::fit(&x, 32);
        let bins = binner.transform(&x);
        let data = BinnedMatrix {
            bins: &bins,
            cols: 1,
            binner: &binner,
        };
        let grad: Vec<f64> = y.iter().map(|&v| -v).collect();
        let hess = vec![1.0; y.len()];
        let mut rng = StdRng::seed_from_u64(6);
        let (tree, _) = build_gbt_tree(
            &data,
            (0..20u32).collect(),
            &grad,
            &hess,
            &TreeParams {
                max_depth: 8,
                min_child_weight: 100.0, // more than the node has
                ..TreeParams::default()
            },
            &mut rng,
        );
        assert_eq!(tree.n_leaves(), 1);
    }

    #[test]
    fn serde_round_trip() {
        let tree = Tree {
            nodes: vec![
                Node::Split {
                    feature: 0,
                    threshold: 0.5,
                    left: 1,
                    right: 2,
                },
                Node::Leaf(vec![1.0]),
                Node::Leaf(vec![2.0]),
            ],
        };
        let json = serde_json::to_string(&tree).unwrap();
        let back: Tree = serde_json::from_str(&json).unwrap();
        assert_eq!(tree, back);
        assert_eq!(back.predict_row(&[0.4])[0], 1.0);
        assert_eq!(back.predict_row(&[0.6])[0], 2.0);
    }
}
