//! Multi-output ridge regression (the paper's linear-regression baseline).
//!
//! Features are standardised and targets centred internally; weights are
//! obtained from the normal equations `(XᵀX + λI)·W = XᵀY` via Cholesky.

use crate::data::{check_feature_count, validate_training_data, MlDataset};
use crate::matrix::Matrix;
use mphpc_errors::MphpcError;
use serde::{Deserialize, Serialize};

/// Ridge hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearParams {
    /// L2 penalty λ (0 = ordinary least squares; a small positive value
    /// keeps the Gram matrix positive definite with one-hot features).
    pub ridge: f64,
}

impl Default for LinearParams {
    fn default() -> Self {
        Self { ridge: 1e-3 }
    }
}

/// A trained ridge model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRegressor {
    /// Hyper-parameters the model was fit with, kept so an online refresh
    /// (which refits closed-form models from scratch) reuses the same λ.
    #[serde(default)]
    params: LinearParams,
    /// `p × k` weights over standardised features.
    weights: Matrix,
    /// Per-feature standardisation mean.
    x_mean: Vec<f64>,
    /// Per-feature standardisation scale (1 for constant features).
    x_scale: Vec<f64>,
    /// Per-output intercepts (target means).
    y_mean: Vec<f64>,
}

impl LinearRegressor {
    /// Train on a dataset.
    pub fn fit(dataset: &MlDataset, params: LinearParams) -> Result<Self, MphpcError> {
        validate_training_data(dataset, "LinearRegressor::fit")?;
        let n = dataset.n_samples();
        let p = dataset.n_features();
        let k = dataset.n_outputs();

        let mut x_mean = vec![0.0; p];
        let mut x_scale = vec![0.0; p];
        for j in 0..p {
            let col = dataset.x.col(j);
            let m = col.iter().sum::<f64>() / n as f64;
            let var = col.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / n as f64;
            x_mean[j] = m;
            x_scale[j] = if var.sqrt() > 1e-12 { var.sqrt() } else { 1.0 };
        }
        let y_mean: Vec<f64> = (0..k)
            .map(|j| dataset.y.col(j).iter().sum::<f64>() / n as f64)
            .collect();

        let mut xs = Matrix::zeros(n, p);
        for i in 0..n {
            let row = dataset.x.row(i);
            for j in 0..p {
                xs.set(i, j, (row[j] - x_mean[j]) / x_scale[j]);
            }
        }
        let mut yc = Matrix::zeros(n, k);
        for i in 0..n {
            let row = dataset.y.row(i);
            for j in 0..k {
                yc.set(i, j, row[j] - y_mean[j]);
            }
        }

        let gram = xs.gram_ridge(params.ridge.max(1e-9));
        let xty = xs.t_mul(&yc);
        let weights = gram.solve_spd(&xty).ok_or_else(|| MphpcError::NonFinite {
            context: "LinearRegressor::fit: ridge-regularised Gram matrix is not SPD".into(),
        })?;

        Ok(Self {
            params,
            weights,
            x_mean,
            x_scale,
            y_mean,
        })
    }

    /// Hyper-parameters the model was fit with.
    pub fn params(&self) -> &LinearParams {
        &self.params
    }

    /// Predict the target matrix for a feature matrix.
    pub fn predict(&self, x: &Matrix) -> Result<Matrix, MphpcError> {
        let p = self.x_mean.len();
        let k = self.y_mean.len();
        check_feature_count("LinearRegressor::predict", p, x)?;
        let mut out = Matrix::zeros(x.rows(), k);
        for i in 0..x.rows() {
            let row = x.row(i);
            for j in 0..k {
                let mut v = self.y_mean[j];
                for (f, &xf) in row.iter().enumerate() {
                    let z = (xf - self.x_mean[f]) / self.x_scale[f];
                    v += z * self.weights.get(f, j);
                }
                out.set(i, j, v);
            }
        }
        Ok(out)
    }

    /// Weight magnitudes per feature (averaged over outputs) — a crude
    /// importance proxy for diagnostics.
    pub fn coefficient_magnitudes(&self) -> Vec<f64> {
        let k = self.y_mean.len();
        (0..self.x_mean.len())
            .map(|f| (0..k).map(|j| self.weights.get(f, j).abs()).sum::<f64>() / k as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mae;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn linear_data(n: usize, seed: u64) -> MlDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xr = Vec::with_capacity(n);
        let mut yr = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f64 = rng.gen_range(-2.0..2.0);
            let b: f64 = rng.gen_range(-2.0..2.0);
            xr.push(vec![a, b]);
            yr.push(vec![3.0 * a - b + 0.5, a + 2.0 * b - 1.0]);
        }
        MlDataset::new(
            Matrix::from_rows(&xr),
            Matrix::from_rows(&yr),
            vec!["a".into(), "b".into()],
        )
        .unwrap()
    }

    #[test]
    fn recovers_exact_linear_relationship() {
        let train = linear_data(500, 1);
        let test = linear_data(100, 2);
        let model = LinearRegressor::fit(&train, LinearParams::default()).unwrap();
        let err = mae(&model.predict(&test.x).unwrap(), &test.y).unwrap();
        assert!(err < 1e-3, "exact linear data, MAE {err}");
    }

    #[test]
    fn handles_constant_features() {
        let x = Matrix::from_rows(&[vec![1.0, 5.0], vec![2.0, 5.0], vec![3.0, 5.0]]);
        let y = Matrix::from_rows(&[vec![2.0], vec![4.0], vec![6.0]]);
        let d = MlDataset::new(x, y, vec!["v".into(), "const".into()]).unwrap();
        let model = LinearRegressor::fit(&d, LinearParams { ridge: 1e-9 }).unwrap();
        let pred = model.predict(&d.x).unwrap();
        for i in 0..3 {
            assert!((pred.get(i, 0) - d.y.get(i, 0)).abs() < 1e-6);
        }
    }

    #[test]
    fn heavy_ridge_shrinks_towards_mean() {
        let train = linear_data(200, 3);
        let soft = LinearRegressor::fit(&train, LinearParams { ridge: 1e-3 }).unwrap();
        let hard = LinearRegressor::fit(&train, LinearParams { ridge: 1e9 }).unwrap();
        let probe = Matrix::from_rows(&[vec![2.0, -2.0]]);
        let mean0 = train.y.col(0).iter().sum::<f64>() / train.n_samples() as f64;
        let p_soft = soft.predict(&probe).unwrap().get(0, 0);
        let p_hard = hard.predict(&probe).unwrap().get(0, 0);
        assert!((p_hard - mean0).abs() < (p_soft - mean0).abs());
    }

    #[test]
    fn coefficient_magnitudes_track_true_weights() {
        let train = linear_data(500, 4);
        let model = LinearRegressor::fit(&train, LinearParams::default()).unwrap();
        let mags = model.coefficient_magnitudes();
        // |3|+|1| for a vs |1|+|2| for b (scaled equally): a bigger.
        assert!(mags[0] > mags[1]);
    }

    #[test]
    fn predict_shape_checked() {
        let train = linear_data(50, 5);
        let model = LinearRegressor::fit(&train, LinearParams::default()).unwrap();
        let err = model.predict(&Matrix::zeros(1, 3)).unwrap_err();
        assert!(matches!(
            err,
            MphpcError::DimensionMismatch {
                expected: 2,
                found: 3,
                ..
            }
        ));
    }
}
