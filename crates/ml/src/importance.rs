//! Gain-based feature importance (§VI-B).
//!
//! XGBoost's "gain" importance: for each feature, the average improvement
//! in the objective across all splits on that feature, normalised to sum
//! to 1 over the feature set. Averaging over splits (rather than counting
//! split frequency) avoids the bias towards high-cardinality numeric
//! features that the paper calls out.

use crate::tree::SplitStats;
use serde::{Deserialize, Serialize};

/// Normalised per-feature importance scores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureImportance {
    /// Feature names.
    pub names: Vec<String>,
    /// Normalised average gain per feature (sums to 1 if any splits exist).
    pub scores: Vec<f64>,
}

impl FeatureImportance {
    /// Compute average-gain importance from split statistics.
    pub fn from_stats(names: &[String], stats: &SplitStats) -> Self {
        let avg: Vec<f64> = stats
            .gains
            .iter()
            .zip(&stats.counts)
            .map(|(&g, &c)| if c > 0 { g / c as f64 } else { 0.0 })
            .collect();
        let total: f64 = avg.iter().sum();
        let scores = if total > 0.0 {
            avg.iter().map(|&a| a / total).collect()
        } else {
            avg
        };
        Self {
            names: names.to_vec(),
            scores,
        }
    }

    /// Importance of a feature by name.
    pub fn gain_of(&self, name: &str) -> Option<f64> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.scores[i])
    }

    /// `(name, score)` pairs sorted descending by score.
    pub fn ranked(&self) -> Vec<(String, f64)> {
        let mut pairs: Vec<(String, f64)> = self
            .names
            .iter()
            .cloned()
            .zip(self.scores.iter().copied())
            .collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        pairs
    }

    /// Column indices of the top-`k` features (for §VI-B feature
    /// selection / retraining).
    pub fn top_k_indices(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.scores.len()).collect();
        idx.sort_by(|&a, &b| {
            self.scores[b]
                .partial_cmp(&self.scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SplitStats {
        SplitStats {
            gains: vec![10.0, 40.0, 0.0],
            counts: vec![2, 4, 0],
        }
    }

    fn names() -> Vec<String> {
        vec!["a".into(), "b".into(), "c".into()]
    }

    #[test]
    fn average_gain_normalised() {
        let imp = FeatureImportance::from_stats(&names(), &stats());
        // avg gains: 5, 10, 0 => normalised 1/3, 2/3, 0.
        assert!((imp.gain_of("a").unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert!((imp.gain_of("b").unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(imp.gain_of("c").unwrap(), 0.0);
        assert!((imp.scores.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranked_and_top_k() {
        let imp = FeatureImportance::from_stats(&names(), &stats());
        let ranked = imp.ranked();
        assert_eq!(ranked[0].0, "b");
        assert_eq!(ranked[1].0, "a");
        assert_eq!(imp.top_k_indices(2), vec![1, 0]);
        assert_eq!(imp.top_k_indices(10).len(), 3);
    }

    #[test]
    fn no_splits_yields_zeros() {
        let imp = FeatureImportance::from_stats(&names(), &SplitStats::new(3));
        assert!(imp.scores.iter().all(|&s| s == 0.0));
    }
}
