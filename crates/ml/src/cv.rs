//! Train/test splitting and k-fold cross-validation (§VI-A: 90-10 split
//! with 5-fold CV inside the training portion).

use crate::data::MlDataset;
use crate::metrics::{mae, same_order_score};
use crate::model::{ModelKind, Regressor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A seeded random permutation split into train/test index sets.
pub fn train_test_split(n: usize, test_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let n_test = ((n as f64 * test_fraction).round() as usize)
        .clamp(usize::from(n > 1), n.saturating_sub(1));
    let test = idx.split_off(n - n_test);
    (idx, test)
}

/// K non-overlapping folds covering `0..n` (sizes differ by at most 1).
pub fn kfold(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    let k = k.clamp(2, n.max(2));
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &row) in idx.iter().enumerate() {
        folds[i % k].push(row);
    }
    (0..k)
        .map(|f| {
            let test = folds[f].clone();
            let train: Vec<usize> = (0..k)
                .filter(|&g| g != f)
                .flat_map(|g| folds[g].iter().copied())
                .collect();
            (train, test)
        })
        .collect()
}

/// Per-fold and aggregate metrics of a cross-validation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CvReport {
    /// MAE per fold.
    pub fold_mae: Vec<f64>,
    /// SOS per fold.
    pub fold_sos: Vec<f64>,
    /// Mean MAE across folds.
    pub mean_mae: f64,
    /// Mean SOS across folds.
    pub mean_sos: f64,
}

/// Cross-validate a model family on a dataset; folds train in parallel.
/// Fold evaluation predicts through the compiled flat-ensemble engine
/// ([`crate::compiled`]) for tree families, so held-out scoring is
/// batch traversal rather than per-row pointer chasing.
pub fn cross_validate(kind: ModelKind, dataset: &MlDataset, k: usize, seed: u64) -> CvReport {
    let folds = kfold(dataset.n_samples(), k, seed);
    let results: Vec<(f64, f64)> = mphpc_par::par_map(&folds, |_, (train_idx, test_idx)| {
        let train = dataset.take(train_idx);
        let test = dataset.take(test_idx);
        let model = kind.fit(&train);
        let pred = model.predict(&test.x);
        (mae(&pred, &test.y), same_order_score(&pred, &test.y))
    });
    let fold_mae: Vec<f64> = results.iter().map(|r| r.0).collect();
    let fold_sos: Vec<f64> = results.iter().map(|r| r.1).collect();
    let mean_mae = fold_mae.iter().sum::<f64>() / fold_mae.len().max(1) as f64;
    let mean_sos = fold_sos.iter().sum::<f64>() / fold_sos.len().max(1) as f64;
    CvReport {
        fold_mae,
        fold_sos,
        mean_mae,
        mean_sos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use rand::Rng;

    #[test]
    fn split_is_disjoint_and_complete() {
        let (train, test) = train_test_split(100, 0.1, 7);
        assert_eq!(test.len(), 10);
        assert_eq!(train.len(), 90);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_deterministic_per_seed() {
        assert_eq!(train_test_split(50, 0.2, 1), train_test_split(50, 0.2, 1));
        assert_ne!(
            train_test_split(50, 0.2, 1).1,
            train_test_split(50, 0.2, 2).1
        );
    }

    #[test]
    fn split_never_empties_either_side() {
        let (train, test) = train_test_split(5, 0.999, 3);
        assert!(!train.is_empty());
        assert!(!test.is_empty());
        let (train2, test2) = train_test_split(5, 0.0001, 3);
        assert!(!train2.is_empty());
        assert!(!test2.is_empty());
    }

    #[test]
    fn kfold_partitions_exactly() {
        let folds = kfold(103, 5, 11);
        assert_eq!(folds.len(), 5);
        let mut seen = vec![0u32; 103];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 103);
            for &t in test {
                seen[t] += 1;
            }
            let test_set: std::collections::HashSet<_> = test.iter().collect();
            assert!(train.iter().all(|i| !test_set.contains(i)));
        }
        assert!(seen.iter().all(|&c| c == 1), "each row tests exactly once");
    }

    #[test]
    fn cross_validation_reports_sane_metrics() {
        let mut rng = StdRng::seed_from_u64(4);
        let rows: Vec<Vec<f64>> = (0..300).map(|_| vec![rng.gen_range(-1.0..1.0)]).collect();
        let ys: Vec<Vec<f64>> = rows.iter().map(|r| vec![r[0], 2.0 * r[0]]).collect();
        let d = MlDataset::new(
            Matrix::from_rows(&rows),
            Matrix::from_rows(&ys),
            vec!["x".into()],
        )
        .unwrap();
        let report = cross_validate(ModelKind::Linear(Default::default()), &d, 5, 9);
        assert_eq!(report.fold_mae.len(), 5);
        assert!(
            report.mean_mae < 1e-4,
            "exact linear fit: {}",
            report.mean_mae
        );
        assert!(report.mean_sos > 0.99);
    }
}
