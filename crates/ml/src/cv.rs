//! Train/test splitting and k-fold cross-validation (§VI-A: 90-10 split
//! with 5-fold CV inside the training portion).
//!
//! `kfold` caps `k` at the sample count so no fold ever has an empty test
//! side, and refuses datasets with fewer than two rows — combined with the
//! metrics layer rejecting empty inputs, a degenerate fold is now a typed
//! error instead of a silently "perfect" score of 0.0.

use crate::data::MlDataset;
use crate::metrics::{mae, same_order_score};
use crate::model::{ModelKind, Regressor};
use mphpc_errors::{MphpcError, ResultExt};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A seeded random permutation split into train/test index sets.
pub fn train_test_split(n: usize, test_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let n_test = ((n as f64 * test_fraction).round() as usize)
        .clamp(usize::from(n > 1), n.saturating_sub(1));
    let test = idx.split_off(n - n_test);
    (idx, test)
}

/// K non-overlapping folds covering `0..n` (sizes differ by at most 1).
///
/// `k` is capped at `n` so every fold's test side is non-empty; fewer than
/// two samples cannot be cross-validated at all and is an error.
pub fn kfold(n: usize, k: usize, seed: u64) -> Result<Vec<(Vec<usize>, Vec<usize>)>, MphpcError> {
    if n < 2 {
        return Err(MphpcError::InvalidDataset(format!(
            "k-fold cross-validation needs at least 2 samples, got {n}"
        )));
    }
    let k = k.clamp(2, n);
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &row) in idx.iter().enumerate() {
        folds[i % k].push(row);
    }
    Ok((0..k)
        .map(|f| {
            let test = folds[f].clone();
            let train: Vec<usize> = (0..k)
                .filter(|&g| g != f)
                .flat_map(|g| folds[g].iter().copied())
                .collect();
            (train, test)
        })
        .collect())
}

/// Per-fold and aggregate metrics of a cross-validation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CvReport {
    /// MAE per fold.
    pub fold_mae: Vec<f64>,
    /// SOS per fold.
    pub fold_sos: Vec<f64>,
    /// Mean MAE across folds.
    pub mean_mae: f64,
    /// Mean SOS across folds.
    pub mean_sos: f64,
}

/// Cross-validate a model family on a dataset; folds train in parallel.
/// Fold evaluation predicts through the compiled flat-ensemble engine
/// ([`crate::compiled`]) for tree families, so held-out scoring is
/// batch traversal rather than per-row pointer chasing.
pub fn cross_validate(
    kind: ModelKind,
    dataset: &MlDataset,
    k: usize,
    seed: u64,
) -> Result<CvReport, MphpcError> {
    let folds = kfold(dataset.n_samples(), k, seed)?;
    let results: Vec<Result<(f64, f64), MphpcError>> =
        mphpc_par::par_map(&folds, |fold, (train_idx, test_idx)| {
            let train = dataset.take(train_idx);
            let test = dataset.take(test_idx);
            let model = kind.fit(&train).context(format!("fitting fold {fold}"))?;
            let pred = model.predict(&test.x)?;
            Ok((mae(&pred, &test.y)?, same_order_score(&pred, &test.y)?))
        });
    let results: Vec<(f64, f64)> = results
        .into_iter()
        .collect::<Result<_, _>>()
        .context("cross-validation")?;
    let fold_mae: Vec<f64> = results.iter().map(|r| r.0).collect();
    let fold_sos: Vec<f64> = results.iter().map(|r| r.1).collect();
    let mean_mae = fold_mae.iter().sum::<f64>() / fold_mae.len() as f64;
    let mean_sos = fold_sos.iter().sum::<f64>() / fold_sos.len() as f64;
    Ok(CvReport {
        fold_mae,
        fold_sos,
        mean_mae,
        mean_sos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use rand::Rng;

    #[test]
    fn split_is_disjoint_and_complete() {
        let (train, test) = train_test_split(100, 0.1, 7);
        assert_eq!(test.len(), 10);
        assert_eq!(train.len(), 90);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_deterministic_per_seed() {
        assert_eq!(train_test_split(50, 0.2, 1), train_test_split(50, 0.2, 1));
        assert_ne!(
            train_test_split(50, 0.2, 1).1,
            train_test_split(50, 0.2, 2).1
        );
    }

    #[test]
    fn split_never_empties_either_side() {
        let (train, test) = train_test_split(5, 0.999, 3);
        assert!(!train.is_empty());
        assert!(!test.is_empty());
        let (train2, test2) = train_test_split(5, 0.0001, 3);
        assert!(!train2.is_empty());
        assert!(!test2.is_empty());
    }

    #[test]
    fn kfold_partitions_exactly() {
        let folds = kfold(103, 5, 11).unwrap();
        assert_eq!(folds.len(), 5);
        let mut seen = vec![0u32; 103];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 103);
            for &t in test {
                seen[t] += 1;
            }
            let test_set: std::collections::HashSet<_> = test.iter().collect();
            assert!(train.iter().all(|i| !test_set.contains(i)));
        }
        assert!(seen.iter().all(|&c| c == 1), "each row tests exactly once");
    }

    #[test]
    fn kfold_caps_k_at_n() {
        // n < k: every fold must still have a non-empty test side.
        let folds = kfold(3, 10, 5).unwrap();
        assert_eq!(folds.len(), 3);
        for (train, test) in &folds {
            assert_eq!(test.len(), 1, "no empty test folds");
            assert_eq!(train.len(), 2);
        }
    }

    #[test]
    fn kfold_rejects_degenerate_n() {
        assert!(kfold(0, 5, 1).is_err());
        assert!(kfold(1, 5, 1).is_err());
    }

    #[test]
    fn cross_validation_reports_sane_metrics() {
        let mut rng = StdRng::seed_from_u64(4);
        let rows: Vec<Vec<f64>> = (0..300).map(|_| vec![rng.gen_range(-1.0..1.0)]).collect();
        let ys: Vec<Vec<f64>> = rows.iter().map(|r| vec![r[0], 2.0 * r[0]]).collect();
        let d = MlDataset::new(
            Matrix::from_rows(&rows),
            Matrix::from_rows(&ys),
            vec!["x".into()],
        )
        .unwrap();
        let report = cross_validate(ModelKind::Linear(Default::default()), &d, 5, 9).unwrap();
        assert_eq!(report.fold_mae.len(), 5);
        assert!(
            report.mean_mae < 1e-4,
            "exact linear fit: {}",
            report.mean_mae
        );
        assert!(report.mean_sos > 0.99);
    }

    #[test]
    fn cross_validation_with_n_below_k_still_covers_every_row() {
        let rows: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64]).collect();
        let ys: Vec<Vec<f64>> = rows.iter().map(|r| vec![r[0], 1.0 - r[0]]).collect();
        let d = MlDataset::new(
            Matrix::from_rows(&rows),
            Matrix::from_rows(&ys),
            vec!["x".into()],
        )
        .unwrap();
        // k = 10 > n = 4: capped to 4 leave-one-out folds, no vacuous 0.0s.
        let report = cross_validate(ModelKind::Mean, &d, 10, 3).unwrap();
        assert_eq!(report.fold_mae.len(), 4);
        assert!(report.fold_mae.iter().all(|&m| m > 0.0));
    }

    #[test]
    fn cross_validation_rejects_single_sample() {
        let d = MlDataset::new(
            Matrix::from_rows(&[vec![1.0]]),
            Matrix::from_rows(&[vec![1.0]]),
            vec!["x".into()],
        )
        .unwrap();
        assert!(cross_validate(ModelKind::Mean, &d, 5, 1).is_err());
    }
}
