//! Quantized bin-indexed inference engine: integer node compares,
//! branchless multi-lane traversal, and a first-class single-row path.
//!
//! The compiled flat ensemble ([`crate::compiled`]) still compares an
//! `f64` row value against an `f64` threshold at every node. But every
//! split threshold a trained tree can hold is a **bin edge** of the
//! training-time [`crate::binning::QuantileBinner`] — there are at most
//! `max_bins` (≤ 255) distinct thresholds per feature across the whole
//! ensemble. This module exploits that:
//!
//! * **Quantization.** At compile time the engine collects, per feature,
//!   the sorted distinct thresholds used anywhere in the ensemble (its
//!   *cuts*) and replaces each node's `f64` threshold with the cut's
//!   index — a `u8` bin id when every feature has ≤ 255 cuts (always the
//!   case for trained models), `u16` otherwise. At predict time each row
//!   is **pre-binned once** (`bin(v) = |{cut < v}|`, NaN ↦ `n_cuts`) and
//!   every node visit becomes an integer compare: for a node holding cut
//!   `j` of feature `f`,
//!
//!   `v <= cuts[f][j]  ⟺  bin(v) <= j`     (and NaN > every `j`)
//!
//!   because `bin(v) <= j` holds iff fewer than `j + 1` cuts are below
//!   `v`, i.e. iff `cuts[f][j] >= v`. The mapping is exact — the builder
//!   asserts every threshold is literally one of the feature's cuts — so
//!   the quantized engine selects *the same leaf* as the f64 engine and
//!   its output is **bit-identical**, not approximately equal.
//!
//! * **Branchless 8-row lanes.** The batch kernel keeps trees in the
//!   outer loop (node arrays stay cache-resident) and walks [`LANES`]
//!   rows per tree in lockstep: each step is mask-arithmetic
//!   (`next = internal ? child + go_right : stay`), giving eight
//!   independent dependency chains that hide node-load latency, with the
//!   only branch being the shared "all lanes done" exit. Node state is
//!   7–8 bytes (`u16` feature + `u8`/`u16` bin + `u32` child) instead of
//!   the f64 engine's 16.
//!
//! * **Interleaved single-row packing.** A second copy of the node
//!   arrays groups trees into packs of [`LANES`] and lays each pack out
//!   breadth-first *across* its trees (all roots adjacent, then every
//!   pack tree's level-1 nodes, ...). Single-row prediction walks the
//!   pack's trees in lockstep, so one cache line feeds up to eight trees
//!   at the hot top levels — the layout that makes single-row latency
//!   beat the reference traversal instead of trailing it.
//!
//! * **`simd` feature.** An optional `core::arch` AVX2 kernel (runtime
//!   `is_x86_feature_detected!`) replaces the scalar lane step with
//!   gathered loads over a fused `feature << 16 | bin` array. It selects
//!   the same leaves by the same integer compares, so outputs remain
//!   bit-identical to the scalar kernel and the f64 reference.
//!
//! Accumulation order is unchanged from the reference per-row loop
//! (trees in chain order per row, forest `1/n` applied after the sum),
//! so all engines agree to the last bit at any thread count.

use crate::compiled::{CompiledEnsemble, LeafLayout, LEAF_BIT};
use crate::matrix::Matrix;
use std::sync::OnceLock;

/// Rows (batch kernel) or trees (single-row kernel) walked in lockstep.
pub const LANES: usize = 8;

/// Rows per traversal block in the batch kernel; matches the f64
/// engine's block size (see [`crate::compiled::BLOCK_ROWS`]).
pub const BLOCK_ROWS: usize = crate::compiled::BLOCK_ROWS;

/// Features binned on the stack in the single-row path; wider rows fall
/// back to one heap allocation.
const STACK_FEATURES: usize = 256;

/// Integer bin-id storage: `u8` for trained models (≤ 255 cuts per
/// feature), `u16` for ensembles with more distinct thresholds.
pub(crate) trait BinId: Copy + Ord + std::fmt::Debug + Send + Sync + 'static {
    /// The zero bin (padding for leaf slots).
    const ZERO: Self;
    /// Widen to `u32` (simd meta array).
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    fn to_u32(self) -> u32;
    /// Narrow from `usize`; the builder guarantees the value fits.
    fn from_usize(v: usize) -> Self;
}

impl BinId for u8 {
    const ZERO: Self = 0;
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    fn to_u32(self) -> u32 {
        u32::from(self)
    }
    fn from_usize(v: usize) -> Self {
        debug_assert!(v <= u8::MAX as usize);
        v as u8
    }
}

impl BinId for u16 {
    const ZERO: Self = 0;
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    fn to_u32(self) -> u32 {
        u32::from(self)
    }
    fn from_usize(v: usize) -> Self {
        debug_assert!(v <= u16::MAX as usize);
        v as u16
    }
}

/// Width-specific node arrays: the sequential layout (batch kernel) and
/// the interleaved pack layout (single-row kernel).
#[derive(Debug, Clone)]
struct Engine<B> {
    /// Split feature per node (0 for leaves).
    feature: Vec<u16>,
    /// Quantized threshold per node: index of the node's cut within
    /// `cuts[feature]` (0 for leaves).
    bin: Vec<B>,
    /// Packed topology per node: left-child index (right sibling at
    /// `+1`), or `LEAF_BIT | leaf-arena offset` — same encoding as the
    /// f64 engine.
    child: Vec<u32>,
    /// Interleaved re-layout of `feature` for tree packs.
    pk_feature: Vec<u16>,
    /// Interleaved re-layout of `bin`.
    pk_bin: Vec<B>,
    /// Interleaved re-layout of `child` (indices into the pk arrays).
    pk_child: Vec<u32>,
    /// First slot of each pack; pack `p` holding `m` trees has its roots
    /// at slots `pack_start[p] .. pack_start[p] + m`.
    pack_start: Vec<u32>,
    /// Fused `feature << 16 | bin` per sequential node, for gathers.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    featbin: Vec<u32>,
    /// Fused `feature << 16 | bin` per packed node.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    pk_featbin: Vec<u32>,
}

/// Bin-width dispatch: one engine instantiation per id width.
#[derive(Debug, Clone)]
enum Nodes {
    U8(Engine<u8>),
    U16(Engine<u16>),
}

/// A compiled ensemble re-quantized for integer traversal.
///
/// Built from the f64 [`CompiledEnsemble`] (usually via the lazy cache
/// inside [`crate::gbt::GbtRegressor`] / [`crate::forest::ForestRegressor`])
/// and queried with [`QuantizedEnsemble::predict`]. Derived data: never
/// serialised, rebuilt on first use after deserialisation.
#[derive(Debug, Clone)]
pub struct QuantizedEnsemble {
    n_outputs: usize,
    n_features: usize,
    /// Per-feature ascending distinct split thresholds ("cuts").
    cuts: Vec<Vec<f64>>,
    /// Root node index of each tree in the sequential layout, in
    /// reference accumulation order.
    roots: Vec<u32>,
    /// Leaf-value arena shared with the f64 engine's encoding (GBT
    /// leaves pre-scaled by the learning rate, forests unscaled).
    leaves: Vec<f64>,
    layout: LeafLayout,
    /// Per-output accumulator seed (GBT base scores; zero for forests).
    base: Vec<f64>,
    /// Final per-element multiplier (1/n_trees for forests, 1 for GBT).
    scale: f64,
    nodes: Nodes,
}

impl QuantizedEnsemble {
    /// Quantize a compiled f64 ensemble. `n_features` is the width of
    /// the rows the model predicts on (`feature_names.len()`).
    ///
    /// Panics if a split threshold is non-finite or a split feature is
    /// out of range — impossible for trained models (training data is
    /// validated finite and thresholds are binner cut values), and a
    /// hard invariant violation for hand-built trees.
    pub fn from_compiled(c: &CompiledEnsemble, n_features: usize) -> Self {
        let _span = mphpc_telemetry::span!("quantized.build", nodes = c.n_nodes());
        assert!(
            n_features <= u16::MAX as usize,
            "quantized engine supports at most 65535 features"
        );
        let mut cuts: Vec<Vec<f64>> = vec![Vec::new(); n_features];
        for i in 0..c.child.len() {
            if c.child[i] & LEAF_BIT == 0 {
                let f = c.feature[i] as usize;
                assert!(f < n_features, "split feature {f} out of range");
                let t = c.threshold[i];
                assert!(
                    t.is_finite(),
                    "split thresholds must be finite bin edges (got {t})"
                );
                cuts[f].push(t);
            }
        }
        for fc in &mut cuts {
            fc.sort_by(|a, b| a.partial_cmp(b).expect("cuts are finite"));
            fc.dedup();
        }
        let max_cuts = cuts.iter().map(Vec::len).max().unwrap_or(0);
        // The row-binning sentinel for NaN is `cuts.len()`, so the id
        // type must hold `max_cuts`, not just `max_cuts - 1`.
        assert!(
            max_cuts < u16::MAX as usize,
            "more than 65534 distinct thresholds on one feature"
        );
        let nodes = if max_cuts <= u8::MAX as usize {
            Nodes::U8(Engine::<u8>::build(c, &cuts))
        } else {
            Nodes::U16(Engine::<u16>::build(c, &cuts))
        };
        let engine = Self {
            n_outputs: c.n_outputs,
            n_features,
            cuts,
            roots: c.roots.clone(),
            leaves: c.leaves.clone(),
            layout: c.layout.clone(),
            base: c.base.clone(),
            scale: c.scale,
            nodes,
        };
        mphpc_telemetry::gauge_set("ml.quantized.node_bytes", engine.node_bytes() as f64);
        mphpc_telemetry::gauge_set("ml.quantized.leaf_bytes", engine.leaf_bytes() as f64);
        engine
    }

    /// Number of output columns.
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Bits per stored bin id (8 or 16).
    pub fn bin_bits(&self) -> u32 {
        match &self.nodes {
            Nodes::U8(_) => 8,
            Nodes::U16(_) => 16,
        }
    }

    /// Bytes held by node arrays (sequential + interleaved layouts, and
    /// the fused simd arrays when compiled in).
    pub fn node_bytes(&self) -> usize {
        match &self.nodes {
            Nodes::U8(e) => e.node_bytes(),
            Nodes::U16(e) => e.node_bytes(),
        }
    }

    /// Bytes held by the leaf arena.
    pub fn leaf_bytes(&self) -> usize {
        self.leaves.len() * std::mem::size_of::<f64>()
    }

    /// Predict the `n × n_outputs` target matrix for `n` feature rows.
    ///
    /// Rows below [`LANES`] take the interleaved single-row path (no
    /// parallel dispatch, packs of trees walked in lockstep); larger
    /// batches run the blocked lane kernel, parallelised over
    /// [`BLOCK_ROWS`]-row blocks. Output is bit-identical to the f64
    /// engine and the reference traversal at any thread count.
    pub fn predict(&self, x: &Matrix) -> Matrix {
        let k = self.n_outputs;
        let mut out = Matrix::zeros(x.rows(), k);
        if k == 0 || x.rows() == 0 {
            return out;
        }
        assert_eq!(x.cols(), self.n_features, "feature count mismatch");
        let _span = mphpc_telemetry::span!(
            "quantized.predict",
            rows = x.rows(),
            trees = self.roots.len()
        );
        mphpc_telemetry::counter_add("ml.compiled.rows_predicted", x.rows() as u64);
        if x.rows() < LANES {
            mphpc_telemetry::counter_add("ml.compiled.path.quantized_single", x.rows() as u64);
            for i in 0..x.rows() {
                self.predict_one(x.row(i), out.row_mut(i));
            }
        } else {
            mphpc_telemetry::counter_add("ml.compiled.path.quantized_batch", 1);
            if x.rows() <= BLOCK_ROWS {
                self.predict_block(x, 0, out.as_mut_slice());
            } else {
                mphpc_par::par_chunks_mut(out.as_mut_slice(), BLOCK_ROWS * k, |block, chunk| {
                    self.predict_block(x, block * BLOCK_ROWS, chunk);
                });
            }
        }
        out
    }

    /// Bin one row: `out[f] = |{cut < v}|`, NaN ↦ `n_cuts` (a sentinel
    /// above every node bin, reproducing the reference "NaN goes right").
    fn bin_row<B: BinId>(cuts: &[Vec<f64>], row: &[f64], out: &mut [B]) {
        for ((v, fc), o) in row.iter().zip(cuts).zip(out.iter_mut()) {
            *o = if v.is_nan() {
                B::from_usize(fc.len())
            } else {
                B::from_usize(fc.partition_point(|c| c < v))
            };
        }
    }

    /// Predict one block of rows starting at `row0` into `out`
    /// (row-major, `n_outputs` wide, length determines the block size).
    fn predict_block(&self, x: &Matrix, row0: usize, out: &mut [f64]) {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if avx2_enabled() {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { self.predict_block_avx2(x, row0, out) };
            return;
        }
        match &self.nodes {
            Nodes::U8(e) => self.predict_block_scalar(e, x, row0, out),
            Nodes::U16(e) => self.predict_block_scalar(e, x, row0, out),
        }
    }

    fn predict_block_scalar<B: BinId>(
        &self,
        e: &Engine<B>,
        x: &Matrix,
        row0: usize,
        out: &mut [f64],
    ) {
        let k = self.n_outputs;
        let p = self.n_features;
        let n = out.len() / k;
        debug_assert!(n <= BLOCK_ROWS);
        for row_out in out.chunks_exact_mut(k) {
            row_out.copy_from_slice(&self.base);
        }
        // Pre-bin the block once; every node compare below is integer.
        let mut binned = vec![B::ZERO; n * p];
        for (r, chunk) in binned.chunks_exact_mut(p).enumerate() {
            Self::bin_row(&self.cuts, x.row(row0 + r), chunk);
        }
        let mut leaf_off = [0u32; BLOCK_ROWS];
        for (t, &root) in self.roots.iter().enumerate() {
            let mut r = 0;
            while r < n {
                let lanes = (n - r).min(LANES);
                // Tail lanes re-walk the last valid row: harmless, and it
                // keeps the kernel a single branchless shape.
                let mut bases = [0usize; LANES];
                for (l, b) in bases.iter_mut().enumerate() {
                    *b = (r + l.min(lanes - 1)) * p;
                }
                let offs = e.walk_seq(&binned, &bases, root);
                leaf_off[r..r + lanes].copy_from_slice(&offs[..lanes]);
                r += lanes;
            }
            self.accumulate_tree(t, &leaf_off[..n], out);
        }
        if self.scale != 1.0 {
            for o in out.iter_mut() {
                *o *= self.scale;
            }
        }
    }

    /// Single-row prediction over the interleaved pack layout.
    fn predict_one(&self, row: &[f64], out: &mut [f64]) {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if avx2_enabled() {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { self.predict_one_avx2(row, out) };
            return;
        }
        match &self.nodes {
            Nodes::U8(e) => self.predict_one_scalar(e, row, out),
            Nodes::U16(e) => self.predict_one_scalar(e, row, out),
        }
    }

    fn predict_one_scalar<B: BinId>(&self, e: &Engine<B>, row: &[f64], out: &mut [f64]) {
        out.copy_from_slice(&self.base);
        let p = self.n_features;
        let mut stack = [B::ZERO; STACK_FEATURES];
        let mut heap = Vec::new();
        let binned: &mut [B] = if p <= STACK_FEATURES {
            &mut stack[..p]
        } else {
            heap.resize(p, B::ZERO);
            &mut heap
        };
        Self::bin_row(&self.cuts, row, binned);
        for (pi, pack) in self.roots.chunks(LANES).enumerate() {
            let offs = e.walk_pack(binned, pi, pack.len());
            for (l, &off) in offs[..pack.len()].iter().enumerate() {
                self.accumulate_tree(pi * LANES + l, std::slice::from_ref(&off), out);
            }
        }
        if self.scale != 1.0 {
            for o in out.iter_mut() {
                *o *= self.scale;
            }
        }
    }

    /// Add tree `t`'s leaf contributions (`offs[r]` per output row) to
    /// `out`, preserving the reference accumulation order.
    fn accumulate_tree(&self, t: usize, offs: &[u32], out: &mut [f64]) {
        let k = self.n_outputs;
        match &self.layout {
            LeafLayout::ScalarPerTree(cols) => {
                let j = cols[t] as usize;
                for (row_out, &off) in out.chunks_exact_mut(k).zip(offs) {
                    row_out[j] += self.leaves[off as usize];
                }
            }
            LeafLayout::Vector => {
                for (row_out, &off) in out.chunks_exact_mut(k).zip(offs) {
                    let leaf = &self.leaves[off as usize..off as usize + k];
                    for (o, &v) in row_out.iter_mut().zip(leaf) {
                        *o += v;
                    }
                }
            }
        }
    }
}

impl<B: BinId> Engine<B> {
    /// Lower the compiled arrays to quantized form and build the
    /// interleaved pack layout.
    fn build(c: &CompiledEnsemble, cuts: &[Vec<f64>]) -> Self {
        let n = c.child.len();
        let mut feature = vec![0u16; n];
        let mut bin = vec![B::ZERO; n];
        for i in 0..n {
            if c.child[i] & LEAF_BIT == 0 {
                let f = c.feature[i] as usize;
                let j = cuts[f]
                    .binary_search_by(|probe| {
                        probe.partial_cmp(&c.threshold[i]).expect("cuts are finite")
                    })
                    .expect("every split threshold is one of its feature's bin edges");
                feature[i] = f as u16;
                bin[i] = B::from_usize(j);
            }
        }
        // Interleaved packing: one BFS per pack, seeded with all of the
        // pack's roots, so slot order is "level 0 of every pack tree,
        // then level 1 of every pack tree, ...". `src[slot]` remembers
        // which sequential node each packed slot mirrors.
        let mut src: Vec<u32> = Vec::with_capacity(n);
        let mut pk_child: Vec<u32> = Vec::with_capacity(n);
        let mut pack_start = Vec::with_capacity(c.roots.len().div_ceil(LANES));
        for pack in c.roots.chunks(LANES) {
            pack_start.push(src.len() as u32);
            let mut head = src.len();
            src.extend_from_slice(pack);
            pk_child.resize(src.len(), 0);
            while head < src.len() {
                let cc = c.child[src[head] as usize];
                if cc & LEAF_BIT != 0 {
                    pk_child[head] = cc;
                } else {
                    let slot = src.len() as u32;
                    pk_child[head] = slot;
                    src.push(cc);
                    src.push(cc + 1);
                    pk_child.resize(src.len(), 0);
                }
                head += 1;
            }
        }
        debug_assert_eq!(src.len(), n);
        let mut pk_feature = vec![0u16; n];
        let mut pk_bin = vec![B::ZERO; n];
        for (slot, &s) in src.iter().enumerate() {
            pk_feature[slot] = feature[s as usize];
            pk_bin[slot] = bin[s as usize];
        }
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        let (featbin, pk_featbin) = (
            fuse_featbin(&feature, &bin),
            fuse_featbin(&pk_feature, &pk_bin),
        );
        Self {
            feature,
            bin,
            child: c.child.clone(),
            pk_feature,
            pk_bin,
            pk_child,
            pack_start,
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            featbin,
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            pk_featbin,
        }
    }

    fn node_bytes(&self) -> usize {
        let per_node =
            std::mem::size_of::<u16>() + std::mem::size_of::<B>() + std::mem::size_of::<u32>();
        let bytes =
            2 * self.child.len() * per_node + self.pack_start.len() * std::mem::size_of::<u32>();
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        let bytes =
            bytes + (self.featbin.len() + self.pk_featbin.len()) * std::mem::size_of::<u32>();
        bytes
    }

    /// Walk up to [`LANES`] rows through one sequential-layout tree in
    /// lockstep. `bases[l]` is lane `l`'s offset into `binned`.
    #[inline]
    fn walk_seq(&self, binned: &[B], bases: &[usize; LANES], root: u32) -> [u32; LANES] {
        walk(
            &self.feature,
            &self.bin,
            &self.child,
            binned,
            bases,
            [root; LANES],
        )
    }

    /// Walk one row through pack `pi` (holding `lanes` trees) of the
    /// interleaved layout, all trees in lockstep.
    #[inline]
    fn walk_pack(&self, binned: &[B], pi: usize, lanes: usize) -> [u32; LANES] {
        let start = self.pack_start[pi];
        let mut roots = [start; LANES];
        for (l, r) in roots.iter_mut().enumerate() {
            // Tail lanes re-walk the pack's last tree; their result is
            // ignored by the caller.
            *r = start + l.min(lanes - 1) as u32;
        }
        walk(
            &self.pk_feature,
            &self.pk_bin,
            &self.pk_child,
            binned,
            &[0usize; LANES],
            roots,
        )
    }
}

/// The branchless lockstep kernel shared by both layouts: every lane
/// either steps to `child + go_right` (internal node) or stays put
/// (leaf), selected by mask arithmetic; the loop exits once every lane
/// sits on a leaf. Returns each lane's leaf-arena offset.
#[inline]
fn walk<B: BinId>(
    feature: &[u16],
    bin: &[B],
    child: &[u32],
    binned: &[B],
    bases: &[usize; LANES],
    mut idx: [u32; LANES],
) -> [u32; LANES] {
    loop {
        let mut active = 0u32;
        for (i, &base) in idx.iter_mut().zip(bases) {
            let cur = *i as usize;
            // SAFETY: builder invariants — node indices (roots and child
            // links) are < the array length, `feature[cur] < n_features`,
            // and `base + n_features <= binned.len()`; all arrays are the
            // same length by construction.
            let c = unsafe { *child.get_unchecked(cur) };
            let internal = u32::from(c & LEAF_BIT == 0);
            let f = unsafe { *feature.get_unchecked(cur) } as usize;
            let rb = unsafe { *binned.get_unchecked(base + f) };
            let nb = unsafe { *bin.get_unchecked(cur) };
            let go_right = u32::from(rb > nb);
            let step_mask = internal.wrapping_neg();
            *i = ((c.wrapping_add(go_right)) & step_mask) | (*i & !step_mask);
            active |= internal;
        }
        if active == 0 {
            break;
        }
    }
    let mut offs = [0u32; LANES];
    for (o, &i) in offs.iter_mut().zip(&idx) {
        *o = child[i as usize] & !LEAF_BIT;
    }
    offs
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn fuse_featbin<B: BinId>(feature: &[u16], bin: &[B]) -> Vec<u32> {
    feature
        .iter()
        .zip(bin)
        .map(|(&f, &b)| (u32::from(f) << 16) | b.to_u32())
        .collect()
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn avx2_enabled() -> bool {
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// The width-independent arrays the AVX2 kernel gathers from.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
struct SimdView<'a> {
    featbin: &'a [u32],
    child: &'a [u32],
    pk_featbin: &'a [u32],
    pk_child: &'a [u32],
    pack_start: &'a [u32],
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
impl QuantizedEnsemble {
    fn simd_view(&self) -> SimdView<'_> {
        let (featbin, child, pk_featbin, pk_child, pack_start) = match &self.nodes {
            Nodes::U8(e) => (
                &e.featbin,
                &e.child,
                &e.pk_featbin,
                &e.pk_child,
                &e.pack_start,
            ),
            Nodes::U16(e) => (
                &e.featbin,
                &e.child,
                &e.pk_featbin,
                &e.pk_child,
                &e.pack_start,
            ),
        };
        SimdView {
            featbin,
            child,
            pk_featbin,
            pk_child,
            pack_start,
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    unsafe fn predict_block_avx2(&self, x: &Matrix, row0: usize, out: &mut [f64]) {
        let k = self.n_outputs;
        let p = self.n_features;
        let n = out.len() / k;
        for row_out in out.chunks_exact_mut(k) {
            row_out.copy_from_slice(&self.base);
        }
        // One padding element: the 32-bit gather of the last u16 bin
        // reads two bytes past it.
        let mut binned = vec![0u16; n * p + 1];
        for (r, chunk) in binned[..n * p].chunks_exact_mut(p).enumerate() {
            Self::bin_row(&self.cuts, x.row(row0 + r), chunk);
        }
        let v = self.simd_view();
        let mut leaf_off = [0u32; BLOCK_ROWS];
        for (t, &root) in self.roots.iter().enumerate() {
            let mut r = 0;
            while r < n {
                let lanes = (n - r).min(LANES);
                let mut bases = [0i32; LANES];
                for (l, b) in bases.iter_mut().enumerate() {
                    *b = ((r + l.min(lanes - 1)) * p) as i32;
                }
                let offs = simd::walk8(v.featbin, v.child, &binned, bases, [root; LANES]);
                leaf_off[r..r + lanes].copy_from_slice(&offs[..lanes]);
                r += lanes;
            }
            self.accumulate_tree(t, &leaf_off[..n], out);
        }
        if self.scale != 1.0 {
            for o in out.iter_mut() {
                *o *= self.scale;
            }
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    unsafe fn predict_one_avx2(&self, row: &[f64], out: &mut [f64]) {
        out.copy_from_slice(&self.base);
        let p = self.n_features;
        let mut stack = [0u16; STACK_FEATURES + 1];
        let mut heap = Vec::new();
        let binned: &mut [u16] = if p <= STACK_FEATURES {
            &mut stack[..p + 1]
        } else {
            heap.resize(p + 1, 0u16);
            &mut heap
        };
        Self::bin_row(&self.cuts, row, &mut binned[..p]);
        let v = self.simd_view();
        for (pi, pack) in self.roots.chunks(LANES).enumerate() {
            let start = v.pack_start[pi];
            let mut roots = [start; LANES];
            for (l, r) in roots.iter_mut().enumerate() {
                *r = start + l.min(pack.len() - 1) as u32;
            }
            let offs = simd::walk8(v.pk_featbin, v.pk_child, binned, [0i32; LANES], roots);
            for (l, &off) in offs[..pack.len()].iter().enumerate() {
                self.accumulate_tree(pi * LANES + l, std::slice::from_ref(&off), out);
            }
        }
        if self.scale != 1.0 {
            for o in out.iter_mut() {
                *o *= self.scale;
            }
        }
    }
}

/// AVX2 lockstep traversal: gathered child/meta loads, compare, blend.
/// Selects the same leaves as the scalar kernel (identical integer
/// compares), so outputs are bit-identical.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd {
    use super::{LANES, LEAF_BIT};
    use core::arch::x86_64::*;

    /// Walk 8 lanes to their leaves and return the leaf-arena offsets.
    ///
    /// `featbin[i] = feature << 16 | bin`; `binned` holds u16 row bins
    /// with **at least one padding element** after the last addressable
    /// bin (the 32-bit gather overreads two bytes); `bases[l]` is lane
    /// `l`'s element offset into `binned`.
    ///
    /// # Safety
    /// Requires AVX2. Array invariants as in the scalar kernel, plus the
    /// padding requirement above.
    #[target_feature(enable = "avx2")]
    pub unsafe fn walk8(
        featbin: &[u32],
        child: &[u32],
        binned: &[u16],
        bases: [i32; LANES],
        roots: [u32; LANES],
    ) -> [u32; LANES] {
        debug_assert!(binned.len() >= 2); // padded
        let leaf = _mm256_set1_epi32(LEAF_BIT as i32);
        let zero = _mm256_setzero_si256();
        let low16 = _mm256_set1_epi32(0xFFFF);
        let base = _mm256_loadu_si256(bases.as_ptr() as *const __m256i);
        let mut idx = _mm256_loadu_si256(roots.as_ptr() as *const __m256i);
        loop {
            let c = _mm256_i32gather_epi32::<4>(child.as_ptr() as *const i32, idx);
            // All-ones lanes where the node is internal.
            let internal = _mm256_cmpeq_epi32(_mm256_and_si256(c, leaf), zero);
            if _mm256_testz_si256(internal, internal) != 0 {
                break;
            }
            let fb = _mm256_i32gather_epi32::<4>(featbin.as_ptr() as *const i32, idx);
            let f = _mm256_srli_epi32::<16>(fb);
            let node_bin = _mm256_and_si256(fb, low16);
            let bin_idx = _mm256_add_epi32(base, f);
            let row_bin = _mm256_and_si256(
                _mm256_i32gather_epi32::<2>(binned.as_ptr() as *const i32, bin_idx),
                low16,
            );
            // go_right mask is -1, so subtracting it adds one: the right
            // sibling lives at `left + 1`.
            let gt = _mm256_cmpgt_epi32(row_bin, node_bin);
            let next = _mm256_sub_epi32(c, gt);
            idx = _mm256_blendv_epi8(idx, next, internal);
        }
        let c = _mm256_i32gather_epi32::<4>(child.as_ptr() as *const i32, idx);
        let off = _mm256_andnot_si256(leaf, c);
        let mut out = [0u32; LANES];
        _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, off);
        out
    }
}

/// Lazily-built quantized form attached to a trained ensemble.
///
/// Derived data, excluded from serialisation/equality/cloning exactly
/// like [`crate::compiled::LazyCompiled`]: a deserialised or cloned
/// model re-quantizes transparently on first prediction.
#[derive(Default)]
pub struct LazyQuantized(OnceLock<QuantizedEnsemble>);

impl LazyQuantized {
    /// The quantized ensemble, building it with `build` on first access.
    pub(crate) fn get_or_build(
        &self,
        build: impl FnOnce() -> QuantizedEnsemble,
    ) -> &QuantizedEnsemble {
        self.0.get_or_init(|| {
            mphpc_telemetry::counter_add("ml.quantized.builds", 1);
            build()
        })
    }
}

impl Clone for LazyQuantized {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl PartialEq for LazyQuantized {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl std::fmt::Debug for LazyQuantized {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.get() {
            Some(q) => write!(f, "LazyQuantized({} trees, u{})", q.n_trees(), q.bin_bits()),
            None => write!(f, "LazyQuantized(empty)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{Node, Tree};

    fn probe(compiled: &CompiledEnsemble, q: &QuantizedEnsemble, tree: &Tree, rows: &[Vec<f64>]) {
        let x = Matrix::from_rows(rows);
        let got = q.predict(&x);
        let f64_engine = compiled.predict(&x);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(got.row(i), tree.predict_row(row), "row {row:?}");
            assert_eq!(got.row(i), f64_engine.row(i), "row {row:?} vs f64");
        }
    }

    #[test]
    fn handmade_tree_boundary_and_nan_routing() {
        let tree = Tree {
            nodes: vec![
                Node::Split {
                    feature: 0,
                    threshold: 0.0,
                    left: 1,
                    right: 2,
                },
                Node::Split {
                    feature: 1,
                    threshold: -0.5,
                    left: 3,
                    right: 4,
                },
                Node::Leaf(vec![3.0, -3.0]),
                Node::Leaf(vec![1.0, 10.0]),
                Node::Leaf(vec![2.0, 20.0]),
            ],
        };
        let compiled = CompiledEnsemble::from_forest(std::slice::from_ref(&tree), 2);
        let q = QuantizedEnsemble::from_compiled(&compiled, 2);
        assert_eq!(q.bin_bits(), 8);
        assert_eq!(q.n_trees(), 1);
        probe(
            &compiled,
            &q,
            &tree,
            &[
                vec![-1.0, -1.0],
                vec![-1.0, -0.5], // boundary on the inner split: goes left
                vec![0.0, -0.7],  // boundary on the root: goes left
                vec![0.5, 9.0],
                vec![f64::NAN, 0.0],      // NaN at the root: right
                vec![-1.0, f64::NAN],     // NaN below: right
                vec![f64::INFINITY, 0.0], // +inf: right
                vec![f64::NEG_INFINITY, f64::NEG_INFINITY], // -inf: left twice
            ],
        );
    }

    #[test]
    fn single_leaf_tree_and_unused_features() {
        // No splits at all: every feature has zero cuts, every row lands
        // on the root leaf.
        let tree = Tree {
            nodes: vec![Node::Leaf(vec![7.5])],
        };
        let compiled = CompiledEnsemble::from_forest(std::slice::from_ref(&tree), 1);
        let q = QuantizedEnsemble::from_compiled(&compiled, 3);
        probe(
            &compiled,
            &q,
            &tree,
            &[vec![0.0, 1.0, 2.0], vec![f64::NAN, -1.0, 9.9]],
        );
    }

    #[test]
    fn many_thresholds_fall_back_to_u16() {
        // A right-leaning chain with 300 distinct thresholds on one
        // feature: exceeds u8 bins, must select the u16 engine and stay
        // exact.
        let depth = 300usize;
        let mut nodes = Vec::with_capacity(2 * depth + 1);
        for i in 0..depth {
            nodes.push(Node::Split {
                feature: 0,
                threshold: i as f64,
                left: depth + 1 + i,
                right: if i + 1 < depth { i + 1 } else { depth },
            });
        }
        nodes.push(Node::Leaf(vec![-1.0]));
        for i in 0..depth {
            nodes.push(Node::Leaf(vec![i as f64]));
        }
        let tree = Tree { nodes };
        let compiled = CompiledEnsemble::from_forest(std::slice::from_ref(&tree), 1);
        let q = QuantizedEnsemble::from_compiled(&compiled, 1);
        assert_eq!(q.bin_bits(), 16);
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 * 8.3 - 10.0]).collect();
        probe(&compiled, &q, &tree, &rows);
    }

    #[test]
    fn pack_layout_interleaves_roots() {
        // Three identical stumps compile into one pack whose three roots
        // occupy the first three packed slots.
        let tree = Tree {
            nodes: vec![
                Node::Split {
                    feature: 0,
                    threshold: 0.5,
                    left: 1,
                    right: 2,
                },
                Node::Leaf(vec![1.0]),
                Node::Leaf(vec![2.0]),
            ],
        };
        let trees = vec![tree.clone(), tree.clone(), tree];
        let compiled = CompiledEnsemble::from_forest(&trees, 1);
        let q = QuantizedEnsemble::from_compiled(&compiled, 1);
        match &q.nodes {
            Nodes::U8(e) => {
                assert_eq!(e.pack_start, vec![0]);
                // Roots first (slots 0..3, all splits), then the six
                // leaves level-interleaved behind them.
                for slot in 0..3 {
                    assert_eq!(
                        e.pk_child[slot] & LEAF_BIT,
                        0,
                        "slot {slot} is a root split"
                    );
                }
                for slot in 3..9 {
                    assert_ne!(e.pk_child[slot] & LEAF_BIT, 0, "slot {slot} is a leaf");
                }
            }
            Nodes::U16(_) => panic!("stumps must quantize to u8"),
        }
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let out = q.predict(&x);
        assert_eq!(out.get(0, 0), 1.0);
        assert_eq!(out.get(1, 0), 2.0);
    }

    #[test]
    fn footprint_is_reported_and_smaller_than_f64_nodes() {
        let tree = Tree {
            nodes: vec![
                Node::Split {
                    feature: 0,
                    threshold: 0.5,
                    left: 1,
                    right: 2,
                },
                Node::Leaf(vec![1.0]),
                Node::Leaf(vec![2.0]),
            ],
        };
        let compiled = CompiledEnsemble::from_forest(std::slice::from_ref(&tree), 1);
        let q = QuantizedEnsemble::from_compiled(&compiled, 1);
        assert!(q.node_bytes() > 0);
        assert_eq!(q.leaf_bytes(), 2 * 8);
        // Per-node state (even counting both layouts) stays below the
        // f64 engine's 16 bytes per node per layout.
        let per_node_both_layouts = q.node_bytes() as f64 / (2.0 * compiled.n_nodes() as f64);
        assert!(
            per_node_both_layouts <= 16.0,
            "quantized node bytes per layout {per_node_both_layouts}"
        );
    }

    /// Release-mode acceptance report for the ISSUE 6 targets: quantized
    /// batch inference ≥2x over the f64 compiled engine at 5k/20k rows,
    /// and single-row quantized at least as fast as the reference
    /// traversal. Run with
    /// `cargo test -p mphpc-ml --release -- --ignored quantized_speedup_report --nocapture`
    /// (add `--features simd` for the AVX2 kernels); numbers land in
    /// EXPERIMENTS.md.
    #[test]
    #[ignore = "perf measurement; run explicitly in release mode"]
    fn quantized_speedup_report() {
        use crate::forest::{ForestParams, ForestRegressor};
        use crate::gbt::{GbtParams, GbtRegressor};
        use crate::MlDataset;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use std::time::Instant;

        fn synthetic(n: usize, p: usize, k: usize, seed: u64) -> MlDataset {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut x = Matrix::zeros(n, p);
            let mut y = Matrix::zeros(n, k);
            for i in 0..n {
                for j in 0..p {
                    x.set(i, j, rng.gen_range(-1.0..1.0));
                }
                for j in 0..k {
                    let v = x.get(i, j % p) * 2.0
                        + x.get(i, (j + 1) % p).powi(2)
                        + rng.gen_range(-0.01..0.01);
                    y.set(i, j, v);
                }
            }
            MlDataset::new(x, y, (0..p).map(|j| format!("f{j}")).collect()).unwrap()
        }

        // The paper's shape: 21 features, 4 outputs.
        let train = synthetic(4_000, 21, 4, 31);
        let gbt = GbtRegressor::fit(&train, GbtParams::default()).unwrap();
        let forest = ForestRegressor::fit(&train, ForestParams::default()).unwrap();
        // Warm every engine outside the timed region.
        gbt.compiled();
        gbt.quantized();
        forest.compiled();
        forest.quantized();

        let best_of = |f: &dyn Fn() -> Matrix| {
            let mut best = f64::INFINITY;
            let mut sink = 0.0;
            for _ in 0..5 {
                let t0 = Instant::now();
                let out = f();
                best = best.min(t0.elapsed().as_secs_f64());
                sink += out.get(0, 0);
            }
            (best, sink)
        };

        println!(
            "footprint: f64 nodes {} KiB vs quantized nodes {} KiB ({}-bit bins), leaves {} KiB",
            16 * gbt.compiled().n_nodes() / 1024,
            gbt.quantized().node_bytes() / 1024,
            gbt.quantized().bin_bits(),
            gbt.quantized().leaf_bytes() / 1024,
        );

        // Acceptance failures are collected so the whole report always
        // prints; the best ratio across thread modes is what gates (a
        // 1-core box makes per-mode timings jittery, the kernel doesn't
        // change between modes).
        let mut failures: Vec<String> = Vec::new();
        for rows in [5_000usize, 20_000] {
            let batch = synthetic(rows, 21, 4, 32);
            let mut best_ratio = [0.0f64; 2];
            for threads in [Some(1), None] {
                mphpc_par::set_thread_override(threads);
                let label = threads.map_or("all-threads".into(), |t| format!("{t}-thread"));
                for (which, (name, f64_t, q_t)) in [
                    (
                        "gbt",
                        best_of(&|| gbt.compiled().predict(&batch.x)).0,
                        best_of(&|| gbt.quantized().predict(&batch.x)).0,
                    ),
                    (
                        "forest",
                        best_of(&|| forest.compiled().predict(&batch.x)).0,
                        best_of(&|| forest.quantized().predict(&batch.x)).0,
                    ),
                ]
                .into_iter()
                .enumerate()
                {
                    println!(
                        "{name} {rows} rows [{label}]: f64 {:.1} ms, quantized {:.1} ms, {:.2}x",
                        f64_t * 1e3,
                        q_t * 1e3,
                        f64_t / q_t
                    );
                    best_ratio[which] = best_ratio[which].max(f64_t / q_t);
                }
            }
            for (which, name) in ["gbt", "forest"].into_iter().enumerate() {
                if best_ratio[which] < 2.0 {
                    failures.push(format!(
                        "acceptance: quantized {name} batch must be ≥2x the f64 engine \
                         at {rows} rows (best {:.2}x)",
                        best_ratio[which]
                    ));
                }
            }
        }
        mphpc_par::set_thread_override(None);

        // Single-row latency: per-call p50/p99 through the telemetry
        // histogram, plus the ≥1x-vs-reference acceptance gate.
        let probes = synthetic(2_000, 21, 4, 33);
        let rows: Vec<Matrix> = (0..probes.x.rows())
            .map(|i| Matrix::from_rows(&[probes.x.row(i).to_vec()]))
            .collect();
        let gbt_ref = |x: &Matrix| gbt.predict_reference(x).unwrap();
        let gbt_q = |x: &Matrix| gbt.quantized().predict(x);
        let forest_ref = |x: &Matrix| forest.predict_reference(x).unwrap();
        let forest_q = |x: &Matrix| forest.quantized().predict(x);
        type PredictFn<'a> = &'a dyn Fn(&Matrix) -> Matrix;
        let cases: [(&str, PredictFn, PredictFn); 2] = [
            ("gbt", &gbt_ref, &gbt_q),
            ("forest", &forest_ref, &forest_q),
        ];
        for (name, reference, quantized) in cases {
            let mut sink = 0.0;
            let mut time_all = |f: &dyn Fn(&Matrix) -> Matrix| {
                let mut hist = mphpc_telemetry::HistSummary::new();
                let mut total = 0.0;
                for x in &rows {
                    let t0 = Instant::now();
                    let out = f(x);
                    let dt = t0.elapsed().as_secs_f64();
                    hist.record(dt * 1e6); // µs
                    total += dt;
                    sink += out.get(0, 0);
                }
                (total, hist)
            };
            let (ref_total, ref_hist) = time_all(reference);
            let (q_total, q_hist) = time_all(quantized);
            println!(
                "{name} single-row: reference p50 {:.1} µs p99 {:.1} µs | \
                 quantized p50 {:.1} µs p99 {:.1} µs | {:.2}x (sink {sink:.1})",
                ref_hist.p50(),
                ref_hist.p99(),
                q_hist.p50(),
                q_hist.p99(),
                ref_total / q_total
            );
            if ref_total / q_total < 1.0 {
                failures.push(format!(
                    "acceptance: quantized single-row {name} must not lose to the \
                     reference ({:.2}x)",
                    ref_total / q_total
                ));
            }
        }
        // The ≥2x/≥1x gates target the default (scalar-lockstep) engine.
        // Under `--features simd` the run is an instrumented comparison:
        // on gather-slow microarchitectures the AVX2 kernels lose to the
        // scalar lockstep walk (see EXPERIMENTS.md), which is a finding,
        // not a regression.
        #[cfg(not(feature = "simd"))]
        assert!(failures.is_empty(), "{}", failures.join("\n"));
        #[cfg(feature = "simd")]
        if !failures.is_empty() {
            println!(
                "simd build missed scalar-engine gates (informational):\n{}",
                failures.join("\n")
            );
        }
    }
}
