//! Gradient-boosted trees in the XGBoost formulation (§VI-A of the paper).
//!
//! Squared-error objective with second-order updates: for round `t`, the
//! gradient of `½(ŷ−y)²` is `ŷ−y` and the hessian is `1`, so each tree fits
//! the regularised residual. Vector targets (RPVs) are handled the way the
//! XGBoost the paper used (v1.7) handles them: one booster chain per output
//! dimension; feature importance is averaged across outputs (§VI-B: "when
//! there are multiple regression targets the gain is averaged over each
//! output").

use crate::binning::QuantileBinner;
use crate::compiled::{CompiledEnsemble, LazyCompiled};
use crate::data::{check_feature_count, validate_training_data, MlDataset};
use crate::hist::HistLayout;
use crate::importance::FeatureImportance;
use crate::matrix::Matrix;
use crate::quantized::{LazyQuantized, QuantizedEnsemble};
use crate::tree::{build_gbt_tree_with, BinnedMatrix, PredUpdate, SplitStats, Tree, TreeParams};
use mphpc_errors::MphpcError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the boosted ensemble.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbtParams {
    /// Boosting rounds per output.
    pub n_rounds: usize,
    /// Shrinkage (XGBoost `eta`).
    pub learning_rate: f64,
    /// Tree-level parameters.
    pub tree: TreeParams,
    /// Row subsample fraction per round.
    pub subsample: f64,
    /// Quantile bins per feature.
    pub max_bins: usize,
    /// RNG seed for subsampling.
    pub seed: u64,
    /// Stop a booster early when its held-out MAE has not improved for
    /// this many rounds (`None` = train all rounds). The holdout is
    /// `validation_fraction` of the training rows, split off per output.
    pub early_stopping_rounds: Option<usize>,
    /// Fraction of training rows held out for early stopping.
    pub validation_fraction: f64,
}

impl Default for GbtParams {
    fn default() -> Self {
        Self {
            n_rounds: 120,
            learning_rate: 0.08,
            tree: TreeParams {
                max_depth: 9,
                lambda: 1.0,
                gamma: 0.0,
                min_child_weight: 2.0,
                colsample: 0.9,
            },
            subsample: 0.85,
            max_bins: 64,
            seed: 0x9B00573,
            early_stopping_rounds: None,
            validation_fraction: 0.1,
        }
    }
}

/// A trained boosted ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GbtRegressor {
    params: GbtParams,
    /// `boosters[k]` is the tree chain for output dimension `k`.
    boosters: Vec<Vec<Tree>>,
    /// Per-output base score (training-set mean).
    base_scores: Vec<f64>,
    /// Per-output split statistics, accumulated in round order. Kept
    /// per-booster (not pre-aggregated) so a warm-started continuation
    /// extends each accumulator in the same fold order a single
    /// longer training run would have used — bit-identical importances.
    booster_stats: Vec<SplitStats>,
    feature_names: Vec<String>,
    /// Lazily-built flat f64 inference form (derived; rebuilt after
    /// deserialisation or cloning on first predict).
    #[serde(skip)]
    compiled: LazyCompiled,
    /// Lazily-built quantized inference form (derived, like `compiled`).
    #[serde(skip)]
    quantized: LazyQuantized,
}

impl GbtRegressor {
    /// Train on a dataset.
    pub fn fit(dataset: &MlDataset, params: GbtParams) -> Result<Self, MphpcError> {
        validate_training_data(dataset, "GbtRegressor::fit")?;
        let n = dataset.n_samples();
        let k = dataset.n_outputs();
        let _fit_span = mphpc_telemetry::span!("gbt.fit", rows = n, outputs = k);
        let (binner, bins) = {
            let _bin_span = mphpc_telemetry::span!("gbt.fit.binning");
            mphpc_telemetry::counter_add("ml.binning.rows", (n * dataset.n_features()) as u64);
            let binner = QuantileBinner::fit(&dataset.x, params.max_bins);
            let bins = binner.transform(&dataset.x);
            (binner, bins)
        };
        let data = BinnedMatrix {
            bins: &bins,
            cols: dataset.n_features(),
            binner: &binner,
        };
        // One histogram layout serves every round of every booster chain.
        let layout = HistLayout::for_gbt(&binner);

        let base_scores: Vec<f64> = (0..k)
            .map(|j| dataset.y.col(j).iter().sum::<f64>() / n as f64)
            .collect();

        // Outputs are independent boosters — train them in parallel.
        let outputs: Vec<usize> = (0..k).collect();
        let trained: Vec<(Vec<Tree>, SplitStats)> = mphpc_par::par_map(&outputs, |_, &j| {
            let _booster_span = mphpc_telemetry::span!("gbt.fit.booster", output = j);
            let targets = dataset.y.col(j);

            // Early-stopping holdout: the last `validation_fraction` of a
            // seeded shuffle is never used to fit trees. The shuffle has
            // its own derived RNG so round randomness stays a pure
            // function of (seed, output, round).
            let (fit_rows, valid_rows): (Vec<u32>, Vec<u32>) = match params.early_stopping_rounds {
                Some(_) if n >= 20 => {
                    let mut rng = holdout_rng(params.seed, j);
                    let mut order: Vec<u32> = (0..n as u32).collect();
                    use rand::seq::SliceRandom;
                    order.shuffle(&mut rng);
                    let n_valid = ((n as f64 * params.validation_fraction.clamp(0.05, 0.5)).round()
                        as usize)
                        .clamp(1, n - 1);
                    let valid = order.split_off(n - n_valid);
                    (order, valid)
                }
                _ => ((0..n as u32).collect(), Vec::new()),
            };

            let mut pred = vec![base_scores[j]; n];
            let mut trees = Vec::with_capacity(params.n_rounds);
            let mut stats = SplitStats::new(dataset.n_features());
            boost_rounds(
                &data,
                &layout,
                &params,
                j,
                &targets,
                &fit_rows,
                &valid_rows,
                0,
                params.n_rounds,
                &mut pred,
                &mut trees,
                &mut stats,
            );
            (trees, stats)
        });

        let mut boosters = Vec::with_capacity(k);
        let mut booster_stats = Vec::with_capacity(k);
        for (trees, s) in trained {
            boosters.push(trees);
            booster_stats.push(s);
        }

        Ok(Self {
            params,
            boosters,
            base_scores,
            booster_stats,
            feature_names: dataset.feature_names.clone(),
            compiled: LazyCompiled::default(),
            quantized: LazyQuantized::default(),
        })
    }

    /// Continue boosting every output chain for `extra_rounds` more rounds
    /// on `dataset`, returning the extended model (`self` is unchanged).
    ///
    /// Per-round randomness is a pure function of `(seed, output, round)`,
    /// so on an unchanged dataset — and with early stopping disabled — a
    /// model trained for `b` rounds and continued for `k` is bit-identical
    /// to one trained for `b + k` rounds in a single process, at any
    /// thread count. On a grown dataset the continuation is still fully
    /// deterministic: base scores and the feature schema stay pinned by
    /// the original model while the new trees fit the current residuals.
    ///
    /// The early-stopping holdout is a fit-time concern and does not apply
    /// to continuations: all rows train, all `extra_rounds` run.
    pub fn warm_start(&self, dataset: &MlDataset, extra_rounds: usize) -> Result<Self, MphpcError> {
        validate_training_data(dataset, "GbtRegressor::warm_start")?;
        if dataset.feature_names != self.feature_names {
            return Err(MphpcError::InvalidArgument(format!(
                "GbtRegressor::warm_start: dataset features {:?} do not match the model's {:?}",
                dataset.feature_names, self.feature_names
            )));
        }
        if dataset.n_outputs() != self.boosters.len() {
            return Err(MphpcError::DimensionMismatch {
                context: "GbtRegressor::warm_start: output count",
                expected: self.boosters.len(),
                found: dataset.n_outputs(),
            });
        }
        let n = dataset.n_samples();
        let k = self.boosters.len();
        let params = self.params;
        let _span = mphpc_telemetry::span!("gbt.warm_start", rows = n, extra = extra_rounds);
        let binner = QuantileBinner::fit(&dataset.x, params.max_bins);
        let bins = binner.transform(&dataset.x);
        let data = BinnedMatrix {
            bins: &bins,
            cols: dataset.n_features(),
            binner: &binner,
        };
        let layout = HistLayout::for_gbt(&binner);

        let outputs: Vec<usize> = (0..k).collect();
        let continued: Vec<(Vec<Tree>, SplitStats)> = mphpc_par::par_map(&outputs, |_, &j| {
            let _booster_span = mphpc_telemetry::span!("gbt.warm_start.booster", output = j);
            let targets = dataset.y.col(j);
            let mut trees = self.boosters[j].clone();
            let mut stats = self.booster_stats[j].clone();
            // Rebuild the running prediction exactly as training left it:
            // base score plus η·leaf per tree, accumulated in round order
            // (the same additions fit performed, so the f64 bits match).
            let mut pred: Vec<f64> = (0..n)
                .map(|i| {
                    let row = dataset.x.row(i);
                    let mut v = self.base_scores[j];
                    for tree in &trees {
                        v += params.learning_rate * tree.predict_row(row)[0];
                    }
                    v
                })
                .collect();
            let fit_rows: Vec<u32> = (0..n as u32).collect();
            let start = trees.len();
            boost_rounds(
                &data,
                &layout,
                &params,
                j,
                &targets,
                &fit_rows,
                &[],
                start,
                extra_rounds,
                &mut pred,
                &mut trees,
                &mut stats,
            );
            (trees, stats)
        });

        let mut boosters = Vec::with_capacity(k);
        let mut booster_stats = Vec::with_capacity(k);
        for (trees, s) in continued {
            boosters.push(trees);
            booster_stats.push(s);
        }
        mphpc_telemetry::counter_add("ml.gbt.warm_starts", 1);
        Ok(Self {
            params: GbtParams {
                n_rounds: params.n_rounds + extra_rounds,
                ..params
            },
            boosters,
            base_scores: self.base_scores.clone(),
            booster_stats,
            feature_names: self.feature_names.clone(),
            compiled: LazyCompiled::default(),
            quantized: LazyQuantized::default(),
        })
    }

    /// Predict the target matrix for a feature matrix.
    ///
    /// Runs on the quantized bin-indexed engine ([`crate::quantized`]):
    /// rows are pre-binned once, node compares are integer tests, the
    /// learning-rate multiply is hoisted into compile-time leaf
    /// pre-scaling, and `base_scores` is applied once per row. Output is
    /// bit-identical to [`GbtRegressor::predict_reference`] (and to the
    /// f64 [`GbtRegressor::compiled`] engine) at any thread count.
    pub fn predict(&self, x: &Matrix) -> Result<Matrix, MphpcError> {
        check_feature_count("GbtRegressor::predict", self.feature_names.len(), x)?;
        Ok(self.quantized().predict(x))
    }

    /// Reference per-row enum-tree traversal, kept as the oracle the
    /// compiled engine is tested against.
    pub fn predict_reference(&self, x: &Matrix) -> Result<Matrix, MphpcError> {
        check_feature_count(
            "GbtRegressor::predict_reference",
            self.feature_names.len(),
            x,
        )?;
        let k = self.boosters.len();
        let mut out = Matrix::zeros(x.rows(), k);
        for i in 0..x.rows() {
            let row = x.row(i);
            for (j, trees) in self.boosters.iter().enumerate() {
                let mut v = self.base_scores[j];
                for tree in trees {
                    v += self.params.learning_rate * tree.predict_row(row)[0];
                }
                out.set(i, j, v);
            }
        }
        Ok(out)
    }

    /// The compiled f64 inference form, building it on first use.
    pub fn compiled(&self) -> &CompiledEnsemble {
        self.compiled.get_or_compile(|| {
            CompiledEnsemble::from_gbt(&self.boosters, &self.base_scores, self.params.learning_rate)
        })
    }

    /// The quantized inference form, building it on first use.
    pub fn quantized(&self) -> &QuantizedEnsemble {
        self.quantized.get_or_build(|| {
            QuantizedEnsemble::from_compiled(self.compiled(), self.feature_names.len())
        })
    }

    /// Gain-based feature importance, averaged over splits (and outputs).
    pub fn feature_importance(&self) -> FeatureImportance {
        let mut stats = SplitStats::new(self.feature_names.len());
        for s in &self.booster_stats {
            stats.merge(s);
        }
        FeatureImportance::from_stats(&self.feature_names, &stats)
    }

    /// Trained hyper-parameters.
    pub fn params(&self) -> &GbtParams {
        &self.params
    }

    /// Total number of trees across all output chains.
    pub fn n_trees(&self) -> usize {
        self.boosters.iter().map(Vec::len).sum()
    }
}

/// RNG for one boosting round of one output chain. A pure function of
/// `(seed, output, round)` — never of how many rounds ran before — so a
/// warm-started continuation draws the identical stream a single longer
/// training run would have drawn.
fn round_rng(seed: u64, output: usize, round: usize) -> StdRng {
    let s = seed
        ^ (output as u64).wrapping_mul(0x9E37_79B9)
        ^ (round as u64 + 1).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    StdRng::seed_from_u64(s)
}

/// RNG for the early-stopping holdout shuffle of one output chain.
/// Separate from the round stream so the shuffle (which only happens at
/// fit time) cannot shift round randomness.
fn holdout_rng(seed: u64, output: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (output as u64).wrapping_mul(0x9E37_79B9) ^ 0x51AC_DEED)
}

/// Run boosting rounds `start..start + budget` for output chain `output`,
/// appending trees and folding split stats in round order. Shared by
/// [`GbtRegressor::fit`] (`start = 0`) and [`GbtRegressor::warm_start`]
/// (`start` = rounds already trained), which is what makes the two paths
/// bit-identical.
#[allow(clippy::too_many_arguments)]
fn boost_rounds(
    data: &BinnedMatrix<'_>,
    layout: &HistLayout,
    params: &GbtParams,
    output: usize,
    targets: &[f64],
    fit_rows: &[u32],
    valid_rows: &[u32],
    start: usize,
    budget: usize,
    pred: &mut [f64],
    trees: &mut Vec<Tree>,
    stats: &mut SplitStats,
) {
    let n = pred.len();
    let mut grad = vec![0.0; n];
    let hess = vec![1.0; n];
    let mut in_sample = vec![false; n];
    let mut best_valid = f64::INFINITY;
    let mut best_len = trees.len();
    let mut stale = 0usize;
    let mut nodes_built = 0u64;
    let mut leaves_built = 0u64;
    for round in start..start + budget {
        let _round_span = mphpc_telemetry::span!("gbt.fit.round", round = round);
        let mut rng = round_rng(params.seed, output, round);
        for i in 0..n {
            grad[i] = pred[i] - targets[i];
        }
        let rows = subsample_rows_of(fit_rows, params.subsample, &mut rng);
        // Rows outside the round's subsample (including the
        // early-stopping holdout) are routed down the tree during
        // construction, so `pred` is updated leaf-by-leaf with no
        // post-hoc re-traversal of the finished tree.
        in_sample.iter_mut().for_each(|v| *v = false);
        for &r in &rows {
            in_sample[r as usize] = true;
        }
        let extra_rows: Vec<u32> = (0..n as u32).filter(|&r| !in_sample[r as usize]).collect();
        let (tree, tree_stats) = build_gbt_tree_with(
            data,
            layout,
            rows,
            &grad,
            &hess,
            &params.tree,
            &mut rng,
            Some(PredUpdate {
                extra_rows,
                pred: &mut *pred,
                eta: params.learning_rate,
            }),
        );
        if mphpc_telemetry::enabled() {
            nodes_built += tree.n_nodes() as u64;
            leaves_built += tree.n_leaves() as u64;
        }
        stats.merge(&tree_stats);
        trees.push(tree);
        if let Some(patience) = params.early_stopping_rounds {
            if !valid_rows.is_empty() {
                let mae: f64 = valid_rows
                    .iter()
                    .map(|&r| (pred[r as usize] - targets[r as usize]).abs())
                    .sum::<f64>()
                    / valid_rows.len() as f64;
                if mae + 1e-12 < best_valid {
                    best_valid = mae;
                    best_len = trees.len();
                    stale = 0;
                } else {
                    stale += 1;
                    if stale >= patience {
                        trees.truncate(best_len.max(1));
                        mphpc_telemetry::counter_add("ml.gbt.early_stops", 1);
                        break;
                    }
                }
            }
        }
    }
    // Counters accumulate locally and flush once per booster so the
    // metric lock stays off the round-loop hot path.
    mphpc_telemetry::counter_add("ml.gbt.rounds", (trees.len() - start) as u64);
    mphpc_telemetry::counter_add("ml.tree.nodes", nodes_built);
    mphpc_telemetry::counter_add("ml.tree.leaves", leaves_built);
}

fn subsample_rows_of(rows: &[u32], fraction: f64, rng: &mut impl Rng) -> Vec<u32> {
    if fraction >= 1.0 {
        return rows.to_vec();
    }
    let keep = ((rows.len() as f64 * fraction).round() as usize).clamp(1, rows.len());
    rand::seq::index::sample(rng, rows.len(), keep)
        .into_iter()
        .map(|i| rows[i])
        .collect()
}

#[cfg(test)]
pub(super) mod tests {
    use super::*;
    use crate::metrics::mae;

    /// y0 = 2·x0 − x1, y1 = x1² (nonlinear), plus an irrelevant feature.
    pub(super) fn synthetic(n: usize, seed: u64) -> MlDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xr = Vec::with_capacity(n);
        let mut yr = Vec::with_capacity(n);
        for _ in 0..n {
            let x0: f64 = rng.gen_range(-1.0..1.0);
            let x1: f64 = rng.gen_range(-1.0..1.0);
            let noise: f64 = rng.gen_range(-0.01..0.01);
            xr.push(vec![x0, x1, rng.gen_range(-1.0..1.0)]);
            yr.push(vec![2.0 * x0 - x1 + noise, x1 * x1 + noise]);
        }
        MlDataset::new(
            Matrix::from_rows(&xr),
            Matrix::from_rows(&yr),
            vec!["x0".into(), "x1".into(), "junk".into()],
        )
        .unwrap()
    }

    #[test]
    fn fits_nonlinear_vector_targets() {
        let train = synthetic(2000, 1);
        let test = synthetic(300, 2);
        let model = GbtRegressor::fit(&train, GbtParams::default()).unwrap();
        let pred = model.predict(&test.x).unwrap();
        let err = mae(&pred, &test.y).unwrap();
        assert!(
            err < 0.08,
            "GBT should fit the synthetic function, MAE {err}"
        );
    }

    #[test]
    fn beats_constant_prediction() {
        let train = synthetic(1000, 3);
        let test = synthetic(200, 4);
        let model = GbtRegressor::fit(&train, GbtParams::default()).unwrap();
        let pred = model.predict(&test.x).unwrap();
        let mean_rows: Vec<Vec<f64>> = (0..test.n_samples())
            .map(|_| {
                (0..2)
                    .map(|j| train.y.col(j).iter().sum::<f64>() / train.n_samples() as f64)
                    .collect()
            })
            .collect();
        let mean_pred = Matrix::from_rows(&mean_rows);
        assert!(mae(&pred, &test.y).unwrap() < 0.3 * mae(&mean_pred, &test.y).unwrap());
    }

    #[test]
    fn importance_ranks_informative_features() {
        let train = synthetic(1500, 5);
        let model = GbtRegressor::fit(&train, GbtParams::default()).unwrap();
        let imp = model.feature_importance();
        let junk = imp.gain_of("junk").unwrap();
        assert!(imp.gain_of("x0").unwrap() > junk * 5.0);
        assert!(imp.gain_of("x1").unwrap() > junk * 5.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let train = synthetic(400, 6);
        let m1 = GbtRegressor::fit(&train, GbtParams::default()).unwrap();
        let m2 = GbtRegressor::fit(&train, GbtParams::default()).unwrap();
        assert_eq!(m1, m2);
    }

    #[test]
    fn more_rounds_fit_better() {
        let train = synthetic(1000, 7);
        let test = synthetic(200, 8);
        let short = GbtRegressor::fit(
            &train,
            GbtParams {
                n_rounds: 5,
                ..GbtParams::default()
            },
        )
        .unwrap();
        let long = GbtRegressor::fit(
            &train,
            GbtParams {
                n_rounds: 150,
                ..GbtParams::default()
            },
        )
        .unwrap();
        assert!(
            mae(&long.predict(&test.x).unwrap(), &test.y).unwrap()
                < mae(&short.predict(&test.x).unwrap(), &test.y).unwrap(),
            "boosting must reduce test error on a clean problem"
        );
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let train = synthetic(300, 9);
        let model = GbtRegressor::fit(
            &train,
            GbtParams {
                n_rounds: 20,
                ..GbtParams::default()
            },
        )
        .unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: GbtRegressor = serde_json::from_str(&json).unwrap();
        let p1 = model.predict(&train.x).unwrap();
        let p2 = back.predict(&train.x).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn early_stopping_truncates_boosters() {
        let train = synthetic(800, 12);
        let unlimited = GbtRegressor::fit(
            &train,
            GbtParams {
                n_rounds: 200,
                ..GbtParams::default()
            },
        )
        .unwrap();
        let stopped = GbtRegressor::fit(
            &train,
            GbtParams {
                n_rounds: 200,
                early_stopping_rounds: Some(5),
                ..GbtParams::default()
            },
        )
        .unwrap();
        assert!(
            stopped.n_trees() < unlimited.n_trees(),
            "patience 5 must stop before 200 rounds ({} vs {})",
            stopped.n_trees(),
            unlimited.n_trees()
        );
        // Quality stays comparable on fresh data.
        let test = synthetic(200, 13);
        let e_stop = mae(&stopped.predict(&test.x).unwrap(), &test.y).unwrap();
        let e_full = mae(&unlimited.predict(&test.x).unwrap(), &test.y).unwrap();
        assert!(e_stop < e_full * 2.0 + 0.05, "{e_stop} vs {e_full}");
    }

    #[test]
    fn early_stopping_is_deterministic() {
        let train = synthetic(400, 14);
        let params = GbtParams {
            n_rounds: 80,
            early_stopping_rounds: Some(4),
            ..GbtParams::default()
        };
        assert_eq!(
            GbtRegressor::fit(&train, params).unwrap(),
            GbtRegressor::fit(&train, params).unwrap()
        );
    }

    #[test]
    fn n_trees_counts_all_outputs() {
        let train = synthetic(200, 10);
        let model = GbtRegressor::fit(
            &train,
            GbtParams {
                n_rounds: 7,
                ..GbtParams::default()
            },
        )
        .unwrap();
        assert_eq!(model.n_trees(), 7 * 2);
    }
}

#[cfg(test)]
mod debug_serde {
    use super::*;
    #[test]
    fn model_equality_after_json() {
        let train = tests::synthetic(300, 9);
        let model = GbtRegressor::fit(
            &train,
            GbtParams {
                n_rounds: 20,
                ..GbtParams::default()
            },
        )
        .unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: GbtRegressor = serde_json::from_str(&json).unwrap();
        assert_eq!(model.base_scores, back.base_scores, "base");
        assert_eq!(model.params, back.params, "params");
        for (a, b) in model.boosters.iter().zip(&back.boosters) {
            for (ta, tb) in a.iter().zip(b) {
                assert_eq!(ta, tb, "tree");
            }
        }
    }
}
