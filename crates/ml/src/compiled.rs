//! Compiled flat-ensemble inference engine: struct-of-arrays tree layout,
//! blocked batch traversal, and parallel prediction.
//!
//! Trained trees ([`Tree`]) are a `Vec` of enum nodes with heap-allocated
//! leaf vectors — convenient during construction, slow for serving: every
//! node visit matches an enum discriminant and every leaf read chases a
//! separate allocation. This module lowers a whole trained ensemble into
//! one flat representation:
//!
//! * `feature[i]` / `threshold[i]` / `child[i]` — one entry per node, all
//!   trees concatenated, each tree laid out breadth-first so the hot top
//!   levels of a tree occupy adjacent cache lines.
//! * `child[i]` packs the topology: an internal node stores the index of
//!   its left child (the right sibling is always at `left + 1` because
//!   siblings are emitted adjacently); a leaf sets the high tag bit and
//!   stores an offset into the shared leaf arena in the low 31 bits.
//! * `leaves` — every leaf value of every tree in one contiguous arena.
//!   GBT leaves are pre-scaled by the learning rate at compile time
//!   (`eta · w` has identical bits whether multiplied once here or per
//!   row at predict time), so the serving inner loop is a pure add and
//!   the per-output base score is applied exactly once per row.
//!
//! Traversal is blocked: rows are processed in blocks of [`BLOCK_ROWS`]
//! with trees in the outer loop, so a tree's node arrays stay cache
//! resident while a whole block streams through them. Blocks write
//! disjoint output slices and are scheduled with `mphpc-par`'s chunked
//! driver, so predictions are **bit-identical to the reference per-row
//! traversal at any thread count** — the same determinism contract as the
//! training-side histogram engine (see DESIGN.md §5/§9/§10). Per-row
//! accumulation order is preserved because the outer tree loop adds tree
//! `t`'s contribution to every row of the block before tree `t + 1`'s,
//! exactly the order of the reference `for tree in trees` loop.

use crate::matrix::Matrix;
use crate::tree::{Node, Tree};
use std::collections::VecDeque;
use std::sync::OnceLock;

/// Tag bit marking a packed `child` entry as a leaf-arena reference.
pub(crate) const LEAF_BIT: u32 = 1 << 31;

/// Rows per traversal block. 64 rows × 21 features × 8 B ≈ 10.5 KiB of
/// feature data plus a few hundred bytes of per-row cursor/accumulator
/// state: comfortably inside a 32 KiB L1 data cache with room left for
/// the top levels of the tree being walked.
pub const BLOCK_ROWS: usize = 64;

/// How a tree's leaf payload maps onto the output columns.
#[derive(Debug, Clone)]
pub(crate) enum LeafLayout {
    /// Each tree carries scalar leaves feeding one output column
    /// (`col[t]` for tree `t`) — the GBT booster-chain shape.
    ScalarPerTree(Vec<u32>),
    /// Every leaf holds a full `n_outputs`-wide vector — the forest shape.
    Vector,
}

/// A trained ensemble lowered to flat arrays for batch inference.
///
/// Built by [`CompiledEnsemble::from_gbt`] /
/// [`CompiledEnsemble::from_forest`] (usually via the lazy caches inside
/// [`crate::gbt::GbtRegressor`] and [`crate::forest::ForestRegressor`]),
/// and queried with [`CompiledEnsemble::predict`]. This is derived data:
/// it is never serialised — a deserialised model recompiles on first use.
#[derive(Debug, Clone)]
pub struct CompiledEnsemble {
    pub(crate) n_outputs: usize,
    /// Split feature per node (unused for leaves).
    pub(crate) feature: Vec<u32>,
    /// Split threshold per node; rows with `value <= threshold` go left.
    pub(crate) threshold: Vec<f64>,
    /// Packed topology per node: left-child index, or `LEAF_BIT | offset`.
    pub(crate) child: Vec<u32>,
    /// Root node index of each tree, in reference accumulation order.
    pub(crate) roots: Vec<u32>,
    /// Leaf-value arena shared by all trees.
    pub(crate) leaves: Vec<f64>,
    pub(crate) layout: LeafLayout,
    /// Per-output accumulator seed (GBT base scores; zero for forests).
    pub(crate) base: Vec<f64>,
    /// Final per-element multiplier (1/n_trees for forests, 1 for GBT —
    /// applied *after* summation to preserve the reference fp order).
    pub(crate) scale: f64,
}

/// Accumulates the flat arrays while trees are lowered one by one.
struct Lowerer {
    feature: Vec<u32>,
    threshold: Vec<f64>,
    child: Vec<u32>,
    leaves: Vec<f64>,
}

impl Lowerer {
    fn with_capacity(nodes: usize, leaf_values: usize) -> Self {
        Self {
            feature: Vec::with_capacity(nodes),
            threshold: Vec::with_capacity(nodes),
            child: Vec::with_capacity(nodes),
            leaves: Vec::with_capacity(leaf_values),
        }
    }

    fn push_placeholder(&mut self) {
        self.feature.push(0);
        self.threshold.push(0.0);
        self.child.push(LEAF_BIT);
    }

    /// Emit `tree` breadth-first (children adjacent, left first) and
    /// return its root index. Leaf values are multiplied by `leaf_scale`
    /// as they enter the arena.
    fn lower(&mut self, tree: &Tree, leaf_scale: f64) -> u32 {
        assert!(!tree.nodes.is_empty(), "cannot compile an empty tree");
        let root = self.feature.len();
        self.push_placeholder();
        let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
        queue.push_back((0, root));
        while let Some((src, dst)) = queue.pop_front() {
            match &tree.nodes[src] {
                Node::Leaf(values) => {
                    let off = self.leaves.len();
                    assert!(
                        off + values.len() <= LEAF_BIT as usize,
                        "leaf arena exceeds 2^31 values"
                    );
                    self.leaves.extend(values.iter().map(|v| v * leaf_scale));
                    self.child[dst] = LEAF_BIT | off as u32;
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let l = self.feature.len();
                    assert!(l + 2 <= LEAF_BIT as usize, "node count exceeds 2^31");
                    self.push_placeholder();
                    self.push_placeholder();
                    self.feature[dst] = *feature as u32;
                    self.threshold[dst] = *threshold;
                    self.child[dst] = l as u32;
                    queue.push_back((*left, l));
                    queue.push_back((*right, l + 1));
                }
            }
        }
        root as u32
    }
}

fn total_nodes<'a>(trees: impl Iterator<Item = &'a Tree>) -> (usize, usize) {
    let mut nodes = 0;
    let mut leaf_values = 0;
    for t in trees {
        nodes += t.n_nodes();
        leaf_values += t.leaves().map(<[f64]>::len).sum::<usize>();
    }
    (nodes, leaf_values)
}

impl CompiledEnsemble {
    /// Lower a GBT model (`boosters[j]` is the tree chain of output `j`)
    /// into compiled form. Leaves are pre-scaled by `learning_rate`, so
    /// prediction is `base[j] + Σ leaf` — bit-identical to the reference
    /// `base[j] + Σ learning_rate · leaf` chain-order accumulation.
    pub fn from_gbt(boosters: &[Vec<Tree>], base_scores: &[f64], learning_rate: f64) -> Self {
        assert_eq!(
            boosters.len(),
            base_scores.len(),
            "one base score per output"
        );
        let (nodes, leaf_values) = total_nodes(boosters.iter().flatten());
        let mut lowerer = Lowerer::with_capacity(nodes, leaf_values);
        let mut roots = Vec::new();
        let mut cols = Vec::new();
        for (j, chain) in boosters.iter().enumerate() {
            for tree in chain {
                roots.push(lowerer.lower(tree, learning_rate));
                cols.push(j as u32);
            }
        }
        let engine = Self {
            n_outputs: boosters.len(),
            feature: lowerer.feature,
            threshold: lowerer.threshold,
            child: lowerer.child,
            roots,
            leaves: lowerer.leaves,
            layout: LeafLayout::ScalarPerTree(cols),
            base: base_scores.to_vec(),
            scale: 1.0,
        };
        engine.record_footprint();
        engine
    }

    /// Lower a forest (every leaf an `n_outputs`-wide mean vector) into
    /// compiled form. Leaves are *not* pre-scaled: the reference sums
    /// tree vectors and multiplies by `1/n_trees` at the end, and the
    /// compiled engine keeps that exact fp order.
    pub fn from_forest(trees: &[Tree], n_outputs: usize) -> Self {
        let (nodes, leaf_values) = total_nodes(trees.iter());
        let mut lowerer = Lowerer::with_capacity(nodes, leaf_values);
        let roots: Vec<u32> = trees.iter().map(|t| lowerer.lower(t, 1.0)).collect();
        let engine = Self {
            n_outputs,
            feature: lowerer.feature,
            threshold: lowerer.threshold,
            child: lowerer.child,
            roots,
            leaves: lowerer.leaves,
            layout: LeafLayout::Vector,
            base: vec![0.0; n_outputs],
            scale: 1.0 / trees.len().max(1) as f64,
        };
        engine.record_footprint();
        engine
    }

    /// Publish the engine's memory footprint so serving traces can compare
    /// the f64 layout against the quantized one (`ml.quantized.*`).
    fn record_footprint(&self) {
        let node_bytes = self.child.len()
            * (std::mem::size_of::<u32>()
                + std::mem::size_of::<f64>()
                + std::mem::size_of::<u32>());
        mphpc_telemetry::gauge_set("ml.compiled.node_bytes", node_bytes as f64);
        mphpc_telemetry::gauge_set(
            "ml.compiled.leaf_bytes",
            (self.leaves.len() * std::mem::size_of::<f64>()) as f64,
        );
    }

    /// Number of output columns.
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// Number of trees in the compiled ensemble.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total flat nodes across all trees.
    pub fn n_nodes(&self) -> usize {
        self.child.len()
    }

    /// Predict the `n × n_outputs` target matrix for `n` feature rows.
    ///
    /// Rows are processed in [`BLOCK_ROWS`]-sized blocks, parallelised
    /// over blocks; output is bit-identical at any thread count.
    pub fn predict(&self, x: &Matrix) -> Matrix {
        let k = self.n_outputs;
        let mut out = Matrix::zeros(x.rows(), k);
        if k == 0 || x.rows() == 0 {
            return out;
        }
        let _span = mphpc_telemetry::span!(
            "compiled.predict",
            rows = x.rows(),
            trees = self.roots.len()
        );
        mphpc_telemetry::counter_add("ml.compiled.rows_predicted", x.rows() as u64);
        mphpc_telemetry::counter_add("ml.compiled.blocks", x.rows().div_ceil(BLOCK_ROWS) as u64);
        mphpc_telemetry::counter_add("ml.compiled.path.f64_batch", 1);
        mphpc_par::par_chunks_mut(out.as_mut_slice(), BLOCK_ROWS * k, |block, chunk| {
            self.predict_block(x, block * BLOCK_ROWS, chunk);
        });
        out
    }

    /// Predict one block of rows starting at `row0` into `out`
    /// (row-major, `n_outputs` wide, length decides the block size).
    fn predict_block(&self, x: &Matrix, row0: usize, out: &mut [f64]) {
        let k = self.n_outputs;
        let n = out.len() / k;
        debug_assert!(n <= BLOCK_ROWS);
        for row_out in out.chunks_exact_mut(k) {
            row_out.copy_from_slice(&self.base);
        }
        let mut leaf_off = [0u32; BLOCK_ROWS];
        for (t, &root) in self.roots.iter().enumerate() {
            for (r, off) in leaf_off.iter_mut().enumerate().take(n) {
                let row = x.row(row0 + r);
                let mut idx = root as usize;
                loop {
                    let c = self.child[idx];
                    if c & LEAF_BIT != 0 {
                        *off = c & !LEAF_BIT;
                        break;
                    }
                    // `!(v <= t)` sends NaN right, matching the
                    // reference traversal's branch exactly.
                    let right = !(row[self.feature[idx] as usize] <= self.threshold[idx]);
                    idx = c as usize + usize::from(right);
                }
            }
            match &self.layout {
                LeafLayout::ScalarPerTree(cols) => {
                    let j = cols[t] as usize;
                    for (row_out, &off) in out.chunks_exact_mut(k).zip(&leaf_off) {
                        row_out[j] += self.leaves[off as usize];
                    }
                }
                LeafLayout::Vector => {
                    for (row_out, &off) in out.chunks_exact_mut(k).zip(&leaf_off) {
                        let leaf = &self.leaves[off as usize..off as usize + k];
                        for (o, &v) in row_out.iter_mut().zip(leaf) {
                            *o += v;
                        }
                    }
                }
            }
        }
        if self.scale != 1.0 {
            for o in out.iter_mut() {
                *o *= self.scale;
            }
        }
    }
}

/// Lazily-built compiled form attached to a trained ensemble.
///
/// This is derived data, so it is excluded from serialisation, equality,
/// and cloning (a clone starts empty and recompiles on first use): a
/// deserialised or cloned model transparently compiles on its first
/// prediction.
#[derive(Default)]
pub struct LazyCompiled(OnceLock<CompiledEnsemble>);

impl LazyCompiled {
    /// The compiled ensemble, building it with `build` on first access.
    pub(crate) fn get_or_compile(
        &self,
        build: impl FnOnce() -> CompiledEnsemble,
    ) -> &CompiledEnsemble {
        self.0.get_or_init(|| {
            let _span = mphpc_telemetry::span!("compiled.build");
            mphpc_telemetry::counter_add("ml.compiled.builds", 1);
            build()
        })
    }
}

impl Clone for LazyCompiled {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl PartialEq for LazyCompiled {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl std::fmt::Debug for LazyCompiled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.get() {
            Some(c) => write!(f, "LazyCompiled({} nodes)", c.n_nodes()),
            None => write!(f, "LazyCompiled(empty)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::MlDataset;
    use crate::forest::{ForestParams, ForestRegressor};
    use crate::gbt::{GbtParams, GbtRegressor};
    use crate::tree::TreeParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn synthetic(n: usize, p: usize, k: usize, seed: u64) -> MlDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Matrix::zeros(n, p);
        let mut y = Matrix::zeros(n, k);
        for i in 0..n {
            for j in 0..p {
                x.set(i, j, rng.gen_range(-1.0..1.0));
            }
            for j in 0..k {
                let v = x.get(i, j % p) * 2.0
                    + x.get(i, (j + 1) % p).powi(2)
                    + rng.gen_range(-0.01..0.01);
                y.set(i, j, v);
            }
        }
        MlDataset::new(x, y, (0..p).map(|j| format!("f{j}")).collect()).unwrap()
    }

    fn small_gbt_params() -> GbtParams {
        GbtParams {
            n_rounds: 25,
            tree: TreeParams {
                max_depth: 5,
                ..TreeParams::default()
            },
            ..GbtParams::default()
        }
    }

    #[test]
    fn handmade_tree_matches_predict_row() {
        // Perfect depth-2 tree with vector leaves, compiled as a
        // single-tree "forest" (scale 1.0): the engine must reproduce
        // predict_row on both sides of both splits.
        let tree = Tree {
            nodes: vec![
                Node::Split {
                    feature: 0,
                    threshold: 0.0,
                    left: 1,
                    right: 2,
                },
                Node::Split {
                    feature: 1,
                    threshold: -0.5,
                    left: 3,
                    right: 4,
                },
                Node::Leaf(vec![3.0, -3.0]),
                Node::Leaf(vec![1.0, 10.0]),
                Node::Leaf(vec![2.0, 20.0]),
            ],
        };
        let compiled = CompiledEnsemble::from_forest(std::slice::from_ref(&tree), 2);
        assert_eq!(compiled.n_trees(), 1);
        assert_eq!(compiled.n_nodes(), 5);
        let probes = [
            [-1.0, -1.0],
            [-1.0, 0.0],
            [0.0, -0.7], // boundary: 0.0 <= 0.0 goes left
            [0.5, 9.0],
        ];
        for p in probes {
            let x = Matrix::from_rows(&[p.to_vec()]);
            let got = compiled.predict(&x);
            let want = tree.predict_row(&p);
            assert_eq!(got.row(0), want, "probe {p:?}");
        }
    }

    #[test]
    fn gbt_compiled_bit_identical_to_reference() {
        let train = synthetic(800, 6, 3, 21);
        let model = GbtRegressor::fit(&train, small_gbt_params()).unwrap();
        let test = synthetic(733, 6, 3, 22); // odd size: exercises a partial tail block
        let reference = model.predict_reference(&test.x).unwrap();
        let compiled = model.predict(&test.x).unwrap();
        assert_eq!(reference, compiled, "GBT compiled vs reference");
    }

    #[test]
    fn forest_compiled_bit_identical_to_reference() {
        let train = synthetic(600, 5, 2, 23);
        let model = ForestRegressor::fit(
            &train,
            ForestParams {
                n_trees: 30,
                ..ForestParams::default()
            },
        )
        .unwrap();
        let test = synthetic(517, 5, 2, 24);
        let reference = model.predict_reference(&test.x).unwrap();
        let compiled = model.predict(&test.x).unwrap();
        assert_eq!(reference, compiled, "forest compiled vs reference");
    }

    #[test]
    fn single_row_matches_batch() {
        let train = synthetic(500, 4, 2, 25);
        let model = GbtRegressor::fit(&train, small_gbt_params()).unwrap();
        let test = synthetic(130, 4, 2, 26);
        let batch = model.predict(&test.x).unwrap();
        for i in 0..test.n_samples() {
            let one = Matrix::from_rows(&[test.x.row(i).to_vec()]);
            assert_eq!(model.predict(&one).unwrap().row(0), batch.row(i), "row {i}");
        }
    }

    #[test]
    fn compiled_deterministic_across_thread_counts() {
        // Results are bit-identical for any worker count because blocks
        // write disjoint slices; sweep the same override the training
        // determinism suite uses. (Safe to race with sibling tests: the
        // override changes scheduling, never values.)
        let train = synthetic(700, 6, 4, 27);
        let gbt = GbtRegressor::fit(&train, small_gbt_params()).unwrap();
        let forest = ForestRegressor::fit(
            &train,
            ForestParams {
                n_trees: 20,
                ..ForestParams::default()
            },
        )
        .unwrap();
        let test = synthetic(1311, 6, 4, 28);
        let baseline_gbt = gbt.predict_reference(&test.x).unwrap();
        let baseline_forest = forest.predict_reference(&test.x).unwrap();
        for threads in [1usize, 2, 8] {
            mphpc_par::set_thread_override(Some(threads));
            assert_eq!(
                gbt.predict(&test.x).unwrap(),
                baseline_gbt,
                "gbt at {threads} threads"
            );
            assert_eq!(
                forest.predict(&test.x).unwrap(),
                baseline_forest,
                "forest at {threads} threads"
            );
        }
        mphpc_par::set_thread_override(None);
    }

    #[test]
    fn deep_chain_tree_compiles_without_recursion() {
        // A 200k-deep left chain: recursive depth()/compilation would
        // overflow the stack; the iterative versions must not.
        let depth = 200_000usize;
        let mut nodes = Vec::with_capacity(2 * depth + 1);
        for i in 0..depth {
            nodes.push(Node::Split {
                feature: 0,
                threshold: 0.5,
                left: if i + 1 < depth { i + 1 } else { depth },
                right: depth + 1 + i,
            });
        }
        nodes.push(Node::Leaf(vec![7.0])); // index `depth`: end of the chain
        for i in 0..depth {
            nodes.push(Node::Leaf(vec![i as f64]));
        }
        let tree = Tree { nodes };
        assert_eq!(tree.depth(), depth);
        assert_eq!(tree.n_nodes(), 2 * depth + 1);
        assert_eq!(tree.n_leaves(), depth + 1);
        let compiled = CompiledEnsemble::from_forest(std::slice::from_ref(&tree), 1);
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let out = compiled.predict(&x);
        assert_eq!(out.get(0, 0), 7.0, "left chain reaches the terminal leaf");
        assert_eq!(out.get(1, 0), 0.0, "first right leaf");
    }

    #[test]
    fn json_round_trip_compiles_on_first_use() {
        // The deserialised model has an empty cache and must lazily
        // compile to bit-identical predictions.
        let train = synthetic(400, 5, 2, 29);
        let test = synthetic(256, 5, 2, 30);
        let model = GbtRegressor::fit(&train, small_gbt_params()).unwrap();
        let expected = model.predict_reference(&test.x).unwrap();
        let back: GbtRegressor =
            serde_json::from_str(&serde_json::to_string(&model).unwrap()).unwrap();
        assert_eq!(back.predict(&test.x).unwrap(), expected);
        let forest = ForestRegressor::fit(&train, ForestParams::default()).unwrap();
        let fback: ForestRegressor =
            serde_json::from_str(&serde_json::to_string(&forest).unwrap()).unwrap();
        assert_eq!(
            fback.predict(&test.x).unwrap(),
            forest.predict_reference(&test.x).unwrap()
        );
    }

    /// Perf smoke for EXPERIMENTS.md: run explicitly with
    /// `cargo test --release -p mphpc-ml -- --ignored --nocapture`.
    #[test]
    #[ignore = "timing-sensitive; run explicitly in release"]
    fn compiled_speedup_report() {
        use std::time::Instant;
        let train = synthetic(4_000, 21, 4, 31);
        let gbt = GbtRegressor::fit(&train, GbtParams::default()).unwrap();
        let forest = ForestRegressor::fit(&train, ForestParams::default()).unwrap();
        gbt.compiled();
        forest.compiled();
        let best_of = |f: &dyn Fn() -> Matrix| {
            let mut best = f64::INFINITY;
            let mut sink = 0.0;
            for _ in 0..3 {
                let t0 = Instant::now();
                let out = f();
                best = best.min(t0.elapsed().as_secs_f64());
                sink += out.get(0, 0);
            }
            (best, sink)
        };
        for rows in [5_000usize, 20_000] {
            let batch = synthetic(rows, 21, 4, 32);
            for threads in [Some(1), None] {
                mphpc_par::set_thread_override(threads);
                let label = threads.map_or("all-threads".into(), |t| format!("{t}-thread"));
                let (t_ref, _) = best_of(&|| gbt.predict_reference(&batch.x).unwrap());
                let (t_cmp, _) = best_of(&|| gbt.predict(&batch.x).unwrap());
                println!(
                    "gbt {rows} rows [{label}]: reference {:.1} ms, compiled {:.1} ms, {:.2}x",
                    t_ref * 1e3,
                    t_cmp * 1e3,
                    t_ref / t_cmp
                );
                let (f_ref, _) = best_of(&|| forest.predict_reference(&batch.x).unwrap());
                let (f_cmp, _) = best_of(&|| forest.predict(&batch.x).unwrap());
                println!(
                    "forest {rows} rows [{label}]: reference {:.1} ms, compiled {:.1} ms, {:.2}x",
                    f_ref * 1e3,
                    f_cmp * 1e3,
                    f_ref / f_cmp
                );
                if rows >= 5_000 && threads.is_none() {
                    assert!(
                        t_ref / t_cmp >= 2.0,
                        "acceptance: compiled GBT batch inference must be ≥2x at {rows} rows"
                    );
                }
            }
        }
        mphpc_par::set_thread_override(None);
    }
}
