//! Evaluation metrics: MAE, MSE, R², and the paper's Same-Order Score
//! (§VI-C).

use crate::matrix::Matrix;

fn check_shapes(pred: &Matrix, truth: &Matrix) {
    assert_eq!(pred.rows(), truth.rows(), "row mismatch");
    assert_eq!(pred.cols(), truth.cols(), "col mismatch");
}

/// Mean absolute error over every vector component.
pub fn mae(pred: &Matrix, truth: &Matrix) -> f64 {
    check_shapes(pred, truth);
    let n = pred.rows() * pred.cols();
    if n == 0 {
        return 0.0;
    }
    pred.as_slice()
        .iter()
        .zip(truth.as_slice())
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / n as f64
}

/// Mean squared error over every vector component.
pub fn mse(pred: &Matrix, truth: &Matrix) -> f64 {
    check_shapes(pred, truth);
    let n = pred.rows() * pred.cols();
    if n == 0 {
        return 0.0;
    }
    pred.as_slice()
        .iter()
        .zip(truth.as_slice())
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / n as f64
}

/// Coefficient of determination over all components (1 = perfect,
/// 0 = mean-level, negative = worse than the mean).
pub fn r2(pred: &Matrix, truth: &Matrix) -> f64 {
    check_shapes(pred, truth);
    let n = truth.rows() * truth.cols();
    if n == 0 {
        return 0.0;
    }
    let mean = truth.as_slice().iter().sum::<f64>() / n as f64;
    let ss_res: f64 = pred
        .as_slice()
        .iter()
        .zip(truth.as_slice())
        .map(|(p, t)| (t - p) * (t - p))
        .sum();
    let ss_tot: f64 = truth
        .as_slice()
        .iter()
        .map(|t| (t - mean) * (t - mean))
        .sum();
    if ss_tot < 1e-30 {
        return if ss_res < 1e-30 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Rank permutation of a vector: `ranks[i]` is the position of element `i`
/// when sorted ascending (ties broken by index, making the score strict).
fn rank_order(v: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).unwrap_or(std::cmp::Ordering::Equal));
    let mut ranks = vec![0usize; v.len()];
    for (pos, &i) in idx.iter().enumerate() {
        ranks[i] = pos;
    }
    ranks
}

/// Same-Order Score: the fraction of samples whose predicted RPV has every
/// element in the same rank position as the true RPV (§VI-C).
pub fn same_order_score(pred: &Matrix, truth: &Matrix) -> f64 {
    check_shapes(pred, truth);
    if pred.rows() == 0 {
        return 0.0;
    }
    let mut correct = 0usize;
    for i in 0..pred.rows() {
        if rank_order(pred.row(i)) == rank_order(truth.row(i)) {
            correct += 1;
        }
    }
    correct as f64 / pred.rows() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_mse_basics() {
        let p = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let t = Matrix::from_rows(&[vec![2.0, 2.0], vec![3.0, 0.0]]);
        assert!((mae(&p, &t) - (1.0 + 0.0 + 0.0 + 4.0) / 4.0).abs() < 1e-12);
        assert!((mse(&p, &t) - (1.0 + 16.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn r2_perfect_and_mean() {
        let t = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        assert!((r2(&t, &t) - 1.0).abs() < 1e-12);
        let mean_pred = Matrix::from_rows(&[vec![2.0], vec![2.0], vec![2.0]]);
        assert!(r2(&mean_pred, &t).abs() < 1e-12);
        let bad = Matrix::from_rows(&[vec![10.0], vec![10.0], vec![10.0]]);
        assert!(r2(&bad, &t) < 0.0);
    }

    #[test]
    fn sos_counts_exact_order_matches() {
        // Row 0: same order; row 1: swapped.
        let p = Matrix::from_rows(&[vec![0.1, 0.5, 0.9], vec![0.9, 0.5, 0.1]]);
        let t = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![1.0, 2.0, 3.0]]);
        assert!((same_order_score(&p, &t) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sos_magnitude_invariant() {
        let p = Matrix::from_rows(&[vec![100.0, 200.0, 150.0]]);
        let t = Matrix::from_rows(&[vec![0.1, 0.3, 0.2]]);
        assert_eq!(same_order_score(&p, &t), 1.0);
    }

    #[test]
    fn empty_inputs() {
        let e = Matrix::zeros(0, 3);
        assert_eq!(mae(&e, &e), 0.0);
        assert_eq!(same_order_score(&e, &e), 0.0);
    }

    #[test]
    #[should_panic(expected = "row mismatch")]
    fn shape_mismatch_panics() {
        mae(&Matrix::zeros(2, 1), &Matrix::zeros(3, 1));
    }

    #[test]
    fn rank_order_handles_ties_deterministically() {
        assert_eq!(rank_order(&[1.0, 1.0, 0.5]), vec![1, 2, 0]);
    }
}
