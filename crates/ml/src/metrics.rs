//! Evaluation metrics: MAE, MSE, R² (pooled and per-output), and the
//! paper's Same-Order Score (§VI-C).
//!
//! Every metric validates its inputs and returns `Result`: mismatched
//! shapes are a [`MphpcError::ShapeMismatch`] and empty inputs are a
//! [`MphpcError::EmptyInput`] rather than a silently "perfect" `0.0` —
//! a zero-row fold must fail loudly, not report a vacuous score.

use crate::matrix::Matrix;
use mphpc_errors::MphpcError;

fn check_shapes(context: &'static str, pred: &Matrix, truth: &Matrix) -> Result<(), MphpcError> {
    if pred.rows() != truth.rows() || pred.cols() != truth.cols() {
        return Err(MphpcError::ShapeMismatch {
            context,
            expected: (truth.rows(), truth.cols()),
            found: (pred.rows(), pred.cols()),
        });
    }
    if pred.rows() == 0 || pred.cols() == 0 {
        return Err(MphpcError::EmptyInput(context));
    }
    Ok(())
}

/// Mean absolute error over every vector component.
pub fn mae(pred: &Matrix, truth: &Matrix) -> Result<f64, MphpcError> {
    check_shapes("mae", pred, truth)?;
    let n = pred.rows() * pred.cols();
    Ok(pred
        .as_slice()
        .iter()
        .zip(truth.as_slice())
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / n as f64)
}

/// Mean squared error over every vector component.
pub fn mse(pred: &Matrix, truth: &Matrix) -> Result<f64, MphpcError> {
    check_shapes("mse", pred, truth)?;
    let n = pred.rows() * pred.cols();
    Ok(pred
        .as_slice()
        .iter()
        .zip(truth.as_slice())
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / n as f64)
}

/// R² over a pair of flat slices (shared by [`r2`] and [`r2_per_output`]).
fn r2_flat(pred: impl Iterator<Item = f64>, truth: &[f64]) -> f64 {
    let n = truth.len();
    let mean = truth.iter().sum::<f64>() / n as f64;
    let mut ss_res = 0.0;
    for (p, &t) in pred.zip(truth) {
        ss_res += (t - p) * (t - p);
    }
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    if ss_tot < 1e-30 {
        return if ss_res < 1e-30 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Pooled coefficient of determination over all components (1 = perfect,
/// 0 = mean-level, negative = worse than the mean). Pooling conflates
/// output components with different variances; see [`r2_per_output`] for
/// the per-component view.
pub fn r2(pred: &Matrix, truth: &Matrix) -> Result<f64, MphpcError> {
    check_shapes("r2", pred, truth)?;
    Ok(r2_flat(pred.as_slice().iter().copied(), truth.as_slice()))
}

/// Column-wise R²: one coefficient of determination per output component.
///
/// The pooled [`r2`] measures fit against the grand mean of *all* RPV
/// components, so a model that only captures the dominant component still
/// scores high. Per-output R² scores each component against its own mean.
pub fn r2_per_output(pred: &Matrix, truth: &Matrix) -> Result<Vec<f64>, MphpcError> {
    check_shapes("r2_per_output", pred, truth)?;
    let cols = truth.cols();
    let mut out = Vec::with_capacity(cols);
    for j in 0..cols {
        let truth_col: Vec<f64> = (0..truth.rows()).map(|i| truth.get(i, j)).collect();
        let pred_col = (0..pred.rows()).map(|i| pred.get(i, j));
        out.push(r2_flat(pred_col, &truth_col));
    }
    Ok(out)
}

/// Rank permutation of a vector: `ranks[i]` is the position of element `i`
/// when sorted ascending (ties broken by index, making the score strict).
fn rank_order(v: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).unwrap_or(std::cmp::Ordering::Equal));
    let mut ranks = vec![0usize; v.len()];
    for (pos, &i) in idx.iter().enumerate() {
        ranks[i] = pos;
    }
    ranks
}

/// Same-Order Score: the fraction of samples whose predicted RPV has every
/// element in the same rank position as the true RPV (§VI-C).
pub fn same_order_score(pred: &Matrix, truth: &Matrix) -> Result<f64, MphpcError> {
    check_shapes("same_order_score", pred, truth)?;
    let mut correct = 0usize;
    for i in 0..pred.rows() {
        if rank_order(pred.row(i)) == rank_order(truth.row(i)) {
            correct += 1;
        }
    }
    Ok(correct as f64 / pred.rows() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_mse_basics() {
        let p = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let t = Matrix::from_rows(&[vec![2.0, 2.0], vec![3.0, 0.0]]);
        assert!((mae(&p, &t).unwrap() - (1.0 + 0.0 + 0.0 + 4.0) / 4.0).abs() < 1e-12);
        assert!((mse(&p, &t).unwrap() - (1.0 + 16.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn r2_perfect_and_mean() {
        let t = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        assert!((r2(&t, &t).unwrap() - 1.0).abs() < 1e-12);
        let mean_pred = Matrix::from_rows(&[vec![2.0], vec![2.0], vec![2.0]]);
        assert!(r2(&mean_pred, &t).unwrap().abs() < 1e-12);
        let bad = Matrix::from_rows(&[vec![10.0], vec![10.0], vec![10.0]]);
        assert!(r2(&bad, &t).unwrap() < 0.0);
    }

    #[test]
    fn per_output_r2_separates_components() {
        // Column 0 predicted perfectly, column 1 predicted at mean level.
        let t = Matrix::from_rows(&[vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]]);
        let p = Matrix::from_rows(&[vec![1.0, 20.0], vec![2.0, 20.0], vec![3.0, 20.0]]);
        let per = r2_per_output(&p, &t).unwrap();
        assert_eq!(per.len(), 2);
        assert!((per[0] - 1.0).abs() < 1e-12);
        assert!(per[1].abs() < 1e-12);
        // Pooled R² sits strictly between the two component scores.
        let pooled = r2(&p, &t).unwrap();
        assert!(pooled > per[1] && pooled < per[0]);
    }

    #[test]
    fn per_output_matches_pooled_on_one_column() {
        let t = Matrix::from_rows(&[vec![1.0], vec![5.0], vec![2.0]]);
        let p = Matrix::from_rows(&[vec![1.5], vec![4.0], vec![2.5]]);
        let per = r2_per_output(&p, &t).unwrap();
        assert!((per[0] - r2(&p, &t).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn sos_counts_exact_order_matches() {
        // Row 0: same order; row 1: swapped.
        let p = Matrix::from_rows(&[vec![0.1, 0.5, 0.9], vec![0.9, 0.5, 0.1]]);
        let t = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![1.0, 2.0, 3.0]]);
        assert!((same_order_score(&p, &t).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sos_magnitude_invariant() {
        let p = Matrix::from_rows(&[vec![100.0, 200.0, 150.0]]);
        let t = Matrix::from_rows(&[vec![0.1, 0.3, 0.2]]);
        assert_eq!(same_order_score(&p, &t).unwrap(), 1.0);
    }

    #[test]
    fn empty_inputs_are_errors_not_perfect_scores() {
        let e = Matrix::zeros(0, 3);
        assert!(matches!(mae(&e, &e), Err(MphpcError::EmptyInput(_))));
        assert!(matches!(mse(&e, &e), Err(MphpcError::EmptyInput(_))));
        assert!(matches!(r2(&e, &e), Err(MphpcError::EmptyInput(_))));
        assert!(matches!(
            same_order_score(&e, &e),
            Err(MphpcError::EmptyInput(_))
        ));
        assert!(matches!(
            r2_per_output(&e, &e),
            Err(MphpcError::EmptyInput(_))
        ));
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let err = mae(&Matrix::zeros(2, 1), &Matrix::zeros(3, 1)).unwrap_err();
        assert!(matches!(
            err,
            MphpcError::ShapeMismatch {
                expected: (3, 1),
                found: (2, 1),
                ..
            }
        ));
    }

    #[test]
    fn rank_order_handles_ties_deterministically() {
        assert_eq!(rank_order(&[1.0, 1.0, 0.5]), vec![1, 2, 0]);
    }
}
