//! Bagged decision forest with multi-output variance-reduction trees — the
//! stand-in for the paper's scikit-learn decision-forest baseline.

use crate::binning::QuantileBinner;
use crate::compiled::{CompiledEnsemble, LazyCompiled};
use crate::data::{check_feature_count, validate_training_data, MlDataset};
use crate::hist::HistLayout;
use crate::importance::FeatureImportance;
use crate::matrix::Matrix;
use crate::quantized::{LazyQuantized, QuantizedEnsemble};
use crate::tree::{build_variance_tree_with, BinnedMatrix, SplitStats, Tree, TreeParams};
use mphpc_errors::MphpcError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Forest hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Tree-level parameters (`min_child_weight` acts as min samples per
    /// leaf; `colsample` as the per-split feature subsample).
    pub tree: TreeParams,
    /// Bootstrap sample size as a fraction of the training set.
    pub bootstrap: f64,
    /// Quantile bins per feature.
    pub max_bins: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        Self {
            n_trees: 100,
            tree: TreeParams {
                max_depth: 12,
                lambda: 0.0,
                gamma: 0.0,
                min_child_weight: 2.0,
                colsample: 0.6,
            },
            bootstrap: 1.0,
            max_bins: 64,
            seed: 0xF04E57,
        }
    }
}

/// A trained decision forest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForestRegressor {
    /// Hyper-parameters the forest was grown with; kept on the model so a
    /// warm-started continuation derives tree seeds the same way `fit`
    /// did.
    params: ForestParams,
    trees: Vec<Tree>,
    n_outputs: usize,
    stats: SplitStats,
    feature_names: Vec<String>,
    /// Lazily-built flat f64 inference form (derived; rebuilt after
    /// deserialisation or cloning on first predict).
    #[serde(skip)]
    compiled: LazyCompiled,
    /// Lazily-built quantized inference form (derived, like `compiled`).
    #[serde(skip)]
    quantized: LazyQuantized,
}

impl ForestRegressor {
    /// Train on a dataset.
    pub fn fit(dataset: &MlDataset, params: ForestParams) -> Result<Self, MphpcError> {
        validate_training_data(dataset, "ForestRegressor::fit")?;
        let binner = QuantileBinner::fit(&dataset.x, params.max_bins);
        let bins = binner.transform(&dataset.x);
        let data = BinnedMatrix {
            bins: &bins,
            cols: dataset.n_features(),
            binner: &binner,
        };
        // One histogram layout serves every tree of the forest.
        let layout = HistLayout::for_targets(&binner, dataset.n_outputs());
        let built = grow_trees(&data, &layout, dataset, &params, 0, params.n_trees);
        let mut stats = SplitStats::new(dataset.n_features());
        let mut trees = Vec::with_capacity(params.n_trees);
        for (tree, s) in built {
            stats.merge(&s);
            trees.push(tree);
        }
        Ok(Self {
            params,
            trees,
            n_outputs: dataset.n_outputs(),
            stats,
            feature_names: dataset.feature_names.clone(),
            compiled: LazyCompiled::default(),
            quantized: LazyQuantized::default(),
        })
    }

    /// Grow `extra_trees` additional trees on `dataset`, returning the
    /// extended forest (`self` is unchanged).
    ///
    /// Every tree's randomness is a pure function of `(seed, tree index)`,
    /// so on an unchanged dataset a forest of `b` trees continued by `m`
    /// is bit-identical to one grown with `b + m` trees in a single
    /// process, at any thread count. On a grown dataset the new trees
    /// bootstrap from the current rows — the forest stays an average of
    /// trees, each pinned to the data snapshot it was grown on.
    pub fn warm_start(&self, dataset: &MlDataset, extra_trees: usize) -> Result<Self, MphpcError> {
        validate_training_data(dataset, "ForestRegressor::warm_start")?;
        if dataset.feature_names != self.feature_names {
            return Err(MphpcError::InvalidArgument(format!(
                "ForestRegressor::warm_start: dataset features {:?} do not match the model's {:?}",
                dataset.feature_names, self.feature_names
            )));
        }
        if dataset.n_outputs() != self.n_outputs {
            return Err(MphpcError::DimensionMismatch {
                context: "ForestRegressor::warm_start: output count",
                expected: self.n_outputs,
                found: dataset.n_outputs(),
            });
        }
        let params = self.params;
        let _span = mphpc_telemetry::span!(
            "forest.warm_start",
            rows = dataset.n_samples(),
            extra = extra_trees
        );
        let binner = QuantileBinner::fit(&dataset.x, params.max_bins);
        let bins = binner.transform(&dataset.x);
        let data = BinnedMatrix {
            bins: &bins,
            cols: dataset.n_features(),
            binner: &binner,
        };
        let layout = HistLayout::for_targets(&binner, dataset.n_outputs());
        let built = grow_trees(
            &data,
            &layout,
            dataset,
            &params,
            self.trees.len(),
            extra_trees,
        );
        let mut stats = self.stats.clone();
        let mut trees = self.trees.clone();
        for (tree, s) in built {
            stats.merge(&s);
            trees.push(tree);
        }
        mphpc_telemetry::counter_add("ml.forest.warm_starts", 1);
        Ok(Self {
            params: ForestParams {
                n_trees: params.n_trees + extra_trees,
                ..params
            },
            trees,
            n_outputs: self.n_outputs,
            stats,
            feature_names: self.feature_names.clone(),
            compiled: LazyCompiled::default(),
            quantized: LazyQuantized::default(),
        })
    }

    /// Predict by averaging tree outputs.
    ///
    /// Runs on the quantized bin-indexed engine ([`crate::quantized`])
    /// for every batch size: small batches take its interleaved
    /// single-row path (which beats the reference traversal, replacing
    /// the old `SMALL_BATCH_ROWS` reference fallback), larger ones the
    /// blocked lane kernel. Output is bit-identical to
    /// [`ForestRegressor::predict_reference`] at any thread count.
    pub fn predict(&self, x: &Matrix) -> Result<Matrix, MphpcError> {
        check_feature_count("ForestRegressor::predict", self.feature_names.len(), x)?;
        Ok(self.quantized().predict(x))
    }

    /// Reference per-row enum-tree traversal, kept as the oracle the
    /// compiled engine is tested against.
    pub fn predict_reference(&self, x: &Matrix) -> Result<Matrix, MphpcError> {
        check_feature_count(
            "ForestRegressor::predict_reference",
            self.feature_names.len(),
            x,
        )?;
        let mut out = Matrix::zeros(x.rows(), self.n_outputs);
        let inv = 1.0 / self.trees.len().max(1) as f64;
        for i in 0..x.rows() {
            let row = x.row(i);
            let acc = out.row_mut(i);
            for tree in &self.trees {
                for (a, &v) in acc.iter_mut().zip(tree.predict_row(row)) {
                    *a += v;
                }
            }
            for a in acc.iter_mut() {
                *a *= inv;
            }
        }
        Ok(out)
    }

    /// The compiled f64 inference form, building it on first use.
    pub fn compiled(&self) -> &CompiledEnsemble {
        self.compiled
            .get_or_compile(|| CompiledEnsemble::from_forest(&self.trees, self.n_outputs))
    }

    /// The quantized inference form, building it on first use.
    pub fn quantized(&self) -> &QuantizedEnsemble {
        self.quantized.get_or_build(|| {
            QuantizedEnsemble::from_compiled(self.compiled(), self.feature_names.len())
        })
    }

    /// Gain-based feature importance.
    pub fn feature_importance(&self) -> FeatureImportance {
        FeatureImportance::from_stats(&self.feature_names, &self.stats)
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Hyper-parameters the forest was grown with.
    pub fn params(&self) -> &ForestParams {
        &self.params
    }
}

/// Build trees `start..start + count`, each seeded purely by its tree
/// index. Shared by [`ForestRegressor::fit`] (`start = 0`) and
/// [`ForestRegressor::warm_start`] (`start` = trees already grown).
fn grow_trees(
    data: &BinnedMatrix<'_>,
    layout: &HistLayout,
    dataset: &MlDataset,
    params: &ForestParams,
    start: usize,
    count: usize,
) -> Vec<(Tree, SplitStats)> {
    let n = dataset.n_samples();
    let tree_ids: Vec<usize> = (start..start + count).collect();
    mphpc_par::par_map(&tree_ids, |_, &t| {
        let mut rng = StdRng::seed_from_u64(params.seed ^ (t as u64).wrapping_mul(0x517CC1B7));
        let sample_size = ((n as f64 * params.bootstrap).round() as usize).clamp(1, n * 2);
        // Bootstrap: sample with replacement.
        let rows: Vec<u32> = (0..sample_size)
            .map(|_| rng.gen_range(0..n) as u32)
            .collect();
        build_variance_tree_with(data, layout, rows, &dataset.y, &params.tree, &mut rng)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mae;

    fn synthetic(n: usize, seed: u64) -> MlDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xr = Vec::with_capacity(n);
        let mut yr = Vec::with_capacity(n);
        for _ in 0..n {
            let x0: f64 = rng.gen_range(-1.0..1.0);
            let x1: f64 = rng.gen_range(-1.0..1.0);
            xr.push(vec![x0, x1]);
            yr.push(vec![x0.signum() + x1, x0 * x1]);
        }
        MlDataset::new(
            Matrix::from_rows(&xr),
            Matrix::from_rows(&yr),
            vec!["x0".into(), "x1".into()],
        )
        .unwrap()
    }

    #[test]
    fn fits_multi_output_function() {
        let train = synthetic(2000, 1);
        let test = synthetic(300, 2);
        let model = ForestRegressor::fit(&train, ForestParams::default()).unwrap();
        let err = mae(&model.predict(&test.x).unwrap(), &test.y).unwrap();
        assert!(err < 0.15, "forest MAE {err}");
    }

    #[test]
    fn more_trees_reduce_variance() {
        let train = synthetic(800, 3);
        let test = synthetic(200, 4);
        let one = ForestRegressor::fit(
            &train,
            ForestParams {
                n_trees: 1,
                ..ForestParams::default()
            },
        )
        .unwrap();
        let many = ForestRegressor::fit(
            &train,
            ForestParams {
                n_trees: 80,
                ..ForestParams::default()
            },
        )
        .unwrap();
        assert!(
            mae(&many.predict(&test.x).unwrap(), &test.y).unwrap()
                <= mae(&one.predict(&test.x).unwrap(), &test.y).unwrap(),
            "averaging should not hurt"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let train = synthetic(300, 5);
        let a = ForestRegressor::fit(&train, ForestParams::default()).unwrap();
        let b = ForestRegressor::fit(&train, ForestParams::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn importance_positive_for_used_features() {
        let train = synthetic(800, 6);
        let model = ForestRegressor::fit(&train, ForestParams::default()).unwrap();
        let imp = model.feature_importance();
        assert!(imp.gain_of("x0").unwrap() > 0.0);
        assert!(imp.gain_of("x1").unwrap() > 0.0);
    }

    #[test]
    fn small_batches_run_quantized_and_stay_bit_identical() {
        // The old SMALL_BATCH_ROWS=8 reference fallback is gone: every
        // batch size (including a single row, which takes the quantized
        // engine's interleaved pack path) must match the reference
        // oracle and the f64 engine exactly.
        let train = synthetic(400, 8);
        let model = ForestRegressor::fit(&train, ForestParams::default()).unwrap();
        let pool = synthetic(16, 9);
        for rows in [1usize, 2, 7, 8, 11] {
            let sub: Vec<Vec<f64>> = (0..rows).map(|i| pool.x.row(i).to_vec()).collect();
            let sub = Matrix::from_rows(&sub);
            let routed = model.predict(&sub).unwrap();
            assert_eq!(
                routed,
                model.predict_reference(&sub).unwrap(),
                "rows={rows}"
            );
            assert_eq!(routed, model.compiled().predict(&sub), "rows={rows}");
            assert_eq!(routed, model.quantized().predict(&sub), "rows={rows}");
        }
    }

    #[test]
    fn predictions_within_target_hull() {
        // Averaged leaf means can never exceed observed target extremes.
        let train = synthetic(500, 7);
        let model = ForestRegressor::fit(&train, ForestParams::default()).unwrap();
        let pred = model.predict(&train.x).unwrap();
        for j in 0..train.n_outputs() {
            let col = train.y.col(j);
            let lo = col.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = col.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for i in 0..pred.rows() {
                let v = pred.get(i, j);
                assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            }
        }
    }
}
