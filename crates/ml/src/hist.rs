//! Pooled histogram engine for histogram-based tree construction.
//!
//! The tree builders in [`crate::tree`] need, per node, one histogram of
//! per-bin statistics for every feature. This module provides the three
//! ingredients that make that fast:
//!
//! * **Arena layout** ([`HistLayout`]) — all features share one contiguous
//!   `Vec<f64>` arena. Feature `f` owns the bin range
//!   `offsets[f]..offsets[f+1]`, and every bin holds `width` interleaved
//!   statistics (`[grad, hess]` for GBT trees, `[sum_0..sum_{k-1}, count]`
//!   for variance trees). One node histogram is therefore a single
//!   allocation regardless of feature count, and [`HistPool`] recycles
//!   those allocations across nodes so steady-state tree growth does not
//!   touch the allocator at all.
//! * **Single-pass accumulation** ([`accumulate_gh`],
//!   [`accumulate_targets`]) — one row-major sweep over the binned matrix
//!   fills the statistics of *all* features at once. Each training row's
//!   bin ids are contiguous in memory, so the sweep reads every cache line
//!   exactly once instead of once per feature, and the per-feature
//!   `resize`/`clear` churn of per-feature passes disappears. For a fixed
//!   feature the per-bin sums are accumulated in row order, i.e.
//!   bit-identical to a per-feature pass over the same rows.
//! * **Sibling subtraction** ([`subtract`]) — a split partitions a node's
//!   rows, so `hist(parent) = hist(left) + hist(right)` bin by bin. The
//!   builders accumulate only the smaller child and derive the larger one
//!   as `parent − smaller`, roughly halving histogram work per level.
//!   Subtraction needs full-arena histograms (all features, since the
//!   children's feature samples are not yet drawn), which costs more than
//!   it saves for small nodes under column subsampling.
//!   [`subtract_profitable`] compares the floating-point op counts of the
//!   two strategies, and when subtraction loses, nodes instead accumulate
//!   only their sampled features ([`accumulate_gh_sampled`],
//!   [`accumulate_targets_sampled`]) into a partially zeroed buffer
//!   ([`zero_features`]) — exactly the work a per-feature builder does,
//!   minus its allocations. Tiny nodes (≤ [`ROWWISE_MAX_ROWS`] rows)
//!   skip arena histograms entirely: split search accumulates the node's
//!   rows into an epoch-stamped dense strip ([`RowwiseScratch`]) and
//!   prefix-scans only the touched bins in bin order
//!   ([`best_split_gh_rowwise`], [`best_split_targets_rowwise`]), which
//!   stays bit-identical to the histogram scan because per-bin sums are
//!   folded with the same two-level summation, untouched bins cannot
//!   beat an equal earlier gain under the strictly-greater argmax, and
//!   bins past the last touched one never satisfy the child-weight
//!   checks.
//!
//! Split search ([`best_split_gh`], [`best_split_targets`]) scans bin
//! prefixes exactly like the scalar builders did. For wide feature spaces
//! (`>=` [`PAR_SPLIT_MIN_FEATURES`] candidate features) the per-feature
//! scans fan out via [`mphpc_par::par_map`]; because `par_map` returns
//! results in input order and the reduction folds them in that same order
//! with a strictly-greater comparison, the chosen split is identical to
//! the sequential scan for every thread count — seeded runs stay
//! bit-reproducible.

use crate::binning::QuantileBinner;
use crate::tree::{BinnedMatrix, TreeParams};

/// Candidate feature count at or above which split search fans out across
/// worker threads. Below this, the per-feature scans are cheaper than the
/// thread handoff.
pub const PAR_SPLIT_MIN_FEATURES: usize = 64;

/// Row count at or below which nodes search splits row-wise
/// ([`best_split_gh_rowwise`], [`best_split_targets_rowwise`]) instead of
/// building a histogram: with fewer rows than bins, accumulating into the
/// epoch-stamped strip and scanning only touched bins costs less than
/// zeroing and scanning every bin of every sampled feature.
pub const ROWWISE_MAX_ROWS: usize = 32;

/// Per-feature bin offsets into a pooled, contiguous histogram arena.
///
/// Immutable once built; one layout is shared by every tree of an
/// ensemble (and across threads — it is `Sync`).
#[derive(Debug, Clone)]
pub struct HistLayout {
    /// `offsets[f]..offsets[f+1]` is feature `f`'s bin range; the last
    /// entry is the total bin count.
    offsets: Vec<u32>,
    /// Statistics interleaved per bin.
    width: usize,
}

impl HistLayout {
    /// Layout with `width` statistics per bin over the binner's features.
    pub fn new(binner: &QuantileBinner, width: usize) -> Self {
        assert!(width > 0, "histogram width must be positive");
        let n_features = binner.cuts.len();
        let mut offsets = Vec::with_capacity(n_features + 1);
        let mut total = 0u32;
        offsets.push(0);
        for f in 0..n_features {
            total += binner.n_bins(f) as u32;
            offsets.push(total);
        }
        Self { offsets, width }
    }

    /// Layout for GBT trees: interleaved `[grad, hess]` per bin.
    pub fn for_gbt(binner: &QuantileBinner) -> Self {
        Self::new(binner, 2)
    }

    /// Layout for variance trees over `k` outputs: `[sum_0..sum_{k-1},
    /// count]` per bin.
    pub fn for_targets(binner: &QuantileBinner, k: usize) -> Self {
        Self::new(binner, k + 1)
    }

    /// Number of features covered by the layout.
    pub fn n_features(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Statistics interleaved per bin.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total bins across all features.
    pub fn total_bins(&self) -> usize {
        *self.offsets.last().unwrap() as usize
    }

    /// Length of one arena buffer in `f64` statistics.
    pub fn stats_len(&self) -> usize {
        self.total_bins() * self.width
    }

    /// First bin index of feature `f` in the arena.
    #[inline]
    pub fn offset(&self, f: usize) -> usize {
        self.offsets[f] as usize
    }

    /// Bin count of feature `f`.
    #[inline]
    pub fn n_bins(&self, f: usize) -> usize {
        (self.offsets[f + 1] - self.offsets[f]) as usize
    }
}

/// Recycler for histogram arena buffers of one fixed layout.
///
/// Tree growth holds at most `O(depth)` histograms alive (the stack of
/// pending sibling nodes), so the pool stays tiny; acquiring zeroes a
/// recycled buffer instead of allocating a fresh one.
#[derive(Debug)]
pub struct HistPool {
    stats_len: usize,
    free: Vec<Vec<f64>>,
}

impl HistPool {
    /// Pool producing buffers of `layout.stats_len()` statistics.
    pub fn new(layout: &HistLayout) -> Self {
        Self {
            stats_len: layout.stats_len(),
            free: Vec::new(),
        }
    }

    /// A zeroed arena buffer, recycled when possible.
    pub fn acquire(&mut self) -> Vec<f64> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.fill(0.0);
                buf
            }
            None => vec![0.0; self.stats_len],
        }
    }

    /// An arena buffer with unspecified contents — for callers that zero
    /// only the feature ranges they will read ([`zero_features`]).
    pub fn acquire_raw(&mut self) -> Vec<f64> {
        self.free.pop().unwrap_or_else(|| vec![0.0; self.stats_len])
    }

    /// Return a buffer for reuse.
    pub fn release(&mut self, buf: Vec<f64>) {
        debug_assert_eq!(buf.len(), self.stats_len);
        self.free.push(buf);
    }
}

/// Accumulate `[grad, hess]` statistics for all features in one row-major
/// sweep over `rows`.
///
/// `out` must be a zeroed (or partially accumulated) arena buffer of a
/// `width == 2` layout. Duplicate row ids accumulate multiply, which is
/// what bootstrap samples want.
pub fn accumulate_gh(
    layout: &HistLayout,
    data: &BinnedMatrix<'_>,
    rows: &[u32],
    grad: &[f64],
    hess: &[f64],
    out: &mut [f64],
) {
    debug_assert_eq!(layout.width, 2);
    mphpc_telemetry::counter_add("ml.hist.rows_binned", rows.len() as u64);
    let cols = data.cols;
    for &r in rows {
        let ri = r as usize;
        let g = grad[ri];
        let h = hess[ri];
        let bins = &data.bins[ri * cols..ri * cols + cols];
        for (f, &b) in bins.iter().enumerate() {
            let idx = (layout.offsets[f] as usize + b as usize) * 2;
            out[idx] += g;
            out[idx + 1] += h;
        }
    }
}

/// Accumulate `[sum_0..sum_{k-1}, count]` statistics for all features in
/// one row-major sweep over `rows`.
pub fn accumulate_targets(
    layout: &HistLayout,
    data: &BinnedMatrix<'_>,
    rows: &[u32],
    targets: &crate::matrix::Matrix,
    out: &mut [f64],
) {
    let w = layout.width;
    let k = w - 1;
    debug_assert_eq!(targets.cols(), k);
    mphpc_telemetry::counter_add("ml.hist.rows_binned", rows.len() as u64);
    let cols = data.cols;
    for &r in rows {
        let ri = r as usize;
        let t = targets.row(ri);
        let bins = &data.bins[ri * cols..ri * cols + cols];
        for (f, &b) in bins.iter().enumerate() {
            let base = (layout.offsets[f] as usize + b as usize) * w;
            let slot = &mut out[base..base + w];
            for (s, &v) in slot[..k].iter_mut().zip(t) {
                *s += v;
            }
            slot[k] += 1.0;
        }
    }
}

/// [`accumulate_gh`] restricted to `features`, for nodes whose histogram
/// will only ever be read over their sampled feature set. Per-feature bin
/// sums are accumulated in row order, bit-identical to the full sweep.
pub fn accumulate_gh_sampled(
    layout: &HistLayout,
    data: &BinnedMatrix<'_>,
    rows: &[u32],
    grad: &[f64],
    hess: &[f64],
    features: &[usize],
    out: &mut [f64],
) {
    debug_assert_eq!(layout.width, 2);
    mphpc_telemetry::counter_add("ml.hist.rows_binned", rows.len() as u64);
    let cols = data.cols;
    for &r in rows {
        let ri = r as usize;
        let g = grad[ri];
        let h = hess[ri];
        let bins = &data.bins[ri * cols..ri * cols + cols];
        for &f in features {
            let idx = (layout.offsets[f] as usize + bins[f] as usize) * 2;
            out[idx] += g;
            out[idx + 1] += h;
        }
    }
}

/// [`accumulate_targets`] restricted to `features`.
pub fn accumulate_targets_sampled(
    layout: &HistLayout,
    data: &BinnedMatrix<'_>,
    rows: &[u32],
    targets: &crate::matrix::Matrix,
    features: &[usize],
    out: &mut [f64],
) {
    let w = layout.width;
    let k = w - 1;
    debug_assert_eq!(targets.cols(), k);
    mphpc_telemetry::counter_add("ml.hist.rows_binned", rows.len() as u64);
    let cols = data.cols;
    for &r in rows {
        let ri = r as usize;
        let t = targets.row(ri);
        let bins = &data.bins[ri * cols..ri * cols + cols];
        for &f in features {
            let base = (layout.offsets[f] as usize + bins[f] as usize) * w;
            let slot = &mut out[base..base + w];
            for (s, &v) in slot[..k].iter_mut().zip(t) {
                *s += v;
            }
            slot[k] += 1.0;
        }
    }
}

/// Zero the arena ranges of the given features (for buffers from
/// [`HistPool::acquire_raw`] that will only be read over those features).
pub fn zero_features(layout: &HistLayout, features: &[usize], out: &mut [f64]) {
    let w = layout.width;
    for &f in features {
        let start = layout.offset(f) * w;
        out[start..start + layout.n_bins(f) * w].fill(0.0);
    }
}

/// Derive the larger sibling in place: `parent -= smaller_child`.
pub fn subtract(parent: &mut [f64], child: &[f64]) {
    debug_assert_eq!(parent.len(), child.len());
    mphpc_telemetry::counter_add("ml.hist.sibling_subtractions", 1);
    for (p, c) in parent.iter_mut().zip(child) {
        *p -= c;
    }
}

/// Should a split derive the larger child by subtraction, or should the
/// children re-accumulate their own sampled features from scratch?
///
/// Subtraction costs a full-arena zero, a full-feature accumulation of
/// the smaller child, and a full-arena subtraction. Re-accumulation costs
/// each hist-needing child a sampled-range zero plus a sampled-feature
/// accumulation — except children at or below [`ROWWISE_MAX_ROWS`], which
/// skip the arena entirely and pay only the row-wise gather
/// ([`best_split_gh_rowwise`]). Under column subsampling
/// (`n_sampled < n_features`) or for tiny children the full-arena work
/// loses — deep trees are dominated by exactly those nodes — so the
/// builders compare estimated `f64` op counts and pick per split. For
/// large nodes at `colsample == 1.0` this reduces to the classic
/// always-subtract policy. The decision uses only row counts and the
/// layout, so it is deterministic.
pub fn subtract_profitable(
    layout: &HistLayout,
    n_sampled: usize,
    small_rows: usize,
    large_rows: usize,
    small_needs_hist: bool,
) -> bool {
    let t = layout.stats_len() as f64;
    let p = layout.n_features() as f64;
    let w = layout.width as f64;
    let sampled_frac = n_sampled as f64 / p;
    let subtract_cost = 2.0 * t + small_rows as f64 * p * w;
    let child_cost = |m: usize| {
        let scan = m as f64 * n_sampled as f64 * w;
        if m <= ROWWISE_MAX_ROWS {
            scan
        } else {
            sampled_frac * t + scan
        }
    };
    let mut rebuild_cost = child_cost(large_rows);
    if small_needs_hist {
        rebuild_cost += child_cost(small_rows);
    }
    subtract_cost < rebuild_cost
}

/// A chosen split: feature, bin (inclusive left boundary), and gain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitCandidate {
    /// Feature column index.
    pub feature: usize,
    /// Rows with `bin <= self.bin` go left.
    pub bin: u16,
    /// Criterion gain of the split.
    pub gain: f64,
}

/// Best second-order (GBT) split over `features`, given the node's arena
/// histogram and gradient/hessian totals.
///
/// Features are examined in the given order and ties resolve to the first
/// strictly-greater gain, matching a flat sequential scan; the parallel
/// path reduces `par_map`'s in-order results identically.
pub fn best_split_gh(
    layout: &HistLayout,
    features: &[usize],
    hist: &[f64],
    g_sum: f64,
    h_sum: f64,
    params: &TreeParams,
) -> Option<SplitCandidate> {
    let per_feature = |f: usize| best_bin_gh(layout, f, hist, g_sum, h_sum, params);
    if features.len() >= PAR_SPLIT_MIN_FEATURES {
        let bests = mphpc_par::par_map(features, |_, &f| per_feature(f));
        reduce_in_order(features, bests)
    } else {
        reduce_in_order(features, features.iter().map(|&f| per_feature(f)))
    }
}

/// Best variance-reduction split over `features` for vector targets.
///
/// `sums` are the node's per-output target sums and `n` its row count;
/// `min_leaf` is the minimum child row count.
pub fn best_split_targets(
    layout: &HistLayout,
    features: &[usize],
    hist: &[f64],
    sums: &[f64],
    n: f64,
    min_leaf: f64,
) -> Option<SplitCandidate> {
    let per_feature = |f: usize| best_bin_targets(layout, f, hist, sums, n, min_leaf);
    if features.len() >= PAR_SPLIT_MIN_FEATURES {
        let bests = mphpc_par::par_map(features, |_, &f| per_feature(f));
        reduce_in_order(features, bests)
    } else {
        reduce_in_order(features, features.iter().map(|&f| per_feature(f)))
    }
}

/// Fold per-feature candidates in feature order with a strictly-greater
/// comparison — the same argmax a flat sequential scan computes.
fn reduce_in_order(
    features: &[usize],
    bests: impl IntoIterator<Item = Option<(u16, f64)>>,
) -> Option<SplitCandidate> {
    let mut best: Option<SplitCandidate> = None;
    for (&feature, cand) in features.iter().zip(bests) {
        if let Some((bin, gain)) = cand {
            if best.as_ref().map_or(true, |b| gain > b.gain) {
                best = Some(SplitCandidate { feature, bin, gain });
            }
        }
    }
    best
}

/// Reusable buffers for the row-wise split search: a dense per-bin
/// statistics strip sized for the layout's widest feature, epoch stamps
/// that make "clearing" it O(1) per feature, and the list of touched
/// bins. Create once per tree build and reuse across nodes.
pub struct RowwiseScratch {
    stamp: Vec<u64>,
    epoch: u64,
    stats: Vec<f64>,
    touched: Vec<u16>,
}

impl RowwiseScratch {
    /// Scratch sized for `layout`'s widest feature and statistics width.
    pub fn new(layout: &HistLayout) -> Self {
        let max_bins = (0..layout.n_features())
            .map(|f| layout.n_bins(f))
            .max()
            .unwrap_or(0);
        Self {
            stamp: vec![0; max_bins],
            epoch: 0,
            stats: vec![0.0; max_bins * layout.width()],
            touched: Vec::new(),
        }
    }
}

/// Row-wise split search for small GBT nodes: per feature, accumulate the
/// node's rows into a dense per-bin strip — epoch stamps avoid zeroing
/// the whole strip — then prefix-scan the touched bins in bin order.
/// Bit-identical to [`best_split_gh`] over a histogram of the same rows:
/// each touched bin's statistics start from `0.0` and accumulate in row
/// order exactly like the arena path, untouched bins contribute nothing
/// and can never beat an equal earlier gain under the strictly-greater
/// argmax, and the scan stops at the feature's last bin where the bin
/// loop stops finding eligible splits.
#[allow(clippy::too_many_arguments)]
pub fn best_split_gh_rowwise(
    layout: &HistLayout,
    data: &BinnedMatrix<'_>,
    rows: &[u32],
    features: &[usize],
    grad: &[f64],
    hess: &[f64],
    g_sum: f64,
    h_sum: f64,
    params: &TreeParams,
    scratch: &mut RowwiseScratch,
) -> Option<SplitCandidate> {
    let parent_score = g_sum * g_sum / (h_sum + params.lambda);
    let mut best: Option<SplitCandidate> = None;
    for &f in features {
        let n_bins = layout.n_bins(f);
        if n_bins < 2 {
            continue;
        }
        scratch.epoch += 1;
        scratch.touched.clear();
        for &r in rows {
            let ri = r as usize;
            let b = data.bins[ri * data.cols + f] as usize;
            let s = &mut scratch.stats[2 * b..2 * b + 2];
            if scratch.stamp[b] == scratch.epoch {
                s[0] += grad[ri];
                s[1] += hess[ri];
            } else {
                scratch.stamp[b] = scratch.epoch;
                // `0.0 + x`, not `x`: a first statistic of `-0.0` must
                // land as `+0.0`, exactly as in a zeroed arena bin.
                s[0] = 0.0 + grad[ri];
                s[1] = 0.0 + hess[ri];
                scratch.touched.push(b as u16);
            }
        }
        sort_bins(&mut scratch.touched);
        let mut gl = 0.0;
        let mut hl = 0.0;
        for &b in &scratch.touched {
            let bi = b as usize;
            gl += scratch.stats[2 * bi];
            hl += scratch.stats[2 * bi + 1];
            if bi + 1 >= n_bins {
                break;
            }
            let gr = g_sum - gl;
            let hr = h_sum - hl;
            if hl < params.min_child_weight || hr < params.min_child_weight {
                continue;
            }
            let gain = 0.5
                * (gl * gl / (hl + params.lambda) + gr * gr / (hr + params.lambda) - parent_score)
                - params.gamma;
            if gain > 0.0 && best.as_ref().map_or(true, |c| gain > c.gain) {
                best = Some(SplitCandidate {
                    feature: f,
                    bin: b,
                    gain,
                });
            }
        }
    }
    best
}

/// Row-wise split search for small variance-tree nodes; see
/// [`best_split_gh_rowwise`] for the equivalence argument.
#[allow(clippy::too_many_arguments)]
pub fn best_split_targets_rowwise(
    layout: &HistLayout,
    data: &BinnedMatrix<'_>,
    rows: &[u32],
    features: &[usize],
    targets: &crate::matrix::Matrix,
    sums: &[f64],
    n: f64,
    min_leaf: f64,
    scratch: &mut RowwiseScratch,
) -> Option<SplitCandidate> {
    let k = sums.len();
    let w = k + 1;
    debug_assert_eq!(layout.width(), w);
    let parent_score: f64 = sums.iter().map(|s| s * s).sum::<f64>() / n;
    let mut sl = vec![0.0; k];
    let mut best: Option<SplitCandidate> = None;
    for &f in features {
        let n_bins = layout.n_bins(f);
        if n_bins < 2 {
            continue;
        }
        scratch.epoch += 1;
        scratch.touched.clear();
        for &r in rows {
            let ri = r as usize;
            let b = data.bins[ri * data.cols + f] as usize;
            let s = &mut scratch.stats[b * w..(b + 1) * w];
            if scratch.stamp[b] != scratch.epoch {
                scratch.stamp[b] = scratch.epoch;
                s.fill(0.0);
                scratch.touched.push(b as u16);
            }
            for (sj, &v) in s.iter_mut().zip(targets.row(ri)) {
                *sj += v;
            }
            s[k] += 1.0;
        }
        sort_bins(&mut scratch.touched);
        sl.fill(0.0);
        let mut nl = 0.0;
        for &b in &scratch.touched {
            let s = &scratch.stats[b as usize * w..(b as usize + 1) * w];
            for (p, &v) in sl.iter_mut().zip(&s[..k]) {
                *p += v;
            }
            nl += s[k];
            if b as usize + 1 >= n_bins {
                break;
            }
            let nr = n - nl;
            if nl < min_leaf || nr < min_leaf {
                continue;
            }
            let mut score = 0.0;
            for (j, &p) in sl.iter().enumerate() {
                let sr = sums[j] - p;
                score += p * p / nl + sr * sr / nr;
            }
            let gain = score - parent_score;
            if gain > 1e-12 && best.as_ref().map_or(true, |c| gain > c.gain) {
                best = Some(SplitCandidate {
                    feature: f,
                    bin: b,
                    gain,
                });
            }
        }
    }
    best
}

/// Insertion sort of the touched-bin list — at most [`ROWWISE_MAX_ROWS`]
/// distinct bins, where this beats a general sort. The list has no
/// duplicates, so stability is moot; per-bin accumulation already
/// happened in row order in the dense strip.
fn sort_bins(items: &mut [u16]) {
    for i in 1..items.len() {
        let mut j = i;
        while j > 0 && items[j - 1] > items[j] {
            items.swap(j - 1, j);
            j -= 1;
        }
    }
}

fn best_bin_gh(
    layout: &HistLayout,
    f: usize,
    hist: &[f64],
    g_sum: f64,
    h_sum: f64,
    params: &TreeParams,
) -> Option<(u16, f64)> {
    let n_bins = layout.n_bins(f);
    if n_bins < 2 {
        return None;
    }
    let base = layout.offset(f) * 2;
    let parent_score = g_sum * g_sum / (h_sum + params.lambda);
    let mut gl = 0.0;
    let mut hl = 0.0;
    let mut best: Option<(u16, f64)> = None;
    for b in 0..n_bins - 1 {
        let g = hist[base + 2 * b];
        let h = hist[base + 2 * b + 1];
        // A bin with exactly zero statistics leaves (gl, hl) — and hence
        // the gain and the min-weight checks — identical to the previous
        // bin, and the strictly-greater argmax keeps the first of equal
        // gains, so skipping it is bit-exact. Directly accumulated
        // histograms of small nodes are mostly such bins, which makes
        // this skip cheaper than a branch-free scan over every bin.
        if g == 0.0 && h == 0.0 {
            continue;
        }
        gl += g;
        hl += h;
        let gr = g_sum - gl;
        let hr = h_sum - hl;
        if hl < params.min_child_weight || hr < params.min_child_weight {
            continue;
        }
        let gain = 0.5
            * (gl * gl / (hl + params.lambda) + gr * gr / (hr + params.lambda) - parent_score)
            - params.gamma;
        if gain > 0.0 && best.map_or(true, |(_, g)| gain > g) {
            best = Some((b as u16, gain));
        }
    }
    best
}

fn best_bin_targets(
    layout: &HistLayout,
    f: usize,
    hist: &[f64],
    sums: &[f64],
    n: f64,
    min_leaf: f64,
) -> Option<(u16, f64)> {
    let n_bins = layout.n_bins(f);
    if n_bins < 2 {
        return None;
    }
    let w = layout.width;
    let k = w - 1;
    let base = layout.offset(f) * w;
    let parent_score: f64 = sums.iter().map(|s| s * s).sum::<f64>() / n;
    let mut nl = 0.0;
    let mut sl = vec![0.0; k];
    let mut best: Option<(u16, f64)> = None;
    for b in 0..n_bins - 1 {
        let bin = &hist[base + b * w..base + (b + 1) * w];
        // All-zero bins change nothing downstream; skipping them is
        // bit-exact (see `best_bin_gh`).
        if bin[k] == 0.0 && bin[..k].iter().all(|&v| v == 0.0) {
            continue;
        }
        nl += bin[k];
        for (s, &v) in sl.iter_mut().zip(&bin[..k]) {
            *s += v;
        }
        let nr = n - nl;
        if nl < min_leaf || nr < min_leaf {
            continue;
        }
        let mut score = 0.0;
        for (j, &s) in sl.iter().enumerate() {
            let sr = sums[j] - s;
            score += s * s / nl + sr * sr / nr;
        }
        let gain = score - parent_score;
        if gain > 1e-12 && best.map_or(true, |(_, g)| gain > g) {
            best = Some((b as u16, gain));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn fixture() -> (Matrix, QuantileBinner, Vec<u16>) {
        // Two features with different bin counts to exercise offsets.
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64 / 40.0, (i % 4) as f64])
            .collect();
        let x = Matrix::from_rows(&rows);
        let binner = QuantileBinner::fit(&x, 8);
        let bins = binner.transform(&x);
        (x, binner, bins)
    }

    #[test]
    fn layout_offsets_partition_the_arena() {
        let (_, binner, _) = fixture();
        let layout = HistLayout::for_gbt(&binner);
        assert_eq!(layout.n_features(), 2);
        assert_eq!(layout.offset(0), 0);
        assert_eq!(layout.offset(1), layout.n_bins(0));
        assert_eq!(layout.total_bins(), layout.n_bins(0) + layout.n_bins(1));
        assert_eq!(layout.stats_len(), layout.total_bins() * 2);
    }

    #[test]
    fn single_pass_matches_per_feature_accumulation() {
        let (x, binner, bins) = fixture();
        let data = BinnedMatrix {
            bins: &bins,
            cols: x.cols(),
            binner: &binner,
        };
        let n = x.rows();
        let grad: Vec<f64> = (0..n).map(|i| i as f64 * 0.25 - 3.0).collect();
        let hess: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let rows: Vec<u32> = (0..n as u32).collect();
        let layout = HistLayout::for_gbt(&binner);
        let mut arena = vec![0.0; layout.stats_len()];
        accumulate_gh(&layout, &data, &rows, &grad, &hess, &mut arena);
        for f in 0..2 {
            let mut g_hist = vec![0.0; layout.n_bins(f)];
            let mut h_hist = vec![0.0; layout.n_bins(f)];
            for &r in &rows {
                let b = bins[r as usize * 2 + f] as usize;
                g_hist[b] += grad[r as usize];
                h_hist[b] += hess[r as usize];
            }
            for b in 0..layout.n_bins(f) {
                let idx = (layout.offset(f) + b) * 2;
                assert_eq!(arena[idx], g_hist[b], "grad f={f} b={b}");
                assert_eq!(arena[idx + 1], h_hist[b], "hess f={f} b={b}");
            }
        }
    }

    #[test]
    fn sibling_subtraction_recovers_partition() {
        let (x, binner, bins) = fixture();
        let data = BinnedMatrix {
            bins: &bins,
            cols: x.cols(),
            binner: &binner,
        };
        let n = x.rows();
        let grad: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let hess = vec![1.0; n];
        let layout = HistLayout::for_gbt(&binner);
        let all: Vec<u32> = (0..n as u32).collect();
        let (left, right): (Vec<u32>, Vec<u32>) = all.iter().partition(|&&r| r % 3 == 0);
        let mut parent = vec![0.0; layout.stats_len()];
        let mut small = vec![0.0; layout.stats_len()];
        let mut direct = vec![0.0; layout.stats_len()];
        accumulate_gh(&layout, &data, &all, &grad, &hess, &mut parent);
        accumulate_gh(&layout, &data, &left, &grad, &hess, &mut small);
        accumulate_gh(&layout, &data, &right, &grad, &hess, &mut direct);
        subtract(&mut parent, &small);
        for (i, (a, b)) in parent.iter().zip(&direct).enumerate() {
            assert!((a - b).abs() < 1e-9, "stat {i}: {a} vs {b}");
        }
    }

    #[test]
    fn target_accumulation_counts_and_sums() {
        let (x, binner, bins) = fixture();
        let data = BinnedMatrix {
            bins: &bins,
            cols: x.cols(),
            binner: &binner,
        };
        let n = x.rows();
        let targets = Matrix::from_rows(
            &(0..n)
                .map(|i| vec![i as f64, -2.0 * i as f64])
                .collect::<Vec<_>>(),
        );
        let rows: Vec<u32> = (0..n as u32).collect();
        let layout = HistLayout::for_targets(&binner, 2);
        let mut arena = vec![0.0; layout.stats_len()];
        accumulate_targets(&layout, &data, &rows, &targets, &mut arena);
        // Counts per feature must total n; sums must total the column sums.
        for f in 0..2 {
            let mut count = 0.0;
            let mut s0 = 0.0;
            let mut s1 = 0.0;
            for b in 0..layout.n_bins(f) {
                let base = (layout.offset(f) + b) * 3;
                s0 += arena[base];
                s1 += arena[base + 1];
                count += arena[base + 2];
            }
            assert_eq!(count, n as f64);
            assert!((s0 - (0..n).map(|i| i as f64).sum::<f64>()).abs() < 1e-9);
            assert!((s1 + 2.0 * (0..n).map(|i| i as f64).sum::<f64>()).abs() < 1e-9);
        }
    }

    #[test]
    fn sampled_accumulation_matches_full_on_sampled_features() {
        let (x, binner, bins) = fixture();
        let data = BinnedMatrix {
            bins: &bins,
            cols: x.cols(),
            binner: &binner,
        };
        let n = x.rows();
        let grad: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let hess: Vec<f64> = (0..n).map(|i| 1.0 + (i % 2) as f64).collect();
        let rows: Vec<u32> = (0..n as u32).filter(|r| r % 2 == 0).collect();
        let layout = HistLayout::for_gbt(&binner);
        let mut full = vec![0.0; layout.stats_len()];
        accumulate_gh(&layout, &data, &rows, &grad, &hess, &mut full);
        // Scratch buffer starts poisoned; only feature 1 is sampled.
        let mut partial = vec![f64::NAN; layout.stats_len()];
        let feats = [1usize];
        zero_features(&layout, &feats, &mut partial);
        accumulate_gh_sampled(&layout, &data, &rows, &grad, &hess, &feats, &mut partial);
        for b in 0..layout.n_bins(1) {
            let idx = (layout.offset(1) + b) * 2;
            assert_eq!(partial[idx], full[idx], "grad b={b}");
            assert_eq!(partial[idx + 1], full[idx + 1], "hess b={b}");
        }
        // Unsampled feature 0's range was left untouched.
        assert!(partial[..layout.offset(1) * 2].iter().all(|v| v.is_nan()));

        let targets = Matrix::from_rows(
            &(0..n)
                .map(|i| vec![i as f64, 1.0 - i as f64])
                .collect::<Vec<_>>(),
        );
        let tlayout = HistLayout::for_targets(&binner, 2);
        let mut tfull = vec![0.0; tlayout.stats_len()];
        accumulate_targets(&tlayout, &data, &rows, &targets, &mut tfull);
        let mut tpartial = vec![f64::NAN; tlayout.stats_len()];
        zero_features(&tlayout, &feats, &mut tpartial);
        accumulate_targets_sampled(&tlayout, &data, &rows, &targets, &feats, &mut tpartial);
        for b in 0..tlayout.n_bins(1) {
            let base = (tlayout.offset(1) + b) * 3;
            assert_eq!(&tpartial[base..base + 3], &tfull[base..base + 3], "b={b}");
        }
    }

    #[test]
    fn subtraction_always_profitable_without_colsample() {
        let (_, binner, _) = fixture();
        let layout = HistLayout::for_gbt(&binner);
        let p = layout.n_features();
        // Full feature sampling: deriving the larger child is cheaper
        // than re-accumulating it whenever the children are too big for
        // the row-wise path.
        assert!(subtract_profitable(
            &layout,
            p,
            ROWWISE_MAX_ROWS + 1,
            40,
            true
        ));
        assert!(subtract_profitable(&layout, p, 500, 10_000, false));
        // Tiny children go row-wise instead, which beats even a single
        // full-arena subtraction pass.
        assert!(!subtract_profitable(&layout, p, 1, 2, true));
    }

    #[test]
    fn subtraction_declined_for_small_subsampled_nodes() {
        let (_, binner, _) = fixture();
        let layout = HistLayout::for_gbt(&binner);
        let p = layout.n_features();
        let half = p.div_ceil(2);
        // A tiny node under heavy column subsampling: full-arena work
        // dwarfs what the children would spend re-accumulating.
        assert!(!subtract_profitable(&layout, half, 2, 3, true));
        // With balanced children, accumulating the small child over all
        // features costs what both children would spend on their sampled
        // halves — only child-size asymmetry makes subtraction pay.
        assert!(!subtract_profitable(&layout, half, 100_000, 100_000, true));
        assert!(subtract_profitable(&layout, half, 100, 100_000, true));
    }

    #[test]
    fn rowwise_split_is_bit_identical_to_hist_scan() {
        let (x, binner, bins) = fixture();
        let data = BinnedMatrix {
            bins: &bins,
            cols: x.cols(),
            binner: &binner,
        };
        // A scrambled subset (with a duplicate) so the row-wise sort has
        // real work to do and bin sums depend on accumulation order.
        let rows: Vec<u32> = vec![7, 31, 2, 19, 2, 38, 11, 26, 5, 33, 14, 29, 0, 23];
        let grad: Vec<f64> = (0..40)
            .map(|i| ((i * 13 % 7) as f64 - 3.0) * 0.37)
            .collect();
        let hess: Vec<f64> = (0..40).map(|i| 1.0 + (i % 3) as f64 * 0.5).collect();
        let g_sum: f64 = rows.iter().map(|&r| grad[r as usize]).sum();
        let h_sum: f64 = rows.iter().map(|&r| hess[r as usize]).sum();
        let params = TreeParams {
            min_child_weight: 2.0,
            ..TreeParams::default()
        };
        let feats = [0usize, 1];

        let layout = HistLayout::for_gbt(&binner);
        let mut arena = vec![0.0; layout.stats_len()];
        accumulate_gh(&layout, &data, &rows, &grad, &hess, &mut arena);
        let from_hist =
            best_split_gh(&layout, &feats, &arena, g_sum, h_sum, &params).expect("split");
        let mut scratch = RowwiseScratch::new(&layout);
        let from_rows = best_split_gh_rowwise(
            &layout,
            &data,
            &rows,
            &feats,
            &grad,
            &hess,
            g_sum,
            h_sum,
            &params,
            &mut scratch,
        )
        .expect("split");
        assert_eq!(from_hist.feature, from_rows.feature);
        assert_eq!(from_hist.bin, from_rows.bin);
        assert_eq!(from_hist.gain.to_bits(), from_rows.gain.to_bits());

        // Same check for the variance criterion over vector targets.
        let t_rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 5) as f64 * 0.3, ((i * 11) % 9) as f64 - 4.0])
            .collect();
        let targets = Matrix::from_rows(&t_rows);
        let n = rows.len() as f64;
        let mut sums = vec![0.0; 2];
        for &r in &rows {
            for (s, &v) in sums.iter_mut().zip(targets.row(r as usize)) {
                *s += v;
            }
        }
        let layout = HistLayout::for_targets(&binner, 2);
        let mut arena = vec![0.0; layout.stats_len()];
        accumulate_targets(&layout, &data, &rows, &targets, &mut arena);
        let from_hist = best_split_targets(&layout, &feats, &arena, &sums, n, 2.0).expect("split");
        let mut row_scratch = RowwiseScratch::new(&layout);
        let from_rows = best_split_targets_rowwise(
            &layout,
            &data,
            &rows,
            &feats,
            &targets,
            &sums,
            n,
            2.0,
            &mut row_scratch,
        )
        .expect("split");
        assert_eq!(from_hist.feature, from_rows.feature);
        assert_eq!(from_hist.bin, from_rows.bin);
        assert_eq!(from_hist.gain.to_bits(), from_rows.gain.to_bits());
        // A second search on the same reused scratch must see clean state.
        let again = best_split_targets_rowwise(
            &layout,
            &data,
            &rows,
            &feats,
            &targets,
            &sums,
            n,
            2.0,
            &mut row_scratch,
        )
        .expect("split");
        assert_eq!(again.gain.to_bits(), from_rows.gain.to_bits());
    }

    #[test]
    fn pool_recycles_zeroed_buffers() {
        let (_, binner, _) = fixture();
        let layout = HistLayout::for_gbt(&binner);
        let mut pool = HistPool::new(&layout);
        let mut a = pool.acquire();
        a.iter_mut().for_each(|v| *v = 7.0);
        let ptr = a.as_ptr();
        pool.release(a);
        let b = pool.acquire();
        assert_eq!(b.as_ptr(), ptr, "buffer must be recycled");
        assert!(
            b.iter().all(|&v| v == 0.0),
            "recycled buffer must be zeroed"
        );
    }

    #[test]
    fn split_search_parallel_gate_is_order_invariant() {
        // A synthetic arena where feature 5 has the dominant gain; the
        // in-order reduction must pick it whether or not the parallel path
        // is taken (exercised indirectly: both paths share reduce_in_order).
        let rows: Vec<Vec<f64>> = (0..64)
            .map(|i| (0..4).map(|f| ((i * (f + 1)) % 7) as f64).collect())
            .collect();
        let x = Matrix::from_rows(&rows);
        let binner = QuantileBinner::fit(&x, 8);
        let bins = binner.transform(&x);
        let data = BinnedMatrix {
            bins: &bins,
            cols: x.cols(),
            binner: &binner,
        };
        let layout = HistLayout::for_gbt(&binner);
        let n = x.rows();
        let grad: Vec<f64> = (0..n).map(|i| if i % 7 < 3 { -1.0 } else { 1.0 }).collect();
        let hess = vec![1.0; n];
        let rows_idx: Vec<u32> = (0..n as u32).collect();
        let mut arena = vec![0.0; layout.stats_len()];
        accumulate_gh(&layout, &data, &rows_idx, &grad, &hess, &mut arena);
        let g_sum: f64 = grad.iter().sum();
        let h_sum: f64 = hess.iter().sum();
        let params = TreeParams::default();
        let feats: Vec<usize> = (0..4).collect();
        let seq = best_split_gh(&layout, &feats, &arena, g_sum, h_sum, &params);
        // Repeat the features enough times to cross the parallel gate; the
        // winner must be the same split.
        let wide: Vec<usize> = feats
            .iter()
            .cycle()
            .take(PAR_SPLIT_MIN_FEATURES * 2)
            .copied()
            .collect();
        let par = best_split_gh(&layout, &wide, &arena, g_sum, h_sum, &params);
        let (s, p) = (seq.expect("some split"), par.expect("some split"));
        assert_eq!(s.feature, p.feature);
        assert_eq!(s.bin, p.bin);
        assert_eq!(s.gain, p.gain);
    }
}
