//! Dense row-major matrix with the few linear-algebra operations the ML
//! stack needs (products, transpose-products, Cholesky solve).

use serde::{Deserialize, Serialize};

/// Dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Build from a row-major buffer; panics if the length is inconsistent.
    pub fn from_vec(data: Vec<f64>, rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Self { data, rows, cols }
    }

    /// Build from nested rows; panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in rows {
            assert_eq!(row.len(), n_cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            data,
            rows: n_rows,
            cols: n_cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element accessor.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Element setter.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Append `other`'s rows below this matrix in place; panics when the
    /// column counts disagree (the dataset layer validates first).
    pub fn append_rows(&mut self, other: &Matrix) {
        assert_eq!(self.cols, other.cols, "append_rows: column count mismatch");
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the full row-major backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// New matrix with only the rows at `indices` (in order).
    pub fn take_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (oi, &i) in indices.iter().enumerate() {
            out.row_mut(oi).copy_from_slice(self.row(i));
        }
        out
    }

    /// `selfᵀ · self + ridge·I` (the Gram matrix for normal equations).
    #[allow(clippy::needless_range_loop)]
    pub fn gram_ridge(&self, ridge: f64) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for row in 0..self.rows {
            let r = self.row(row);
            for i in 0..n {
                let ri = r[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..n {
                    g.data[i * n + j] += ri * r[j];
                }
            }
        }
        for i in 0..n {
            for j in 0..i {
                g.data[i * n + j] = g.data[j * n + i];
            }
            g.data[i * n + i] += ridge;
        }
        g
    }

    /// `selfᵀ · other`; panics on row-count mismatch.
    #[allow(clippy::needless_range_loop)]
    pub fn t_mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "row mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for row in 0..self.rows {
            let a = self.row(row);
            let b = other.row(row);
            for i in 0..self.cols {
                let ai = a[i];
                if ai == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &bj) in out_row.iter_mut().zip(b) {
                    *o += ai * bj;
                }
            }
        }
        out
    }

    /// `self · other`; panics on inner-dimension mismatch.
    #[allow(clippy::needless_range_loop)]
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &aik) in a.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &bkj) in out_row.iter_mut().zip(b_row) {
                    *o += aik * bkj;
                }
            }
        }
        out
    }

    /// Cholesky factorisation of a symmetric positive-definite matrix:
    /// returns lower-triangular `L` with `L·Lᵀ = self`, or `None` if the
    /// matrix is not positive definite.
    pub fn cholesky(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "cholesky needs a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return None;
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Some(l)
    }

    /// Solve `self · X = B` for symmetric positive-definite `self` via
    /// Cholesky; `None` if not SPD.
    pub fn solve_spd(&self, b: &Matrix) -> Option<Matrix> {
        let l = self.cholesky()?;
        let n = self.rows;
        let m = b.cols;
        // Forward substitution: L·Y = B.
        let mut y = Matrix::zeros(n, m);
        for i in 0..n {
            for j in 0..m {
                let mut sum = b.get(i, j);
                for k in 0..i {
                    sum -= l.get(i, k) * y.get(k, j);
                }
                y.set(i, j, sum / l.get(i, i));
            }
        }
        // Back substitution: Lᵀ·X = Y.
        let mut x = Matrix::zeros(n, m);
        for i in (0..n).rev() {
            for j in 0..m {
                let mut sum = y.get(i, j);
                for k in i + 1..n {
                    sum -= l.get(k, i) * x.get(k, j);
                }
                x.set(i, j, sum / l.get(i, i));
            }
        }
        Some(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_and_accessors() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!((m.rows(), m.cols()), (2, 2));
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
        assert_eq!(m.get(0, 1), 2.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn take_rows_selects() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let t = m.take_rows(&[2, 0]);
        assert_eq!(t.as_slice(), &[3.0, 1.0]);
    }

    #[test]
    fn mul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.mul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn t_mul_and_gram() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let g = a.gram_ridge(0.0);
        // A^T A = [[35, 44], [44, 56]]
        assert_eq!(g.as_slice(), &[35.0, 44.0, 44.0, 56.0]);
        let ata = a.t_mul(&a);
        assert_eq!(g, ata);
        let g_ridge = a.gram_ridge(2.0);
        assert_eq!(g_ridge.get(0, 0), 37.0);
        assert_eq!(g_ridge.get(0, 1), 44.0);
    }

    #[test]
    fn cholesky_known_factor() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let l = a.cholesky().unwrap();
        assert!((l.get(0, 0) - 2.0).abs() < 1e-12);
        assert!((l.get(1, 0) - 1.0).abs() < 1e-12);
        assert!((l.get(1, 1) - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn solve_spd_known_system() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let b = Matrix::from_rows(&[vec![10.0], vec![8.0]]);
        let x = a.solve_spd(&b).unwrap();
        // 4x + 2y = 10, 2x + 3y = 8 => x = 1.75, y = 1.5
        assert!((x.get(0, 0) - 1.75).abs() < 1e-10);
        assert!((x.get(1, 0) - 1.5).abs() < 1e-10);
    }

    proptest! {
        #[test]
        fn solve_spd_round_trips(values in proptest::collection::vec(-3.0f64..3.0, 12)) {
            // Build SPD as A^T A + I from a random 4x3.
            let a = Matrix::from_vec(values, 4, 3);
            let spd = a.gram_ridge(1.0);
            let b = Matrix::from_rows(&[vec![1.0], vec![-2.0], vec![0.5]]);
            let x = spd.solve_spd(&b).expect("gram+I is SPD");
            let back = spd.mul(&x);
            for i in 0..3 {
                prop_assert!((back.get(i, 0) - b.get(i, 0)).abs() < 1e-8);
            }
        }
    }
}
