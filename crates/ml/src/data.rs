//! The supervised dataset type shared by every regressor.

use crate::matrix::Matrix;
use mphpc_errors::MphpcError;
use serde::{Deserialize, Serialize};

/// A supervised regression dataset: features `x` (`n × p`), vector targets
/// `y` (`n × k`), and feature names for importance reporting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlDataset {
    /// Feature matrix, one row per sample.
    pub x: Matrix,
    /// Target matrix, one row per sample (k = RPV length).
    pub y: Matrix,
    /// Feature names, length = `x.cols()`.
    pub feature_names: Vec<String>,
}

impl MlDataset {
    /// Build a dataset, validating shape agreement.
    pub fn new(x: Matrix, y: Matrix, feature_names: Vec<String>) -> Result<Self, MphpcError> {
        if x.rows() != y.rows() {
            return Err(MphpcError::ShapeMismatch {
                context: "MlDataset::new: feature/target row counts",
                expected: (x.rows(), x.cols()),
                found: (y.rows(), y.cols()),
            });
        }
        if feature_names.len() != x.cols() {
            return Err(MphpcError::DimensionMismatch {
                context: "MlDataset::new: feature names vs columns",
                expected: x.cols(),
                found: feature_names.len(),
            });
        }
        Ok(Self {
            x,
            y,
            feature_names,
        })
    }

    /// Number of samples.
    pub fn n_samples(&self) -> usize {
        self.x.rows()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.x.cols()
    }

    /// Number of target outputs (RPV length).
    pub fn n_outputs(&self) -> usize {
        self.y.cols()
    }

    /// Append another dataset's samples in place. The streaming-ingest
    /// path grows its training set with this as new profiled shards
    /// arrive; schema agreement (feature names and output count) is
    /// validated so a malformed shard cannot silently skew training.
    pub fn append(&mut self, other: &MlDataset) -> Result<(), MphpcError> {
        if other.feature_names != self.feature_names {
            return Err(MphpcError::InvalidArgument(format!(
                "MlDataset::append: feature names {:?} do not match {:?}",
                other.feature_names, self.feature_names
            )));
        }
        if other.n_outputs() != self.n_outputs() {
            return Err(MphpcError::DimensionMismatch {
                context: "MlDataset::append: output count",
                expected: self.n_outputs(),
                found: other.n_outputs(),
            });
        }
        self.x.append_rows(&other.x);
        self.y.append_rows(&other.y);
        Ok(())
    }

    /// Subset by row indices (order preserved, duplicates allowed).
    pub fn take(&self, indices: &[usize]) -> MlDataset {
        MlDataset {
            x: self.x.take_rows(indices),
            y: self.y.take_rows(indices),
            feature_names: self.feature_names.clone(),
        }
    }

    /// Subset of features by column indices; used by top-k feature
    /// selection (§VI-B).
    pub fn select_features(&self, columns: &[usize]) -> MlDataset {
        let mut x = Matrix::zeros(self.n_samples(), columns.len());
        for i in 0..self.n_samples() {
            for (oj, &j) in columns.iter().enumerate() {
                x.set(i, oj, self.x.get(i, j));
            }
        }
        MlDataset {
            x,
            y: self.y.clone(),
            feature_names: columns
                .iter()
                .map(|&j| self.feature_names[j].clone())
                .collect(),
        }
    }
}

/// Shared fit-time validation: every regressor requires at least one
/// sample and entirely finite features and targets. NaNs poison split
/// search and Gram matrices silently, so they are rejected at the boundary.
pub(crate) fn validate_training_data(
    dataset: &MlDataset,
    context: &'static str,
) -> Result<(), MphpcError> {
    if dataset.n_samples() == 0 {
        return Err(MphpcError::EmptyInput(context));
    }
    if let Some(pos) = dataset.x.as_slice().iter().position(|v| !v.is_finite()) {
        let p = dataset.n_features().max(1);
        return Err(MphpcError::NonFinite {
            context: format!(
                "{context}: feature value at row {}, col {}",
                pos / p,
                pos % p
            ),
        });
    }
    if let Some(pos) = dataset.y.as_slice().iter().position(|v| !v.is_finite()) {
        let k = dataset.n_outputs().max(1);
        return Err(MphpcError::NonFinite {
            context: format!(
                "{context}: target value at row {}, col {}",
                pos / k,
                pos % k
            ),
        });
    }
    Ok(())
}

/// Shared predict-time validation of the feature-column count.
pub(crate) fn check_feature_count(
    context: &'static str,
    expected: usize,
    x: &Matrix,
) -> Result<(), MphpcError> {
    if x.cols() != expected {
        return Err(MphpcError::DimensionMismatch {
            context,
            expected,
            found: x.cols(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MlDataset {
        MlDataset::new(
            Matrix::from_rows(&[vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]]),
            Matrix::from_rows(&[vec![0.1, 0.2], vec![0.3, 0.4], vec![0.5, 0.6]]),
            vec!["a".into(), "b".into()],
        )
        .unwrap()
    }

    #[test]
    fn shapes() {
        let d = sample();
        assert_eq!(d.n_samples(), 3);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_outputs(), 2);
    }

    #[test]
    fn shape_validation() {
        assert!(MlDataset::new(
            Matrix::zeros(3, 2),
            Matrix::zeros(2, 1),
            vec!["a".into(), "b".into()]
        )
        .is_err());
        assert!(
            MlDataset::new(Matrix::zeros(3, 2), Matrix::zeros(3, 1), vec!["a".into()]).is_err()
        );
    }

    #[test]
    fn training_validation_catches_nan_and_empty() {
        let d = sample();
        assert!(validate_training_data(&d, "fit").is_ok());
        let empty = d.take(&[]);
        assert!(matches!(
            validate_training_data(&empty, "fit"),
            Err(MphpcError::EmptyInput("fit"))
        ));
        let mut poisoned = d.clone();
        poisoned.x.set(1, 1, f64::NAN);
        let err = validate_training_data(&poisoned, "fit").unwrap_err();
        assert!(matches!(err, MphpcError::NonFinite { .. }), "{err}");
        let mut bad_y = d;
        bad_y.y.set(0, 0, f64::INFINITY);
        assert!(validate_training_data(&bad_y, "fit").is_err());
    }

    #[test]
    fn append_grows_and_validates() {
        let mut d = sample();
        let more = sample();
        d.append(&more).unwrap();
        assert_eq!(d.n_samples(), 6);
        assert_eq!(d.x.row(3), &[1.0, 10.0]);
        assert_eq!(d.y.row(5), &[0.5, 0.6]);

        let mut renamed = sample();
        renamed.feature_names[0] = "z".into();
        assert!(d.append(&renamed).is_err(), "schema mismatch must fail");
        let wide_y = MlDataset::new(
            Matrix::zeros(2, 2),
            Matrix::zeros(2, 3),
            vec!["a".into(), "b".into()],
        )
        .unwrap();
        assert!(d.append(&wide_y).is_err(), "output mismatch must fail");
        assert_eq!(d.n_samples(), 6, "failed appends leave the dataset intact");
    }

    #[test]
    fn take_and_select() {
        let d = sample();
        let t = d.take(&[2, 0]);
        assert_eq!(t.x.row(0), &[3.0, 30.0]);
        assert_eq!(t.y.row(1), &[0.1, 0.2]);
        let f = d.select_features(&[1]);
        assert_eq!(f.n_features(), 1);
        assert_eq!(f.feature_names, vec!["b".to_string()]);
        assert_eq!(f.x.row(0), &[10.0]);
    }
}
