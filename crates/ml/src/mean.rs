//! The mean predictor: the paper's no-information baseline ("this regressor
//! guesses the mean RPV in the training set for all samples in the test
//! set").

use crate::data::{validate_training_data, MlDataset};
use crate::matrix::Matrix;
use mphpc_errors::MphpcError;
use serde::{Deserialize, Serialize};

/// Predicts the training-set mean target vector for every sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeanRegressor {
    mean: Vec<f64>,
}

impl MeanRegressor {
    /// Fit: record the mean target vector.
    pub fn fit(dataset: &MlDataset) -> Result<Self, MphpcError> {
        validate_training_data(dataset, "MeanRegressor::fit")?;
        let n = dataset.n_samples() as f64;
        let mean = (0..dataset.n_outputs())
            .map(|j| dataset.y.col(j).iter().sum::<f64>() / n)
            .collect();
        Ok(Self { mean })
    }

    /// Predict the recorded mean for every row of `x`. The baseline ignores
    /// feature values entirely, so any column count is accepted.
    pub fn predict(&self, x: &Matrix) -> Result<Matrix, MphpcError> {
        let mut out = Matrix::zeros(x.rows(), self.mean.len());
        for i in 0..x.rows() {
            out.row_mut(i).copy_from_slice(&self.mean);
        }
        Ok(out)
    }

    /// The fitted mean vector.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicts_training_mean() {
        let d = MlDataset::new(
            Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]),
            Matrix::from_rows(&[vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]]),
            vec!["x".into()],
        )
        .unwrap();
        let m = MeanRegressor::fit(&d).unwrap();
        assert_eq!(m.mean(), &[2.0, 20.0]);
        let pred = m.predict(&Matrix::zeros(5, 1)).unwrap();
        assert_eq!(pred.rows(), 5);
        for i in 0..5 {
            assert_eq!(pred.row(i), &[2.0, 20.0]);
        }
    }

    #[test]
    fn rejects_empty_dataset() {
        let d = MlDataset::new(Matrix::zeros(0, 1), Matrix::zeros(0, 2), vec!["x".into()]).unwrap();
        assert!(MeanRegressor::fit(&d).is_err());
    }
}
