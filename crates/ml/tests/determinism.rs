//! Thread-count invariance: training with the same seed must produce
//! bit-identical serialized models whether `mphpc_par` runs its drivers
//! on 1, 2, or 8 worker threads — and the compiled inference engine must
//! produce bit-identical predictions across the same sweep.
//!
//! This holds because every parallel reduction in the training path is
//! performed in input order (ordered `par_map` results folded
//! sequentially), including the histogram engine's feature-parallel split
//! search, and because the inference engine's row blocks write disjoint
//! output slices with per-row accumulation in tree order. The whole sweep
//! lives in one `#[test]` so the global thread override never races a
//! sibling test.

use mphpc_ml::{
    ForestParams, ForestRegressor, GbtParams, GbtRegressor, Matrix, MlDataset, TreeParams,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synthetic(n: usize, p: usize, k: usize, seed: u64) -> MlDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, p);
    let mut y = Matrix::zeros(n, k);
    for i in 0..n {
        for j in 0..p {
            x.set(i, j, rng.gen_range(-1.0..1.0));
        }
        for j in 0..k {
            let v =
                x.get(i, j % p) * 2.0 + x.get(i, (j + 1) % p).powi(2) + rng.gen_range(-0.01..0.01);
            y.set(i, j, v);
        }
    }
    MlDataset::new(x, y, (0..p).map(|j| format!("f{j}")).collect()).unwrap()
}

#[test]
fn same_seed_models_identical_across_thread_counts() {
    // Narrow dataset: exercises the sequential split-search path.
    let narrow = synthetic(600, 6, 2, 41);
    // Wide dataset: enough candidate features per node to cross the
    // histogram engine's parallel split-search gate at every node.
    let wide = synthetic(400, mphpc_ml::hist::PAR_SPLIT_MIN_FEATURES + 16, 1, 43);

    let gbt_params = GbtParams {
        n_rounds: 12,
        subsample: 0.8,
        tree: TreeParams {
            max_depth: 4,
            colsample: 0.8,
            ..TreeParams::default()
        },
        ..GbtParams::default()
    };
    let forest_params = ForestParams {
        n_trees: 16,
        ..ForestParams::default()
    };

    let fit_all = || {
        (
            serde_json::to_string(&GbtRegressor::fit(&narrow, gbt_params).unwrap()).unwrap(),
            serde_json::to_string(&GbtRegressor::fit(&wide, gbt_params).unwrap()).unwrap(),
            serde_json::to_string(&ForestRegressor::fit(&narrow, forest_params).unwrap()).unwrap(),
        )
    };

    mphpc_par::set_thread_override(Some(1));
    let baseline = fit_all();
    for threads in [2usize, 8] {
        mphpc_par::set_thread_override(Some(threads));
        let run = fit_all();
        assert_eq!(
            baseline.0, run.0,
            "GbtRegressor (narrow) at {threads} threads"
        );
        assert_eq!(
            baseline.1, run.1,
            "GbtRegressor (wide) at {threads} threads"
        );
        assert_eq!(baseline.2, run.2, "ForestRegressor at {threads} threads");
    }

    // Inference sweep: the compiled engine must match the reference
    // per-row traversal bit-for-bit at every worker count (the batch is
    // sized to span many row blocks, with a partial tail block).
    let gbt = GbtRegressor::fit(&narrow, gbt_params).unwrap();
    let forest = ForestRegressor::fit(&narrow, forest_params).unwrap();
    let batch = synthetic(1543, 6, 2, 47);
    let gbt_ref = gbt.predict_reference(&batch.x).unwrap();
    let forest_ref = forest.predict_reference(&batch.x).unwrap();
    for threads in [1usize, 2, 8] {
        mphpc_par::set_thread_override(Some(threads));
        assert_eq!(
            gbt.predict(&batch.x).unwrap(),
            gbt_ref,
            "compiled GBT inference at {threads} threads"
        );
        assert_eq!(
            forest.predict(&batch.x).unwrap(),
            forest_ref,
            "compiled forest inference at {threads} threads"
        );
    }
    mphpc_par::set_thread_override(None);
}
