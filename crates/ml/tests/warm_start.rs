//! Warm-start equivalence battery (ISSUE 9, satellite 1).
//!
//! The online-learning loop continues training from a serialized model,
//! so a continuation must replay the *exact* stream the original training
//! run would have produced — anything less and the watch daemon's
//! candidates silently drift from what offline training would build.
//!
//! Proven here:
//! * GBT continued for `k` extra rounds from a serialized booster is
//!   bit-identical to training `base + k` rounds in one process, at
//!   1/2/8 threads (round randomness is a pure function of
//!   `(seed, output, round)`).
//! * Forest growth is seed-deterministic per tree index: `b` trees plus
//!   `m` warm-started trees equals `b + m` trees grown at once.
//! * Continuations on *appended* data are deterministic and keep the
//!   original model's prefix intact.

use mphpc_ml::matrix::Matrix;
use mphpc_ml::{
    ForestParams, ForestRegressor, GbtParams, GbtRegressor, MlDataset, ModelKind, Regressor,
    TrainedModel, TreeParams,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// y0 = 2·x0 − x1, y1 = x1² plus an irrelevant feature — the same
/// synthetic family the unit tests train on.
fn synthetic(n: usize, seed: u64) -> MlDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xr = Vec::with_capacity(n);
    let mut yr = Vec::with_capacity(n);
    for _ in 0..n {
        let x0: f64 = rng.gen_range(-1.0..1.0);
        let x1: f64 = rng.gen_range(-1.0..1.0);
        let noise: f64 = rng.gen_range(-0.01..0.01);
        xr.push(vec![x0, x1, rng.gen_range(-1.0..1.0)]);
        yr.push(vec![2.0 * x0 - x1 + noise, x1 * x1 + noise]);
    }
    MlDataset::new(
        Matrix::from_rows(&xr),
        Matrix::from_rows(&yr),
        vec!["x0".into(), "x1".into(), "junk".into()],
    )
    .unwrap()
}

fn gbt_params(n_rounds: usize) -> GbtParams {
    GbtParams {
        n_rounds,
        ..GbtParams::default()
    }
}

fn forest_params(n_trees: usize) -> ForestParams {
    ForestParams {
        n_trees,
        tree: TreeParams {
            max_depth: 8,
            ..ForestParams::default().tree
        },
        ..ForestParams::default()
    }
}

/// Run `f` under an explicit worker-thread override, restoring the
/// default afterwards even on panic.
fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            mphpc_par::set_thread_override(None);
        }
    }
    let _reset = Reset;
    mphpc_par::set_thread_override(Some(n));
    f()
}

#[test]
fn gbt_continuation_is_bit_identical_across_thread_counts() {
    let train = synthetic(600, 41);
    let probe = synthetic(64, 42);
    let full = GbtRegressor::fit(&train, gbt_params(30)).unwrap();
    for threads in [1usize, 2, 8] {
        let continued = with_threads(threads, || {
            let base = GbtRegressor::fit(&train, gbt_params(18)).unwrap();
            base.warm_start(&train, 12).unwrap()
        });
        assert_eq!(
            continued, full,
            "threads={threads}: 18+12 continued rounds must equal 30 straight rounds"
        );
        assert_eq!(
            continued.predict(&probe.x).unwrap(),
            full.predict(&probe.x).unwrap(),
            "threads={threads}: predictions must be bit-identical"
        );
    }
}

#[test]
fn continuation_from_serialized_models_matches_one_process_training() {
    // The watch daemon always continues from a *serialized* model: prove
    // the JSON round-trip changes nothing about the continuation stream.
    // (Offline-harness caveat: the serde_json stub cannot deserialize, so
    // this test only runs to completion under real cargo — like every
    // other `from_json` round-trip test in this crate.)
    let train = synthetic(400, 53);
    let gbt_full = GbtRegressor::fit(&train, gbt_params(20)).unwrap();
    let gbt_base = GbtRegressor::fit(&train, gbt_params(12)).unwrap();
    let gbt_back: GbtRegressor =
        serde_json::from_str(&serde_json::to_string(&gbt_base).unwrap()).unwrap();
    assert_eq!(gbt_back.warm_start(&train, 8).unwrap(), gbt_full);

    let f_full = ForestRegressor::fit(&train, forest_params(30)).unwrap();
    let f_base = ForestRegressor::fit(&train, forest_params(21)).unwrap();
    let f_back: ForestRegressor =
        serde_json::from_str(&serde_json::to_string(&f_base).unwrap()).unwrap();
    assert_eq!(f_back.warm_start(&train, 9).unwrap(), f_full);
}

#[test]
fn gbt_continuation_preserves_importance_bits() {
    // booster_stats are folded per output in round order, so even the
    // f64 importance accumulators match a single longer run exactly.
    let train = synthetic(400, 43);
    let full = GbtRegressor::fit(&train, gbt_params(24)).unwrap();
    let two_step = GbtRegressor::fit(&train, gbt_params(9))
        .unwrap()
        .warm_start(&train, 15)
        .unwrap();
    let a = full.feature_importance();
    let b = two_step.feature_importance();
    for name in ["x0", "x1", "junk"] {
        assert_eq!(a.gain_of(name).unwrap(), b.gain_of(name).unwrap(), "{name}");
    }
}

#[test]
fn gbt_chained_continuations_compose() {
    // (((6 rounds) + 6) + 6) == 18 rounds: continuation is associative
    // because each round's randomness ignores training history.
    let train = synthetic(300, 44);
    let full = GbtRegressor::fit(&train, gbt_params(18)).unwrap();
    let chained = GbtRegressor::fit(&train, gbt_params(6))
        .unwrap()
        .warm_start(&train, 6)
        .unwrap()
        .warm_start(&train, 6)
        .unwrap();
    assert_eq!(chained, full);
}

#[test]
fn forest_incremental_growth_is_seed_deterministic() {
    let train = synthetic(500, 45);
    let probe = synthetic(64, 46);
    let full = ForestRegressor::fit(&train, forest_params(40)).unwrap();
    for threads in [1usize, 2, 8] {
        let grown = with_threads(threads, || {
            let base = ForestRegressor::fit(&train, forest_params(25)).unwrap();
            base.warm_start(&train, 15).unwrap()
        });
        assert_eq!(
            grown, full,
            "threads={threads}: 25+15 grown trees must equal 40 straight trees"
        );
        assert_eq!(
            grown.predict(&probe.x).unwrap(),
            full.predict(&probe.x).unwrap(),
            "threads={threads}: predictions must be bit-identical"
        );
    }
}

#[test]
fn warm_start_on_grown_data_is_deterministic_and_keeps_prefix() {
    let initial = synthetic(300, 47);
    let mut grown = initial.clone();
    grown.append(&synthetic(150, 48)).unwrap();
    assert_eq!(grown.n_samples(), 450);

    // Two identical continuations on the grown data must agree bit-for-bit.
    let base = GbtRegressor::fit(&initial, gbt_params(10)).unwrap();
    let c1 = base.warm_start(&grown, 8).unwrap();
    let c2 = base.warm_start(&grown, 8).unwrap();
    assert_eq!(
        c1, c2,
        "continuation on appended data must be deterministic"
    );
    assert_eq!(c1.n_trees(), (10 + 8) * 2, "8 extra rounds × 2 outputs");

    // The forest keeps its original trees: predictions of the base
    // ensemble are recoverable as the first 25 trees' average, so the
    // grown forest must differ from a cold refit on the grown data
    // (different trees) while staying deterministic itself.
    let fbase = ForestRegressor::fit(&initial, forest_params(25)).unwrap();
    let f1 = fbase.warm_start(&grown, 10).unwrap();
    let f2 = fbase.warm_start(&grown, 10).unwrap();
    assert_eq!(f1, f2);
    assert_eq!(f1.n_trees(), 35);
}

#[test]
fn warm_start_rejects_schema_mismatch() {
    let train = synthetic(100, 49);
    let gbt = GbtRegressor::fit(&train, gbt_params(4)).unwrap();
    let forest = ForestRegressor::fit(&train, forest_params(4)).unwrap();

    let mut renamed = train.clone();
    renamed.feature_names[2] = "renamed".into();
    assert!(gbt.warm_start(&renamed, 2).is_err());
    assert!(forest.warm_start(&renamed, 2).is_err());

    let narrow = MlDataset::new(
        train.x.clone(),
        Matrix::zeros(train.n_samples(), 1),
        train.feature_names.clone(),
    )
    .unwrap();
    assert!(gbt.warm_start(&narrow, 2).is_err());
    assert!(forest.warm_start(&narrow, 2).is_err());
}

#[test]
fn trained_model_warm_start_covers_all_families() {
    let initial = synthetic(250, 50);
    let mut grown = initial.clone();
    grown.append(&synthetic(100, 51)).unwrap();
    let probe = synthetic(16, 52);

    for kind in ModelKind::paper_lineup() {
        let base = kind.fit(&initial).unwrap();
        let cont = base.warm_start(&grown, 5).unwrap();
        let again = base.warm_start(&grown, 5).unwrap();
        assert_eq!(
            cont.predict(&probe.x).unwrap(),
            again.predict(&probe.x).unwrap(),
            "{}: warm start must be deterministic",
            kind.name()
        );
    }

    // Closed-form families refit: their continuation equals a cold fit on
    // the grown data.
    let mean = ModelKind::Mean.fit(&initial).unwrap();
    assert_eq!(
        mean.warm_start(&grown, 0).unwrap(),
        ModelKind::Mean.fit(&grown).unwrap()
    );

    // Tree families really continue: the trained ensemble grows.
    let forest = ModelKind::Forest(forest_params(10)).fit(&initial).unwrap();
    match forest.warm_start(&grown, 7).unwrap() {
        TrainedModel::Forest(f) => assert_eq!(f.n_trees(), 17),
        other => panic!("forest continuation changed family: {other:?}"),
    }
}
