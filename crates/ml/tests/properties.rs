//! Property-based tests of the ML substrate's invariants.

use mphpc_ml::binning::QuantileBinner;
use mphpc_ml::cv::{kfold, train_test_split};
use mphpc_ml::{
    mae, mse, r2, same_order_score, ForestParams, ForestRegressor, GbtParams, GbtRegressor,
    LinearParams, LinearRegressor, Matrix, MeanRegressor, MlDataset,
};
use proptest::prelude::*;

prop_compose! {
    fn arb_dataset()(
        n in 24usize..120,
        p in 1usize..6,
        k in 1usize..4,
        seed in any::<u64>(),
    ) -> MlDataset {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut x = Matrix::zeros(n, p);
        let mut y = Matrix::zeros(n, k);
        for i in 0..n {
            for j in 0..p {
                x.set(i, j, rng.gen_range(-2.0..2.0));
            }
            for j in 0..k {
                let v = x.get(i, j % p) + 0.5 * x.get(i, (j + 1) % p);
                y.set(i, j, v + rng.gen_range(-0.05..0.05));
            }
        }
        MlDataset::new(x, y, (0..p).map(|j| format!("f{j}")).collect()).unwrap()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every model family produces finite predictions of the right shape
    /// on arbitrary (well-formed) data.
    #[test]
    fn all_models_predict_finite(d in arb_dataset()) {
        let fast_gbt = GbtParams { n_rounds: 10, ..GbtParams::default() };
        let small_forest = ForestParams { n_trees: 8, ..ForestParams::default() };
        let preds = [
            MeanRegressor::fit(&d).unwrap().predict(&d.x).unwrap(),
            LinearRegressor::fit(&d, LinearParams::default())
                .unwrap()
                .predict(&d.x)
                .unwrap(),
            ForestRegressor::fit(&d, small_forest).unwrap().predict(&d.x).unwrap(),
            GbtRegressor::fit(&d, fast_gbt).unwrap().predict(&d.x).unwrap(),
        ];
        for p in preds {
            prop_assert_eq!(p.rows(), d.n_samples());
            prop_assert_eq!(p.cols(), d.n_outputs());
            prop_assert!(p.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    /// MAE and MSE are non-negative, zero iff predictions equal targets;
    /// R² of the truth is 1.
    #[test]
    fn metric_identities(d in arb_dataset()) {
        prop_assert_eq!(mae(&d.y, &d.y).unwrap(), 0.0);
        prop_assert_eq!(mse(&d.y, &d.y).unwrap(), 0.0);
        prop_assert!((r2(&d.y, &d.y).unwrap() - 1.0).abs() < 1e-12);
        let zeros = Matrix::zeros(d.y.rows(), d.y.cols());
        prop_assert!(mae(&zeros, &d.y).unwrap() >= 0.0);
        prop_assert!(mse(&zeros, &d.y).unwrap() >= mae(&zeros, &d.y).unwrap().powi(2) - 1e-9,
            "Jensen: MSE >= MAE^2");
    }

    /// SOS is invariant under any strictly increasing transform of the
    /// predictions (it only reads the ordering).
    #[test]
    fn sos_invariant_under_monotone_transform(d in arb_dataset(), a in 0.1f64..5.0, b in -3.0f64..3.0) {
        prop_assume!(d.n_outputs() >= 2);
        let model = LinearRegressor::fit(&d, LinearParams::default()).unwrap();
        let pred = model.predict(&d.x).unwrap();
        let mut transformed = pred.clone();
        for i in 0..transformed.rows() {
            for j in 0..transformed.cols() {
                let v = transformed.get(i, j);
                transformed.set(i, j, a * v + b);
            }
        }
        prop_assert_eq!(
            same_order_score(&pred, &d.y).unwrap(),
            same_order_score(&transformed, &d.y).unwrap()
        );
    }

    /// SOS is within [0, 1] and equals 1 when comparing truth to itself.
    #[test]
    fn sos_bounds(d in arb_dataset()) {
        let s = same_order_score(&d.y, &d.y).unwrap();
        prop_assert_eq!(s, 1.0);
        let zeros = Matrix::zeros(d.y.rows(), d.y.cols());
        let z = same_order_score(&zeros, &d.y).unwrap();
        prop_assert!((0.0..=1.0).contains(&z));
    }

    /// Splits partition exactly for any n and fraction.
    #[test]
    fn split_partitions(n in 2usize..500, frac in 0.01f64..0.99, seed in any::<u64>()) {
        let (train, test) = train_test_split(n, frac, seed);
        prop_assert_eq!(train.len() + test.len(), n);
        prop_assert!(!train.is_empty() && !test.is_empty());
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), n);
    }

    /// Every row appears in exactly one test fold.
    #[test]
    fn kfold_partitions(n in 10usize..300, k in 2usize..8, seed in any::<u64>()) {
        let folds = kfold(n, k, seed).unwrap();
        let mut seen = vec![0u32; n];
        for (_, test) in &folds {
            for &t in test {
                seen[t] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    /// Binning never inverts order and thresholds are self-consistent.
    #[test]
    fn binning_consistency(values in proptest::collection::vec(-1e9f64..1e9, 4..300), bins in 2usize..64) {
        let rows: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
        let x = Matrix::from_rows(&rows);
        let binner = QuantileBinner::fit(&x, bins);
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let mut prev_bin = 0u16;
        for v in sorted {
            let b = binner.bin(0, v);
            prop_assert!(b >= prev_bin);
            prop_assert!((b as usize) < binner.n_bins(0));
            prev_bin = b;
        }
    }

    /// GBT training loss decreases with more rounds on clean data
    /// (training-set fit is monotone in ensemble size up to noise).
    #[test]
    fn gbt_training_error_shrinks(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..200).map(|_| vec![rng.gen_range(-1.0f64..1.0)]).collect();
        let ys: Vec<Vec<f64>> = rows.iter().map(|r| vec![r[0].sin()]).collect();
        let d = MlDataset::new(
            Matrix::from_rows(&rows),
            Matrix::from_rows(&ys),
            vec!["x".into()],
        ).unwrap();
        let short = GbtRegressor::fit(&d, GbtParams { n_rounds: 3, ..GbtParams::default() }).unwrap();
        let long = GbtRegressor::fit(&d, GbtParams { n_rounds: 40, ..GbtParams::default() }).unwrap();
        let e_short = mae(&short.predict(&d.x).unwrap(), &d.y).unwrap();
        let e_long = mae(&long.predict(&d.x).unwrap(), &d.y).unwrap();
        prop_assert!(e_long <= e_short + 1e-9, "{e_long} vs {e_short}");
    }
}
