//! Quantized-engine equivalence: the bin-indexed integer engine behind
//! `predict` must be **bit-identical** to the reference per-row enum-tree
//! traversal and to the f64 compiled engine — for GBT and forest, at
//! 1/2/8 worker threads, across single rows, lane-partial batches,
//! multi-block batches, NaN/±inf probes, and degenerate constant-feature
//! training sets. Built with `--features simd` this same file exercises
//! the AVX2 kernels (runtime-detected), so the identity chain
//! `reference == compiled == quantized(scalar) == quantized(avx2)` is
//! closed by running the suite under both feature settings.

use mphpc_ml::{
    ForestParams, ForestRegressor, GbtParams, GbtRegressor, Matrix, MlDataset, Regressor,
    TreeParams,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synthetic(n: usize, p: usize, k: usize, seed: u64) -> MlDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, p);
    let mut y = Matrix::zeros(n, k);
    for i in 0..n {
        for j in 0..p {
            x.set(i, j, rng.gen_range(-1.0..1.0));
        }
        for j in 0..k {
            let v =
                x.get(i, j % p) * 2.0 + x.get(i, (j + 1) % p).powi(2) + rng.gen_range(-0.01..0.01);
            y.set(i, j, v);
        }
    }
    MlDataset::new(x, y, (0..p).map(|j| format!("f{j}")).collect()).unwrap()
}

fn small_gbt() -> GbtParams {
    GbtParams {
        n_rounds: 10,
        tree: TreeParams {
            max_depth: 4,
            ..TreeParams::default()
        },
        ..GbtParams::default()
    }
}

fn small_forest() -> ForestParams {
    ForestParams {
        n_trees: 24,
        ..ForestParams::default()
    }
}

/// Probe batch: ordinary rows plus non-finite edge cases. NaN must route
/// right at every split it reaches (the reference's `!(v <= t)`), and
/// ±inf must pin to the extreme bins.
fn probe_rows(p: usize, n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..p).map(|_| rng.gen_range(-1.5..1.5)).collect())
        .collect();
    if !rows.is_empty() {
        rows[0][0] = f64::NAN;
    }
    if rows.len() > 1 {
        rows[1] = vec![f64::NAN; p];
    }
    if rows.len() > 2 {
        rows[2][p - 1] = f64::INFINITY;
        rows[2][0] = f64::NEG_INFINITY;
    }
    rows
}

/// The whole thread sweep lives in one `#[test]` so the global override
/// never races a sibling test (same pattern as `determinism.rs`).
#[test]
fn quantized_is_bit_identical_to_reference_and_f64_at_all_thread_counts() {
    let train = synthetic(700, 6, 2, 11);
    let gbt = GbtRegressor::fit(&train, small_gbt()).unwrap();
    let forest = ForestRegressor::fit(&train, small_forest()).unwrap();

    // 1 row (interleaved single-row path), lane-partial (< 8), exactly
    // one lane group, one block (64), block+tail, and a multi-block
    // batch that spans the parallel chunking.
    for rows in [1usize, 3, 8, 64, 77, 517] {
        let x = Matrix::from_rows(&probe_rows(6, rows, 200 + rows as u64));
        let gbt_ref = gbt.predict_reference(&x).unwrap();
        let forest_ref = forest.predict_reference(&x).unwrap();
        assert_eq!(gbt_ref, gbt.compiled().predict(&x), "f64 gbt rows={rows}");
        assert_eq!(
            forest_ref,
            forest.compiled().predict(&x),
            "f64 forest rows={rows}"
        );
        for threads in [1usize, 2, 8] {
            mphpc_par::set_thread_override(Some(threads));
            assert_eq!(
                gbt.predict(&x).unwrap(),
                gbt_ref,
                "quantized gbt rows={rows} threads={threads}"
            );
            assert_eq!(
                forest.predict(&x).unwrap(),
                forest_ref,
                "quantized forest rows={rows} threads={threads}"
            );
        }
        mphpc_par::set_thread_override(None);
    }
}

#[test]
fn single_row_path_agrees_with_batch_path() {
    let train = synthetic(500, 5, 2, 13);
    let gbt = GbtRegressor::fit(&train, small_gbt()).unwrap();
    let forest = ForestRegressor::fit(&train, small_forest()).unwrap();
    let rows = probe_rows(5, 96, 17);
    let batch = Matrix::from_rows(&rows);
    let gbt_batch = gbt.predict(&batch).unwrap();
    let forest_batch = forest.predict(&batch).unwrap();
    for (i, row) in rows.iter().enumerate() {
        let one = Matrix::from_rows(std::slice::from_ref(row));
        let g = gbt.predict(&one).unwrap();
        let f = forest.predict(&one).unwrap();
        for j in 0..g.cols() {
            assert_eq!(g.get(0, j), gbt_batch.get(i, j), "gbt row {i} out {j}");
            assert_eq!(
                f.get(0, j),
                forest_batch.get(i, j),
                "forest row {i} out {j}"
            );
        }
    }
}

#[test]
fn degenerate_constant_features_still_exact() {
    // Every feature constant: no split can separate anything, so trees
    // collapse to leaves and the quantized engine has zero cuts on every
    // feature. Predictions (the target mean / boosted base) must still be
    // bit-identical, including on NaN probes.
    let n = 80;
    let x = Matrix::from_rows(&vec![vec![2.5, -1.0, 0.0]; n]);
    let mut y = Matrix::zeros(n, 2);
    for i in 0..n {
        y.set(i, 0, 3.0);
        y.set(i, 1, -1.5);
    }
    let names = vec!["a".into(), "b".into(), "c".into()];
    let train = MlDataset::new(x, y, names).unwrap();
    let gbt = GbtRegressor::fit(&train, small_gbt()).unwrap();
    let forest = ForestRegressor::fit(&train, small_forest()).unwrap();

    let probes = vec![
        vec![2.5, -1.0, 0.0],
        vec![9.0, 9.0, 9.0],
        vec![f64::NAN, f64::NAN, f64::NAN],
    ];
    let px = Matrix::from_rows(&probes);
    assert_eq!(
        gbt.predict(&px).unwrap(),
        gbt.predict_reference(&px).unwrap()
    );
    assert_eq!(
        forest.predict(&px).unwrap(),
        forest.predict_reference(&px).unwrap()
    );

    // Mixed case: one informative feature among constants (single cut).
    let mut x = Matrix::zeros(n, 3);
    let mut y = Matrix::zeros(n, 1);
    for i in 0..n {
        x.set(i, 0, 1.0);
        x.set(i, 1, if i % 2 == 0 { -1.0 } else { 1.0 });
        x.set(i, 2, 42.0);
        y.set(i, 0, if i % 2 == 0 { 0.0 } else { 10.0 });
    }
    let names = vec!["a".into(), "b".into(), "c".into()];
    let train = MlDataset::new(x, y, names).unwrap();
    let gbt = GbtRegressor::fit(&train, small_gbt()).unwrap();
    let px = Matrix::from_rows(&probe_rows(3, 33, 23));
    assert_eq!(
        gbt.predict(&px).unwrap(),
        gbt.predict_reference(&px).unwrap()
    );
}

/// JSON round-trip: a deserialized model has empty lazy caches, so its
/// first `predict` rebuilds both the f64 and quantized engines from the
/// stored trees — and must reproduce the original bit-for-bit.
/// (Requires real serde_json; under the offline rustc harness this test
/// fails in `to_json` by design.)
#[test]
fn json_round_trip_rebuilds_identical_quantized_engine() {
    let train = synthetic(400, 5, 2, 29);
    let probe = Matrix::from_rows(&probe_rows(5, 40, 31));
    for kind in [
        mphpc_ml::ModelKind::Gbt(small_gbt()),
        mphpc_ml::ModelKind::Forest(small_forest()),
    ] {
        let model = kind.fit(&train).unwrap();
        let expected = model.predict_reference(&probe).unwrap();
        assert_eq!(model.predict(&probe).unwrap(), expected);
        let revived = mphpc_ml::TrainedModel::from_json(&model.to_json().unwrap()).unwrap();
        assert_eq!(
            revived.predict(&probe).unwrap(),
            expected,
            "{} after JSON round-trip",
            kind.name()
        );
    }
}
