//! Streaming-ingest primitives for the online-learning watch loop
//! (DESIGN.md §17): shard-watermark tracking and an append-only
//! versioned dataset with a crash-safe current pointer.
//!
//! The watch daemon tails the store for newly published shard results.
//! Its progress is a *watermark* — the set of shard-result keys already
//! folded into the training dataset — committed by [`commit_ingest`]
//! as a sidecar of the dataset version it produced, so a restarted
//! daemon resumes exactly where it left off, never ingesting a shard
//! twice and never skipping one.
//!
//! Each ingest publishes the watermark sidecar `watch/watermark-v{n}`
//! and the grown dataset `watch/dataset-v{n}` as immutable objects and
//! only then flips the one-line pointer `watch/dataset.current`
//! (atomically, via [`Storage::put_atomic`]). A crash between the
//! writes leaves the pointer at the previous complete version — with
//! its own watermark — so readers never observe a torn dataset and the
//! watermark can never disagree with the dataset it describes.

use crate::Storage;
use mphpc_errors::MphpcError;
use std::collections::BTreeSet;

/// Key prefix for every watch-loop object.
pub const WATCH_PREFIX: &str = "watch";

/// Key of the ingest watermark committed alongside dataset version `n`.
pub fn watermark_key(version: u64) -> String {
    format!("{WATCH_PREFIX}/watermark-v{version}")
}

/// Key of the dataset-version pointer.
pub fn dataset_pointer_key() -> String {
    format!("{WATCH_PREFIX}/dataset.current")
}

/// Key of dataset version `n`.
pub fn dataset_version_key(version: u64) -> String {
    format!("{WATCH_PREFIX}/dataset-v{version}")
}

/// Load the ingest watermark committed with the *current* dataset
/// version: the sorted set of shard-result keys already folded in.
/// Before the first commit (or for versions published without
/// [`commit_ingest`]) the watermark is empty.
pub fn load_watermark(store: &dyn Storage) -> Result<BTreeSet<String>, MphpcError> {
    let Some(version) = current_dataset_version(store)? else {
        return Ok(BTreeSet::new());
    };
    let Some(bytes) = store.get(&watermark_key(version))? else {
        return Ok(BTreeSet::new());
    };
    let text = String::from_utf8(bytes)
        .map_err(|_| MphpcError::Storage("watch watermark is not utf-8".to_string()))?;
    Ok(text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect())
}

/// Commit one ingest step: the grown dataset *and* the watermark that
/// produced it become version `current + 1` together.
///
/// Write order is watermark sidecar → dataset object → pointer flip, so
/// a crash at any instant leaves the previous version current *with its
/// own watermark* — a restarted watch can neither skip a shard (the
/// watermark only advances with the dataset that contains it) nor
/// ingest one twice (the dataset only advances with the watermark that
/// excludes it). Orphan objects from a crash are overwritten by the
/// next commit at the same version number.
pub fn commit_ingest(
    store: &dyn Storage,
    dataset: &[u8],
    watermark: &BTreeSet<String>,
) -> Result<u64, MphpcError> {
    let version = current_dataset_version(store)?.unwrap_or(0) + 1;
    let mut text = String::new();
    for key in watermark {
        text.push_str(key);
        text.push('\n');
    }
    store.put_atomic(&watermark_key(version), text.as_bytes())?;
    store.put_atomic(&dataset_version_key(version), dataset)?;
    store.put_atomic(&dataset_pointer_key(), version.to_string().as_bytes())?;
    Ok(version)
}

/// Shard-result keys published to the store but not yet in `watermark`,
/// sorted. Matches exactly the fleet's result objects
/// (`gen-N/shards/shard-XXXX`), skipping `.meta` sidecars and claims.
pub fn unseen_shards(
    store: &dyn Storage,
    watermark: &BTreeSet<String>,
) -> Result<Vec<String>, MphpcError> {
    let mut fresh = Vec::new();
    for key in store.list("gen-")? {
        if is_shard_result_key(&key) && !watermark.contains(&key) {
            fresh.push(key);
        }
    }
    Ok(fresh)
}

/// True for fleet shard-result keys (`gen-N/shards/shard-XXXX` with no
/// extension).
pub fn is_shard_result_key(key: &str) -> bool {
    let Some(rest) = key.strip_prefix("gen-") else {
        return false;
    };
    let Some((generation, tail)) = rest.split_once('/') else {
        return false;
    };
    if generation.is_empty() || !generation.bytes().all(|b| b.is_ascii_digit()) {
        return false;
    }
    let Some(shard) = tail.strip_prefix("shards/shard-") else {
        return false;
    };
    !shard.is_empty() && shard.bytes().all(|b| b.is_ascii_digit())
}

/// The current dataset version number, or `None` before the first
/// publish.
pub fn current_dataset_version(store: &dyn Storage) -> Result<Option<u64>, MphpcError> {
    let Some(bytes) = store.get(&dataset_pointer_key())? else {
        return Ok(None);
    };
    let text = String::from_utf8(bytes)
        .map_err(|_| MphpcError::Storage("dataset pointer is not utf-8".to_string()))?;
    let version = text
        .trim()
        .parse::<u64>()
        .map_err(|_| MphpcError::Storage(format!("dataset pointer is not a version: {text:?}")))?;
    Ok(Some(version))
}

/// Read the current dataset (version number and bytes), or `None`
/// before the first publish. A pointer that names a missing object is a
/// hard error — the publish protocol makes that state unreachable.
pub fn load_current_dataset(store: &dyn Storage) -> Result<Option<(u64, Vec<u8>)>, MphpcError> {
    let Some(version) = current_dataset_version(store)? else {
        return Ok(None);
    };
    let bytes = store.get(&dataset_version_key(version))?.ok_or_else(|| {
        MphpcError::Storage(format!(
            "dataset pointer names v{version} but the object is missing"
        ))
    })?;
    Ok(Some((version, bytes)))
}

/// Publish `bytes` as the next dataset version: write the immutable
/// version object first, then flip the pointer. Returns the new version
/// number. A crash between the writes leaves the previous version
/// current and the orphan object harmless (the next publish overwrites
/// the same version number).
pub fn publish_dataset(store: &dyn Storage, bytes: &[u8]) -> Result<u64, MphpcError> {
    let version = current_dataset_version(store)?.unwrap_or(0) + 1;
    store.put_atomic(&dataset_version_key(version), bytes)?;
    store.put_atomic(&dataset_pointer_key(), version.to_string().as_bytes())?;
    Ok(version)
}

/// Delete dataset versions (and their watermark sidecars) older than
/// `keep` behind the current one (bounded storage for a long-running
/// watch). The current version is never deleted.
pub fn prune_dataset_versions(store: &dyn Storage, keep: u64) -> Result<u64, MphpcError> {
    let Some(current) = current_dataset_version(store)? else {
        return Ok(0);
    };
    let mut pruned = 0;
    for version in 1..current.saturating_sub(keep) {
        let key = dataset_version_key(version);
        if store.exists(&key)? {
            store.delete(&key)?;
            pruned += 1;
        }
        store.delete(&watermark_key(version))?;
    }
    Ok(pruned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LocalDirStorage;

    fn store(name: &str) -> LocalDirStorage {
        let dir = std::env::temp_dir().join(format!("mphpc_stream_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        LocalDirStorage::open(dir).unwrap()
    }

    #[test]
    fn watermark_commits_with_its_dataset_version() {
        let s = store("wm");
        assert!(load_watermark(&s).unwrap().is_empty());
        let mut wm = BTreeSet::new();
        wm.insert("gen-1/shards/shard-0000".to_string());
        assert_eq!(commit_ingest(&s, b"rows-a", &wm).unwrap(), 1);
        assert_eq!(load_watermark(&s).unwrap(), wm);

        wm.insert("gen-1/shards/shard-0001".to_string());
        assert_eq!(commit_ingest(&s, b"rows-ab", &wm).unwrap(), 2);
        assert_eq!(load_watermark(&s).unwrap(), wm);
        assert_eq!(
            load_current_dataset(&s).unwrap(),
            Some((2, b"rows-ab".to_vec()))
        );
    }

    #[test]
    fn crashed_commit_rewinds_watermark_and_dataset_together() {
        let s = store("wm_crash");
        let mut wm = BTreeSet::new();
        wm.insert("gen-1/shards/shard-0000".to_string());
        commit_ingest(&s, b"v1", &wm).unwrap();

        // Crash after the v2 sidecar + object landed, before the flip.
        let mut wm2 = wm.clone();
        wm2.insert("gen-1/shards/shard-0001".to_string());
        s.put_atomic(&watermark_key(2), b"orphan").unwrap();
        s.put_atomic(&dataset_version_key(2), b"v2-orphan").unwrap();

        // A restarted watch sees v1 and v1's watermark: shard-0001 is
        // still unseen, so it is re-ingested, never skipped.
        assert_eq!(load_watermark(&s).unwrap(), wm);
        assert_eq!(load_current_dataset(&s).unwrap(), Some((1, b"v1".to_vec())));
        assert_eq!(commit_ingest(&s, b"v2-real", &wm2).unwrap(), 2);
        assert_eq!(load_watermark(&s).unwrap(), wm2);
        assert_eq!(
            load_current_dataset(&s).unwrap(),
            Some((2, b"v2-real".to_vec()))
        );
    }

    #[test]
    fn unseen_shards_skips_meta_claims_and_seen() {
        let s = store("unseen");
        for key in [
            "gen-1/shards/shard-0000",
            "gen-1/shards/shard-0000.meta",
            "gen-1/shards/shard-0001",
            "gen-1/claims/shard-0001",
            "gen-1/manifest.txt",
            "gen-2/shards/shard-0000",
        ] {
            s.put_atomic(key, b"x").unwrap();
        }
        let mut wm = BTreeSet::new();
        assert_eq!(
            unseen_shards(&s, &wm).unwrap(),
            [
                "gen-1/shards/shard-0000",
                "gen-1/shards/shard-0001",
                "gen-2/shards/shard-0000"
            ]
        );
        wm.insert("gen-1/shards/shard-0001".to_string());
        assert_eq!(
            unseen_shards(&s, &wm).unwrap(),
            ["gen-1/shards/shard-0000", "gen-2/shards/shard-0000"]
        );
    }

    #[test]
    fn shard_key_filter_is_exact() {
        assert!(is_shard_result_key("gen-0/shards/shard-0000"));
        assert!(is_shard_result_key("gen-12/shards/shard-9999"));
        assert!(!is_shard_result_key("gen-1/shards/shard-0000.meta"));
        assert!(!is_shard_result_key("gen-1/claims/shard-0000"));
        assert!(!is_shard_result_key("gen-1/manifest.txt"));
        assert!(!is_shard_result_key("gen-x/shards/shard-0000"));
        assert!(!is_shard_result_key("gen-/shards/shard-0000"));
        assert!(!is_shard_result_key("other/shards/shard-0000"));
    }

    #[test]
    fn dataset_versions_publish_and_flip_atomically() {
        let s = store("ds");
        assert!(load_current_dataset(&s).unwrap().is_none());
        assert_eq!(publish_dataset(&s, b"rows-v1").unwrap(), 1);
        assert_eq!(
            load_current_dataset(&s).unwrap(),
            Some((1, b"rows-v1".to_vec()))
        );
        assert_eq!(publish_dataset(&s, b"rows-v1+v2").unwrap(), 2);
        assert_eq!(
            load_current_dataset(&s).unwrap(),
            Some((2, b"rows-v1+v2".to_vec()))
        );
        // Older versions remain readable until pruned.
        assert!(s.exists(&dataset_version_key(1)).unwrap());
    }

    #[test]
    fn crash_between_object_and_pointer_leaves_previous_current() {
        let s = store("crash");
        publish_dataset(&s, b"v1").unwrap();
        // Simulate a crash mid-publish: v2's object landed, the pointer
        // flip never happened.
        s.put_atomic(&dataset_version_key(2), b"v2-orphan").unwrap();
        assert_eq!(
            load_current_dataset(&s).unwrap(),
            Some((1, b"v1".to_vec())),
            "reader must still see the previous complete version"
        );
        // The next publish reuses version 2 and completes the flip.
        assert_eq!(publish_dataset(&s, b"v2-real").unwrap(), 2);
        assert_eq!(
            load_current_dataset(&s).unwrap(),
            Some((2, b"v2-real".to_vec()))
        );
    }

    #[test]
    fn prune_keeps_recent_versions_and_current() {
        let s = store("prune");
        let wm = BTreeSet::new();
        for i in 1..=6u64 {
            commit_ingest(&s, format!("v{i}").as_bytes(), &wm).unwrap();
        }
        // keep=2 behind current (v6): v4..v6 survive, v1..v3 go.
        assert_eq!(prune_dataset_versions(&s, 2).unwrap(), 3);
        for (version, alive) in [
            (1, false),
            (2, false),
            (3, false),
            (4, true),
            (5, true),
            (6, true),
        ] {
            assert_eq!(
                s.exists(&dataset_version_key(version)).unwrap(),
                alive,
                "v{version}"
            );
            assert_eq!(
                s.exists(&watermark_key(version)).unwrap(),
                alive,
                "watermark v{version}"
            );
        }
        assert_eq!(load_current_dataset(&s).unwrap(), Some((6, b"v6".to_vec())));
    }
}
