//! Generation manifests: the immutable description of one fleet job.
//!
//! A manifest pins everything a worker needs to reproduce its share of the
//! work deterministically — the generation number, the base seed, and the
//! contiguous item ranges of every shard — plus a free-form string
//! parameter map for the domain layer (campaign shape, model family, ...).
//! Shard *seeds are derived from the manifest*, never from worker
//! identity, so any worker (or a worker restarted after `kill -9`)
//! computes bit-identical shard results.
//!
//! The on-disk format is a deliberately tiny line-based text format rather
//! than JSON: this crate is std-only, and a format with a hand-rolled
//! parser keeps fleet coordination free of any serialisation dependency
//! (the pipeline's heavyweight artifacts — datasets, models — have their
//! own formats already).

use crate::Storage;
use mphpc_errors::MphpcError;
use std::collections::BTreeMap;
use std::time::Duration;

/// Magic first line of the manifest format.
const HEADER: &str = "mphpc-fleet-manifest v1";

/// The storage key a generation manifest lives under.
pub const MANIFEST_KEY: &str = "manifest.txt";

/// One shard: a contiguous half-open range of work-item indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// First item index (inclusive).
    pub start: usize,
    /// One past the last item index.
    pub end: usize,
}

impl ShardRange {
    /// Number of items in the shard.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the shard covers no items.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// The immutable description of one fleet generation.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Generation number (namespaces every key the fleet writes).
    pub generation: u64,
    /// Base seed; shard work derives all randomness from this.
    pub seed: u64,
    /// Claim lease: a claim not heartbeated within this window is stale
    /// and may be reclaimed by another worker.
    pub claim_ttl: Duration,
    /// Contiguous work-item ranges, one per shard, covering the whole job.
    pub shards: Vec<ShardRange>,
    /// Domain-layer parameters (campaign shape, model family, ...).
    pub params: BTreeMap<String, String>,
}

impl Manifest {
    /// Key prefix for this generation's objects.
    pub fn gen_prefix(&self) -> String {
        format!("gen-{}", self.generation)
    }

    /// Storage key of shard `id`'s result object.
    pub fn result_key(&self, id: usize) -> String {
        format!("{}/shards/shard-{id:04}", self.gen_prefix())
    }

    /// Storage key of shard `id`'s result metadata (worker, row counts).
    pub fn meta_key(&self, id: usize) -> String {
        format!("{}/shards/shard-{id:04}.meta", self.gen_prefix())
    }

    /// Storage key of shard `id`'s claim file.
    pub fn claim_key(&self, id: usize) -> String {
        format!("{}/claims/shard-{id:04}", self.gen_prefix())
    }

    /// A manifest parameter, or an error naming the missing key.
    pub fn param(&self, key: &str) -> Result<&str, MphpcError> {
        self.params
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| MphpcError::Storage(format!("manifest is missing param '{key}'")))
    }

    /// Render to the line-based manifest format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("generation = {}\n", self.generation));
        out.push_str(&format!("seed = {}\n", self.seed));
        out.push_str(&format!("claim_ttl_ms = {}\n", self.claim_ttl.as_millis()));
        for s in &self.shards {
            out.push_str(&format!("shard = {} {}\n", s.start, s.end));
        }
        for (k, v) in &self.params {
            out.push_str(&format!("param {k} = {v}\n"));
        }
        out
    }

    /// Parse the line-based manifest format.
    pub fn parse(text: &str) -> Result<Self, MphpcError> {
        let bad = |line: &str, why: &str| {
            Err(MphpcError::Storage(format!(
                "manifest parse error: {why}: '{line}'"
            )))
        };
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(HEADER) {
            return Err(MphpcError::Storage(format!(
                "not a fleet manifest (expected leading '{HEADER}')"
            )));
        }
        let mut generation = None;
        let mut seed = None;
        let mut claim_ttl = None;
        let mut shards = Vec::new();
        let mut params = BTreeMap::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return bad(line, "missing '='");
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "generation" => generation = value.parse::<u64>().ok(),
                "seed" => seed = value.parse::<u64>().ok(),
                "claim_ttl_ms" => claim_ttl = value.parse::<u64>().ok().map(Duration::from_millis),
                "shard" => {
                    let mut it = value.split_whitespace();
                    match (
                        it.next().and_then(|w| w.parse::<usize>().ok()),
                        it.next().and_then(|w| w.parse::<usize>().ok()),
                        it.next(),
                    ) {
                        (Some(start), Some(end), None) if start < end => {
                            shards.push(ShardRange { start, end })
                        }
                        _ => return bad(line, "shard wants 'start end' with start < end"),
                    }
                }
                _ => {
                    let Some(pkey) = key.strip_prefix("param ") else {
                        return bad(line, "unknown manifest key");
                    };
                    params.insert(pkey.trim().to_string(), value.to_string());
                }
            }
        }
        let (Some(generation), Some(seed), Some(claim_ttl)) = (generation, seed, claim_ttl) else {
            return Err(MphpcError::Storage(
                "manifest is missing generation/seed/claim_ttl_ms".into(),
            ));
        };
        if shards.is_empty() {
            return Err(MphpcError::Storage("manifest has no shards".into()));
        }
        // Shards must tile a contiguous range without gaps or overlap.
        for w in shards.windows(2) {
            if w[0].end != w[1].start {
                return Err(MphpcError::Storage(format!(
                    "manifest shards are not contiguous: {}..{} then {}..{}",
                    w[0].start, w[0].end, w[1].start, w[1].end
                )));
            }
        }
        Ok(Self {
            generation,
            seed,
            claim_ttl,
            shards,
            params,
        })
    }

    /// Store this manifest (atomically) under [`MANIFEST_KEY`].
    ///
    /// If an identical manifest is already present this is a no-op, so
    /// `init` is idempotent; a *different* existing manifest is an error —
    /// a generation's work definition is immutable once published.
    pub fn publish(&self, store: &dyn Storage) -> Result<(), MphpcError> {
        if let Some(existing) = store.get(MANIFEST_KEY)? {
            let existing = Manifest::parse(&String::from_utf8_lossy(&existing))?;
            if existing == *self {
                return Ok(());
            }
            return Err(MphpcError::Storage(
                "a different manifest already exists in this store \
                 (use a fresh store directory per fleet job)"
                    .into(),
            ));
        }
        store.put_atomic(MANIFEST_KEY, self.render().as_bytes())
    }

    /// Load the manifest from [`MANIFEST_KEY`].
    pub fn load(store: &dyn Storage) -> Result<Self, MphpcError> {
        let bytes = store.get(MANIFEST_KEY)?.ok_or_else(|| {
            MphpcError::Storage("store has no manifest (run `fleet init` first)".into())
        })?;
        Manifest::parse(&String::from_utf8_lossy(&bytes))
    }
}

/// Split `n_items` into at most `n_shards` contiguous ranges, each aligned
/// to a multiple of `align` (the last shard absorbs any non-aligned tail).
///
/// Alignment lets the domain layer keep indivisible item groups (e.g. the
/// machine×rep block of one profiled configuration) inside a single shard.
/// Empty shards are dropped, so fewer than `n_shards` ranges may return
/// when there are not enough aligned blocks to go around.
pub fn plan_shards(n_items: usize, align: usize, n_shards: usize) -> Vec<ShardRange> {
    let align = align.max(1);
    let n_shards = n_shards.max(1);
    let blocks = n_items.div_ceil(align);
    let mut out = Vec::new();
    for i in 0..n_shards {
        let start_block = i * blocks / n_shards;
        let end_block = (i + 1) * blocks / n_shards;
        let start = start_block * align;
        let end = (end_block * align).min(n_items);
        if start < end {
            out.push(ShardRange { start, end });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LocalDirStorage;

    fn sample() -> Manifest {
        Manifest {
            generation: 3,
            seed: 2024,
            claim_ttl: Duration::from_millis(1500),
            shards: plan_shards(24, 4, 4),
            params: BTreeMap::from([
                ("apps".to_string(), "3".to_string()),
                ("model".to_string(), "gbt".to_string()),
            ]),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let m = sample();
        let back = Manifest::parse(&m.render()).unwrap();
        assert_eq!(m, back);
        assert_eq!(back.param("model").unwrap(), "gbt");
        assert!(back.param("missing").is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Manifest::parse("not a manifest").is_err());
        assert!(Manifest::parse(HEADER).is_err(), "missing required fields");
        let gappy = format!(
            "{HEADER}\ngeneration = 0\nseed = 1\nclaim_ttl_ms = 10\nshard = 0 4\nshard = 8 12\n"
        );
        assert!(Manifest::parse(&gappy).is_err(), "non-contiguous shards");
        let unknown = format!("{HEADER}\ngeneration = 0\nseed = 1\nclaim_ttl_ms = 10\nbogus = 1\n");
        assert!(Manifest::parse(&unknown).is_err());
    }

    #[test]
    fn plan_shards_tiles_aligned_and_balanced() {
        let shards = plan_shards(24, 4, 4);
        assert_eq!(shards.len(), 4);
        assert_eq!(shards[0].start, 0);
        assert_eq!(shards.last().unwrap().end, 24);
        for w in shards.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        for s in &shards {
            assert_eq!(s.start % 4, 0, "aligned starts");
            assert_eq!(s.len() % 4, 0, "aligned lengths");
        }
        let (min, max) = (
            shards.iter().map(ShardRange::len).min().unwrap(),
            shards.iter().map(ShardRange::len).max().unwrap(),
        );
        assert!(max - min <= 4, "balanced to within one block: {shards:?}");
        // More shards than blocks: empties dropped.
        assert_eq!(plan_shards(8, 4, 16).len(), 2);
        // Non-aligned tail lands in the last shard.
        let tail = plan_shards(10, 4, 2);
        assert_eq!(tail.last().unwrap().end, 10);
        assert_eq!(tail.iter().map(ShardRange::len).sum::<usize>(), 10);
    }

    #[test]
    fn publish_is_idempotent_but_rejects_conflicts() {
        let dir = std::env::temp_dir().join(format!("mphpc_manifest_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = LocalDirStorage::open(&dir).unwrap();
        let m = sample();
        m.publish(&store).unwrap();
        m.publish(&store).unwrap(); // identical: fine
        let mut other = sample();
        other.seed ^= 1;
        assert!(matches!(other.publish(&store), Err(MphpcError::Storage(_))));
        assert_eq!(Manifest::load(&store).unwrap(), m);
        std::fs::remove_dir_all(&dir).ok();
    }
}
