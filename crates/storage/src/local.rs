//! Local-directory [`Storage`] backend.
//!
//! Objects are plain files under a root directory; keys are `/`-separated
//! relative paths. Atomicity comes from [`atomic_write_file`]; claims are
//! ordinary objects whose *content* names the owning worker and whose
//! *mtime* is the heartbeat — refreshing a claim rewrites it in place
//! (atomically), which bumps the mtime. Staleness is therefore judged
//! entirely from the filesystem, so any process that can see the
//! directory (including one on another machine via a shared filesystem)
//! participates in the same lease protocol.

use crate::{atomic_write_file, storage_io, ClaimOutcome, Storage};
use mphpc_errors::MphpcError;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// [`Storage`] over a local directory tree.
#[derive(Debug, Clone)]
pub struct LocalDirStorage {
    root: PathBuf,
}

impl LocalDirStorage {
    /// Open (creating if necessary) a store rooted at `root`.
    pub fn open<P: AsRef<Path>>(root: P) -> Result<Self, MphpcError> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root).map_err(|e| storage_io(&root, e))?;
        Ok(Self { root })
    }

    /// The root directory backing this store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Resolve a key to its backing path, validating that it cannot escape
    /// the root (`..`, absolute paths, and empty segments are rejected).
    fn path_for(&self, key: &str) -> Result<PathBuf, MphpcError> {
        if key.is_empty()
            || key.starts_with('/')
            || key
                .split('/')
                .any(|seg| seg.is_empty() || seg == "." || seg == "..")
        {
            return Err(MphpcError::Storage(format!("invalid storage key '{key}'")));
        }
        let mut p = self.root.clone();
        for seg in key.split('/') {
            p.push(seg);
        }
        Ok(p)
    }

    fn read_owner(&self, path: &Path) -> Result<Option<String>, MphpcError> {
        match std::fs::read_to_string(path) {
            Ok(s) => Ok(Some(s.trim_end().to_string())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(storage_io(path, e)),
        }
    }

    /// Age of the file at `path` since its last modification, saturating
    /// to zero when the clock reads earlier than the mtime.
    fn age_of(&self, path: &Path) -> Result<Option<Duration>, MphpcError> {
        match std::fs::metadata(path) {
            Ok(meta) => {
                let mtime = meta.modified().map_err(|e| storage_io(path, e))?;
                Ok(Some(
                    std::time::SystemTime::now()
                        .duration_since(mtime)
                        .unwrap_or(Duration::ZERO),
                ))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(storage_io(path, e)),
        }
    }

    fn collect_keys(
        &self,
        dir: &Path,
        rel: &mut Vec<String>,
        out: &mut Vec<String>,
    ) -> Result<(), MphpcError> {
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(storage_io(dir, e)),
        };
        for entry in entries {
            let entry = entry.map_err(|e| storage_io(dir, e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            // In-flight temp files are an implementation detail, never
            // part of the visible key space.
            if name.starts_with(".mphpc-tmp.") {
                continue;
            }
            let ty = entry
                .file_type()
                .map_err(|e| storage_io(&entry.path(), e))?;
            rel.push(name);
            if ty.is_dir() {
                self.collect_keys(&entry.path(), rel, out)?;
            } else {
                out.push(rel.join("/"));
            }
            rel.pop();
        }
        Ok(())
    }
}

impl Storage for LocalDirStorage {
    fn put_atomic(&self, key: &str, bytes: &[u8]) -> Result<(), MphpcError> {
        let path = self.path_for(key)?;
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| storage_io(parent, e))?;
        }
        atomic_write_file(&path, bytes).map_err(|e| storage_io(&path, e))
    }

    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, MphpcError> {
        let path = self.path_for(key)?;
        match std::fs::read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(storage_io(&path, e)),
        }
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, MphpcError> {
        let mut out = Vec::new();
        self.collect_keys(&self.root.clone(), &mut Vec::new(), &mut out)?;
        out.retain(|k| k.starts_with(prefix));
        out.sort();
        Ok(out)
    }

    fn claim(&self, key: &str, worker: &str, ttl: Duration) -> Result<ClaimOutcome, MphpcError> {
        let path = self.path_for(key)?;
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| storage_io(parent, e))?;
        }
        // Fast path: create the claim exclusively. `create_new` is atomic
        // at the filesystem level, so exactly one of several racing
        // workers wins a fresh claim.
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut f) => {
                use std::io::Write as _;
                f.write_all(worker.as_bytes())
                    .and_then(|()| f.sync_all())
                    .map_err(|e| storage_io(&path, e))?;
                return Ok(ClaimOutcome::Acquired { reclaimed: false });
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {}
            Err(e) => return Err(storage_io(&path, e)),
        }
        // The claim exists. Read owner + age; both can race with a
        // concurrent release, in which case we just report Held and let
        // the worker's next pass retry.
        let Some(owner) = self.read_owner(&path)? else {
            return Ok(ClaimOutcome::Held {
                owner: String::new(),
            });
        };
        if owner == worker {
            // Re-entrant: a restarted worker resumes its own shard.
            // Refresh the heartbeat so the lease clock restarts.
            self.put_atomic(key, worker.as_bytes())?;
            return Ok(ClaimOutcome::Acquired { reclaimed: false });
        }
        let age = self.age_of(&path)?.unwrap_or(Duration::ZERO);
        if age <= ttl {
            return Ok(ClaimOutcome::Held { owner });
        }
        // Stale claim: take it over with an atomic rename, then read back
        // to decide who actually won (two reclaimers both rename; the
        // last rename wins and the loser sees the winner's id).
        self.put_atomic(key, worker.as_bytes())?;
        match self.read_owner(&path)? {
            Some(now) if now == worker => Ok(ClaimOutcome::Acquired { reclaimed: true }),
            Some(now) => Ok(ClaimOutcome::Held { owner: now }),
            None => Ok(ClaimOutcome::Held {
                owner: String::new(),
            }),
        }
    }

    fn heartbeat(&self, key: &str, worker: &str) -> Result<bool, MphpcError> {
        let path = self.path_for(key)?;
        match self.read_owner(&path)? {
            Some(owner) if owner == worker => {
                self.put_atomic(key, worker.as_bytes())?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn delete(&self, key: &str) -> Result<(), MphpcError> {
        let path = self.path_for(key)?;
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(storage_io(&path, e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(tag: &str) -> LocalDirStorage {
        let dir = std::env::temp_dir().join(format!(
            "mphpc_store_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        LocalDirStorage::open(dir).unwrap()
    }

    #[test]
    fn put_get_list_round_trip() {
        let s = store("rt");
        assert_eq!(s.get("a/b.json").unwrap(), None);
        s.put_atomic("a/b.json", b"{}").unwrap();
        s.put_atomic("a/c.json", b"[]").unwrap();
        s.put_atomic("z.txt", b"zz").unwrap();
        assert_eq!(s.get("a/b.json").unwrap().unwrap(), b"{}");
        assert_eq!(
            s.list("a/").unwrap(),
            vec!["a/b.json".to_string(), "a/c.json".to_string()]
        );
        assert_eq!(s.list("").unwrap().len(), 3);
        assert!(s.exists("z.txt").unwrap());
        s.delete("z.txt").unwrap();
        s.delete("z.txt").unwrap(); // idempotent
        assert!(!s.exists("z.txt").unwrap());
        std::fs::remove_dir_all(s.root()).ok();
    }

    #[test]
    fn keys_cannot_escape_the_root() {
        let s = store("esc");
        for bad in ["", "/abs", "a/../b", "..", "a//b", "./x"] {
            assert!(
                matches!(s.put_atomic(bad, b"x"), Err(MphpcError::Storage(_))),
                "key '{bad}' must be rejected"
            );
        }
        std::fs::remove_dir_all(s.root()).ok();
    }

    #[test]
    fn claim_is_exclusive_then_reentrant() {
        let s = store("claim");
        let ttl = Duration::from_secs(60);
        assert_eq!(
            s.claim("claims/s0", "w1", ttl).unwrap(),
            ClaimOutcome::Acquired { reclaimed: false }
        );
        assert_eq!(
            s.claim("claims/s0", "w2", ttl).unwrap(),
            ClaimOutcome::Held { owner: "w1".into() }
        );
        // Same worker re-claims its own shard after a restart.
        assert_eq!(
            s.claim("claims/s0", "w1", ttl).unwrap(),
            ClaimOutcome::Acquired { reclaimed: false }
        );
        assert!(s.heartbeat("claims/s0", "w1").unwrap());
        assert!(!s.heartbeat("claims/s0", "w2").unwrap());
        s.delete("claims/s0").unwrap();
        assert!(!s.heartbeat("claims/s0", "w1").unwrap());
        std::fs::remove_dir_all(s.root()).ok();
    }

    #[test]
    fn stale_claim_is_reclaimable() {
        let s = store("stale");
        assert!(s
            .claim("claims/s1", "dead", Duration::from_millis(50))
            .unwrap()
            .is_acquired());
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(
            s.claim("claims/s1", "alive", Duration::from_millis(50))
                .unwrap(),
            ClaimOutcome::Acquired { reclaimed: true }
        );
        // The reclaim refreshed the mtime: a third worker now sees a live
        // claim held by `alive`.
        assert_eq!(
            s.claim("claims/s1", "third", Duration::from_secs(60))
                .unwrap(),
            ClaimOutcome::Held {
                owner: "alive".into()
            }
        );
        std::fs::remove_dir_all(s.root()).ok();
    }

    #[test]
    fn racing_fresh_claims_have_exactly_one_winner() {
        let s = store("race");
        let ttl = Duration::from_secs(60);
        let winners: Vec<bool> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let s = &s;
                    scope.spawn(move || {
                        s.claim("claims/contested", &format!("w{i}"), ttl)
                            .unwrap()
                            .is_acquired()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            winners.iter().filter(|&&w| w).count(),
            1,
            "exactly one fresh claim may win: {winners:?}"
        );
        std::fs::remove_dir_all(s.root()).ok();
    }
}
