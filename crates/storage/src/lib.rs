//! Crash-safe artifact storage for the mphpc fleet (DESIGN.md §16).
//!
//! Every user-visible artifact the pipeline produces — dataset CSVs,
//! trained-model JSON, fleet shard results — must survive `kill -9` of the
//! producing process: a reader either sees the complete previous version of
//! a file or the complete new one, never a torn prefix. This crate provides
//! that guarantee twice over:
//!
//! * [`atomic_write_file`] — the low-level primitive: write to a temporary
//!   file in the destination directory, `fsync` it, `rename` it over the
//!   destination, and `fsync` the directory. It returns
//!   [`std::io::Result`] so leaf crates (e.g. `mphpc-frame`) can use it
//!   without coupling to the workspace error type.
//! * [`Storage`] — a pluggable object-store abstraction (local directory
//!   now, S3-shaped later) with atomic puts, prefix listing, and
//!   lease-style [`Storage::claim`]s that let independent worker processes
//!   divide work idempotently: a claim names its worker and is refreshed by
//!   heartbeats; a claim whose file has not been touched for longer than
//!   the lease TTL is *stale* and may be taken over by another worker.
//!
//! Claims are an optimisation, not a correctness mechanism: fleet shards
//! are deterministic functions of the generation manifest, so two workers
//! racing on the same shard write bit-identical result objects and the
//! atomic rename makes the race harmless. The claim protocol exists to
//! avoid duplicated compute, not to guard data integrity.

#![warn(missing_docs)]

mod local;
mod manifest;
pub mod stream;

pub use local::LocalDirStorage;
pub use manifest::{plan_shards, Manifest, ShardRange, MANIFEST_KEY};

use mphpc_errors::MphpcError;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Outcome of a [`Storage::claim`] attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClaimOutcome {
    /// The claim is now held by the requesting worker.
    Acquired {
        /// True when the claim was taken over from a stale (expired) owner
        /// rather than created fresh — fleet telemetry counts these as
        /// `fleet.shard.reclaimed`.
        reclaimed: bool,
    },
    /// Another worker holds a live (non-expired) claim.
    Held {
        /// The current owner's worker id.
        owner: String,
    },
}

impl ClaimOutcome {
    /// True when the requesting worker now owns the claim.
    pub fn is_acquired(&self) -> bool {
        matches!(self, ClaimOutcome::Acquired { .. })
    }
}

/// A pluggable artifact store the fleet coordinates through.
///
/// Keys are `/`-separated relative paths (`gen-0/shards/shard-3.json`).
/// Implementations must make [`Storage::put_atomic`] all-or-nothing: a
/// concurrent or crash-interrupted reader observes either the previous
/// object or the complete new one.
pub trait Storage: Send + Sync {
    /// Atomically store `bytes` under `key`, replacing any previous object.
    fn put_atomic(&self, key: &str, bytes: &[u8]) -> Result<(), MphpcError>;

    /// Fetch the object under `key`, or `None` if absent.
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, MphpcError>;

    /// All keys starting with `prefix`, sorted lexicographically.
    fn list(&self, prefix: &str) -> Result<Vec<String>, MphpcError>;

    /// Try to take the lease-style claim at `key` for `worker`.
    ///
    /// * no claim exists → create it, `Acquired { reclaimed: false }`;
    /// * `worker` already owns it → refresh it, `Acquired { reclaimed: false }`
    ///   (claims are re-entrant so a restarted worker resumes its own work);
    /// * another worker owns it and the claim was refreshed within `ttl` →
    ///   `Held`;
    /// * another worker owns it but the claim is older than `ttl` → take it
    ///   over, `Acquired { reclaimed: true }`.
    fn claim(&self, key: &str, worker: &str, ttl: Duration) -> Result<ClaimOutcome, MphpcError>;

    /// Refresh the claim at `key` if `worker` still owns it. Returns false
    /// (without error) when the claim is gone or owned by someone else —
    /// the worker should abandon the shard.
    fn heartbeat(&self, key: &str, worker: &str) -> Result<bool, MphpcError>;

    /// Remove the object under `key` (used to release completed claims).
    /// Removing an absent key is not an error.
    fn delete(&self, key: &str) -> Result<(), MphpcError>;

    /// True when an object exists under `key`.
    fn exists(&self, key: &str) -> Result<bool, MphpcError> {
        Ok(self.get(key)?.is_some())
    }
}

/// Process-unique suffix counter for temp-file names: two concurrent
/// writers in the same process must never share a temp path.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write `bytes` to `path` atomically: temp file in the same directory →
/// write → `fsync` → `rename` over `path` → `fsync` the directory.
///
/// A reader (or a process resuming after this writer was `kill -9`ed) sees
/// either the complete previous file or the complete new one. Leftover
/// `.mphpc-tmp.*` files from killed writers are harmless and are swept by
/// the next writer into the same directory.
pub fn atomic_write_file<P: AsRef<Path>>(path: P, bytes: &[u8]) -> std::io::Result<()> {
    let path = path.as_ref();
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = dir.join(format!(
        ".mphpc-tmp.{}.{}.{}",
        file_name,
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        // Data must be durable before the rename publishes the name:
        // otherwise a power cut could leave the new name pointing at an
        // empty or partial file.
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        // Persist the directory entry. Failure here (some filesystems
        // refuse to fsync directories) downgrades durability, never
        // atomicity, so it is best-effort.
        if let Ok(d) = std::fs::File::open(&dir) {
            let _ = d.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Map an `io::Error` at `path` into the workspace error type.
pub(crate) fn storage_io(path: &Path, err: std::io::Error) -> MphpcError {
    MphpcError::Storage(format!("{}: {err}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_creates_and_replaces() {
        let dir = std::env::temp_dir().join(format!("mphpc_aw_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.txt");
        atomic_write_file(&path, b"one").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"one");
        atomic_write_file(&path, b"two-longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two-longer");
        // No temp droppings after successful writes.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".mphpc-tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_rejects_directoryless_name() {
        assert!(atomic_write_file(std::path::Path::new("/"), b"x").is_err());
    }

    #[test]
    fn concurrent_reader_never_sees_a_torn_file() {
        // Hammer the same destination with two alternating contents while
        // a reader polls it: every successful read must be one of the two
        // complete payloads, never a prefix or a splice.
        let dir = std::env::temp_dir().join(format!("mphpc_aw_race_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("contended.bin");
        let a: Vec<u8> = vec![b'a'; 64 * 1024];
        let b: Vec<u8> = vec![b'b'; 96 * 1024];
        atomic_write_file(&path, &a).unwrap();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let reader = s.spawn(|| {
                let mut observed = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    if let Ok(bytes) = std::fs::read(&path) {
                        let ok = bytes == a || bytes == b;
                        assert!(ok, "torn read: {} bytes", bytes.len());
                        observed += 1;
                    }
                }
                observed
            });
            for i in 0..200 {
                let payload = if i % 2 == 0 { &b } else { &a };
                atomic_write_file(&path, payload).unwrap();
            }
            stop.store(true, Ordering::Relaxed);
            assert!(reader.join().unwrap() > 0, "reader never observed the file");
        });
        std::fs::remove_dir_all(&dir).ok();
    }
}
