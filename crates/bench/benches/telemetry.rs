//! Telemetry overhead micro-benchmarks: the cost of a disabled probe
//! (the price every hot path pays unconditionally), an enabled span, and
//! enabled metric updates.
//!
//! The disabled numbers are the contract: a `span!`/`counter_add` with
//! telemetry off must be a single relaxed atomic load — nanoseconds, no
//! allocation. `crates/telemetry/tests/overhead.rs` asserts the
//! zero-write/zero-alloc side of the same contract.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mphpc_telemetry::{set_mode, TelemetryMode};
use std::hint::black_box;

fn bench_disabled(c: &mut Criterion) {
    set_mode(TelemetryMode::Off);
    mphpc_telemetry::reset();
    let mut group = c.benchmark_group("telemetry_disabled");
    group.throughput(Throughput::Elements(1));
    group.bench_function("span", |b| {
        b.iter(|| {
            let _g = mphpc_telemetry::span!("bench.span");
            black_box(())
        })
    });
    group.bench_function("span_with_detail", |b| {
        b.iter(|| {
            // The detail closure must not run (or allocate) when off.
            let _g = mphpc_telemetry::span!("bench.span", i = black_box(7));
            black_box(())
        })
    });
    group.bench_function("counter_add", |b| {
        b.iter(|| mphpc_telemetry::counter_add("bench.counter", black_box(1)))
    });
    group.bench_function("histogram_record", |b| {
        b.iter(|| mphpc_telemetry::histogram_record("bench.hist", black_box(1.5)))
    });
    group.finish();
    assert_eq!(
        mphpc_telemetry::writes_recorded(),
        0,
        "disabled-mode benches must not record a single write"
    );
}

fn bench_enabled(c: &mut Criterion) {
    set_mode(TelemetryMode::Summary);
    mphpc_telemetry::reset();
    let mut group = c.benchmark_group("telemetry_enabled");
    group.throughput(Throughput::Elements(1));
    group.bench_function("span", |b| {
        b.iter(|| {
            let _g = mphpc_telemetry::span!("bench.span");
            black_box(())
        })
    });
    group.bench_function("span_with_detail", |b| {
        b.iter(|| {
            let _g = mphpc_telemetry::span!("bench.span", i = black_box(7));
            black_box(())
        })
    });
    group.bench_function("counter_add", |b| {
        b.iter(|| mphpc_telemetry::counter_add("bench.counter", black_box(1)))
    });
    group.bench_function("histogram_record", |b| {
        b.iter(|| mphpc_telemetry::histogram_record("bench.hist", black_box(1.5)))
    });
    group.finish();
    // Leave the process the way the other bench groups expect it.
    set_mode(TelemetryMode::Off);
    mphpc_telemetry::reset();
}

criterion_group!(benches, bench_disabled, bench_enabled);
criterion_main!(benches);
