//! Criterion bench for the Fig. 3 ablation path: per-source-architecture
//! train+evaluate of the XGBoost model (the cost of one heatmap cell).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mphpc_archsim::SystemId;
use mphpc_core::pipeline::{collect, CollectionConfig};
use mphpc_dataset::split::arch_split;
use mphpc_ml::{mae, ModelKind, Regressor};

fn bench_arch_cells(c: &mut Criterion) {
    let dataset = collect(&CollectionConfig::small(5, 2, 1, 2)).expect("collection");
    let kind = ModelKind::Gbt(Default::default());

    let mut group = c.benchmark_group("fig3_cell");
    group.sample_size(10);
    for sys in SystemId::TABLE1 {
        group.bench_with_input(BenchmarkId::from_parameter(sys.name()), &sys, |b, &sys| {
            b.iter(|| {
                let (tr, te) = arch_split(&dataset, sys, 0.2, 3).unwrap();
                let norm = dataset.fit_normalizer(&tr).unwrap();
                let train = dataset.to_ml(&tr, &norm).unwrap();
                let test = dataset.to_ml(&te, &norm).unwrap();
                let model = kind.fit(&train).unwrap();
                mae(&model.predict(&test.x).unwrap(), &test.y).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_arch_cells);
criterion_main!(benches);
