//! Criterion bench for the Fig. 2 pipeline: training cost of each model
//! family on an MP-HPC dataset (the paper: "training the XGBoost model
//! takes on the order of tens of seconds").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mphpc_core::pipeline::{collect, CollectionConfig};
use mphpc_ml::ModelKind;

fn bench_model_training(c: &mut Criterion) {
    let dataset = collect(&CollectionConfig::small(5, 2, 1, 1)).expect("collection");
    let rows = dataset.all_rows();
    let norm = dataset.fit_normalizer(&rows).expect("normalizer");
    let ml = dataset.to_ml(&rows, &norm).expect("ml view");

    let mut group = c.benchmark_group("fig2_training");
    group.sample_size(10);
    for kind in ModelKind::paper_lineup() {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, kind| b.iter(|| kind.fit(std::hint::black_box(&ml))),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("fig2_prediction");
    group.sample_size(20);
    for kind in ModelKind::paper_lineup() {
        let model = kind.fit(&ml).expect("fit");
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &model,
            |b, model| {
                use mphpc_ml::Regressor;
                b.iter(|| model.predict(std::hint::black_box(&ml.x)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_model_training);
criterion_main!(benches);
