//! Event-queue micro-benchmarks: `BinaryHeap` (the reference engine's
//! structure) versus the scale engine's `CalendarQueue` at 10k / 100k /
//! 1M events.
//!
//! Two access patterns bracket a discrete-event simulation's behaviour:
//!
//! - **fill_drain**: push everything, then pop everything — the
//!   saturated-backlog shape (all arrivals at t=0 enqueue every
//!   completion up front).
//! - **hold**: a steady-state churn at constant queue depth — pop the
//!   minimum, push a replacement a random distance in the future. This is
//!   the classic calendar-queue workload (Brown, CACM '88), where the
//!   heap pays O(log n) per operation and the calendar stays O(1)
//!   amortised.
//!
//! Both structures carry the same `(EventKey, u64)` payload so the
//! comparison isolates structure cost, not payload cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mphpc_sched::{CalendarQueue, EventKey};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

const SIZES: [usize; 3] = [10_000, 100_000, 1_000_000];
/// Operations measured per `hold` iteration.
const HOLD_OPS: usize = 10_000;

/// Deterministic event times: splitmix64 mapped to a mean-1.0
/// exponential-ish spread (uniform is fine for structure cost).
fn times(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * n as f64
        })
        .collect()
}

fn bench_fill_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_fill_drain");
    group.sample_size(10);
    for &n in &SIZES {
        let ts = times(n, 0xF111);
        group.throughput(Throughput::Elements(2 * n as u64));
        group.bench_with_input(BenchmarkId::new("binary_heap", n), &ts, |b, ts| {
            b.iter(|| {
                let mut q: BinaryHeap<Reverse<(EventKey, u64)>> = BinaryHeap::new();
                for (i, &t) in ts.iter().enumerate() {
                    q.push(Reverse((EventKey::new(t, i as u64), i as u64)));
                }
                let mut last = 0u64;
                while let Some(Reverse((_, v))) = q.pop() {
                    last = v;
                }
                black_box(last)
            })
        });
        group.bench_with_input(BenchmarkId::new("calendar", n), &ts, |b, ts| {
            b.iter(|| {
                let mut q: CalendarQueue<u64> = CalendarQueue::new();
                for (i, &t) in ts.iter().enumerate() {
                    q.push(EventKey::new(t, i as u64), i as u64);
                }
                let mut last = 0u64;
                while let Some((_, v)) = q.pop() {
                    last = v;
                }
                black_box(last)
            })
        });
    }
    group.finish();
}

fn bench_hold(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_hold");
    group.sample_size(10);
    for &n in &SIZES {
        let ts = times(n, 0x401D);
        let gaps = times(HOLD_OPS, 0x6A95);
        group.throughput(Throughput::Elements(HOLD_OPS as u64));
        // The queue is filled once and persists across iterations: each
        // pop re-pushes a replacement, so depth stays n and only the
        // steady-state churn is on the clock.
        group.bench_with_input(BenchmarkId::new("binary_heap", n), &(), |b, _| {
            let mut q: BinaryHeap<Reverse<(EventKey, u64)>> = BinaryHeap::new();
            for (i, &t) in ts.iter().enumerate() {
                q.push(Reverse((EventKey::new(t, i as u64), i as u64)));
            }
            let mut seq = n as u64;
            b.iter(|| {
                for g in &gaps {
                    let Reverse((k, v)) = q.pop().unwrap();
                    seq += 1;
                    q.push(Reverse((
                        EventKey::new(k.time() + g / n as f64, seq),
                        v,
                    )));
                }
                black_box(q.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("calendar", n), &(), |b, _| {
            let mut q: CalendarQueue<u64> = CalendarQueue::new();
            for (i, &t) in ts.iter().enumerate() {
                q.push(EventKey::new(t, i as u64), i as u64);
            }
            let mut seq = n as u64;
            b.iter(|| {
                for g in &gaps {
                    let (k, v) = q.pop().unwrap();
                    seq += 1;
                    q.push(EventKey::new(k.time() + g / n as f64, seq), v);
                }
                black_box(q.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fill_drain, bench_hold);
criterion_main!(benches);
