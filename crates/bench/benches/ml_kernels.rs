//! ML-substrate micro-benchmarks: histogram tree construction, boosting
//! rounds, binning, and the linear-algebra kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mphpc_ml::binning::QuantileBinner;
use mphpc_ml::{ForestParams, ForestRegressor, GbtParams, GbtRegressor, LinearParams, LinearRegressor, Matrix, MlDataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synthetic(n: usize, p: usize, k: usize, seed: u64) -> MlDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, p);
    let mut y = Matrix::zeros(n, k);
    for i in 0..n {
        for j in 0..p {
            x.set(i, j, rng.gen_range(-1.0..1.0));
        }
        for j in 0..k {
            let v = x.get(i, j % p) * 2.0 + x.get(i, (j + 1) % p).powi(2);
            y.set(i, j, v);
        }
    }
    MlDataset::new(x, y, (0..p).map(|j| format!("f{j}")).collect()).unwrap()
}

fn bench_binning(c: &mut Criterion) {
    let d = synthetic(10_000, 21, 4, 1);
    let mut group = c.benchmark_group("binning");
    group.throughput(Throughput::Elements(10_000 * 21));
    group.bench_function("fit_and_transform", |b| {
        b.iter(|| {
            let binner = QuantileBinner::fit(&d.x, 64);
            binner.transform(&d.x)
        })
    });
    group.finish();
}

fn bench_gbt_rounds(c: &mut Criterion) {
    let d = synthetic(5_000, 21, 4, 2);
    let mut group = c.benchmark_group("gbt_training");
    group.sample_size(10);
    for rounds in [20usize, 60, 120] {
        group.bench_with_input(BenchmarkId::from_parameter(rounds), &rounds, |b, &r| {
            let params = GbtParams {
                n_rounds: r,
                ..GbtParams::default()
            };
            b.iter(|| GbtRegressor::fit(std::hint::black_box(&d), params))
        });
    }
    group.finish();
}

fn bench_forest_and_linear(c: &mut Criterion) {
    let d = synthetic(5_000, 21, 4, 3);
    let mut group = c.benchmark_group("baselines_training");
    group.sample_size(10);
    group.bench_function("forest_100_trees", |b| {
        b.iter(|| ForestRegressor::fit(std::hint::black_box(&d), ForestParams::default()))
    });
    group.bench_function("ridge", |b| {
        b.iter(|| LinearRegressor::fit(std::hint::black_box(&d), LinearParams::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_binning, bench_gbt_rounds, bench_forest_and_linear);
criterion_main!(benches);
