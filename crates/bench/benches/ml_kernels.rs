//! ML-substrate micro-benchmarks: histogram tree construction, boosting
//! rounds, binning, and the linear-algebra kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mphpc_ml::binning::QuantileBinner;
use mphpc_ml::hist::{self, HistLayout};
use mphpc_ml::tree::{build_gbt_tree, BinnedMatrix, TreeParams};
use mphpc_ml::{
    ForestParams, ForestRegressor, GbtParams, GbtRegressor, LinearParams, LinearRegressor, Matrix,
    MlDataset,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synthetic(n: usize, p: usize, k: usize, seed: u64) -> MlDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, p);
    let mut y = Matrix::zeros(n, k);
    for i in 0..n {
        for j in 0..p {
            x.set(i, j, rng.gen_range(-1.0..1.0));
        }
        for j in 0..k {
            let v = x.get(i, j % p) * 2.0 + x.get(i, (j + 1) % p).powi(2);
            y.set(i, j, v);
        }
    }
    MlDataset::new(x, y, (0..p).map(|j| format!("f{j}")).collect()).unwrap()
}

fn bench_binning(c: &mut Criterion) {
    let d = synthetic(10_000, 21, 4, 1);
    let mut group = c.benchmark_group("binning");
    group.throughput(Throughput::Elements(10_000 * 21));
    group.bench_function("fit_and_transform", |b| {
        b.iter(|| {
            let binner = QuantileBinner::fit(&d.x, 64);
            binner.transform(&d.x)
        })
    });
    group.finish();
}

fn bench_gbt_rounds(c: &mut Criterion) {
    let d = synthetic(5_000, 21, 4, 2);
    let mut group = c.benchmark_group("gbt_training");
    group.sample_size(10);
    for rounds in [20usize, 60, 120] {
        group.bench_with_input(BenchmarkId::from_parameter(rounds), &rounds, |b, &r| {
            let params = GbtParams {
                n_rounds: r,
                ..GbtParams::default()
            };
            b.iter(|| GbtRegressor::fit(std::hint::black_box(&d), params))
        });
    }
    group.finish();
}

fn bench_forest_and_linear(c: &mut Criterion) {
    let d = synthetic(5_000, 21, 4, 3);
    let mut group = c.benchmark_group("baselines_training");
    group.sample_size(10);
    group.bench_function("forest_100_trees", |b| {
        b.iter(|| ForestRegressor::fit(std::hint::black_box(&d), ForestParams::default()))
    });
    group.bench_function("ridge", |b| {
        b.iter(|| LinearRegressor::fit(std::hint::black_box(&d), LinearParams::default()))
    });
    group.finish();
}

/// Isolate the tentpole: the histogram-engine kernels and one full tree
/// build, without the boosting loop around them.
fn bench_tree_kernels(c: &mut Criterion) {
    let d = synthetic(20_000, 21, 1, 4);
    let binner = QuantileBinner::fit(&d.x, 64);
    let bins = binner.transform(&d.x);
    let data = BinnedMatrix {
        bins: &bins,
        cols: d.n_features(),
        binner: &binner,
    };
    let layout = HistLayout::for_gbt(&binner);
    let n = d.n_samples();
    let rows: Vec<u32> = (0..n as u32).collect();
    let grad: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    let hess = vec![1.0; n];

    let mut group = c.benchmark_group("hist_kernels");
    group.throughput(Throughput::Elements((n * d.n_features()) as u64));
    let mut arena = vec![0.0; layout.stats_len()];
    group.bench_function("accumulate_gh_20k_rows", |b| {
        b.iter(|| {
            arena.iter_mut().for_each(|v| *v = 0.0);
            hist::accumulate_gh(&layout, &data, &rows, &grad, &hess, &mut arena);
            std::hint::black_box(arena.last().copied())
        })
    });
    let child: Vec<f64> = arena.iter().map(|v| v * 0.5).collect();
    group.bench_function("sibling_subtract", |b| {
        b.iter(|| {
            let mut parent = arena.clone();
            hist::subtract(&mut parent, &child);
            std::hint::black_box(parent.last().copied())
        })
    });
    group.finish();

    let mut group = c.benchmark_group("tree_build");
    group.sample_size(20);
    group.bench_function("gbt_tree_20k_rows_depth9", |b| {
        let params = TreeParams {
            max_depth: 9,
            min_child_weight: 2.0,
            colsample: 0.9,
            ..TreeParams::default()
        };
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(17);
            build_gbt_tree(
                std::hint::black_box(&data),
                rows.clone(),
                &grad,
                &hess,
                &params,
                &mut rng,
            )
        })
    });
    group.finish();
}

/// Inference: the reference per-row enum-tree traversal vs the compiled
/// f64 flat-ensemble engine vs the quantized bin-indexed engine (what
/// `predict` routes to), for single-row latency and batched throughput.
/// Build with `--features simd` to route the quantized entries through
/// the AVX2 kernels.
fn bench_inference(c: &mut Criterion) {
    let train = synthetic(5_000, 21, 4, 5);
    let gbt = GbtRegressor::fit(&train, GbtParams::default()).expect("fit");
    let forest = ForestRegressor::fit(&train, ForestParams::default()).expect("fit");
    // Build every engine outside the timed region: serving steady-state
    // is what the scheduler bridge and CV loops see after the first call.
    gbt.compiled();
    gbt.quantized();
    forest.compiled();
    forest.quantized();

    // Per-call latency distribution for the serving path, measured through
    // the telemetry histogram (criterion reports means; tail latency is
    // what the micro-batching server's deadline arithmetic cares about).
    single_row_latency_histogram(&gbt, &forest);

    let one = synthetic(1, 21, 4, 6);
    let mut group = c.benchmark_group("inference_single_row");
    group.bench_function("gbt_reference", |b| {
        b.iter(|| gbt.predict_reference(std::hint::black_box(&one.x)))
    });
    group.bench_function("gbt_f64_compiled", |b| {
        b.iter(|| gbt.compiled().predict(std::hint::black_box(&one.x)))
    });
    group.bench_function("gbt_quantized", |b| {
        b.iter(|| gbt.predict(std::hint::black_box(&one.x)))
    });
    group.bench_function("forest_reference", |b| {
        b.iter(|| forest.predict_reference(std::hint::black_box(&one.x)))
    });
    group.bench_function("forest_f64_compiled", |b| {
        b.iter(|| forest.compiled().predict(std::hint::black_box(&one.x)))
    });
    group.bench_function("forest_quantized", |b| {
        b.iter(|| forest.predict(std::hint::black_box(&one.x)))
    });
    group.finish();

    for rows in [5_000usize, 20_000] {
        let batch = synthetic(rows, 21, 4, 7);
        let mut group = c.benchmark_group(format!("inference_batch_{rows}"));
        group.sample_size(20);
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_function("gbt_reference", |b| {
            b.iter(|| gbt.predict_reference(std::hint::black_box(&batch.x)))
        });
        group.bench_function("gbt_f64_compiled", |b| {
            b.iter(|| gbt.compiled().predict(std::hint::black_box(&batch.x)))
        });
        group.bench_function("gbt_quantized", |b| {
            b.iter(|| gbt.predict(std::hint::black_box(&batch.x)))
        });
        group.bench_function("forest_reference", |b| {
            b.iter(|| forest.predict_reference(std::hint::black_box(&batch.x)))
        });
        group.bench_function("forest_f64_compiled", |b| {
            b.iter(|| forest.compiled().predict(std::hint::black_box(&batch.x)))
        });
        group.bench_function("forest_quantized", |b| {
            b.iter(|| forest.predict(std::hint::black_box(&batch.x)))
        });
        group.finish();
    }
}

/// Record 2000 fresh single-row predicts per engine into a telemetry
/// histogram and print p50/p99 (µs). Rows vary per call so the branch
/// history and cache state look like live serving traffic, not a single
/// hot row replayed.
fn single_row_latency_histogram(gbt: &GbtRegressor, forest: &ForestRegressor) {
    let probes = synthetic(2_000, 21, 4, 8);
    let rows: Vec<Matrix> = (0..probes.x.rows())
        .map(|i| Matrix::from_rows(&[probes.x.row(i).to_vec()]))
        .collect();
    let time_all = |f: &dyn Fn(&Matrix) -> Matrix| {
        let mut hist = mphpc_telemetry::HistSummary::new();
        let mut sink = 0.0;
        for x in &rows {
            let t0 = std::time::Instant::now();
            sink += f(x).get(0, 0);
            hist.record(t0.elapsed().as_secs_f64() * 1e6);
        }
        std::hint::black_box(sink);
        hist
    };
    let gbt_ref = time_all(&|x| gbt.predict_reference(x).expect("predict"));
    let gbt_q = time_all(&|x| gbt.predict(x).expect("predict"));
    let forest_ref = time_all(&|x| forest.predict_reference(x).expect("predict"));
    let forest_q = time_all(&|x| forest.predict(x).expect("predict"));
    for (name, hist) in [
        ("gbt_reference", gbt_ref),
        ("gbt_quantized", gbt_q),
        ("forest_reference", forest_ref),
        ("forest_quantized", forest_q),
    ] {
        println!(
            "single_row_latency/{name}: p50 {:.1} µs, p99 {:.1} µs",
            hist.p50(),
            hist.p99()
        );
    }
}

criterion_group!(
    benches,
    bench_binning,
    bench_gbt_rounds,
    bench_forest_and_linear,
    bench_tree_kernels,
    bench_inference
);
criterion_main!(benches);
