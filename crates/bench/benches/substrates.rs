//! Substrate micro-benchmarks and design-choice ablations:
//!
//! * trace-driven vs analytic cache model (the DESIGN.md ablation: the
//!   analytic model is the fast path for very large sweeps);
//! * synthetic trace generation (Fenwick-backed LRU stack);
//! * profiler run cost (one dataset cell);
//! * parallel map scaling of the collection driver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mphpc_archsim::cache::CacheSimulator;
use mphpc_archsim::machine::quartz;
use mphpc_archsim::noise::rng_for;
use mphpc_archsim::trace::{TraceGenerator, DEFAULT_TRACE_LEN};
use mphpc_archsim::LocalityProfile;
use mphpc_profiler::profile_run;
use mphpc_workloads::{AppKind, InputConfig, RunSpec, Scale};

fn profile() -> LocalityProfile {
    LocalityProfile {
        working_set_bytes: 2.0e8,
        theta: 0.6,
        streaming: 0.25,
    }
}

fn bench_cache_models(c: &mut Criterion) {
    let cpu = quartz().cpu;
    let mut group = c.benchmark_group("cache_model_ablation");
    group.throughput(Throughput::Elements(DEFAULT_TRACE_LEN as u64));
    group.bench_function("trace_driven", |b| {
        let mut sim = CacheSimulator::new();
        let mut rng = rng_for(1, &[]);
        b.iter(|| sim.run(&profile(), 0.25, &cpu, 36, &mut rng))
    });
    group.bench_function("analytic", |b| {
        let mut sim = CacheSimulator::analytic();
        let mut rng = rng_for(1, &[]);
        b.iter(|| sim.run(&profile(), 0.25, &cpu, 36, &mut rng))
    });
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    for n in [8_192usize, 32_768, 131_072] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut gen = TraceGenerator::new();
            let mut out = Vec::new();
            let mut rng = rng_for(2, &[]);
            b.iter(|| {
                gen.generate_into(&profile(), n, 0.3, 64, &mut rng, &mut out);
                out.len()
            })
        });
    }
    group.finish();
}

fn bench_profiler_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiler");
    group.sample_size(20);
    for (label, app) in [("cpu_app", AppKind::CoMd), ("gpu_app", AppKind::Sw4Lite)] {
        let spec = RunSpec {
            app,
            input: InputConfig::new("-s 3", 1.0),
            scale: Scale::OneNode,
            machine: mphpc_archsim::SystemId::Quartz,
            rep: 0,
        };
        group.bench_function(label, |b| {
            let mut sim = CacheSimulator::new();
            b.iter(|| profile_run(std::hint::black_box(&spec), 7, &mut sim).unwrap())
        });
    }
    group.finish();
}

fn bench_par_map(c: &mut Criterion) {
    let items: Vec<u64> = (0..4096).collect();
    let work = |x: u64| {
        // ~1 µs of arithmetic per item.
        let mut acc = x;
        for i in 0..800 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        acc
    };
    let mut group = c.benchmark_group("par_map_scaling");
    group.throughput(Throughput::Elements(items.len() as u64));
    group.bench_function("sequential", |b| {
        b.iter(|| {
            mphpc_par::par_map_with(&items, mphpc_par::ParConfig::sequential(), |_, &x| work(x))
        })
    });
    group.bench_function("parallel_default", |b| {
        b.iter(|| mphpc_par::par_map(&items, |_, &x| work(x)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache_models,
    bench_trace_generation,
    bench_profiler_run,
    bench_par_map
);
criterion_main!(benches);
