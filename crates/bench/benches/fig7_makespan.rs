//! Criterion bench for the Figs. 7–8 path: the FCFS+EASY discrete-event
//! simulation under each machine-assignment strategy, and its scaling with
//! workload size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mphpc_core::pipeline::{collect, train_predictor, CollectionConfig};
use mphpc_core::schedbridge::templates_from_dataset;
use mphpc_ml::ModelKind;
use mphpc_sched::engine::{simulate, SimConfig};
use mphpc_sched::sample_jobs;
use mphpc_sched::strategy::{
    MachineAssigner, ModelBased, RandomAssign, RoundRobin, UserRoundRobin,
};

fn bench_strategies(c: &mut Criterion) {
    let dataset = collect(&CollectionConfig::small(5, 2, 1, 3)).expect("collection");
    let predictor =
        train_predictor(&dataset, ModelKind::Gbt(Default::default()), 3).expect("train");
    let templates = templates_from_dataset(&dataset, &predictor).expect("templates");
    let jobs = sample_jobs(&templates, 5_000, 0.0, 4).expect("jobs");
    let config = SimConfig::default();

    let mut group = c.benchmark_group("fig7_strategies");
    group.sample_size(10);
    group.throughput(Throughput::Elements(jobs.len() as u64));
    let mk: Vec<(&str, fn() -> Box<dyn MachineAssigner>)> = vec![
        ("round_robin", || Box::new(RoundRobin::new())),
        ("random", || Box::new(RandomAssign::new(9))),
        ("user_rr", || Box::new(UserRoundRobin::new())),
        ("model_based", || Box::new(ModelBased::new())),
    ];
    for (name, make) in mk {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut strategy = make();
                simulate(std::hint::black_box(&jobs), strategy.as_mut(), &config).unwrap()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("sched_engine_scaling");
    group.sample_size(10);
    for n in [1_000usize, 5_000, 20_000] {
        let jobs = sample_jobs(&templates, n, 0.0, 5).expect("jobs");
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &jobs, |b, jobs| {
            b.iter(|| {
                let mut strategy = ModelBased::new();
                simulate(std::hint::black_box(jobs), &mut strategy, &config).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
