//! Shared harness for the experiment binaries and Criterion benches that
//! regenerate every table and figure of the paper.
//!
//! Each binary accepts `--size small|medium|full` (default `medium`),
//! `--seed N` (default 2024), `--fleet N` (default 1: collect the dataset
//! with N storage-coordinated workers, DESIGN.md §16 — the merged CSV is
//! byte-identical to the single-worker one), and
//! `--telemetry off|summary|jsonl|trace` (default `off`; see DESIGN.md
//! §12 — `jsonl` also exports every table a binary prints, so
//! EXPERIMENTS.md numbers are machine-diffable).
//! Datasets are cached as CSV under `target/mphpc-cache/` so repeated
//! experiments don't re-run the collection campaign.
//!
//! | Artifact | Binary |
//! |---|---|
//! | Tables I–III | `exp_tables` |
//! | MP-HPC dataset (§V-D) | `exp_dataset` |
//! | Fig. 2 (model MAE/SOS) + §VIII-A improvement | `exp_models` |
//! | Fig. 3 (per-source-architecture heatmaps) | `exp_arch_ablation` |
//! | Fig. 4 (leave-one-scale-out) | `exp_scale_ablation` |
//! | Fig. 5 (leave-one-application-out) | `exp_app_ablation` |
//! | Fig. 6 (feature importances) | `exp_importance` |
//! | §VI-B top-k retraining | `exp_feature_selection` |
//! | Figs. 7–8 (makespan, bounded slowdown) | `exp_sched` |

use mphpc_core::pipeline::{collect, CollectionConfig};
use mphpc_dataset::MpHpcDataset;
use mphpc_errors::{MphpcError, ResultExt};
use std::path::PathBuf;
use std::process::ExitCode;

/// Run an experiment body, rendering the full error context chain on
/// failure. Experiment binaries exit non-zero with a readable diagnosis
/// instead of panicking when the pipeline rejects their inputs.
pub fn run(body: impl FnOnce() -> Result<(), MphpcError>) -> ExitCode {
    let result = body();
    // Flush whatever telemetry the body recorded even when it failed —
    // a partial trace of a failing experiment is exactly what you want.
    mphpc_telemetry::flush(&bin_name());
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{}", e.render_chain());
            ExitCode::FAILURE
        }
    }
}

/// The running binary's file stem (`exp_models`), for telemetry artifact
/// names.
fn bin_name() -> String {
    std::env::args()
        .next()
        .as_deref()
        .map(std::path::Path::new)
        .and_then(|p| p.file_stem()?.to_str().map(str::to_string))
        .unwrap_or_else(|| "exp".to_string())
}

/// Campaign size selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpSize {
    /// 6 apps × 2 inputs × 2 reps: seconds, for smoke runs.
    Small,
    /// All 20 apps × 3 inputs × 2 reps: the default.
    Medium,
    /// The paper-scale campaign (≈11.3k rows).
    Full,
}

impl ExpSize {
    /// Parse from a CLI word.
    pub fn parse(word: &str) -> Option<ExpSize> {
        match word {
            "small" => Some(ExpSize::Small),
            "medium" => Some(ExpSize::Medium),
            "full" => Some(ExpSize::Full),
            _ => None,
        }
    }

    /// Collection configuration for this size.
    pub fn config(self, seed: u64) -> CollectionConfig {
        match self {
            ExpSize::Small => CollectionConfig::small(6, 2, 2, seed),
            ExpSize::Medium => CollectionConfig {
                apps: None,
                inputs_per_app: Some(3),
                reps: 2,
                seed,
            },
            ExpSize::Full => CollectionConfig::full(seed),
        }
    }

    fn cache_tag(self) -> &'static str {
        match self {
            ExpSize::Small => "small",
            ExpSize::Medium => "medium",
            ExpSize::Full => "full",
        }
    }
}

/// Parsed common CLI options.
#[derive(Debug, Clone, Copy)]
pub struct ExpArgs {
    /// Campaign size.
    pub size: ExpSize,
    /// Base seed.
    pub seed: u64,
    /// Collection workers (`--fleet N`): 1 = single-process pipeline,
    /// N > 1 = storage-coordinated fleet (DESIGN.md §16). The merged
    /// dataset is byte-identical either way, so every cached artifact and
    /// downstream number is unaffected by the choice.
    pub fleet: usize,
}

impl ExpArgs {
    /// Parse `--size` / `--seed` / `--fleet` / `--telemetry` from
    /// `std::env::args`; exits with a usage message on bad input. The
    /// telemetry mode is applied process-wide as a side effect, so
    /// instrumentation is live before the experiment body starts.
    pub fn from_env() -> ExpArgs {
        let mut size = ExpSize::Medium;
        let mut seed = 2024u64;
        let mut fleet = 1usize;
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--size" => {
                    i += 1;
                    size = args
                        .get(i)
                        .and_then(|w| ExpSize::parse(w))
                        .unwrap_or_else(|| usage());
                }
                "--seed" => {
                    i += 1;
                    seed = args
                        .get(i)
                        .and_then(|w| w.parse().ok())
                        .unwrap_or_else(|| usage());
                }
                "--fleet" => {
                    i += 1;
                    fleet = args
                        .get(i)
                        .and_then(|w| w.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage());
                }
                "--telemetry" => {
                    i += 1;
                    let mode = args
                        .get(i)
                        .and_then(|w| mphpc_telemetry::TelemetryMode::parse(w))
                        .unwrap_or_else(|| usage());
                    mphpc_telemetry::set_mode(mode);
                }
                "--help" | "-h" => usage(),
                _ => usage(),
            }
            i += 1;
        }
        ExpArgs { size, seed, fleet }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: <exp> [--size small|medium|full] [--seed N] [--fleet N] \
         [--telemetry off|summary|jsonl|trace]"
    );
    std::process::exit(2);
}

fn cache_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(target).join("mphpc-cache")
}

/// Build (or load from cache) the dataset for the given size/seed.
pub fn load_or_build_dataset(args: ExpArgs) -> Result<MpHpcDataset, MphpcError> {
    let dir = cache_dir();
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join(format!("mphpc_{}_{}.csv", args.size.cache_tag(), args.seed));
    if path.exists() {
        match MpHpcDataset::read_csv(&path) {
            Ok(d) => {
                eprintln!("[cache] loaded {} rows from {}", d.n_rows(), path.display());
                return Ok(d);
            }
            Err(e) => eprintln!("[cache] ignoring stale cache ({e})"),
        }
    }
    eprintln!(
        "[collect] building {:?} dataset (seed {}, {} worker{}) ...",
        args.size,
        args.seed,
        args.fleet,
        if args.fleet == 1 { "" } else { "s" }
    );
    let start = std::time::Instant::now();
    let dataset = if args.fleet > 1 {
        collect_fleet(&args.size.config(args.seed), args.fleet, &path)?
    } else {
        let d = collect(&args.size.config(args.seed)).context("building the experiment dataset")?;
        // Cache write is best-effort: a read-only target dir only costs a
        // rebuild next run.
        d.write_csv(&path).ok();
        d
    };
    eprintln!(
        "[collect] {} rows in {:.1}s",
        dataset.n_rows(),
        start.elapsed().as_secs_f64()
    );
    Ok(dataset)
}

/// Collect via a storage-coordinated worker fleet (DESIGN.md §16): N
/// in-process workers claim shards of the campaign through an ephemeral
/// local store, and the merged CSV — byte-identical to the single-process
/// `collect` rendering — lands at `out`, doubling as the dataset cache.
fn collect_fleet(
    cfg: &CollectionConfig,
    workers: usize,
    out: &std::path::Path,
) -> Result<MpHpcDataset, MphpcError> {
    use mphpc_core::fleet;
    // One shard per worker: shards are equal-sized, so with homogeneous
    // in-process workers finer sharding only adds claim traffic.
    let store_dir = cache_dir().join(format!("fleet-store-{}", std::process::id()));
    std::fs::remove_dir_all(&store_dir).ok();
    let store = mphpc_storage::LocalDirStorage::open(&store_dir)?;
    fleet::fleet_init(
        &store,
        cfg,
        workers,
        std::time::Duration::from_secs(30),
        None,
        0,
    )?;
    let worker_error = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let store = &store;
                s.spawn(move || fleet::fleet_work(store, &format!("t{w}")).map(|_| ()))
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("fleet worker panicked").err())
            .next()
    });
    if let Some(e) = worker_error {
        return Err(e);
    }
    fleet::fleet_merge(&store, Some(out), None)?;
    let dataset = MpHpcDataset::read_csv(out).context("reading back the fleet-merged dataset")?;
    std::fs::remove_dir_all(&store_dir).ok();
    Ok(dataset)
}

/// Print an aligned table: header then rows. The table is also recorded
/// with the telemetry layer, so a `--telemetry jsonl` run exports every
/// stdout table as machine-diffable JSONL.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    mphpc_telemetry::record_table(title, header, rows);
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Render a horizontal ASCII bar chart (the textual rendition of a paper
/// figure): one labelled bar per `(label, value)`, scaled to `width`
/// characters at the maximum value.
pub fn print_bar_chart(title: &str, unit: &str, bars: &[(String, f64)], width: usize) {
    println!("\n== {title} ==");
    let max = bars
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::MIN_POSITIVE, f64::max);
    let label_w = bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, value) in bars {
        let n = ((value / max) * width as f64).round().max(0.0) as usize;
        println!(
            "{label:<label_w$}  {:<width$}  {value:.3} {unit}",
            "█".repeat(n)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_parsing() {
        assert_eq!(ExpSize::parse("small"), Some(ExpSize::Small));
        assert_eq!(ExpSize::parse("full"), Some(ExpSize::Full));
        assert_eq!(ExpSize::parse("bogus"), None);
    }

    #[test]
    fn bar_chart_scales_to_max() {
        // Smoke test: must not panic on zero, tiny, and ordinary values.
        print_bar_chart(
            "t",
            "s",
            &[("a".into(), 0.0), ("bb".into(), 1.0), ("c".into(), 0.5)],
            20,
        );
    }

    #[test]
    fn configs_scale_with_size() {
        let s = ExpSize::Small.config(1).specs().len();
        let m = ExpSize::Medium.config(1).specs().len();
        let f = ExpSize::Full.config(1).specs().len();
        assert!(s < m && m < f);
    }
}
