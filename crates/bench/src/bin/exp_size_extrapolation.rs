//! Extension: problem-size extrapolation. Hold out every application's
//! largest inputs and ask the model to predict RPVs for problem sizes it
//! never saw — the deployment case where a user scales up a familiar code.

use mphpc_bench::{load_or_build_dataset, print_table, ExpArgs};
use mphpc_dataset::split::{random_split, size_split};
use mphpc_ml::{mae, same_order_score, ModelKind, Regressor};

fn main() -> std::process::ExitCode {
    mphpc_bench::run(body)
}

fn body() -> Result<(), mphpc_errors::MphpcError> {
    let args = ExpArgs::from_env();
    let dataset = load_or_build_dataset(args)?;
    let kind = ModelKind::Gbt(Default::default());

    let mut rows = Vec::new();
    // Baseline: interpolation (random split) at matched test size.
    {
        let (tr, te) = random_split(&dataset, 0.25, args.seed)?;
        let norm = dataset.fit_normalizer(&tr)?;
        let train = dataset.to_ml(&tr, &norm)?;
        let test = dataset.to_ml(&te, &norm)?;
        let model = kind.fit(&train)?;
        let pred = model.predict(&test.x)?;
        rows.push(vec![
            "random 75/25 (interpolation)".to_string(),
            tr.len().to_string(),
            te.len().to_string(),
            format!("{:.4}", mae(&pred, &test.y)?),
            format!("{:.4}", same_order_score(&pred, &test.y)?),
        ]);
    }
    for holdout in [1usize, 2] {
        let (tr, te) = size_split(&dataset, holdout)?;
        if te.is_empty() {
            continue;
        }
        let norm = dataset.fit_normalizer(&tr)?;
        let train = dataset.to_ml(&tr, &norm)?;
        let test = dataset.to_ml(&te, &norm)?;
        let model = kind.fit(&train)?;
        let pred = model.predict(&test.x)?;
        rows.push(vec![
            format!("hold out largest {holdout} input(s)"),
            tr.len().to_string(),
            te.len().to_string(),
            format!("{:.4}", mae(&pred, &test.y)?),
            format!("{:.4}", same_order_score(&pred, &test.y)?),
        ]);
    }
    print_table(
        "Extension — problem-size extrapolation (XGBoost)",
        &["split", "train rows", "test rows", "MAE", "SOS"],
        &rows,
    );
    println!("\nexpected: extrapolating to unseen sizes costs accuracy vs interpolation, but the");
    println!("size-invariant intensity features keep the ordering (SOS) largely intact");
    Ok(())
}
