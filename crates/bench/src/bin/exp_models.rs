//! Fig. 2 + §VIII-A: MAE and Same-Order Score for every model family on a
//! 90-10 split with 5-fold cross-validation, plus the headline improvement
//! of XGBoost over the mean predictor (the paper reports 81.6 %).

use mphpc_bench::{load_or_build_dataset, print_bar_chart, print_table, ExpArgs};
use mphpc_core::pipeline::evaluate_models;
use mphpc_ml::ModelKind;

fn main() -> std::process::ExitCode {
    mphpc_bench::run(body)
}

fn body() -> Result<(), mphpc_errors::MphpcError> {
    let args = ExpArgs::from_env();
    let dataset = load_or_build_dataset(args)?;
    let evals = evaluate_models(&dataset, &ModelKind::paper_lineup(), args.seed)?;

    let rows: Vec<Vec<String>> = evals
        .iter()
        .map(|e| {
            let per_output = e
                .test_r2_per_output
                .iter()
                .map(|v| format!("{v:.3}"))
                .collect::<Vec<_>>()
                .join("/");
            vec![
                e.model.clone(),
                format!("{:.4}", e.test_mae),
                format!("{:.4}", e.test_sos),
                format!("{:.4}", e.test_r2),
                per_output,
                format!("{:.4}", e.cv.mean_mae),
                format!("{:.4}", e.cv.mean_sos),
            ]
        })
        .collect();
    print_table(
        "Fig. 2 — model comparison (90-10 split, 5-fold CV)",
        &[
            "model",
            "test MAE",
            "test SOS",
            "test R²",
            "R² Q/R/L/C",
            "cv MAE",
            "cv SOS",
        ],
        &rows,
    );

    print_bar_chart(
        "Fig. 2 (left) — MAE (lower is better)",
        "MAE",
        &evals
            .iter()
            .map(|e| (e.model.clone(), e.test_mae))
            .collect::<Vec<_>>(),
        60,
    );
    print_bar_chart(
        "Fig. 2 (right) — Same-Order Score (higher is better)",
        "SOS",
        &evals
            .iter()
            .map(|e| (e.model.clone(), e.test_sos))
            .collect::<Vec<_>>(),
        60,
    );

    let mean = evals.iter().find(|e| e.model == "Mean").ok_or_else(|| {
        mphpc_errors::MphpcError::InvalidArgument("lineup is missing the Mean baseline".into())
    })?;
    let gbt = evals.iter().find(|e| e.model == "XGBoost").ok_or_else(|| {
        mphpc_errors::MphpcError::InvalidArgument("lineup is missing XGBoost".into())
    })?;
    let improvement = 100.0 * (mean.test_mae - gbt.test_mae) / mean.test_mae;
    println!(
        "\nXGBoost MAE {:.4} vs mean-prediction {:.4}: {:.1}% improvement (paper: 81.6%)",
        gbt.test_mae, mean.test_mae, improvement
    );
    println!(
        "XGBoost SOS {:.3} (paper: 0.86); MAE target shape: XGBoost < Forest < Linear < Mean",
        gbt.test_sos
    );
    Ok(())
}
