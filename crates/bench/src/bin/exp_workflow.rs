//! Extension: workflow (DAG) scheduling — the paper's motivating use case
//! ("scientific workloads ... expressed as workflows with sets of
//! computational tasks and dependencies between them"). Fork-join
//! workflows are sampled from the dataset and scheduled under each
//! strategy; placement errors now propagate along the critical path, so
//! the per-workflow turnaround separates the strategies more sharply than
//! independent jobs do.

use mphpc_bench::{load_or_build_dataset, print_table, ExpArgs, ExpSize};
use mphpc_core::pipeline::train_predictor;
use mphpc_core::schedbridge::{
    run_workflow_comparison, templates_from_dataset, workflows_from_templates,
};
use mphpc_ml::ModelKind;

fn main() -> std::process::ExitCode {
    mphpc_bench::run(body)
}

fn body() -> Result<(), mphpc_errors::MphpcError> {
    let args = ExpArgs::from_env();
    let dataset = load_or_build_dataset(args)?;
    let predictor = train_predictor(&dataset, ModelKind::Gbt(Default::default()), args.seed)?;
    let templates = templates_from_dataset(&dataset, &predictor)?;

    let n_workflows = match args.size {
        ExpSize::Small => 300,
        ExpSize::Medium => 1_000,
        ExpSize::Full => 4_000,
    };
    let width = 4; // source → 4 parallel tasks → sink
                   // Open system: workflows trickle in rather than forming a backlog, so
                   // per-workflow turnaround reflects placement quality.
    let rate = 0.2;
    eprintln!(
        "[workflow] {n_workflows} fork-join workflows of {} tasks ...",
        width + 2
    );
    let workflows = workflows_from_templates(&templates, n_workflows, width, rate, args.seed)?;
    let outcomes = run_workflow_comparison(&workflows)?;

    let user = outcomes
        .iter()
        .find(|o| o.strategy == "User+RR")
        .ok_or_else(|| {
            mphpc_errors::MphpcError::Simulation("comparison lost the User+RR baseline".into())
        })?
        .mean_workflow_span;
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.strategy.clone(),
                format!("{:.1} s", o.mean_workflow_span),
                format!("{:+.1}%", 100.0 * (o.mean_workflow_span - user) / user),
                format!("{:.3} h", o.makespan / 3600.0),
            ]
        })
        .collect();
    print_table(
        "Extension — workflow scheduling (fork-join DAGs)",
        &[
            "strategy",
            "mean workflow turnaround",
            "vs User+RR",
            "makespan",
        ],
        &rows,
    );
    println!("\nexpected: Model-based ≈ Oracle < User+RR < Round-Robin/Random on turnaround;");
    println!("errors compound along the DAG's critical path, amplifying placement quality");
    Ok(())
}
