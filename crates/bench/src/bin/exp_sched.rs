//! Figs. 7–8: the multi-resource scheduling simulation. 50,000 jobs
//! sampled with replacement from the dataset, scheduled with FCFS + EASY
//! under each machine-assignment strategy; reports makespan and average
//! bounded slowdown. The paper's shape: Model-based best, then User+RR,
//! then Round-Robin and Random; Model-based improves makespan by up to
//! ~20 %.

use mphpc_bench::{load_or_build_dataset, print_bar_chart, print_table, ExpArgs, ExpSize};
use mphpc_core::pipeline::train_predictor;
use mphpc_core::schedbridge::{run_strategy_comparison, templates_from_dataset};
use mphpc_ml::ModelKind;

fn main() -> std::process::ExitCode {
    mphpc_bench::run(body)
}

fn body() -> Result<(), mphpc_errors::MphpcError> {
    let args = ExpArgs::from_env();
    let dataset = load_or_build_dataset(args)?;
    let predictor = train_predictor(&dataset, ModelKind::Gbt(Default::default()), args.seed)?;
    let templates = templates_from_dataset(&dataset, &predictor)?;

    let n_jobs = match args.size {
        ExpSize::Small => 5_000,
        ExpSize::Medium => 20_000,
        ExpSize::Full => 50_000,
    };
    eprintln!("[sched] simulating {n_jobs} jobs × 5 strategies ...");
    let outcomes = run_strategy_comparison(&templates, n_jobs, 0.0, args.seed)?;

    let user_rr = outcomes
        .iter()
        .find(|o| o.strategy == "User+RR")
        .ok_or_else(|| {
            mphpc_errors::MphpcError::Simulation("comparison lost the User+RR baseline".into())
        })?
        .makespan;
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.strategy.clone(),
                format!("{:.3} h", o.makespan / 3600.0),
                format!("{:+.1}%", 100.0 * (o.makespan - user_rr) / user_rr),
                format!("{:.2}", o.avg_bounded_slowdown),
                format!("{:?}", o.jobs_per_machine),
            ]
        })
        .collect();
    print_table(
        "Figs. 7–8 — scheduling strategies (makespan, bounded slowdown)",
        &[
            "strategy",
            "makespan",
            "vs User+RR",
            "avg bounded slowdown",
            "jobs/machine [Q,R,L,C]",
        ],
        &rows,
    );
    print_bar_chart(
        "Fig. 7 — makespan (lower is better)",
        "h",
        &outcomes
            .iter()
            .map(|o| (o.strategy.clone(), o.makespan / 3600.0))
            .collect::<Vec<_>>(),
        60,
    );
    print_bar_chart(
        "Fig. 8 — average bounded slowdown (lower is better)",
        "",
        &outcomes
            .iter()
            .map(|o| (o.strategy.clone(), o.avg_bounded_slowdown))
            .collect::<Vec<_>>(),
        60,
    );
    println!("\npaper shape: Model-based < User+RR < Round-Robin ≈ Random (Model-based up to ~20% better)");
    Ok(())
}
