//! Million-job scheduling at scale (DESIGN.md §18): the Figs. 7–8
//! experiment at 20× the paper's 50,000-job workload, run through the
//! calendar-queue + incremental-EASY scale engine with RPVs predicted
//! *inline* — batched lookups at simulation decision points instead of a
//! precomputed template table.
//!
//! Modes:
//! - `--engine scale` (default): the scale engine with a local in-process
//!   predictor behind the batched lookup interface.
//! - `--engine both`: additionally run the reference engine on the same
//!   workload and assert the schedules are bit-identical (makespan,
//!   slowdown, placement — the scale engine is a faster replay of the
//!   same schedule, not an approximation of it).
//! - `--federate`: answer RPV lookups over live HTTP from an `mphpc
//!   serve` endpoint (an ephemeral in-process one unless `--addr` points
//!   elsewhere), with bounded in-flight pipelining, per-lookup latency
//!   accounting, and graceful degradation to the local predictor.
//!
//! `--jsonl PATH` appends one machine-readable line per strategy run, the
//! artifact CI uploads.

use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mphpc_bench::{load_or_build_dataset, print_table, ExpArgs, ExpSize};
use mphpc_core::pipeline::train_predictor;
use mphpc_core::schedbridge::{
    run_scale_comparison, run_strategy_comparison, templates_from_dataset,
    templates_from_dataset_raw, PredictorRpv, ScaleOutcome,
};
use mphpc_core::serving::{predictor_loader, ServedPredictor};
use mphpc_errors::MphpcError;
use mphpc_ml::ModelKind;
use mphpc_sched::{FederatedRpv, FederationStats};
use mphpc_serve::{serve, ModelRegistry, PredictModel, ServeConfig};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    Scale,
    Both,
}

#[derive(Debug, Clone)]
struct Args {
    jobs: usize,
    rate: f64,
    seed: u64,
    size: ExpSize,
    engine: Engine,
    federate: bool,
    addr: Option<String>,
    timeout_ms: u64,
    inflight: usize,
    jsonl: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: exp_sched_scale [--jobs N] [--rate JOBS_PER_SEC] [--seed N]\n\
         \x20                      [--size small|medium|full] [--engine scale|both]\n\
         \x20                      [--federate] [--addr HOST:PORT] [--timeout-ms N]\n\
         \x20                      [--inflight N] [--jsonl PATH]\n\
         \x20                      [--telemetry off|summary|jsonl|trace]\n\
         \n\
         --jobs      workload size (default 1000000 — Figs. 7–8 @ 20x)\n\
         --rate      Poisson arrival rate; 0 = saturated backlog (default 0)\n\
         --engine    'both' also runs the reference engine and asserts\n\
         \x20          bit-identical outcomes (use a smaller --jobs)\n\
         --federate  answer RPV lookups from a live serving endpoint; an\n\
         \x20          ephemeral in-process server is started unless --addr\n\
         --jsonl     append one JSON line per strategy run to PATH"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        jobs: 1_000_000,
        rate: 0.0,
        seed: 2024,
        size: ExpSize::Medium,
        engine: Engine::Scale,
        federate: false,
        addr: None,
        timeout_ms: 2_000,
        inflight: 32,
        jsonl: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    // `next!` consumes the flag's value operand.
    macro_rules! next {
        () => {{
            i += 1;
            argv.get(i).unwrap_or_else(|| usage())
        }};
    }
    while i < argv.len() {
        match argv[i].as_str() {
            "--jobs" => out.jobs = next!().parse().unwrap_or_else(|_| usage()),
            "--rate" => out.rate = next!().parse().unwrap_or_else(|_| usage()),
            "--seed" => out.seed = next!().parse().unwrap_or_else(|_| usage()),
            "--size" => out.size = ExpSize::parse(next!()).unwrap_or_else(|| usage()),
            "--engine" => {
                out.engine = match next!().as_str() {
                    "scale" => Engine::Scale,
                    "both" => Engine::Both,
                    _ => usage(),
                }
            }
            "--federate" => out.federate = true,
            "--addr" => out.addr = Some(next!().clone()),
            "--timeout-ms" => out.timeout_ms = next!().parse().unwrap_or_else(|_| usage()),
            "--inflight" => {
                out.inflight = next!().parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| usage())
            }
            "--jsonl" => out.jsonl = Some(next!().clone()),
            "--telemetry" => {
                let mode = mphpc_telemetry::TelemetryMode::parse(next!()).unwrap_or_else(|| usage());
                mphpc_telemetry::set_mode(mode);
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    if out.jobs == 0 {
        usage();
    }
    out
}

fn main() -> std::process::ExitCode {
    mphpc_bench::run(body)
}

fn body() -> Result<(), MphpcError> {
    let args = parse_args();
    let exp_args = ExpArgs {
        size: args.size,
        seed: args.seed,
        fleet: 1,
    };
    let dataset = load_or_build_dataset(exp_args)?;
    let predictor = train_predictor(&dataset, ModelKind::Gbt(Default::default()), args.seed)?;
    let (templates, features) = templates_from_dataset_raw(&dataset)?;
    eprintln!(
        "[scale] {} jobs sampled from {} templates, rate {}/s, seed {}",
        args.jobs,
        templates.len(),
        args.rate,
        args.seed
    );

    // An ephemeral serving endpoint when federating without --addr. Kept
    // alive until the runs finish; jobs keep completing locally if it
    // dies — that is the degradation path, not a failure.
    let mut server = None;
    let addr = if args.federate {
        match &args.addr {
            Some(a) => Some(a.clone()),
            None => {
                let model =
                    Arc::new(ServedPredictor::new(predictor.clone())) as Arc<dyn PredictModel>;
                let registry = Arc::new(ModelRegistry::new(predictor_loader()));
                registry.install("default", model);
                let handle = serve(ServeConfig::default(), registry)?;
                let a = handle.addr().to_string();
                eprintln!("[serve] ephemeral predictor endpoint on {a}");
                server = Some(handle);
                Some(a)
            }
        }
    } else {
        None
    };

    let started = Instant::now();
    let (outcomes, federation) = if let Some(addr) = &addr {
        let mut provider = FederatedRpv::new(
            addr,
            "default",
            Duration::from_millis(args.timeout_ms),
            args.inflight,
            Box::new(PredictorRpv::new(&predictor)),
        );
        let outcomes = run_scale_comparison(
            &templates,
            &features,
            &mut provider,
            args.jobs,
            args.rate,
            args.seed,
        )?;
        (outcomes, Some(provider.stats()))
    } else {
        let mut provider = PredictorRpv::new(&predictor);
        let outcomes = run_scale_comparison(
            &templates,
            &features,
            &mut provider,
            args.jobs,
            args.rate,
            args.seed,
        )?;
        (outcomes, None)
    };
    let scale_wall = started.elapsed().as_secs_f64();

    print_scale_table(&outcomes, args.jobs);
    if let Some(stats) = &federation {
        print_federation(stats);
    }
    eprintln!(
        "[scale] 5 strategies x {} jobs in {scale_wall:.1}s wall",
        args.jobs
    );

    if args.engine == Engine::Both {
        eprintln!("[reference] re-running the workload through the reference engine ...");
        let enriched = templates_from_dataset(&dataset, &predictor)?;
        let t0 = Instant::now();
        let reference = run_strategy_comparison(&enriched, args.jobs, args.rate, args.seed)?;
        let ref_wall = t0.elapsed().as_secs_f64();
        for (s, r) in outcomes.iter().zip(&reference) {
            if s.outcome != *r {
                return Err(MphpcError::Simulation(format!(
                    "engines diverged on {}: scale {:?} vs reference {:?}",
                    r.strategy, s.outcome, r
                )));
            }
        }
        println!(
            "\nbit-identity: scale engine == reference engine on all 5 strategies \
             ({} jobs); wall {:.1}s vs {:.1}s ({:.2}x)",
            args.jobs,
            scale_wall,
            ref_wall,
            ref_wall / scale_wall.max(1e-9)
        );
    }

    if let Some(path) = &args.jsonl {
        write_jsonl(path, &args, &outcomes, federation.as_ref(), scale_wall)?;
        eprintln!("[jsonl] appended {} records to {path}", outcomes.len());
    }
    if let Some(handle) = server {
        handle.shutdown();
        handle.join();
    }
    Ok(())
}

fn print_scale_table(outcomes: &[ScaleOutcome], jobs: usize) {
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.outcome.strategy.clone(),
                format!("{:.3} h", o.outcome.makespan / 3600.0),
                format!("{:.2}", o.outcome.avg_bounded_slowdown),
                format!("{:.1}s", o.wall_secs),
                format!("{}", o.stats.events_dequeued),
                format!(
                    "{}/{}",
                    o.stats.incremental_updates, o.stats.full_rescans
                ),
                format!("{}/{}", o.stats.predict_batches, o.stats.predict_rows),
            ]
        })
        .collect();
    print_table(
        &format!("Figs. 7–8 @ scale — {jobs} jobs, inline-predicted"),
        &[
            "strategy",
            "makespan",
            "avg bdd slowdown",
            "wall",
            "events",
            "incr/full passes",
            "predict batches/rows",
        ],
        &rows,
    );
}

fn print_federation(stats: &FederationStats) {
    print_table(
        "Predictor federation — live serving lookups",
        &[
            "requests",
            "responses",
            "timeouts",
            "fallbacks",
            "mean lookup",
            "max lookup",
            "degraded",
        ],
        &[vec![
            stats.requests.to_string(),
            stats.responses.to_string(),
            stats.timeouts.to_string(),
            stats.fallbacks.to_string(),
            format!("{:.0} us", stats.mean_latency_us()),
            format!("{} us", stats.latency_us_max),
            stats.degraded.to_string(),
        ]],
    );
}

/// One JSON line per strategy run — hand-rendered so the artifact shape
/// is stable regardless of serializer.
fn write_jsonl(
    path: &str,
    args: &Args,
    outcomes: &[ScaleOutcome],
    federation: Option<&FederationStats>,
    scale_wall: f64,
) -> Result<(), MphpcError> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| MphpcError::Storage(format!("open {path}: {e}")))?;
    for o in outcomes {
        let mut line = format!(
            "{{\"exp\":\"sched_scale\",\"jobs\":{},\"rate\":{},\"seed\":{},\
             \"strategy\":\"{}\",\"makespan_s\":{},\"avg_bounded_slowdown\":{},\
             \"wall_s\":{},\"total_wall_s\":{},\"events_enqueued\":{},\
             \"events_dequeued\":{},\"incremental_updates\":{},\"full_rescans\":{},\
             \"reservations\":{},\"backfill_starts\":{},\"predict_batches\":{},\
             \"predict_rows\":{},\"predict_us_total\":{}",
            args.jobs,
            args.rate,
            args.seed,
            o.outcome.strategy,
            o.outcome.makespan,
            o.outcome.avg_bounded_slowdown,
            o.wall_secs,
            scale_wall,
            o.stats.events_enqueued,
            o.stats.events_dequeued,
            o.stats.incremental_updates,
            o.stats.full_rescans,
            o.stats.reservations,
            o.stats.backfill_starts,
            o.stats.predict_batches,
            o.stats.predict_rows,
            o.stats.predict_us_total,
        );
        if let Some(f) = federation {
            line.push_str(&format!(
                ",\"federation\":{{\"requests\":{},\"responses\":{},\"timeouts\":{},\
                 \"fallbacks\":{},\"mean_lookup_us\":{},\"degraded\":{}}}",
                f.requests,
                f.responses,
                f.timeouts,
                f.fallbacks,
                f.mean_latency_us(),
                f.degraded,
            ));
        }
        line.push_str("}\n");
        file.write_all(line.as_bytes())
            .map_err(|e| MphpcError::Storage(format!("write {path}: {e}")))?;
    }
    Ok(())
}
