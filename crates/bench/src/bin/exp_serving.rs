//! Serving-path experiment (DESIGN.md §13): micro-batching throughput at
//! 32 concurrent closed-loop clients versus a batch-size-1 server
//! configuration, on a production-scale forest where inference dominates
//! the request cost.
//!
//! Both servers host the *same* trained model; the only difference is
//! `BatchConfig::max_batch`. The batched config coalesces the concurrent
//! single-row `/predict` requests into one compiled-engine batch call,
//! which amortises the per-request queue hand-off and replaces per-row
//! reference traversal with the blocked SoA kernel — the win recorded in
//! EXPERIMENTS.md ("Micro-batching prediction server").

use std::sync::Arc;
use std::time::{Duration, Instant};

use mphpc_bench::{load_or_build_dataset, print_table, ExpArgs};
use mphpc_core::pipeline::train_predictor;
use mphpc_core::serving::{predictor_loader, ServedPredictor};
use mphpc_errors::MphpcError;
use mphpc_ml::{ForestParams, ModelKind};
use mphpc_serve::client::ClientConn;
use mphpc_serve::json::JsonValue;
use mphpc_serve::{serve, ModelRegistry, PredictModel, ServeConfig};

const CLIENTS: usize = 32;
const DURATION: Duration = Duration::from_secs(2);
/// Big enough that inference, not HTTP handling, is the bottleneck even
/// on a single hardware thread — the regime micro-batching exists for.
const SERVE_TREES: usize = 2400;

fn main() -> std::process::ExitCode {
    mphpc_bench::run(body)
}

struct RunResult {
    label: &'static str,
    ok: u64,
    rejected: u64,
    errors: u64,
    elapsed: Duration,
    latencies_s: Vec<f64>,
    batch_rows_sum: u64,
}

impl RunResult {
    fn throughput(&self) -> f64 {
        self.ok as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    fn quantile_ms(&self, q: f64) -> f64 {
        if self.latencies_s.is_empty() {
            return f64::NAN;
        }
        let mut sorted = self.latencies_s.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1] * 1e3
    }
}

fn body() -> Result<(), MphpcError> {
    let args = ExpArgs::from_env();
    let dataset = load_or_build_dataset(args)?;
    eprintln!("[train] forest with {SERVE_TREES} trees ...");
    let params = ForestParams {
        n_trees: SERVE_TREES,
        ..Default::default()
    };
    let predictor = train_predictor(&dataset, ModelKind::Forest(params), args.seed)?;
    let model = Arc::new(ServedPredictor::new(predictor)) as Arc<dyn PredictModel>;

    let mut results = Vec::new();
    for (label, max_batch) in [("micro-batched (64)", 64usize), ("batch-size 1", 1)] {
        let registry = Arc::new(ModelRegistry::new(predictor_loader()));
        registry.install("default", Arc::clone(&model));
        let mut cfg = ServeConfig {
            shards: 1,
            ..Default::default()
        };
        cfg.batch.max_batch = max_batch;
        let handle = serve(cfg, registry)?;
        let addr = handle.addr().to_string();
        eprintln!("[serve] {label} on {addr}, {CLIENTS} clients for {DURATION:?} ...");
        let result = drive_clients(label, &addr)?;
        handle.shutdown();
        let stats = handle.join();
        if stats.failed > 0 {
            return Err(MphpcError::Serve(format!(
                "{label}: {} model-side failures during the run",
                stats.failed
            )));
        }
        results.push(result);
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                format!("{:.0}", r.throughput()),
                format!("{:.1}", r.batch_rows_sum as f64 / r.ok.max(1) as f64),
                format!("{:.3}", r.quantile_ms(0.50)),
                format!("{:.3}", r.quantile_ms(0.95)),
                format!("{:.3}", r.quantile_ms(0.99)),
                r.ok.to_string(),
                r.rejected.to_string(),
                r.errors.to_string(),
            ]
        })
        .collect();
    print_table(
        "Serving — micro-batching vs batch-size 1 (32 closed-loop clients)",
        &[
            "config",
            "rps",
            "rows/batch",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "ok",
            "503",
            "errors",
        ],
        &rows,
    );
    let speedup = results[0].throughput() / results[1].throughput().max(1e-9);
    println!("micro-batching speedup: {speedup:.2}x");
    Ok(())
}

#[derive(Default)]
struct ClientTotals {
    ok: u64,
    rejected: u64,
    errors: u64,
    latencies_s: Vec<f64>,
    batch_rows: u64,
}

/// Closed-loop load: every client holds one keep-alive connection and
/// issues the next request as soon as the previous answer lands — the
/// same shape as `mphpc_loadgen`.
fn drive_clients(label: &'static str, addr: &str) -> Result<RunResult, MphpcError> {
    let n_features = discover_n_features(addr)?;
    let started = Instant::now();
    let per_client: Vec<ClientTotals> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| scope.spawn(move || one_client(c, addr, n_features, started)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();

    let mut result = RunResult {
        label,
        ok: 0,
        rejected: 0,
        errors: 0,
        elapsed,
        latencies_s: Vec::new(),
        batch_rows_sum: 0,
    };
    for totals in per_client {
        result.ok += totals.ok;
        result.rejected += totals.rejected;
        result.errors += totals.errors;
        result.latencies_s.extend(totals.latencies_s);
        result.batch_rows_sum += totals.batch_rows;
    }
    if result.ok == 0 {
        return Err(MphpcError::Serve(format!(
            "{label}: no successful request in {elapsed:?}"
        )));
    }
    Ok(result)
}

fn one_client(c: usize, addr: &str, n_features: usize, started: Instant) -> ClientTotals {
    let mut totals = ClientTotals::default();
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ ((c as u64) << 32);
    let Ok(mut conn) = ClientConn::connect(addr, Duration::from_secs(10)) else {
        totals.errors = 1;
        return totals;
    };
    while started.elapsed() < DURATION {
        let body = row_body(&mut state, n_features);
        let t0 = Instant::now();
        match conn.request("POST", "/predict", &body) {
            Ok(resp) if resp.status == 200 => {
                totals.ok += 1;
                totals.latencies_s.push(t0.elapsed().as_secs_f64());
                totals.batch_rows += JsonValue::parse(&resp.text())
                    .ok()
                    .and_then(|v| v.get("batch_rows").and_then(JsonValue::as_f64))
                    .unwrap_or(1.0) as u64;
            }
            Ok(resp) if resp.status == 503 => {
                totals.rejected += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
            Ok(_) => totals.errors += 1,
            Err(_) => {
                totals.errors += 1;
                match ClientConn::connect(addr, Duration::from_secs(10)) {
                    Ok(c2) => conn = c2,
                    Err(_) => break,
                }
            }
        }
    }
    totals
}

fn discover_n_features(addr: &str) -> Result<usize, MphpcError> {
    let resp =
        mphpc_serve::client::request_once(addr, "GET", "/models", "", Duration::from_secs(10))
            .map_err(|e| MphpcError::Serve(format!("GET /models failed: {e}")))?;
    let listing = JsonValue::parse(&resp.text())
        .map_err(|e| MphpcError::Serve(format!("bad /models body: {e}")))?;
    listing
        .get("models")
        .and_then(JsonValue::as_array)
        .and_then(|m| m.first())
        .and_then(|m| m.get("n_features"))
        .and_then(JsonValue::as_f64)
        .map(|v| v as usize)
        .ok_or_else(|| MphpcError::Serve("no model advertised by /models".to_string()))
}

/// Deterministic per-client feature rows (splitmix64), kept in the
/// feature ranges the model saw in training closely enough to exercise
/// real tree paths.
fn row_body(state: &mut u64, n_features: usize) -> String {
    let mut body = String::with_capacity(16 * n_features + 16);
    body.push_str("{\"features\":[");
    for i in 0..n_features {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!("{:.6}", unit * 8.0));
    }
    body.push_str("]}");
    body
}
