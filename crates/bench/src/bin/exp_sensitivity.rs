//! Extension: prediction-accuracy sensitivity of the scheduling gain.
//!
//! The paper shows the Model-based strategy beats the alternatives, with
//! the model at MAE ≈ 0.11. This experiment answers the natural follow-up:
//! *how accurate does the model have to be?* We degrade the trained
//! model's predictions with increasing multiplicative noise and re-run the
//! scheduling simulation, tracing makespan from oracle-grade predictions
//! down to random ones.

use mphpc_archsim::noise::{lognormal_perturb, rng_for};
use mphpc_bench::{load_or_build_dataset, print_table, ExpArgs, ExpSize};
use mphpc_core::pipeline::train_predictor;
use mphpc_core::schedbridge::templates_from_dataset;
use mphpc_ml::ModelKind;
use mphpc_sched::engine::{simulate, SimConfig};
use mphpc_sched::sample_jobs;
use mphpc_sched::strategy::ModelBased;

fn main() -> std::process::ExitCode {
    mphpc_bench::run(body)
}

fn body() -> Result<(), mphpc_errors::MphpcError> {
    let args = ExpArgs::from_env();
    let dataset = load_or_build_dataset(args)?;
    let predictor = train_predictor(&dataset, ModelKind::Gbt(Default::default()), args.seed)?;
    let templates = templates_from_dataset(&dataset, &predictor)?;
    let n_jobs = match args.size {
        ExpSize::Small => 3_000,
        ExpSize::Medium => 10_000,
        ExpSize::Full => 30_000,
    };
    let config = SimConfig::default();

    let mut rows = Vec::new();
    for sigma in [0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        // Perturb the predicted RPVs (not the true runtimes).
        let mut rng = rng_for(args.seed, &[0x5E45, (sigma * 1000.0) as u64]);
        let noisy: Vec<_> = templates
            .iter()
            .map(|t| {
                let mut t = t.clone();
                if let Some(rpv) = &mut t.predicted_rpv {
                    for v in rpv.iter_mut() {
                        *v = lognormal_perturb(*v, sigma, &mut rng);
                    }
                }
                t
            })
            .collect();
        let jobs = sample_jobs(&noisy, n_jobs, 0.0, args.seed)?;
        let mut strategy = ModelBased::new();
        let r = simulate(&jobs, &mut strategy, &config)?;
        rows.push(vec![
            format!("{sigma:.2}"),
            format!("{:.3} h", r.makespan / 3600.0),
            format!("{:.2}", r.avg_bounded_slowdown),
        ]);
    }
    // Limit case: predictions carry no information at all (a fresh random
    // vector per template) — but the strategy stays capacity-aware.
    {
        let mut rng = rng_for(args.seed, &[0xDEAD]);
        let noisy: Vec<_> = templates
            .iter()
            .map(|t| {
                let mut t = t.clone();
                t.predicted_rpv = Some([
                    lognormal_perturb(1.0, 1.5, &mut rng),
                    lognormal_perturb(1.0, 1.5, &mut rng),
                    lognormal_perturb(1.0, 1.5, &mut rng),
                    lognormal_perturb(1.0, 1.5, &mut rng),
                ]);
                t
            })
            .collect();
        let jobs = sample_jobs(&noisy, n_jobs, 0.0, args.seed)?;
        let mut strategy = ModelBased::new();
        let r = simulate(&jobs, &mut strategy, &config)?;
        rows.push(vec![
            "uninformative".to_string(),
            format!("{:.3} h", r.makespan / 3600.0),
            format!("{:.2}", r.avg_bounded_slowdown),
        ]);
    }
    print_table(
        "Extension — makespan vs prediction-noise sigma (Model-based strategy)",
        &["prediction noise σ", "makespan", "avg bounded slowdown"],
        &rows,
    );
    println!(
        "\nreading: under a saturated backlog the scheduler is work-conserving, so placement \
         accuracy barely moves makespan — the gain over User+RR/Random comes from capacity-aware \
         flexibility. Accuracy matters in the open-system regime below."
    );

    // Open system at moderate load: machines are not always full, so the
    // per-job machine choice is real and accuracy shows up in slowdown.
    let rate = match args.size {
        ExpSize::Small => 0.05,
        ExpSize::Medium => 0.15,
        ExpSize::Full => 0.30,
    };
    let mut rows = Vec::new();
    for (label, sigma, uninformative) in [
        ("exact model", 0.0, false),
        ("σ = 0.5", 0.5, false),
        ("σ = 2.0", 2.0, false),
        ("uninformative", 0.0, true),
    ] {
        let mut rng = rng_for(
            args.seed,
            &[0x0BE4, (sigma * 1000.0) as u64, uninformative as u64],
        );
        let noisy: Vec<_> = templates
            .iter()
            .map(|t| {
                let mut t = t.clone();
                if uninformative {
                    t.predicted_rpv = Some([
                        lognormal_perturb(1.0, 1.5, &mut rng),
                        lognormal_perturb(1.0, 1.5, &mut rng),
                        lognormal_perturb(1.0, 1.5, &mut rng),
                        lognormal_perturb(1.0, 1.5, &mut rng),
                    ]);
                } else if let Some(rpv) = &mut t.predicted_rpv {
                    for v in rpv.iter_mut() {
                        *v = lognormal_perturb(*v, sigma, &mut rng);
                    }
                }
                t
            })
            .collect();
        let jobs = sample_jobs(&noisy, n_jobs, rate, args.seed)?;
        let mut strategy = ModelBased::new();
        let r = simulate(&jobs, &mut strategy, &config)?;
        // Mean job response time (wait + run) is where placement quality
        // shows in an open system.
        let mean_response: f64 = r
            .records
            .iter()
            .map(|rec| rec.end - rec.submit)
            .sum::<f64>()
            / r.records.len() as f64;
        rows.push(vec![
            label.to_string(),
            format!("{:.1} s", mean_response),
            format!("{:.2}", r.avg_bounded_slowdown),
        ]);
    }
    print_table(
        &format!("Extension — open system at {rate} jobs/s: accuracy now matters"),
        &["predictions", "mean response time", "avg bounded slowdown"],
        &rows,
    );
    Ok(())
}
