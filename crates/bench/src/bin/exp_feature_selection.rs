//! §VI-B: feature selection — rank features by tree-ensemble gain, keep the
//! top k, retrain every model family, and compare against the full feature
//! set.

use mphpc_bench::{load_or_build_dataset, print_table, ExpArgs};
use mphpc_core::selection::feature_selection_study;

fn main() -> std::process::ExitCode {
    mphpc_bench::run(body)
}

fn body() -> Result<(), mphpc_errors::MphpcError> {
    let args = ExpArgs::from_env();
    let dataset = load_or_build_dataset(args)?;
    let k = 12;
    let report = feature_selection_study(&dataset, k, args.seed)?;

    println!(
        "selected top-{k} features: {}",
        report.selected_features.join(", ")
    );

    let rows: Vec<Vec<String>> = report
        .entries
        .iter()
        .map(|e| {
            vec![
                e.model.clone(),
                format!("{:.4}", e.mae_all_features),
                format!("{:.4}", e.mae_selected),
                format!("{:.4}", e.sos_all_features),
                format!("{:.4}", e.sos_selected),
            ]
        })
        .collect();
    print_table(
        "§VI-B — retraining on selected features",
        &[
            "model",
            "MAE (21 feat)",
            "MAE (top-k)",
            "SOS (21)",
            "SOS (top-k)",
        ],
        &rows,
    );
    println!("\npaper expectation: negligible change for the tree models (selection mostly buys cheaper collection)");
    Ok(())
}
