//! Tables I–III: the system specifications, the application suite, and the
//! feature ↔ per-architecture counter map.

use mphpc_archsim::machine::table1_machines;
use mphpc_bench::print_table;
use mphpc_profiler::{counter_name, CounterId, CounterSide};
use mphpc_workloads::all_apps;

fn main() -> std::process::ExitCode {
    mphpc_bench::run(body)
}

fn body() -> Result<(), mphpc_errors::MphpcError> {
    // Table I.
    let rows: Vec<Vec<String>> = table1_machines()
        .iter()
        .map(|m| {
            let (gpu_type, gpus) = match &m.gpu {
                Some(g) => (g.model.clone(), g.gpus_per_node.to_string()),
                None => ("—".into(), "—".into()),
            };
            vec![
                m.id.name(),
                m.cpu.model.clone(),
                m.cpu.cores_per_node.to_string(),
                format!("{:.1}", m.cpu.clock_ghz),
                gpu_type,
                gpus,
                m.nodes_available.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table I — systems",
        &[
            "System",
            "CPU",
            "cores/node",
            "GHz",
            "GPU",
            "GPUs/node",
            "nodes",
        ],
        &rows,
    );

    // Table II.
    let rows: Vec<Vec<String>> = all_apps()
        .iter()
        .map(|a| {
            vec![
                a.name().to_string(),
                a.spec.description.to_string(),
                if a.spec.gpu { "yes" } else { "no" }.to_string(),
                a.inputs().len().to_string(),
            ]
        })
        .collect();
    print_table(
        "Table II — applications",
        &["Application", "Description", "GPU", "inputs"],
        &rows,
    );
    let gpu_count = all_apps().iter().filter(|a| a.spec.gpu).count();
    println!(
        "{} applications, {gpu_count} with GPU support (paper: 20 / 11)",
        all_apps().len()
    );

    // Table III.
    use mphpc_archsim::SystemId::*;
    let rows: Vec<Vec<String>> = CounterId::ALL
        .iter()
        .map(|&id| {
            let cell = |sys, side| counter_name(id, sys, side).unwrap_or("–").to_string();
            vec![
                id.key().to_string(),
                cell(Quartz, CounterSide::Cpu),
                cell(Ruby, CounterSide::Cpu),
                cell(Lassen, CounterSide::Gpu),
                cell(Corona, CounterSide::Gpu),
            ]
        })
        .collect();
    print_table(
        "Table III — counters per architecture (GPU machines shown with their GPU-side counters)",
        &[
            "canonical",
            "Quartz",
            "Ruby",
            "Lassen (GPU)",
            "Corona (GPU)",
        ],
        &rows,
    );
    Ok(())
}
