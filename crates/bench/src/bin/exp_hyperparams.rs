//! Extension: XGBoost hyper-parameter sweep (rounds × depth × learning
//! rate) on the MP-HPC dataset — the tuning pass the paper performed
//! implicitly when selecting its model.

use mphpc_bench::{load_or_build_dataset, print_table, ExpArgs};
use mphpc_dataset::split::random_split;
use mphpc_ml::tree::TreeParams;
use mphpc_ml::{mae, same_order_score, GbtParams, ModelKind, Regressor};

fn main() -> std::process::ExitCode {
    mphpc_bench::run(body)
}

fn body() -> Result<(), mphpc_errors::MphpcError> {
    let args = ExpArgs::from_env();
    let dataset = load_or_build_dataset(args)?;
    let (tr, te) = random_split(&dataset, 0.1, args.seed)?;
    let norm = dataset.fit_normalizer(&tr)?;
    let train = dataset.to_ml(&tr, &norm)?;
    let test = dataset.to_ml(&te, &norm)?;

    let mut rows = Vec::new();
    let mut best: Option<(f64, String)> = None;
    for rounds in [40usize, 120, 240] {
        for depth in [3usize, 6, 9] {
            for lr in [0.05f64, 0.12, 0.3] {
                let params = GbtParams {
                    n_rounds: rounds,
                    learning_rate: lr,
                    tree: TreeParams {
                        max_depth: depth,
                        ..GbtParams::default().tree
                    },
                    ..GbtParams::default()
                };
                let model = ModelKind::Gbt(params).fit(&train)?;
                let pred = model.predict(&test.x)?;
                let m = mae(&pred, &test.y)?;
                let s = same_order_score(&pred, &test.y)?;
                let label = format!("rounds={rounds} depth={depth} lr={lr}");
                if best.as_ref().map_or(true, |(bm, _)| m < *bm) {
                    best = Some((m, label.clone()));
                }
                rows.push(vec![
                    rounds.to_string(),
                    depth.to_string(),
                    format!("{lr}"),
                    format!("{m:.4}"),
                    format!("{s:.4}"),
                ]);
            }
        }
    }
    print_table(
        "Extension — GBT hyper-parameter sweep",
        &["rounds", "depth", "lr", "MAE", "SOS"],
        &rows,
    );
    let (best_mae, best_label) = best.ok_or_else(|| {
        mphpc_errors::MphpcError::EmptyInput("hyper-parameter sweep produced no results")
    })?;
    println!("\nbest configuration: {best_label} (MAE {best_mae:.4})");
    Ok(())
}
