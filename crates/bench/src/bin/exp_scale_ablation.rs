//! Fig. 4: train XGBoost on two of the three run scales (1 core / 1 node /
//! 2 nodes) and evaluate on the held-out third. The paper reports all three
//! close to the headline MAE, with 1-node predictions best.

use mphpc_bench::{load_or_build_dataset, print_table, ExpArgs};
use mphpc_dataset::split::scale_split;
use mphpc_ml::{mae, same_order_score, ModelKind, Regressor};
use mphpc_workloads::Scale;

fn main() -> std::process::ExitCode {
    mphpc_bench::run(body)
}

fn body() -> Result<(), mphpc_errors::MphpcError> {
    let args = ExpArgs::from_env();
    let dataset = load_or_build_dataset(args)?;
    let kind = ModelKind::Gbt(Default::default());

    let mut rows = Vec::new();
    for &held_out in Scale::ALL.iter() {
        let (train_rows, test_rows) = scale_split(&dataset, held_out)?;
        let norm = dataset.fit_normalizer(&train_rows)?;
        let train = dataset.to_ml(&train_rows, &norm)?;
        let test = dataset.to_ml(&test_rows, &norm)?;
        let model = kind.fit(&train)?;
        let pred = model.predict(&test.x)?;
        rows.push(vec![
            held_out.label().to_string(),
            train_rows.len().to_string(),
            test_rows.len().to_string(),
            format!("{:.4}", mae(&pred, &test.y)?),
            format!("{:.4}", same_order_score(&pred, &test.y)?),
        ]);
    }

    print_table(
        "Fig. 4 — XGBoost trained on two scales, tested on the held-out third",
        &["held-out scale", "train rows", "test rows", "MAE", "SOS"],
        &rows,
    );
    println!("\npaper shape: all three close together, one-node predictions best");
    Ok(())
}
