//! Fig. 3: MAE and SOS heatmaps of model × source architecture — train and
//! test restricted to counters collected on a single system. The paper's
//! shape: CPU-sourced counters (Ruby, Quartz) predict best; Corona (AMD
//! GPU, sparse noisy counters) worst.

use mphpc_archsim::SystemId;
use mphpc_bench::{load_or_build_dataset, print_table, ExpArgs};
use mphpc_dataset::split::arch_split;
use mphpc_ml::{mae, same_order_score, ModelKind, Regressor};

fn main() -> std::process::ExitCode {
    mphpc_bench::run(body)
}

fn body() -> Result<(), mphpc_errors::MphpcError> {
    let args = ExpArgs::from_env();
    let dataset = load_or_build_dataset(args)?;
    let kinds = ModelKind::paper_lineup();

    let mut mae_rows = Vec::new();
    let mut sos_rows = Vec::new();
    for kind in &kinds {
        let mut mae_row = vec![kind.name().to_string()];
        let mut sos_row = vec![kind.name().to_string()];
        for sys in SystemId::TABLE1 {
            let (train_rows, test_rows) = arch_split(&dataset, sys, 0.1, args.seed)?;
            let norm = dataset.fit_normalizer(&train_rows)?;
            let train = dataset.to_ml(&train_rows, &norm)?;
            let test = dataset.to_ml(&test_rows, &norm)?;
            let model = kind.fit(&train)?;
            let pred = model.predict(&test.x)?;
            mae_row.push(format!("{:.4}", mae(&pred, &test.y)?));
            sos_row.push(format!("{:.4}", same_order_score(&pred, &test.y)?));
        }
        mae_rows.push(mae_row);
        sos_rows.push(sos_row);
    }

    let header = ["model", "Quartz", "Ruby", "Lassen", "Corona"];
    print_table(
        "Fig. 3 (left) — MAE by source architecture",
        &header,
        &mae_rows,
    );
    print_table(
        "Fig. 3 (right) — SOS by source architecture",
        &header,
        &sos_rows,
    );
    println!("\npaper shape: CPU sources (Quartz/Ruby) < GPU sources; Corona worst for XGBoost");
    Ok(())
}
