//! Fig. 5: leave-one-application-out — train XGBoost on 19 applications,
//! evaluate on the held-out one. The paper's shape: reasonable MAE
//! everywhere, with the ML/Python applications (CANDLE, CosmoFlow, miniGAN,
//! DeepCam) notably worse.

use mphpc_bench::{load_or_build_dataset, print_table, ExpArgs};
use mphpc_dataset::split::app_split;
use mphpc_ml::{mae, same_order_score, ModelKind, Regressor};
use mphpc_workloads::all_apps;

fn main() -> std::process::ExitCode {
    mphpc_bench::run(body)
}

fn body() -> Result<(), mphpc_errors::MphpcError> {
    let args = ExpArgs::from_env();
    let dataset = load_or_build_dataset(args)?;
    let kind = ModelKind::Gbt(Default::default());

    let mut rows = Vec::new();
    let mut ml_maes = Vec::new();
    let mut other_maes = Vec::new();
    for app in all_apps() {
        let (train_rows, test_rows) = app_split(&dataset, app.name())?;
        if test_rows.is_empty() {
            continue;
        }
        let norm = dataset.fit_normalizer(&train_rows)?;
        let train = dataset.to_ml(&train_rows, &norm)?;
        let test = dataset.to_ml(&test_rows, &norm)?;
        let model = kind.fit(&train)?;
        let pred = model.predict(&test.x)?;
        let m = mae(&pred, &test.y)?;
        let s = same_order_score(&pred, &test.y)?;
        if app.spec.ml_stack {
            ml_maes.push(m);
        } else {
            other_maes.push(m);
        }
        rows.push(vec![
            app.name().to_string(),
            if app.spec.ml_stack { "ML/Python" } else { "" }.to_string(),
            format!("{:.4}", m),
            format!("{:.4}", s),
        ]);
    }

    print_table(
        "Fig. 5 — leave-one-application-out (XGBoost)",
        &["held-out app", "stack", "MAE", "SOS"],
        &rows,
    );

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nmean MAE — ML/Python apps: {:.4}, other apps: {:.4} (paper shape: ML apps worse)",
        avg(&ml_maes),
        avg(&other_maes)
    );
    Ok(())
}
