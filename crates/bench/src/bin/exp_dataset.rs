//! §V-D: build the MP-HPC dataset, report its shape (the paper: 21 feature
//! columns × 11,312 rows), and export it as CSV.

use mphpc_bench::{load_or_build_dataset, print_table, ExpArgs};
use mphpc_dataset::{FEATURE_NAMES, TARGET_NAMES};

fn main() {
    let args = ExpArgs::from_env();
    let dataset = load_or_build_dataset(args);

    println!(
        "MP-HPC dataset: {} rows × {} feature columns (+{} targets, + metadata)",
        dataset.n_rows(),
        FEATURE_NAMES.len(),
        TARGET_NAMES.len()
    );
    println!(
        "incomplete run groups dropped: {}",
        dataset.incomplete_groups
    );

    // Per-architecture and per-scale row counts.
    let archs = dataset.frame.unique("arch").unwrap();
    let rows: Vec<Vec<String>> = archs
        .iter()
        .map(|a| {
            let n = (0..dataset.n_rows())
                .filter(|&i| dataset.frame.str_at("arch", i).unwrap() == a)
                .count();
            vec![a.clone(), n.to_string()]
        })
        .collect();
    print_table("rows per source architecture", &["arch", "rows"], &rows);

    // Sample rows.
    let show: Vec<&str> = vec![
        "app",
        "input",
        "scale",
        "arch",
        "branch_intensity",
        "fp64_intensity",
        "rpv_quartz",
        "rpv_ruby",
        "rpv_lassen",
        "rpv_corona",
    ];
    let rows: Vec<Vec<String>> = (0..dataset.n_rows().min(8))
        .map(|i| {
            show.iter()
                .map(|&c| dataset.frame.value_at(c, i).unwrap().render())
                .map(|s| {
                    if s.len() > 10 {
                        format!("{:.10}", s)
                    } else {
                        s
                    }
                })
                .collect()
        })
        .collect();
    print_table("sample rows", &show, &rows);

    let out = std::path::Path::new("target/mphpc-cache/mp_hpc_export.csv");
    dataset.write_csv(out).expect("csv export");
    println!("\nfull dataset exported to {}", out.display());
}
