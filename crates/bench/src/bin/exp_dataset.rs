//! §V-D: build the MP-HPC dataset, report its shape (the paper: 21 feature
//! columns × 11,312 rows), and export it as CSV.

use mphpc_bench::{load_or_build_dataset, print_table, ExpArgs};
use mphpc_dataset::{FEATURE_NAMES, TARGET_NAMES};

fn main() -> std::process::ExitCode {
    mphpc_bench::run(body)
}

fn body() -> Result<(), mphpc_errors::MphpcError> {
    let args = ExpArgs::from_env();
    let dataset = load_or_build_dataset(args)?;

    println!(
        "MP-HPC dataset: {} rows × {} feature columns (+{} targets, + metadata)",
        dataset.n_rows(),
        FEATURE_NAMES.len(),
        TARGET_NAMES.len()
    );
    println!(
        "incomplete run groups dropped: {}",
        dataset.incomplete_groups
    );

    // Per-architecture and per-scale row counts.
    let archs = dataset.frame.unique("arch")?;
    let mut rows = Vec::new();
    for a in &archs {
        let mut n = 0;
        for i in 0..dataset.n_rows() {
            if dataset.frame.str_at("arch", i)? == *a {
                n += 1;
            }
        }
        rows.push(vec![a.clone(), n.to_string()]);
    }
    print_table("rows per source architecture", &["arch", "rows"], &rows);

    // Sample rows.
    let show: Vec<&str> = vec![
        "app",
        "input",
        "scale",
        "arch",
        "branch_intensity",
        "fp64_intensity",
        "rpv_quartz",
        "rpv_ruby",
        "rpv_lassen",
        "rpv_corona",
    ];
    let mut rows = Vec::new();
    for i in 0..dataset.n_rows().min(8) {
        let mut row = Vec::new();
        for &c in &show {
            let s = dataset.frame.value_at(c, i)?.render();
            row.push(if s.len() > 10 {
                format!("{:.10}", s)
            } else {
                s
            });
        }
        rows.push(row);
    }
    print_table("sample rows", &show, &rows);

    let out = std::path::Path::new("target/mphpc-cache/mp_hpc_export.csv");
    dataset.write_csv(out)?;
    println!("\nfull dataset exported to {}", out.display());
    Ok(())
}
