//! Design-choice ablation (DESIGN.md §5): trace-driven set-associative
//! cache simulation vs the closed-form analytic stack-distance model.
//!
//! The trace model captures conflict misses and set-geometry effects; the
//! analytic model is a fully-associative approximation that is orders of
//! magnitude faster. This experiment builds the dataset both ways and
//! compares the downstream model quality — quantifying what the extra
//! fidelity buys.

use mphpc_archsim::cache::CacheModel;
use mphpc_bench::{print_table, ExpArgs};
use mphpc_core::pipeline::evaluate_models;
use mphpc_dataset::build_dataset_with_model;
use mphpc_ml::ModelKind;

fn main() -> std::process::ExitCode {
    mphpc_bench::run(body)
}

fn body() -> Result<(), mphpc_errors::MphpcError> {
    let args = ExpArgs::from_env();
    let specs = args.size.config(args.seed).specs();

    let mut rows = Vec::new();
    for (label, model) in [
        ("trace-driven", CacheModel::Trace),
        ("analytic", CacheModel::Analytic),
    ] {
        eprintln!("[collect] building dataset with the {label} cache model ...");
        let start = std::time::Instant::now();
        let dataset = build_dataset_with_model(&specs, args.seed, model)?;
        let build_secs = start.elapsed().as_secs_f64();
        let evals = evaluate_models(&dataset, &[ModelKind::Gbt(Default::default())], args.seed)?;
        rows.push(vec![
            label.to_string(),
            format!("{:.1}s", build_secs),
            format!("{:.4}", evals[0].test_mae),
            format!("{:.4}", evals[0].test_sos),
        ]);
    }
    print_table(
        "Ablation — cache-model backend vs dataset build time and model quality",
        &["cache model", "build time", "XGBoost MAE", "XGBoost SOS"],
        &rows,
    );
    println!(
        "\nexpected: analytic is much faster to build with mildly different (often similar) MAE"
    );
    Ok(())
}
