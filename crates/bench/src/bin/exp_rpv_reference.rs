//! Extension: RPV reference-system ablation. §IV defines RPVs relative to
//! an arbitrary system plus the `rpv(·,·,min)` and `rpv(·,·,max)` variants;
//! the paper models the self-relative form. This experiment retrains
//! XGBoost against each target normalisation and compares difficulty.

use mphpc_bench::{load_or_build_dataset, print_table, ExpArgs};
use mphpc_dataset::split::random_split;
use mphpc_dataset::RpvReference;
use mphpc_ml::{mae, same_order_score, ModelKind, Regressor};

fn main() -> std::process::ExitCode {
    mphpc_bench::run(body)
}

fn body() -> Result<(), mphpc_errors::MphpcError> {
    let args = ExpArgs::from_env();
    let dataset = load_or_build_dataset(args)?;
    let (tr, te) = random_split(&dataset, 0.1, args.seed)?;
    let norm = dataset.fit_normalizer(&tr)?;

    let mut rows = Vec::new();
    for (label, reference) in [
        ("self-relative (paper)", RpvReference::SelfSystem),
        ("relative to fastest (min)", RpvReference::Min),
        ("relative to slowest (max)", RpvReference::Max),
    ] {
        let train = dataset.to_ml_with_reference(&tr, &norm, reference)?;
        let test = dataset.to_ml_with_reference(&te, &norm, reference)?;
        let model = ModelKind::Gbt(Default::default()).fit(&train)?;
        let pred = model.predict(&test.x)?;
        rows.push(vec![
            label.to_string(),
            format!("{:.4}", mae(&pred, &test.y)?),
            format!("{:.4}", same_order_score(&pred, &test.y)?),
        ]);
    }
    print_table(
        "Extension — RPV reference-system ablation (XGBoost)",
        &["target normalisation", "MAE", "SOS"],
        &rows,
    );
    println!("\nnote: SOS is invariant to the reference by construction; MAE scales with the target range");
    Ok(())
}
