//! Fig. 6: gain-based feature importances of the trained XGBoost model.
//! The paper's shape: branch intensity first, integer-arithmetic and
//! single-precision FP intensities next, then the source-architecture
//! indicators (Ruby / Lassen / uses-GPU).

use mphpc_bench::{load_or_build_dataset, print_table, ExpArgs};
use mphpc_core::pipeline::train_predictor;
use mphpc_ml::ModelKind;

fn main() -> std::process::ExitCode {
    mphpc_bench::run(body)
}

fn body() -> Result<(), mphpc_errors::MphpcError> {
    let args = ExpArgs::from_env();
    let dataset = load_or_build_dataset(args)?;
    let predictor = train_predictor(&dataset, ModelKind::Gbt(Default::default()), args.seed)?;
    let importance = predictor.model().feature_importance().ok_or_else(|| {
        mphpc_errors::MphpcError::InvalidArgument(
            "trained model exposes no feature importances".into(),
        )
    })?;

    let rows: Vec<Vec<String>> = importance
        .ranked()
        .into_iter()
        .map(|(name, score)| {
            let bar = "#".repeat((score * 200.0).round() as usize);
            vec![name, format!("{score:.4}"), bar]
        })
        .collect();
    print_table(
        "Fig. 6 — XGBoost feature importances (normalised average gain)",
        &["feature", "importance", ""],
        &rows,
    );
    println!("\npaper shape: branch intensity on top; int/fp32 intensity and arch indicators high");
    Ok(())
}
