//! The workspace-wide error type.
//!
//! Every fallible boundary in the pipeline — CSV ingest, dataset assembly,
//! model fitting and prediction, split construction, the scheduling
//! simulator — returns [`MphpcError`] so callers get one typed failure
//! domain instead of a mix of `String`s and panics. Variants carry enough
//! structure for tests to match on (`ShapeMismatch`, `DimensionMismatch`,
//! `InvariantViolation`, ...) while [`MphpcError::context`] lets each layer
//! prepend a "while ..." frame without losing the root cause; binaries
//! render the whole chain with [`MphpcError::render_chain`].
//!
//! This crate sits at the bottom of the dependency graph and has no
//! dependencies of its own. Conversions from other crates' local error
//! types (e.g. `mphpc-frame`'s `FrameError`) live in those crates, next to
//! the type they convert.

#![warn(missing_docs)]

use std::fmt;

/// Unified error for the mphpc pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum MphpcError {
    /// Failure in the tabular layer (column lookup, CSV parse, type or
    /// length mismatch). Carries the rendered `FrameError`.
    Frame(String),
    /// Two matrices (or a matrix and an expectation) disagree on shape.
    ShapeMismatch {
        /// Boundary that performed the check.
        context: &'static str,
        /// Expected `(rows, cols)`.
        expected: (usize, usize),
        /// Shape actually supplied.
        found: (usize, usize),
    },
    /// A model was given the wrong number of features (or outputs).
    DimensionMismatch {
        /// Boundary that performed the check.
        context: &'static str,
        /// Dimension the model was trained with.
        expected: usize,
        /// Dimension actually supplied.
        found: usize,
    },
    /// An input that must be non-empty was empty (zero rows, zero folds,
    /// zero templates, ...).
    EmptyInput(&'static str),
    /// A NaN or infinity reached a numeric boundary.
    NonFinite {
        /// Where the value was caught.
        context: String,
    },
    /// Dataset-level construction or lookup failed (unknown architecture,
    /// missing run pairing, inconsistent ladder, ...).
    InvalidDataset(String),
    /// A job, workflow, or workload handed to the scheduler is invalid.
    InvalidJob(String),
    /// The discrete-event simulation could not complete.
    Simulation(String),
    /// A runtime invariant check (the auditor) failed. Always indicates an
    /// internal bug, never bad user input.
    InvariantViolation(String),
    /// Profile collection failed.
    Profile(String),
    /// A user-supplied argument (CLI flag, option value) failed
    /// validation.
    InvalidArgument(String),
    /// The prediction server failed (socket setup, protocol violation,
    /// queue/batcher fault, or shutdown error).
    Serve(String),
    /// JSON (de)serialisation failed.
    Serde(String),
    /// The artifact storage layer failed (atomic write, claim protocol,
    /// fleet coordination, or an invalid storage key).
    Storage(String),
    /// Filesystem I/O failed.
    Io {
        /// Path involved.
        path: String,
        /// Rendered `std::io::Error`.
        message: String,
    },
    /// A wrapped error with one extra layer of context.
    Context {
        /// What the caller was doing.
        context: String,
        /// The underlying failure.
        source: Box<MphpcError>,
    },
}

impl MphpcError {
    /// Wrap `self` with a "while ..." context frame.
    #[must_use]
    pub fn context(self, context: impl Into<String>) -> Self {
        MphpcError::Context {
            context: context.into(),
            source: Box::new(self),
        }
    }

    /// Build an [`MphpcError::Io`] from a path and any displayable error.
    pub fn io(path: impl Into<String>, err: impl fmt::Display) -> Self {
        MphpcError::Io {
            path: path.into(),
            message: err.to_string(),
        }
    }

    /// Build an [`MphpcError::Serde`] from any displayable error.
    pub fn serde(err: impl fmt::Display) -> Self {
        MphpcError::Serde(err.to_string())
    }

    /// The root cause, unwrapping every [`MphpcError::Context`] layer.
    pub fn root_cause(&self) -> &MphpcError {
        let mut cur = self;
        while let MphpcError::Context { source, .. } = cur {
            cur = source;
        }
        cur
    }

    /// Render the full context chain, outermost first, one frame per line:
    ///
    /// ```text
    /// error: evaluating models
    ///   caused by: fitting XGBoost
    ///   caused by: empty input: fit
    /// ```
    pub fn render_chain(&self) -> String {
        let mut out = format!("error: {self}");
        let mut cur = self;
        while let MphpcError::Context { source, .. } = cur {
            cur = source;
            out.push_str(&format!("\n  caused by: {cur}"));
        }
        out
    }
}

impl fmt::Display for MphpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MphpcError::Frame(msg) => write!(f, "frame error: {msg}"),
            MphpcError::ShapeMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "{context}: shape mismatch: expected {}x{}, got {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            MphpcError::DimensionMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "{context}: dimension mismatch: model expects {expected}, got {found}"
            ),
            MphpcError::EmptyInput(context) => write!(f, "empty input: {context}"),
            MphpcError::NonFinite { context } => {
                write!(f, "non-finite value: {context}")
            }
            MphpcError::InvalidDataset(msg) => write!(f, "invalid dataset: {msg}"),
            MphpcError::InvalidJob(msg) => write!(f, "invalid job: {msg}"),
            MphpcError::Simulation(msg) => write!(f, "simulation error: {msg}"),
            MphpcError::InvariantViolation(msg) => {
                write!(f, "invariant violation (internal bug): {msg}")
            }
            MphpcError::Profile(msg) => write!(f, "profiling error: {msg}"),
            MphpcError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            MphpcError::Serve(msg) => write!(f, "serve error: {msg}"),
            MphpcError::Serde(msg) => write!(f, "serialisation error: {msg}"),
            MphpcError::Storage(msg) => write!(f, "storage error: {msg}"),
            MphpcError::Io { path, message } => write!(f, "io error on '{path}': {message}"),
            MphpcError::Context { context, .. } => write!(f, "{context}"),
        }
    }
}

impl std::error::Error for MphpcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MphpcError::Context { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

/// Extension trait adding `.context(...)` to any `Result` whose error
/// converts into [`MphpcError`].
pub trait ResultExt<T> {
    /// Convert the error into [`MphpcError`] and wrap it with context.
    fn context(self, context: impl Into<String>) -> Result<T, MphpcError>;
}

impl<T, E: Into<MphpcError>> ResultExt<T> for Result<T, E> {
    fn context(self, context: impl Into<String>) -> Result<T, MphpcError> {
        self.map_err(|e| e.into().context(context))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_chain_renders_outermost_first() {
        let root = MphpcError::EmptyInput("fit");
        let e = root
            .clone()
            .context("fitting XGBoost")
            .context("evaluating models");
        assert_eq!(e.root_cause(), &root);
        let rendered = e.render_chain();
        assert_eq!(
            rendered,
            "error: evaluating models\n  caused by: fitting XGBoost\n  caused by: empty input: fit"
        );
    }

    #[test]
    fn source_walks_the_chain() {
        use std::error::Error;
        let e = MphpcError::Simulation("boom".into()).context("running sweep");
        let src = e.source().expect("context has a source");
        assert_eq!(src.to_string(), "simulation error: boom");
    }

    #[test]
    fn io_and_serde_helpers() {
        let e = MphpcError::io("/tmp/x.csv", "permission denied");
        assert!(e.to_string().contains("/tmp/x.csv"));
        let e = MphpcError::serde("unexpected EOF");
        assert!(matches!(e, MphpcError::Serde(_)));
    }
}
