//! Relational operations: group-by, join, sort.

use crate::column::Column;
use crate::frame::Frame;
use crate::FrameError;
use std::collections::HashMap;

/// Aggregation applied to a numeric column within each group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Arithmetic mean.
    Mean,
    /// Sum of values.
    Sum,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Number of rows in the group.
    Count,
}

impl Aggregation {
    fn apply(self, values: &[f64]) -> f64 {
        match self {
            Aggregation::Mean => {
                if values.is_empty() {
                    f64::NAN
                } else {
                    values.iter().sum::<f64>() / values.len() as f64
                }
            }
            Aggregation::Sum => values.iter().sum(),
            Aggregation::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
            Aggregation::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Aggregation::Count => values.len() as f64,
        }
    }

    fn suffix(self) -> &'static str {
        match self {
            Aggregation::Mean => "mean",
            Aggregation::Sum => "sum",
            Aggregation::Min => "min",
            Aggregation::Max => "max",
            Aggregation::Count => "count",
        }
    }
}

/// Sort direction for [`Frame::sort_by`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Smallest first.
    Ascending,
    /// Largest first.
    Descending,
}

impl Frame {
    /// Row indices of each group keyed by the rendered key of `key` column,
    /// in first-appearance order.
    pub fn group_indices(&self, key: &str) -> Result<Vec<(String, Vec<usize>)>, FrameError> {
        let col = self.column(key)?;
        let mut order: Vec<String> = Vec::new();
        let mut groups: HashMap<String, Vec<usize>> = HashMap::new();
        for row in 0..self.n_rows() {
            let k = col.group_key(row);
            groups
                .entry(k.clone())
                .or_insert_with(|| {
                    order.push(k.clone());
                    Vec::new()
                })
                .push(row);
        }
        Ok(order
            .into_iter()
            .map(|k| {
                let rows = groups.remove(&k).expect("group recorded in order");
                (k, rows)
            })
            .collect())
    }

    /// Group by `key` and aggregate each `(column, aggregation)` pair.
    ///
    /// Output columns are named `{column}_{agg}` plus the key column.
    pub fn group_by(&self, key: &str, aggs: &[(&str, Aggregation)]) -> Result<Frame, FrameError> {
        let groups = self.group_indices(key)?;
        let mut out = Frame::new();
        out.push_column(
            key,
            Column::Str(groups.iter().map(|(k, _)| k.clone()).collect()),
        )?;
        for &(col_name, agg) in aggs {
            let data = self.column(col_name)?.to_f64_vec()?;
            let agged: Vec<f64> = groups
                .iter()
                .map(|(_, rows)| {
                    let vals: Vec<f64> = rows.iter().map(|&r| data[r]).collect();
                    agg.apply(&vals)
                })
                .collect();
            out.push_column(format!("{col_name}_{}", agg.suffix()), Column::F64(agged))?;
        }
        Ok(out)
    }

    /// Group by `key` and take the mean of each listed numeric column.
    ///
    /// This mirrors the paper's per-rank counter aggregation ("we record the
    /// mean value of the counters across all processes").
    pub fn group_by_mean(&self, key: &str, columns: &[&str]) -> Result<Frame, FrameError> {
        self.group_by(
            key,
            &columns
                .iter()
                .map(|&c| (c, Aggregation::Mean))
                .collect::<Vec<_>>(),
        )
    }

    /// Inner join with `other` on equality of `key` (present in both).
    ///
    /// Columns of `other` (except its key) are appended; name clashes get a
    /// `_right` suffix. Join is hash-based; output row order follows the left
    /// frame.
    pub fn join_inner(&self, other: &Frame, key: &str) -> Result<Frame, FrameError> {
        let left_key = self.column(key)?;
        let right_key = other.column(key)?;
        let mut right_rows: HashMap<String, Vec<usize>> = HashMap::new();
        for row in 0..other.n_rows() {
            right_rows
                .entry(right_key.group_key(row))
                .or_default()
                .push(row);
        }
        let mut left_idx = Vec::new();
        let mut right_idx = Vec::new();
        for row in 0..self.n_rows() {
            if let Some(matches) = right_rows.get(&left_key.group_key(row)) {
                for &r in matches {
                    left_idx.push(row);
                    right_idx.push(r);
                }
            }
        }
        let mut out = self.take(&left_idx)?;
        for (name, col) in other.names.iter().zip(&other.columns) {
            if name == key {
                continue;
            }
            let taken = col.take(&right_idx)?;
            let out_name = if out.has_column(name) {
                format!("{name}_right")
            } else {
                name.clone()
            };
            out.push_column(out_name, taken)?;
        }
        Ok(out)
    }

    /// Stable sort of rows by a numeric column.
    pub fn sort_by(&self, column: &str, order: SortOrder) -> Result<Frame, FrameError> {
        let keys = self.column(column)?.to_f64_vec()?;
        let mut idx: Vec<usize> = (0..self.n_rows()).collect();
        idx.sort_by(|&a, &b| {
            let cmp = keys[a]
                .partial_cmp(&keys[b])
                .unwrap_or(std::cmp::Ordering::Equal);
            match order {
                SortOrder::Ascending => cmp,
                SortOrder::Descending => cmp.reverse(),
            }
        });
        self.take(&idx)
    }

    /// Distinct rendered values of a column, in first-appearance order.
    pub fn unique(&self, column: &str) -> Result<Vec<String>, FrameError> {
        Ok(self
            .group_indices(column)?
            .into_iter()
            .map(|(k, _)| k)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::from_columns([
            (
                "app",
                Column::from_strs(&["amg", "comd", "amg", "comd", "amg"]),
            ),
            ("t", Column::F64(vec![1.0, 2.0, 3.0, 4.0, 5.0])),
        ])
        .unwrap()
    }

    #[test]
    fn group_by_mean_and_order() {
        let g = sample().group_by_mean("app", &["t"]).unwrap();
        assert_eq!(g.n_rows(), 2);
        assert_eq!(g.str_at("app", 0).unwrap(), "amg");
        assert!((g.f64_at("t_mean", 0).unwrap() - 3.0).abs() < 1e-12);
        assert!((g.f64_at("t_mean", 1).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn group_by_multiple_aggs() {
        let g = sample()
            .group_by(
                "app",
                &[
                    ("t", Aggregation::Sum),
                    ("t", Aggregation::Min),
                    ("t", Aggregation::Max),
                    ("t", Aggregation::Count),
                ],
            )
            .unwrap();
        assert_eq!(g.f64_at("t_sum", 0).unwrap(), 9.0);
        assert_eq!(g.f64_at("t_min", 0).unwrap(), 1.0);
        assert_eq!(g.f64_at("t_max", 0).unwrap(), 5.0);
        assert_eq!(g.f64_at("t_count", 1).unwrap(), 2.0);
    }

    #[test]
    fn join_inner_basic() {
        let left = sample();
        let right = Frame::from_columns([
            ("app", Column::from_strs(&["amg", "comd", "other"])),
            ("gpu", Column::Bool(vec![true, false, true])),
        ])
        .unwrap();
        let j = left.join_inner(&right, "app").unwrap();
        assert_eq!(j.n_rows(), 5);
        assert!(j.bool_at("gpu", 0).unwrap());
        assert!(!j.bool_at("gpu", 1).unwrap());
    }

    #[test]
    fn join_inner_duplicate_right_keys_multiply() {
        let left = Frame::from_columns([("k", Column::from_strs(&["a"]))]).unwrap();
        let right = Frame::from_columns([
            ("k", Column::from_strs(&["a", "a"])),
            ("v", Column::I64(vec![1, 2])),
        ])
        .unwrap();
        let j = left.join_inner(&right, "k").unwrap();
        assert_eq!(j.n_rows(), 2);
    }

    #[test]
    fn join_name_clash_suffixed() {
        let left = sample();
        let right = Frame::from_columns([
            ("app", Column::from_strs(&["amg"])),
            ("t", Column::F64(vec![100.0])),
        ])
        .unwrap();
        let j = left.join_inner(&right, "app").unwrap();
        assert!(j.has_column("t_right"));
        assert_eq!(j.f64_at("t_right", 0).unwrap(), 100.0);
    }

    #[test]
    fn sort_by_descending() {
        let s = sample().sort_by("t", SortOrder::Descending).unwrap();
        assert_eq!(s.f64_at("t", 0).unwrap(), 5.0);
        assert_eq!(s.f64_at("t", 4).unwrap(), 1.0);
    }

    #[test]
    fn sort_is_stable() {
        let f = Frame::from_columns([
            ("k", Column::F64(vec![1.0, 1.0, 0.0])),
            ("tag", Column::from_strs(&["first", "second", "zero"])),
        ])
        .unwrap();
        let s = f.sort_by("k", SortOrder::Ascending).unwrap();
        assert_eq!(s.str_at("tag", 0).unwrap(), "zero");
        assert_eq!(s.str_at("tag", 1).unwrap(), "first");
        assert_eq!(s.str_at("tag", 2).unwrap(), "second");
    }

    #[test]
    fn unique_in_appearance_order() {
        assert_eq!(sample().unique("app").unwrap(), vec!["amg", "comd"]);
    }
}
