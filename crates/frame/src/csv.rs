//! CSV serialisation for [`Frame`], used to persist the MP-HPC dataset.
//!
//! The dialect is deliberately small: comma separator, `"`-quoting with
//! doubled-quote escapes, first row is the header. Types on read are
//! inferred per column (bool → i64 → f64 → str, most restrictive that fits
//! every cell).

use crate::column::Column;
use crate::frame::Frame;
use crate::FrameError;
use std::io::Read;
use std::path::Path;

/// Serialise a frame to a CSV string.
pub fn write_csv_string(frame: &Frame) -> String {
    let mut out = String::new();
    let names = frame.column_names();
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&quote_field(name));
    }
    out.push('\n');
    for row in 0..frame.n_rows() {
        for (i, name) in names.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let rendered = frame
                .value_at(name, row)
                .expect("row within bounds")
                .render();
            out.push_str(&quote_field(&rendered));
        }
        out.push('\n');
    }
    out
}

/// Parse a CSV string into a frame with per-column type inference.
pub fn read_csv_str(input: &str) -> Result<Frame, FrameError> {
    let rows = parse_rows(input)?;
    let mut iter = rows.into_iter();
    let header = match iter.next() {
        Some(h) => h,
        None => return Ok(Frame::new()),
    };
    let n_cols = header.len();
    let mut cells: Vec<Vec<String>> = vec![Vec::new(); n_cols];
    for (line_no, row) in iter.enumerate() {
        if row.len() != n_cols {
            return Err(FrameError::Csv(format!(
                "row {} has {} fields, expected {}",
                line_no + 2,
                row.len(),
                n_cols
            )));
        }
        for (c, field) in row.into_iter().enumerate() {
            cells[c].push(field);
        }
    }
    let mut frame = Frame::new();
    for (name, col_cells) in header.into_iter().zip(cells) {
        frame.push_column(name, infer_column(col_cells))?;
    }
    Ok(frame)
}

impl Frame {
    /// Write the frame as CSV to `path`.
    ///
    /// The write is atomic (temp file + fsync + rename): a reader — or a
    /// process resuming after this writer was killed — sees either the
    /// complete previous file or the complete new one, never a torn
    /// prefix.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        mphpc_storage::atomic_write_file(path, write_csv_string(self).as_bytes())
    }

    /// Read a CSV file into a frame.
    pub fn read_csv<P: AsRef<Path>>(path: P) -> Result<Frame, FrameError> {
        let mut buf = String::new();
        std::fs::File::open(path)
            .map_err(|e| FrameError::Csv(e.to_string()))?
            .read_to_string(&mut buf)
            .map_err(|e| FrameError::Csv(e.to_string()))?;
        read_csv_str(&buf)
    }
}

fn quote_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

fn parse_rows(input: &str) -> Result<Vec<Vec<String>>, FrameError> {
    let mut rows = Vec::new();
    let mut row = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = input.chars().peekable();
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    row.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(FrameError::Csv("unterminated quoted field".into()));
    }
    if any && (!field.is_empty() || !row.is_empty()) {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

fn infer_column(cells: Vec<String>) -> Column {
    let all_bool = !cells.is_empty() && cells.iter().all(|c| c == "true" || c == "false");
    if all_bool {
        return Column::Bool(cells.iter().map(|c| c == "true").collect());
    }
    let as_i64: Option<Vec<i64>> = cells.iter().map(|c| c.parse::<i64>().ok()).collect();
    if let Some(v) = as_i64 {
        if !cells.is_empty() {
            return Column::I64(v);
        }
    }
    let as_f64: Option<Vec<f64>> = cells.iter().map(|c| c.parse::<f64>().ok()).collect();
    if let Some(v) = as_f64 {
        if !cells.is_empty() {
            return Column::F64(v);
        }
    }
    Column::Str(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::from_columns([
            ("app", Column::from_strs(&["amg", "co,md", "quo\"te"])),
            ("t", Column::F64(vec![1.5, 2.0, -0.25])),
            ("n", Column::I64(vec![1, 2, 3])),
            ("gpu", Column::Bool(vec![true, false, true])),
        ])
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_types_and_values() {
        let f = sample();
        let csv = write_csv_string(&f);
        let g = read_csv_str(&csv).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn quoting_special_chars() {
        let csv = write_csv_string(&sample());
        assert!(csv.contains("\"co,md\""));
        assert!(csv.contains("\"quo\"\"te\""));
    }

    #[test]
    fn empty_input_gives_empty_frame() {
        let f = read_csv_str("").unwrap();
        assert_eq!(f.shape(), (0, 0));
    }

    #[test]
    fn header_only_gives_zero_rows() {
        let f = read_csv_str("a,b\n").unwrap();
        assert_eq!(f.shape(), (0, 2));
    }

    #[test]
    fn ragged_row_rejected() {
        assert!(matches!(
            read_csv_str("a,b\n1,2\n3\n"),
            Err(FrameError::Csv(_))
        ));
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(matches!(read_csv_str("a\n\"oops"), Err(FrameError::Csv(_))));
    }

    #[test]
    fn missing_trailing_newline_ok() {
        let f = read_csv_str("a,b\n1,2").unwrap();
        assert_eq!(f.shape(), (1, 2));
        assert_eq!(f.i64_at("a", 0).unwrap(), 1);
    }

    #[test]
    fn type_inference_prefers_narrowest() {
        let f = read_csv_str("i,f,s,b\n1,1.5,x,true\n2,2,y,false\n").unwrap();
        assert_eq!(f.i64_at("i", 1).unwrap(), 2);
        assert_eq!(f.f64_at("f", 1).unwrap(), 2.0);
        assert_eq!(f.str_at("s", 0).unwrap(), "x");
        assert!(f.bool_at("b", 0).unwrap());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("mphpc_frame_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let f = sample();
        f.write_csv(&path).unwrap();
        let g = Frame::read_csv(&path).unwrap();
        assert_eq!(f, g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_csv_is_never_observably_half_written() {
        // Overwrite the same destination with two different frames while a
        // reader polls it: every read must be one of the two complete CSV
        // renderings — a torn prefix or splice means atomicity is broken.
        let dir = std::env::temp_dir().join(format!("mphpc_frame_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("contended.csv");
        let small = sample();
        let big = Frame::from_columns([
            ("app", Column::from_strs(&vec!["padded-row"; 2000])),
            (
                "t",
                Column::F64((0..2000).map(|i| i as f64 * 0.5).collect()),
            ),
        ])
        .unwrap();
        let (small_csv, big_csv) = (write_csv_string(&small), write_csv_string(&big));
        small.write_csv(&path).unwrap();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let reader = s.spawn(|| {
                let mut seen = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    if let Ok(text) = std::fs::read_to_string(&path) {
                        assert!(
                            text == small_csv || text == big_csv,
                            "torn CSV read of {} bytes",
                            text.len()
                        );
                        seen += 1;
                    }
                }
                seen
            });
            for i in 0..100 {
                let frame = if i % 2 == 0 { &big } else { &small };
                frame.write_csv(&path).unwrap();
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            assert!(reader.join().unwrap() > 0);
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crlf_handled() {
        let f = read_csv_str("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(f.shape(), (1, 2));
    }
}
