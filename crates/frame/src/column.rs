//! Typed columns and scalar values.

use crate::FrameError;
use serde::{Deserialize, Serialize};

/// The runtime type of a [`Column`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit float column.
    F64,
    /// 64-bit signed integer column.
    I64,
    /// Boolean column.
    Bool,
    /// UTF-8 string column.
    Str,
}

impl ColumnType {
    /// Human-readable name used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            ColumnType::F64 => "f64",
            ColumnType::I64 => "i64",
            ColumnType::Bool => "bool",
            ColumnType::Str => "str",
        }
    }
}

/// A single scalar cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Float cell.
    F64(f64),
    /// Integer cell.
    I64(i64),
    /// Boolean cell.
    Bool(bool),
    /// String cell.
    Str(String),
}

impl Value {
    /// Render the value the way the CSV writer does.
    pub fn render(&self) -> String {
        match self {
            Value::F64(v) => format!("{v}"),
            Value::I64(v) => format!("{v}"),
            Value::Bool(v) => format!("{v}"),
            Value::Str(v) => v.clone(),
        }
    }
}

/// One named-less typed column of a [`crate::Frame`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// Float data.
    F64(Vec<f64>),
    /// Integer data.
    I64(Vec<i64>),
    /// Boolean data.
    Bool(Vec<bool>),
    /// String data.
    Str(Vec<String>),
}

impl Column {
    /// Build a string column from `&str` slices.
    pub fn from_strs(values: &[&str]) -> Self {
        Column::Str(values.iter().map(|s| s.to_string()).collect())
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        match self {
            Column::F64(v) => v.len(),
            Column::I64(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    /// True if the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runtime type tag.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Column::F64(_) => ColumnType::F64,
            Column::I64(_) => ColumnType::I64,
            Column::Bool(_) => ColumnType::Bool,
            Column::Str(_) => ColumnType::Str,
        }
    }

    /// Cell at `row` as a [`Value`]; `None` if out of bounds.
    pub fn value(&self, row: usize) -> Option<Value> {
        match self {
            Column::F64(v) => v.get(row).map(|&x| Value::F64(x)),
            Column::I64(v) => v.get(row).map(|&x| Value::I64(x)),
            Column::Bool(v) => v.get(row).map(|&x| Value::Bool(x)),
            Column::Str(v) => v.get(row).map(|x| Value::Str(x.clone())),
        }
    }

    /// Borrow as `&[f64]`, or a type-mismatch error.
    pub fn as_f64(&self) -> Result<&[f64], FrameError> {
        match self {
            Column::F64(v) => Ok(v),
            other => Err(type_err("<unnamed>", ColumnType::F64, other)),
        }
    }

    /// Borrow as `&[i64]`, or a type-mismatch error.
    pub fn as_i64(&self) -> Result<&[i64], FrameError> {
        match self {
            Column::I64(v) => Ok(v),
            other => Err(type_err("<unnamed>", ColumnType::I64, other)),
        }
    }

    /// Borrow as `&[bool]`, or a type-mismatch error.
    pub fn as_bool(&self) -> Result<&[bool], FrameError> {
        match self {
            Column::Bool(v) => Ok(v),
            other => Err(type_err("<unnamed>", ColumnType::Bool, other)),
        }
    }

    /// Borrow as `&[String]`, or a type-mismatch error.
    pub fn as_str(&self) -> Result<&[String], FrameError> {
        match self {
            Column::Str(v) => Ok(v),
            other => Err(type_err("<unnamed>", ColumnType::Str, other)),
        }
    }

    /// Numeric view: floats as-is, integers and bools widened, strings fail.
    ///
    /// This is what the ML feature-matrix export uses, so integer run
    /// metadata (nodes, cores) and one-hot booleans become features without
    /// per-call-site casts.
    pub fn to_f64_vec(&self) -> Result<Vec<f64>, FrameError> {
        match self {
            Column::F64(v) => Ok(v.clone()),
            Column::I64(v) => Ok(v.iter().map(|&x| x as f64).collect()),
            Column::Bool(v) => Ok(v.iter().map(|&x| if x { 1.0 } else { 0.0 }).collect()),
            Column::Str(_) => Err(type_err("<unnamed>", ColumnType::F64, self)),
        }
    }

    /// New column with only the rows in `indices` (in that order).
    pub fn take(&self, indices: &[usize]) -> Result<Self, FrameError> {
        let len = self.len();
        if let Some(&bad) = indices.iter().find(|&&i| i >= len) {
            return Err(FrameError::RowOutOfBounds { index: bad, len });
        }
        Ok(match self {
            Column::F64(v) => Column::F64(indices.iter().map(|&i| v[i]).collect()),
            Column::I64(v) => Column::I64(indices.iter().map(|&i| v[i]).collect()),
            Column::Bool(v) => Column::Bool(indices.iter().map(|&i| v[i]).collect()),
            Column::Str(v) => Column::Str(indices.iter().map(|&i| v[i].clone()).collect()),
        })
    }

    /// Append all cells of `other`; errors if the types differ.
    pub fn extend_from(&mut self, other: &Column) -> Result<(), FrameError> {
        match (self, other) {
            (Column::F64(a), Column::F64(b)) => a.extend_from_slice(b),
            (Column::I64(a), Column::I64(b)) => a.extend_from_slice(b),
            (Column::Bool(a), Column::Bool(b)) => a.extend_from_slice(b),
            (Column::Str(a), Column::Str(b)) => a.extend_from_slice(b),
            (me, other) => {
                return Err(type_err("<unnamed>", me.column_type(), other));
            }
        }
        Ok(())
    }

    /// Key string used for group-by/join hashing. Floats are formatted with
    /// full round-trip precision so distinct values never collide.
    pub fn group_key(&self, row: usize) -> String {
        match self {
            Column::F64(v) => format!("{:?}", v[row]),
            Column::I64(v) => v[row].to_string(),
            Column::Bool(v) => v[row].to_string(),
            Column::Str(v) => v[row].clone(),
        }
    }
}

pub(crate) fn type_err(column: &str, expected: ColumnType, found: &Column) -> FrameError {
    FrameError::TypeMismatch {
        column: column.to_string(),
        expected: expected.name(),
        found: found.column_type().name(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reorders_and_duplicates() {
        let c = Column::I64(vec![10, 20, 30]);
        let t = c.take(&[2, 0, 0]).unwrap();
        assert_eq!(t, Column::I64(vec![30, 10, 10]));
    }

    #[test]
    fn take_out_of_bounds() {
        let c = Column::F64(vec![1.0]);
        assert_eq!(
            c.take(&[1]),
            Err(FrameError::RowOutOfBounds { index: 1, len: 1 })
        );
    }

    #[test]
    fn to_f64_widens_ints_and_bools() {
        assert_eq!(
            Column::I64(vec![1, -2]).to_f64_vec().unwrap(),
            vec![1.0, -2.0]
        );
        assert_eq!(
            Column::Bool(vec![true, false]).to_f64_vec().unwrap(),
            vec![1.0, 0.0]
        );
        assert!(Column::from_strs(&["x"]).to_f64_vec().is_err());
    }

    #[test]
    fn extend_type_mismatch() {
        let mut a = Column::F64(vec![1.0]);
        assert!(a.extend_from(&Column::I64(vec![1])).is_err());
        assert!(a.extend_from(&Column::F64(vec![2.0])).is_ok());
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn group_key_distinguishes_close_floats() {
        let c = Column::F64(vec![0.1 + 0.2, 0.3]);
        assert_ne!(c.group_key(0), c.group_key(1));
    }
}
