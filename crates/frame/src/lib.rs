//! A minimal columnar dataframe — the workspace's substitute for the
//! Hatchet/pandas layer the paper uses between HPCToolkit profiles and the
//! ML pipeline.
//!
//! [`Frame`] holds named, typed columns ([`Column`]: `f64`, `i64`, `bool`,
//! `String`) of equal length and supports the operations the MP-HPC pipeline
//! needs: column selection, row filtering by predicate/mask, group-by with
//! aggregations, inner join on a key column, sorting, vertical/horizontal
//! concatenation, and CSV round-tripping. Statistics helpers (mean, std,
//! z-score) live in [`stats`].
//!
//! The implementation favours predictability over generality: all operations
//! are eager, copy row indices rather than data where possible, and return
//! [`FrameError`] instead of panicking on shape or type mismatches.
//!
//! # Example
//! ```
//! use mphpc_frame::{Frame, Column};
//! let mut f = Frame::new();
//! f.push_column("app", Column::from_strs(&["amg", "comd", "amg"])).unwrap();
//! f.push_column("time", Column::F64(vec![1.0, 2.0, 3.0])).unwrap();
//! let amg = f.filter(|row| f.str_at("app", row).unwrap() == "amg").unwrap();
//! assert_eq!(amg.n_rows(), 2);
//! let by_app = f.group_by_mean("app", &["time"]).unwrap();
//! assert_eq!(by_app.n_rows(), 2);
//! ```

#![warn(missing_docs)]

mod column;
mod csv;
mod error;
mod frame;
mod ops;
pub mod stats;

pub use column::{Column, ColumnType, Value};
pub use csv::{read_csv_str, write_csv_string};
pub use error::FrameError;
pub use frame::Frame;
pub use ops::{Aggregation, SortOrder};
