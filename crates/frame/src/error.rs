//! Error type shared by all frame operations.

use std::fmt;

/// Errors returned by [`crate::Frame`] and [`crate::Column`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A column name was not found in the frame.
    UnknownColumn(String),
    /// A column with this name already exists.
    DuplicateColumn(String),
    /// A column had the wrong type for the requested operation.
    TypeMismatch {
        /// Column the operation targeted.
        column: String,
        /// Type the operation expected.
        expected: &'static str,
        /// Type actually stored.
        found: &'static str,
    },
    /// Column lengths disagree (with the frame or with each other).
    LengthMismatch {
        /// Expected length (frame row count).
        expected: usize,
        /// Length actually supplied.
        found: usize,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// Offending index.
        index: usize,
        /// Number of rows in the frame.
        len: usize,
    },
    /// CSV input could not be parsed.
    Csv(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::UnknownColumn(name) => write!(f, "unknown column '{name}'"),
            FrameError::DuplicateColumn(name) => write!(f, "duplicate column '{name}'"),
            FrameError::TypeMismatch {
                column,
                expected,
                found,
            } => write!(f, "column '{column}' has type {found}, expected {expected}"),
            FrameError::LengthMismatch { expected, found } => {
                write!(f, "length mismatch: expected {expected} rows, got {found}")
            }
            FrameError::RowOutOfBounds { index, len } => {
                write!(f, "row index {index} out of bounds for {len} rows")
            }
            FrameError::Csv(msg) => write!(f, "csv parse error: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for mphpc_errors::MphpcError {
    fn from(e: FrameError) -> Self {
        mphpc_errors::MphpcError::Frame(e.to_string())
    }
}
