//! The [`Frame`] container: named, equal-length typed columns.

use crate::column::{type_err, Column, ColumnType, Value};
use crate::FrameError;
use serde::{Deserialize, Serialize};

/// A table of named, typed, equal-length columns.
///
/// Column order is insertion order and is preserved by every operation, so
/// feature matrices exported from a frame have a stable column layout.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    pub(crate) names: Vec<String>,
    pub(crate) columns: Vec<Column>,
}

impl Frame {
    /// Create an empty frame (0 columns, 0 rows).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a frame from `(name, column)` pairs, validating lengths and
    /// duplicate names.
    pub fn from_columns<I, S>(cols: I) -> Result<Self, FrameError>
    where
        I: IntoIterator<Item = (S, Column)>,
        S: Into<String>,
    {
        let mut f = Frame::new();
        for (name, col) in cols {
            f.push_column(name, col)?;
        }
        Ok(f)
    }

    /// Number of rows (0 for a column-less frame).
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// `(rows, cols)` shape tuple.
    pub fn shape(&self) -> (usize, usize) {
        (self.n_rows(), self.n_cols())
    }

    /// Column names in layout order.
    pub fn column_names(&self) -> &[String] {
        &self.names
    }

    /// True if a column with `name` exists.
    pub fn has_column(&self, name: &str) -> bool {
        self.names.iter().any(|n| n == name)
    }

    fn index_of(&self, name: &str) -> Result<usize, FrameError> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| FrameError::UnknownColumn(name.to_string()))
    }

    /// Borrow a column by name.
    pub fn column(&self, name: &str) -> Result<&Column, FrameError> {
        Ok(&self.columns[self.index_of(name)?])
    }

    /// Append a column; must match the frame's row count (unless the frame
    /// is empty) and not duplicate an existing name.
    pub fn push_column<S: Into<String>>(
        &mut self,
        name: S,
        column: Column,
    ) -> Result<(), FrameError> {
        let name = name.into();
        if self.has_column(&name) {
            return Err(FrameError::DuplicateColumn(name));
        }
        if !self.columns.is_empty() && column.len() != self.n_rows() {
            return Err(FrameError::LengthMismatch {
                expected: self.n_rows(),
                found: column.len(),
            });
        }
        self.names.push(name);
        self.columns.push(column);
        Ok(())
    }

    /// Replace an existing column's data (same length required).
    pub fn replace_column(&mut self, name: &str, column: Column) -> Result<(), FrameError> {
        let idx = self.index_of(name)?;
        if column.len() != self.n_rows() {
            return Err(FrameError::LengthMismatch {
                expected: self.n_rows(),
                found: column.len(),
            });
        }
        self.columns[idx] = column;
        Ok(())
    }

    /// Remove and return a column.
    pub fn drop_column(&mut self, name: &str) -> Result<Column, FrameError> {
        let idx = self.index_of(name)?;
        self.names.remove(idx);
        Ok(self.columns.remove(idx))
    }

    /// Rename a column in place.
    pub fn rename_column(&mut self, from: &str, to: &str) -> Result<(), FrameError> {
        if self.has_column(to) {
            return Err(FrameError::DuplicateColumn(to.to_string()));
        }
        let idx = self.index_of(from)?;
        self.names[idx] = to.to_string();
        Ok(())
    }

    /// Float cell accessor (errors on wrong type or out-of-bounds row).
    pub fn f64_at(&self, name: &str, row: usize) -> Result<f64, FrameError> {
        let col = self.column(name)?;
        let data = col
            .as_f64()
            .map_err(|_| type_err(name, ColumnType::F64, col))?;
        data.get(row).copied().ok_or(FrameError::RowOutOfBounds {
            index: row,
            len: data.len(),
        })
    }

    /// Integer cell accessor.
    pub fn i64_at(&self, name: &str, row: usize) -> Result<i64, FrameError> {
        let col = self.column(name)?;
        let data = col
            .as_i64()
            .map_err(|_| type_err(name, ColumnType::I64, col))?;
        data.get(row).copied().ok_or(FrameError::RowOutOfBounds {
            index: row,
            len: data.len(),
        })
    }

    /// Boolean cell accessor.
    pub fn bool_at(&self, name: &str, row: usize) -> Result<bool, FrameError> {
        let col = self.column(name)?;
        let data = col
            .as_bool()
            .map_err(|_| type_err(name, ColumnType::Bool, col))?;
        data.get(row).copied().ok_or(FrameError::RowOutOfBounds {
            index: row,
            len: data.len(),
        })
    }

    /// String cell accessor.
    pub fn str_at(&self, name: &str, row: usize) -> Result<&str, FrameError> {
        let col = self.column(name)?;
        let data = col
            .as_str()
            .map_err(|_| type_err(name, ColumnType::Str, col))?;
        data.get(row)
            .map(String::as_str)
            .ok_or(FrameError::RowOutOfBounds {
                index: row,
                len: data.len(),
            })
    }

    /// Arbitrary cell as a [`Value`].
    pub fn value_at(&self, name: &str, row: usize) -> Result<Value, FrameError> {
        self.column(name)?
            .value(row)
            .ok_or(FrameError::RowOutOfBounds {
                index: row,
                len: self.n_rows(),
            })
    }

    /// New frame with only the named columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<Frame, FrameError> {
        let mut out = Frame::new();
        for &name in names {
            out.push_column(name, self.column(name)?.clone())?;
        }
        Ok(out)
    }

    /// New frame with the rows at `indices`, in that order (duplicates OK).
    pub fn take(&self, indices: &[usize]) -> Result<Frame, FrameError> {
        let mut out = Frame::new();
        for (name, col) in self.names.iter().zip(&self.columns) {
            out.push_column(name.clone(), col.take(indices)?)?;
        }
        Ok(out)
    }

    /// Keep rows where `pred(row_index)` is true.
    pub fn filter<P: FnMut(usize) -> bool>(&self, mut pred: P) -> Result<Frame, FrameError> {
        let indices: Vec<usize> = (0..self.n_rows()).filter(|&i| pred(i)).collect();
        self.take(&indices)
    }

    /// Keep rows where the mask is true; mask length must equal row count.
    pub fn filter_mask(&self, mask: &[bool]) -> Result<Frame, FrameError> {
        if mask.len() != self.n_rows() {
            return Err(FrameError::LengthMismatch {
                expected: self.n_rows(),
                found: mask.len(),
            });
        }
        self.filter(|i| mask[i])
    }

    /// Append the rows of `other`; schemas (names, order, types) must match.
    pub fn vstack(&mut self, other: &Frame) -> Result<(), FrameError> {
        if self.n_cols() == 0 {
            *self = other.clone();
            return Ok(());
        }
        if self.names != other.names {
            let missing = other
                .names
                .iter()
                .chain(self.names.iter())
                .find(|n| !self.has_column(n) || !other.has_column(n))
                .cloned()
                .unwrap_or_default();
            return Err(FrameError::UnknownColumn(missing));
        }
        // Validate all column types before mutating anything, so a failed
        // vstack leaves the frame untouched.
        for (a, b) in self.columns.iter().zip(&other.columns) {
            if a.column_type() != b.column_type() {
                return Err(type_err("<vstack>", a.column_type(), b));
            }
        }
        for (a, b) in self.columns.iter_mut().zip(&other.columns) {
            a.extend_from(b)?;
        }
        Ok(())
    }

    /// Extract named float-convertible columns as a row-major matrix
    /// (`rows × names.len()`); the workhorse for building ML feature
    /// matrices.
    pub fn to_matrix(&self, names: &[&str]) -> Result<(Vec<f64>, usize, usize), FrameError> {
        let rows = self.n_rows();
        let cols = names.len();
        let mut data = vec![0.0; rows * cols];
        for (j, &name) in names.iter().enumerate() {
            let col = self.column(name)?;
            let vals = col
                .to_f64_vec()
                .map_err(|_| type_err(name, ColumnType::F64, col))?;
            for (i, v) in vals.into_iter().enumerate() {
                data[i * cols + j] = v;
            }
        }
        Ok((data, rows, cols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::from_columns([
            ("name", Column::from_strs(&["a", "b", "c", "a"])),
            ("x", Column::F64(vec![1.0, 2.0, 3.0, 4.0])),
            ("n", Column::I64(vec![10, 20, 30, 40])),
            ("gpu", Column::Bool(vec![true, false, true, false])),
        ])
        .unwrap()
    }

    #[test]
    fn shape_and_names() {
        let f = sample();
        assert_eq!(f.shape(), (4, 4));
        assert_eq!(f.column_names(), &["name", "x", "n", "gpu"]);
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut f = sample();
        assert_eq!(
            f.push_column("x", Column::F64(vec![0.0; 4])),
            Err(FrameError::DuplicateColumn("x".into()))
        );
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut f = sample();
        assert!(matches!(
            f.push_column("bad", Column::F64(vec![1.0])),
            Err(FrameError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn accessors_and_errors() {
        let f = sample();
        assert_eq!(f.f64_at("x", 2).unwrap(), 3.0);
        assert_eq!(f.i64_at("n", 0).unwrap(), 10);
        assert!(f.bool_at("gpu", 0).unwrap());
        assert_eq!(f.str_at("name", 3).unwrap(), "a");
        assert!(matches!(
            f.f64_at("name", 0),
            Err(FrameError::TypeMismatch { .. })
        ));
        assert!(matches!(
            f.f64_at("x", 9),
            Err(FrameError::RowOutOfBounds { .. })
        ));
        assert!(matches!(
            f.f64_at("nope", 0),
            Err(FrameError::UnknownColumn(_))
        ));
    }

    #[test]
    fn select_take_filter() {
        let f = sample();
        let s = f.select(&["x", "name"]).unwrap();
        assert_eq!(s.column_names(), &["x", "name"]);
        let t = f.take(&[3, 0]).unwrap();
        assert_eq!(t.str_at("name", 0).unwrap(), "a");
        assert_eq!(t.f64_at("x", 0).unwrap(), 4.0);
        let g = f.filter(|i| f.bool_at("gpu", i).unwrap()).unwrap();
        assert_eq!(g.n_rows(), 2);
    }

    #[test]
    fn filter_mask_length_checked() {
        let f = sample();
        assert!(f.filter_mask(&[true, false]).is_err());
        let k = f.filter_mask(&[true, false, false, true]).unwrap();
        assert_eq!(k.n_rows(), 2);
    }

    #[test]
    fn vstack_matches_schema() {
        let mut f = sample();
        let g = sample();
        f.vstack(&g).unwrap();
        assert_eq!(f.n_rows(), 8);
        let mut h = sample();
        let mut wrong = sample();
        wrong.rename_column("x", "y").unwrap();
        assert!(h.vstack(&wrong).is_err());
        assert_eq!(h.n_rows(), 4, "failed vstack must not mutate");
    }

    #[test]
    fn vstack_type_conflict_leaves_frame_untouched() {
        let mut a = Frame::from_columns([("x", Column::F64(vec![1.0]))]).unwrap();
        let b = Frame::from_columns([("x", Column::I64(vec![1]))]).unwrap();
        assert!(a.vstack(&b).is_err());
        assert_eq!(a.n_rows(), 1);
        assert_eq!(a.column("x").unwrap().column_type(), ColumnType::F64);
    }

    #[test]
    fn to_matrix_row_major() {
        let f = sample();
        let (m, r, c) = f.to_matrix(&["x", "n", "gpu"]).unwrap();
        assert_eq!((r, c), (4, 3));
        assert_eq!(&m[0..3], &[1.0, 10.0, 1.0]);
        assert_eq!(&m[9..12], &[4.0, 40.0, 0.0]);
        assert!(f.to_matrix(&["name"]).is_err());
    }

    #[test]
    fn replace_and_drop_and_rename() {
        let mut f = sample();
        f.replace_column("x", Column::F64(vec![9.0; 4])).unwrap();
        assert_eq!(f.f64_at("x", 1).unwrap(), 9.0);
        assert!(f.replace_column("x", Column::F64(vec![1.0])).is_err());
        let dropped = f.drop_column("n").unwrap();
        assert_eq!(dropped.len(), 4);
        assert!(!f.has_column("n"));
        f.rename_column("x", "z").unwrap();
        assert!(f.has_column("z"));
        assert!(f.rename_column("z", "gpu").is_err());
    }
}
