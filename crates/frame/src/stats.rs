//! Column statistics used by the dataset normalisation step (§V-D of the
//! paper: "normalized by subtracting that feature's mean ... and dividing
//! them by its standard deviation").

use crate::column::Column;
use crate::frame::Frame;
use crate::FrameError;

/// Arithmetic mean; NaN for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation; NaN for an empty slice, 0 for length 1.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Per-feature normalisation parameters fitted on a training set and applied
/// to both train and test data (avoids test-set leakage).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ZScore {
    /// Fitted mean.
    pub mean: f64,
    /// Fitted standard deviation (clamped away from 0 at transform time).
    pub std: f64,
}

impl ZScore {
    /// Fit on a sample.
    pub fn fit(values: &[f64]) -> Self {
        Self {
            mean: mean(values),
            std: std_dev(values),
        }
    }

    /// Standardise a single value. Degenerate (zero/NaN std) features map to
    /// 0 so constant columns don't produce NaNs downstream.
    pub fn transform(&self, value: f64) -> f64 {
        if !self.std.is_finite() || self.std < 1e-12 {
            return 0.0;
        }
        (value - self.mean) / self.std
    }

    /// Invert [`ZScore::transform`].
    pub fn inverse(&self, z: f64) -> f64 {
        if !self.std.is_finite() || self.std < 1e-12 {
            return self.mean;
        }
        z * self.std + self.mean
    }
}

/// Per-column summary statistics (the `describe()` view).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSummary {
    /// Column name.
    pub name: String,
    /// Row count.
    pub count: usize,
    /// Mean (NaN for non-numeric columns).
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl Frame {
    /// Pandas-style `describe()`: summary statistics for every
    /// numeric-convertible column (string columns are skipped).
    pub fn describe(&self) -> Vec<ColumnSummary> {
        self.column_names()
            .iter()
            .filter_map(|name| {
                let values = self.column(name).ok()?.to_f64_vec().ok()?;
                let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                Some(ColumnSummary {
                    name: name.clone(),
                    count: values.len(),
                    mean: mean(&values),
                    std: std_dev(&values),
                    min,
                    max,
                })
            })
            .collect()
    }

    /// Fit a [`ZScore`] on a numeric column.
    pub fn zscore_fit(&self, column: &str) -> Result<ZScore, FrameError> {
        Ok(ZScore::fit(&self.column(column)?.to_f64_vec()?))
    }

    /// Replace a numeric column with its standardised values under `z`.
    pub fn zscore_apply(&mut self, column: &str, z: &ZScore) -> Result<(), FrameError> {
        let values = self.column(column)?.to_f64_vec()?;
        let transformed: Vec<f64> = values.iter().map(|&v| z.transform(v)).collect();
        self.replace_column(column, Column::F64(transformed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_std_basics() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn zscore_constant_column_maps_to_zero() {
        let z = ZScore::fit(&[3.0, 3.0, 3.0]);
        assert_eq!(z.transform(3.0), 0.0);
        assert_eq!(z.inverse(0.0), 3.0);
    }

    #[test]
    fn zscore_on_frame() {
        let mut f = Frame::from_columns([("x", Column::F64(vec![0.0, 10.0]))]).unwrap();
        let z = f.zscore_fit("x").unwrap();
        f.zscore_apply("x", &z).unwrap();
        assert!((f.f64_at("x", 0).unwrap() + 1.0).abs() < 1e-12);
        assert!((f.f64_at("x", 1).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn describe_skips_strings_and_summarises_numerics() {
        let f = Frame::from_columns([
            ("name", Column::from_strs(&["a", "b"])),
            ("x", Column::F64(vec![1.0, 3.0])),
            ("n", Column::I64(vec![10, 20])),
        ])
        .unwrap();
        let d = f.describe();
        assert_eq!(d.len(), 2, "string column skipped");
        let x = &d[0];
        assert_eq!(x.name, "x");
        assert_eq!(x.count, 2);
        assert_eq!(x.mean, 2.0);
        assert_eq!(x.min, 1.0);
        assert_eq!(x.max, 3.0);
        assert_eq!(d[1].mean, 15.0);
    }

    proptest! {
        #[test]
        fn zscore_round_trips(values in proptest::collection::vec(-1e6f64..1e6, 2..64), probe in -1e6f64..1e6) {
            let z = ZScore::fit(&values);
            let back = z.inverse(z.transform(probe));
            // Constant vectors legitimately collapse to the mean.
            if z.std > 1e-9 {
                prop_assert!((back - probe).abs() < 1e-6 * (1.0 + probe.abs()));
            }
        }

        #[test]
        fn standardised_sample_has_zero_mean_unit_std(values in proptest::collection::vec(-1e3f64..1e3, 8..128)) {
            let z = ZScore::fit(&values);
            prop_assume!(z.std > 1e-9);
            let t: Vec<f64> = values.iter().map(|&v| z.transform(v)).collect();
            prop_assert!(mean(&t).abs() < 1e-9);
            prop_assert!((std_dev(&t) - 1.0).abs() < 1e-9);
        }
    }
}
