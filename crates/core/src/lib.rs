//! `mphpc-core` — cross-architecture performance prediction of parallel
//! programs.
//!
//! This crate is the paper's contribution assembled as a library: given
//! hardware performance counters of an application run collected on *one*
//! architecture, predict its **Relative Performance Vector** (RPV) across a
//! set of architectures, and use those predictions to make multi-resource
//! scheduling decisions.
//!
//! The two-phase methodology of §IV maps onto two entry points:
//!
//! 1. **Data collection** — [`pipeline::collect`] runs the application ×
//!    input × scale × machine × repetition matrix through the architecture
//!    simulator and profiler and assembles the MP-HPC dataset
//!    (`mphpc_dataset::MpHpcDataset`, ~11k rows at full size).
//! 2. **Modelling** — [`pipeline::evaluate_models`] reproduces the Fig. 2
//!    comparison (mean / linear / decision forest / XGBoost under a 90-10
//!    split with 5-fold CV), and [`pipeline::train_predictor`] trains and
//!    packages the production model as a [`predictor::PerfPredictor`] that
//!    goes straight from a `RawProfile` to a predicted RPV.
//!
//! Downstream uses:
//! * [`selection`] — §VI-B's gain-based feature selection and top-k
//!   retraining study;
//! * [`schedbridge`] — §VII's scheduling experiment: build job templates
//!   from dataset rows + model predictions and compare the four
//!   machine-assignment strategies on makespan and bounded slowdown;
//! * [`fleet`] — crash-safe multi-process collection: shard the campaign
//!   through `mphpc-storage`'s claim/lease protocol so independent worker
//!   processes converge on the bit-identical single-process dataset and
//!   model even across `kill -9` and restarts.
//!
//! # Quickstart
//! ```no_run
//! use mphpc_core::prelude::*;
//!
//! // 1. Collect a (small) dataset.
//! let cfg = CollectionConfig::small(3, 2, 2, 42);
//! let dataset = collect(&cfg).unwrap();
//! // 2. Train the XGBoost-style model.
//! let predictor = train_predictor(&dataset, ModelKind::Gbt(Default::default()), 42).unwrap();
//! // 3. Predict an RPV from a single profile.
//! let profile = profile_one(AppKind::Amg, "-s 3", Scale::OneNode, SystemId::Ruby, 7).unwrap();
//! let rpv = predictor.predict_rpv(&profile).unwrap();
//! println!("predicted RPV relative to Ruby: {rpv:?}");
//! ```

#![warn(missing_docs)]

pub mod drift;
pub mod fleet;
pub mod pipeline;
pub mod predictor;
pub mod schedbridge;
pub mod selection;
pub mod serving;
pub mod watch;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use crate::pipeline::{
        collect, evaluate_models, profile_one, train_predictor, CollectionConfig, ModelEvaluation,
    };
    pub use crate::predictor::PerfPredictor;
    pub use crate::schedbridge::{
        run_scale_comparison, run_strategy_comparison, templates_from_dataset,
        templates_from_dataset_raw, PredictorRpv, ScaleOutcome, StrategyOutcome,
    };
    pub use crate::selection::{feature_selection_study, SelectionReport};
    pub use mphpc_archsim::SystemId;
    pub use mphpc_dataset::MpHpcDataset;
    pub use mphpc_ml::{ModelKind, Regressor};
    pub use mphpc_workloads::{AppKind, Scale};
}

pub use pipeline::{collect, evaluate_models, profile_one, train_predictor, CollectionConfig};
pub use predictor::PerfPredictor;
