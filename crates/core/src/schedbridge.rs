//! Bridge from the dataset + trained model to the scheduling simulation
//! (§VII).
//!
//! Each dataset row becomes a [`JobTemplate`]: the paired true runtimes on
//! all four systems drive the simulation clock, and the model's predicted
//! RPV (from that row's counters) drives the Model-based strategy — so a
//! wrong prediction really does cost simulated time.

use crate::predictor::PerfPredictor;
use mphpc_dataset::features::FEATURE_NAMES;
use mphpc_dataset::MpHpcDataset;
use mphpc_errors::MphpcError;
use mphpc_sched::dag::{simulate_workflows, Task, Workflow};
use mphpc_sched::engine::{simulate, SimConfig};
use mphpc_sched::strategy::{
    MachineAssigner, ModelBased, Oracle, RandomAssign, RoundRobin, UserRoundRobin,
};
use mphpc_sched::{
    sample_jobs, sample_jobs_indexed, simulate_scale, InlineRpv, JobTemplate, RpvProvider,
    ScaleStats,
};
use serde::{Deserialize, Serialize};

/// Result of one strategy's simulation (one bar of Figs. 7–8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyOutcome {
    /// Strategy name.
    pub strategy: String,
    /// Makespan in seconds.
    pub makespan: f64,
    /// Average bounded slowdown.
    pub avg_bounded_slowdown: f64,
    /// Jobs started per machine (Table-I order).
    pub jobs_per_machine: [u64; 4],
}

/// Build job templates from every dataset row, attaching the model's
/// prediction computed from that row's (already normalised at training
/// time) features. The whole dataset is predicted as one batch through
/// the compiled flat-ensemble engine (`mphpc_ml::compiled`), so template
/// construction scales to large run matrices.
pub fn templates_from_dataset(
    dataset: &MpHpcDataset,
    predictor: &PerfPredictor,
) -> Result<Vec<JobTemplate>, MphpcError> {
    let (mut templates, raw_rows) = templates_from_dataset_raw(dataset)?;
    let predictions = predictor.predict_features(&raw_rows)?;
    for (t, p) in templates.iter_mut().zip(predictions) {
        t.predicted_rpv = Some(p);
    }
    Ok(templates)
}

/// The un-predicted half of [`templates_from_dataset`]: one template per
/// dataset row with `predicted_rpv: None`, plus that row's raw feature
/// vector (un-normalised; predictors apply their own normaliser). This is
/// the input shape of the scale engine's inline-prediction path — RPVs are
/// looked up in batches at simulation decision points instead of being
/// precomputed, so the same workload can be driven against a local
/// predictor or a live serving endpoint ([`PredictorRpv`],
/// [`mphpc_sched::FederatedRpv`]).
pub fn templates_from_dataset_raw(
    dataset: &MpHpcDataset,
) -> Result<(Vec<JobTemplate>, Vec<[f64; 21]>), MphpcError> {
    let n = dataset.n_rows();
    if n == 0 {
        return Err(MphpcError::EmptyInput("templates_from_dataset: dataset"));
    }
    let mut raw_rows: Vec<[f64; 21]> = Vec::with_capacity(n);
    let cols: Vec<Vec<f64>> = FEATURE_NAMES
        .iter()
        .map(|&name| {
            dataset
                .frame
                .column(name)
                .and_then(|c| c.to_f64_vec())
                .map_err(MphpcError::from)
        })
        .collect::<Result<_, MphpcError>>()?;
    for i in 0..n {
        let mut row = [0.0; 21];
        for (j, col) in cols.iter().enumerate() {
            row[j] = col[i];
        }
        raw_rows.push(row);
    }

    let mut templates = Vec::with_capacity(n);
    for i in 0..n {
        let nodes = dataset.frame.f64_at("nodes", i)? as u32;
        let gpu_capable = dataset.frame.bool_at("gpu_capable", i)?;
        let mut runtimes = [0.0; 4];
        for (slot, sys) in runtimes.iter_mut().zip(mphpc_archsim::SystemId::TABLE1) {
            *slot = dataset.runtime_on(i, sys)?;
        }
        templates.push(JobTemplate {
            nodes_required: nodes.max(1),
            gpu_capable,
            runtimes,
            predicted_rpv: None,
        });
    }
    Ok((templates, raw_rows))
}

/// [`RpvProvider`] over an in-process [`PerfPredictor`]: the local leg of
/// predictor federation, and the fallback a [`mphpc_sched::FederatedRpv`]
/// degrades to. Produces bit-identical outputs to
/// [`templates_from_dataset`]'s precomputation (same
/// `predict_features` call on the same raw rows), which is what lets the
/// inline-predicted scale engine reproduce the reference engine's
/// schedule exactly.
pub struct PredictorRpv<'a> {
    predictor: &'a PerfPredictor,
}

impl<'a> PredictorRpv<'a> {
    /// Wrap a trained predictor as a batched RPV lookup service.
    pub fn new(predictor: &'a PerfPredictor) -> Self {
        Self { predictor }
    }
}

impl RpvProvider for PredictorRpv<'_> {
    fn predict(&mut self, rows: &[&[f64]]) -> Result<Vec<[f64; 4]>, MphpcError> {
        let mut raw = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != FEATURE_NAMES.len() {
                return Err(MphpcError::DimensionMismatch {
                    context: "PredictorRpv::predict",
                    expected: FEATURE_NAMES.len(),
                    found: row.len(),
                });
            }
            let mut r = [0.0; 21];
            r.copy_from_slice(row);
            raw.push(r);
        }
        self.predictor.predict_features(&raw)
    }

    fn name(&self) -> &str {
        "local-predictor"
    }
}

/// Run the four paper strategies (plus the oracle upper bound) on a
/// workload of `n_jobs` sampled from `templates`.
///
/// `arrival_rate` is jobs/second (0 = all submitted at time zero, as in a
/// saturated backlog).
pub fn run_strategy_comparison(
    templates: &[JobTemplate],
    n_jobs: usize,
    arrival_rate: f64,
    seed: u64,
) -> Result<Vec<StrategyOutcome>, MphpcError> {
    let jobs = sample_jobs(templates, n_jobs, arrival_rate, seed)?;
    let config = SimConfig::default();
    let mut strategies = paper_strategies(seed ^ 0x5EED);
    strategies
        .iter_mut()
        .map(|s| {
            let r = simulate(&jobs, s.as_mut(), &config)?;
            Ok(StrategyOutcome {
                strategy: r.strategy.to_string(),
                makespan: r.makespan,
                avg_bounded_slowdown: r.avg_bounded_slowdown,
                jobs_per_machine: r.jobs_per_machine,
            })
        })
        .collect()
}

/// The four paper strategies plus the oracle upper bound, in Figs. 7–8
/// order. `random_seed` seeds the Random strategy only — every other
/// strategy is deterministic.
pub fn paper_strategies(random_seed: u64) -> Vec<Box<dyn MachineAssigner>> {
    vec![
        Box::new(RoundRobin::new()),
        Box::new(RandomAssign::new(random_seed)),
        Box::new(UserRoundRobin::new()),
        Box::new(ModelBased::new()),
        Box::new(Oracle::new()),
    ]
}

/// One strategy's run through the scale engine: the Figs. 7–8 numbers
/// plus the engine's own counters and the wall-clock the simulation took.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleOutcome {
    /// The same fields the reference comparison reports.
    pub outcome: StrategyOutcome,
    /// Calendar-queue / incremental-backfill / prediction counters.
    pub stats: ScaleStats,
    /// Wall-clock seconds for this strategy's simulation alone.
    pub wall_secs: f64,
}

/// [`run_strategy_comparison`] on the million-job scale engine
/// ([`simulate_scale`]), with RPVs looked up inline through `provider` in
/// one batched call per decision point instead of precomputed per
/// template.
///
/// `features[t]` is the raw feature row of `templates[t]`
/// (the [`templates_from_dataset_raw`] pairing); each sampled job carries
/// its template's row to the provider. Pass templates whose
/// `predicted_rpv` is `None` to exercise the inline path — templates that
/// already carry a prediction are left untouched, so the provider is only
/// consulted for the rest. With a [`PredictorRpv`] over the same trained
/// model, outcomes are bit-identical to [`run_strategy_comparison`] on
/// [`templates_from_dataset`] templates.
pub fn run_scale_comparison(
    templates: &[JobTemplate],
    features: &[[f64; 21]],
    provider: &mut dyn RpvProvider,
    n_jobs: usize,
    arrival_rate: f64,
    seed: u64,
) -> Result<Vec<ScaleOutcome>, MphpcError> {
    if templates.len() != features.len() {
        return Err(MphpcError::DimensionMismatch {
            context: "run_scale_comparison: one feature row per template",
            expected: templates.len(),
            found: features.len(),
        });
    }
    let (jobs, indices) = sample_jobs_indexed(templates, n_jobs, arrival_rate, seed)?;
    let rows: Vec<Vec<f64>> = indices.iter().map(|&t| features[t].to_vec()).collect();
    let config = SimConfig::default();
    let mut outcomes = Vec::with_capacity(5);
    for s in paper_strategies(seed ^ 0x5EED).iter_mut() {
        let started = std::time::Instant::now();
        let inline = InlineRpv {
            features: &rows,
            provider: &mut *provider,
        };
        let (r, stats) = simulate_scale(&jobs, s.as_mut(), &config, Some(inline))?;
        outcomes.push(ScaleOutcome {
            outcome: StrategyOutcome {
                strategy: r.strategy.to_string(),
                makespan: r.makespan,
                avg_bounded_slowdown: r.avg_bounded_slowdown,
                jobs_per_machine: r.jobs_per_machine,
            },
            stats,
            wall_secs: started.elapsed().as_secs_f64(),
        });
    }
    Ok(outcomes)
}

/// Result of one strategy on a workflow workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowOutcome {
    /// Strategy name.
    pub strategy: String,
    /// Overall makespan in seconds.
    pub makespan: f64,
    /// Mean workflow turnaround (submission → last task done).
    pub mean_workflow_span: f64,
}

/// Build fork-join workflows from dataset-derived templates: a source task,
/// `width` parallel middle tasks, and a sink — the shape of the paper's
/// motivating "ensembles of tasks in a pipeline" (simulation → analysis →
/// reduction).
pub fn workflows_from_templates(
    templates: &[JobTemplate],
    n_workflows: usize,
    width: usize,
    arrival_rate: f64,
    seed: u64,
) -> Result<Vec<Workflow>, MphpcError> {
    use mphpc_archsim::noise::derive_seed;
    if templates.is_empty() {
        return Err(MphpcError::EmptyInput(
            "workflows_from_templates: no job templates",
        ));
    }
    let arrivals = mphpc_sched::poisson_arrivals(n_workflows, arrival_rate, seed ^ 0xDA6);
    Ok((0..n_workflows)
        .map(|wi| {
            let pick = |slot: u64| {
                let idx =
                    derive_seed(seed, &[0xF10u64, wi as u64, slot]) as usize % templates.len();
                &templates[idx]
            };
            let task_from = |id: u32, deps: Vec<u32>, t: &JobTemplate| Task {
                id,
                deps,
                nodes_required: t.nodes_required,
                gpu_capable: t.gpu_capable,
                runtimes: t.runtimes,
                predicted_rpv: t.predicted_rpv,
            };
            let mut tasks = vec![task_from(0, vec![], pick(0))];
            let mut mids = Vec::new();
            for m in 0..width as u32 {
                tasks.push(task_from(1 + m, vec![0], pick(1 + m as u64)));
                mids.push(1 + m);
            }
            tasks.push(task_from(1 + width as u32, mids, pick(99)));
            Workflow {
                submit_time: arrivals[wi],
                tasks,
            }
        })
        .collect())
}

/// Compare the five strategies on a workflow workload.
pub fn run_workflow_comparison(workflows: &[Workflow]) -> Result<Vec<WorkflowOutcome>, MphpcError> {
    let config = SimConfig::default();
    let mut strategies: Vec<Box<dyn MachineAssigner>> = vec![
        Box::new(RoundRobin::new()),
        Box::new(RandomAssign::new(0x10F)),
        Box::new(UserRoundRobin::new()),
        Box::new(ModelBased::new()),
        Box::new(Oracle::new()),
    ];
    strategies
        .iter_mut()
        .map(|s| {
            let r = simulate_workflows(workflows, s.as_mut(), &config)?;
            Ok(WorkflowOutcome {
                strategy: r.strategy.to_string(),
                makespan: r.makespan,
                mean_workflow_span: r.mean_workflow_span,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{collect, train_predictor, CollectionConfig};
    use mphpc_ml::ModelKind;

    fn setup() -> (MpHpcDataset, PerfPredictor) {
        let d = collect(&CollectionConfig::small(5, 2, 1, 31)).unwrap();
        let p = train_predictor(&d, ModelKind::Gbt(Default::default()), 3).unwrap();
        (d, p)
    }

    #[test]
    fn templates_cover_every_row() {
        let (d, p) = setup();
        let templates = templates_from_dataset(&d, &p).unwrap();
        assert_eq!(templates.len(), d.n_rows());
        for t in &templates {
            assert!(t.nodes_required >= 1 && t.nodes_required <= 2);
            assert!(t.runtimes.iter().all(|r| *r > 0.0));
            assert!(t.predicted_rpv.is_some());
        }
    }

    #[test]
    fn comparison_runs_all_five_strategies() {
        let (d, p) = setup();
        let templates = templates_from_dataset(&d, &p).unwrap();
        let outcomes = run_strategy_comparison(&templates, 400, 0.0, 7).unwrap();
        let names: Vec<&str> = outcomes.iter().map(|o| o.strategy.as_str()).collect();
        assert_eq!(
            names,
            vec!["Round-Robin", "Random", "User+RR", "Model-based", "Oracle"]
        );
        for o in &outcomes {
            assert!(o.makespan > 0.0);
            assert!(o.avg_bounded_slowdown >= 1.0);
            assert_eq!(o.jobs_per_machine.iter().sum::<u64>(), 400);
        }
    }

    #[test]
    fn workflow_comparison_runs_and_orders() {
        let (d, p) = setup();
        let templates = templates_from_dataset(&d, &p).unwrap();
        let workflows = workflows_from_templates(&templates, 60, 3, 0.0, 5).unwrap();
        assert_eq!(workflows.len(), 60);
        for w in &workflows {
            assert!(w.validate().is_ok());
            assert_eq!(w.tasks.len(), 5);
        }
        let outcomes = run_workflow_comparison(&workflows).unwrap();
        assert_eq!(outcomes.len(), 5);
        let get = |n: &str| outcomes.iter().find(|o| o.strategy == n).unwrap();
        assert!(
            get("Model-based").mean_workflow_span <= get("Random").mean_workflow_span * 1.05,
            "model {} vs random {}",
            get("Model-based").mean_workflow_span,
            get("Random").mean_workflow_span
        );
    }

    #[test]
    fn scale_engine_with_inline_prediction_matches_reference_bitwise() {
        let (d, p) = setup();
        let reference = {
            let templates = templates_from_dataset(&d, &p).unwrap();
            run_strategy_comparison(&templates, 400, 0.05, 7).unwrap()
        };
        let (raw_templates, features) = templates_from_dataset_raw(&d).unwrap();
        assert!(raw_templates.iter().all(|t| t.predicted_rpv.is_none()));
        assert_eq!(raw_templates.len(), features.len());
        let mut provider = PredictorRpv::new(&p);
        let scale =
            run_scale_comparison(&raw_templates, &features, &mut provider, 400, 0.05, 7).unwrap();
        assert_eq!(scale.len(), reference.len());
        for (s, r) in scale.iter().zip(&reference) {
            // Bit-identical, not approximately equal: the inline provider
            // runs the very predict_features call the precomputation ran,
            // and the scale engine replays the reference schedule exactly.
            assert_eq!(s.outcome, *r, "{} diverged", r.strategy);
            assert_eq!(s.stats.predict_rows, 400, "{}: every job predicted", r.strategy);
            assert!(s.stats.predict_batches > 0);
        }
    }

    #[test]
    fn model_based_beats_random_and_oracle_beats_all() {
        let (d, p) = setup();
        let templates = templates_from_dataset(&d, &p).unwrap();
        let outcomes = run_strategy_comparison(&templates, 1500, 0.0, 11).unwrap();
        let get = |n: &str| outcomes.iter().find(|o| o.strategy == n).unwrap().makespan;
        assert!(
            get("Model-based") < get("Random"),
            "model {} vs random {}",
            get("Model-based"),
            get("Random")
        );
        assert!(get("Oracle") <= get("Model-based") * 1.05);
    }
}
