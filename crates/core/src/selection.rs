//! Feature selection and top-k retraining (§VI-B).
//!
//! "To select the best model and feature set, we first train all the models
//! on all the features. After training we select the best set of features
//! using those reported by XGBoost and the decision forest ... These
//! features are then used to re-train all the models again."

use mphpc_dataset::split::random_split;
use mphpc_dataset::MpHpcDataset;
use mphpc_errors::{MphpcError, ResultExt};
use mphpc_ml::{mae, same_order_score, FeatureImportance, ModelKind, Regressor};
use serde::{Deserialize, Serialize};

/// One row of the selection study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionEntry {
    /// Model family.
    pub model: String,
    /// Test MAE with all 21 features.
    pub mae_all_features: f64,
    /// Test MAE after top-k selection.
    pub mae_selected: f64,
    /// Test SOS with all features.
    pub sos_all_features: f64,
    /// Test SOS after selection.
    pub sos_selected: f64,
}

/// The study's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionReport {
    /// Names of the selected features, in importance order.
    pub selected_features: Vec<String>,
    /// XGBoost's full importance ranking (Fig. 6's data).
    pub importance: FeatureImportance,
    /// Per-model before/after metrics.
    pub entries: Vec<SelectionEntry>,
}

/// Run the §VI-B study: train everything on all features, rank features by
/// the union of XGBoost's and the forest's gain importances, keep the top
/// `k`, and retrain everything on the reduced set.
pub fn feature_selection_study(
    dataset: &MpHpcDataset,
    k: usize,
    seed: u64,
) -> Result<SelectionReport, MphpcError> {
    if dataset.n_rows() < 20 {
        return Err(MphpcError::InvalidDataset(format!(
            "feature_selection_study needs at least 20 rows, got {}",
            dataset.n_rows()
        )));
    }
    let (train_rows, test_rows) = random_split(dataset, 0.1, seed)?;
    let normalizer = dataset.fit_normalizer(&train_rows)?;
    let train = dataset.to_ml(&train_rows, &normalizer)?;
    let test = dataset.to_ml(&test_rows, &normalizer)?;

    let kinds = ModelKind::paper_lineup();
    // Full-feature pass.
    let full_models: Vec<_> = kinds
        .iter()
        .map(|kind| {
            kind.fit(&train)
                .context(format!("fitting {} on all features", kind.name()))
        })
        .collect::<Result<_, MphpcError>>()?;

    // Importances from the tree ensembles; average the two rankings.
    let gbt_imp = full_models
        .iter()
        .find_map(|m| match m {
            mphpc_ml::TrainedModel::Gbt(_) => m.feature_importance(),
            _ => None,
        })
        .ok_or_else(|| MphpcError::InvalidDataset("lineup must include XGBoost".into()))?;
    let forest_imp = full_models
        .iter()
        .find_map(|m| match m {
            mphpc_ml::TrainedModel::Forest(_) => m.feature_importance(),
            _ => None,
        })
        .ok_or_else(|| {
            MphpcError::InvalidDataset("lineup must include the decision forest".into())
        })?;
    let combined: Vec<f64> = gbt_imp
        .scores
        .iter()
        .zip(&forest_imp.scores)
        .map(|(a, b)| (a + b) / 2.0)
        .collect();
    let mut order: Vec<usize> = (0..combined.len()).collect();
    order.sort_by(|&a, &b| {
        combined[b]
            .partial_cmp(&combined[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let k = k.clamp(1, order.len());
    let mut selected: Vec<usize> = order[..k].to_vec();
    selected.sort_unstable();

    let train_sel = train.select_features(&selected);
    let test_sel = test.select_features(&selected);

    let mut entries = Vec::with_capacity(kinds.len());
    for (kind, full_model) in kinds.iter().zip(&full_models) {
        let full_pred = full_model.predict(&test.x)?;
        let sel_model = kind
            .fit(&train_sel)
            .context(format!("refitting {} on selected features", kind.name()))?;
        let sel_pred = sel_model.predict(&test_sel.x)?;
        entries.push(SelectionEntry {
            model: kind.name().to_string(),
            mae_all_features: mae(&full_pred, &test.y)?,
            mae_selected: mae(&sel_pred, &test_sel.y)?,
            sos_all_features: same_order_score(&full_pred, &test.y)?,
            sos_selected: same_order_score(&sel_pred, &test_sel.y)?,
        });
    }

    Ok(SelectionReport {
        selected_features: selected
            .iter()
            .map(|&i| train.feature_names[i].clone())
            .collect(),
        importance: gbt_imp,
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{collect, CollectionConfig};

    #[test]
    fn study_selects_and_retrains() {
        let d = collect(&CollectionConfig::small(4, 2, 2, 41)).unwrap();
        let report = feature_selection_study(&d, 10, 5).unwrap();
        assert_eq!(report.selected_features.len(), 10);
        assert_eq!(report.entries.len(), 4);
        assert_eq!(report.importance.names.len(), 21);
        // Selected features exist in the feature list.
        for f in &report.selected_features {
            assert!(report.importance.names.contains(f), "{f}");
        }
        // Selection should not catastrophically hurt the tree models.
        let gbt = report
            .entries
            .iter()
            .find(|e| e.model == "XGBoost")
            .unwrap();
        assert!(gbt.mae_selected < gbt.mae_all_features * 2.5 + 0.05);
    }

    #[test]
    fn k_is_clamped() {
        let d = collect(&CollectionConfig::small(3, 2, 1, 43)).unwrap();
        let report = feature_selection_study(&d, 500, 1).unwrap();
        assert_eq!(report.selected_features.len(), 21);
    }

    #[test]
    fn tiny_dataset_rejected() {
        let d = collect(&CollectionConfig::small(1, 1, 1, 44)).unwrap();
        assert!(feature_selection_study(&d, 5, 1).is_err());
    }
}
