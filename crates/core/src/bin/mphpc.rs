//! `mphpc` — command-line interface to the cross-architecture performance
//! prediction pipeline.
//!
//! Subcommands mirror the deployment workflow:
//!
//! ```text
//! mphpc collect --out dataset.csv [--apps 6] [--inputs 2] [--reps 2] [--seed N]
//! mphpc train   --dataset dataset.csv --out model.json [--model gbt|forest|linear|mean]
//! mphpc predict --model model.json --app AMG --input "-s 3" --scale 1node --machine Ruby
//! mphpc sched   --dataset dataset.csv --model model.json [--jobs 20000]
//! mphpc pipeline [--apps 6] [--inputs 2] [--reps 2] [--jobs 2000] [--seed N]
//! mphpc serve   --model model.json [--addr 127.0.0.1:8077] [--shards N]
//! mphpc watch   --store store/ --model model.json [--addr 127.0.0.1:8077] [--ticks N]
//! mphpc info
//! ```
//!
//! Every subcommand accepts `--telemetry off|summary|jsonl|trace` to record
//! hierarchical span timings and counters across training, inference, and
//! simulation (see DESIGN.md §12).

use mphpc_archsim::SystemId;
use mphpc_core::fleet;
use mphpc_core::pipeline::{
    collect, evaluate_models, profile_one, train_predictor, CollectionConfig,
};
use mphpc_core::predictor::PerfPredictor;
use mphpc_core::schedbridge::{run_strategy_comparison, templates_from_dataset};
use mphpc_dataset::MpHpcDataset;
use mphpc_errors::MphpcError;
use mphpc_ml::{ModelKind, Regressor};
use mphpc_workloads::{all_apps, app_by_name, Scale};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let opts = parse_opts(&args[1..]);
    let result = set_telemetry(&opts).and_then(|()| match command.as_str() {
        "collect" => cmd_collect(&opts),
        "train" => cmd_train(&opts),
        "predict" => cmd_predict(&opts),
        "sched" => cmd_sched(&opts),
        "pipeline" => cmd_pipeline(&opts),
        "serve" => cmd_serve(&opts),
        "watch" => cmd_watch(&opts),
        "fleet" => cmd_fleet(&args[1..], &opts),
        "info" => cmd_info(),
        "--help" | "-h" | "help" => {
            usage();
            Ok(())
        }
        other => Err(MphpcError::InvalidArgument(format!(
            "unknown command '{other}'"
        ))),
    });
    mphpc_telemetry::flush("mphpc");
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // Print the whole context chain, outermost frame first, so a
            // failure deep in the pipeline still names the boundary that
            // caught it.
            eprintln!("{}", e.render_chain());
            ExitCode::FAILURE
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "mphpc — cross-architecture performance prediction

USAGE:
  mphpc collect --out <csv> [--apps N] [--inputs N] [--reps N] [--seed N]
  mphpc train   --dataset <csv> --out <json> [--model gbt|forest|linear|mean] [--seed N]
  mphpc predict --model <json> --app <name> --input <cfg> --scale 1core|1node|2node --machine <name>
  mphpc sched   --dataset <csv> --model <json> [--jobs N] [--rate R] [--seed N]
  mphpc pipeline [--apps N] [--inputs N] [--reps N] [--jobs N] [--rate R] [--seed N]
  mphpc serve   --model <json> [--addr H:P] [--shards N] [--max-batch N] [--linger-us N]
                [--queue-cap N] [--deadline-ms N] [--max-conns N] [--read-deadline-ms N]
                [--idle-timeout-ms N] [--poller epoll|poll]
  mphpc watch   --store <dir> --model <json> [--addr H:P] [--name <model>] [--ticks N]
                [--poll-ms N] [--holdout N] [--epsilon E] [--extra N] [--min-rows N]
                [--min-shadow-rows N] [--shadow-wait-ms N] [--rollback-window-ms N]
                [--rollback-errors N] [--drift-window N]
  mphpc fleet init   --store <dir> [--apps N] [--inputs N] [--reps N] [--seed N]
                     [--shards N] [--model gbt|forest|linear|mean|none] [--ttl-ms N]
  mphpc fleet work   --store <dir> --worker <id>
  mphpc fleet run    --store <dir> [--workers N] [--out <csv>] [--model-out <json>]
  mphpc fleet merge  --store <dir> [--out <csv>] [--model-out <json>]
  mphpc fleet status --store <dir>
  mphpc info

Common options:
  --telemetry off|summary|jsonl|trace   record span timings and counters"
    );
    ExitCode::FAILURE
}

fn parse_opts(args: &[String]) -> HashMap<String, String> {
    let mut opts = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let value = args.get(i + 1).cloned().unwrap_or_default();
            opts.insert(key.to_string(), value);
            i += 2;
        } else {
            i += 1;
        }
    }
    opts
}

/// Apply `--telemetry <mode>` (default: off) before the command runs.
fn set_telemetry(opts: &HashMap<String, String>) -> Result<(), MphpcError> {
    let Some(word) = opts.get("telemetry") else {
        return Ok(());
    };
    let mode = mphpc_telemetry::TelemetryMode::parse(word).ok_or_else(|| {
        MphpcError::InvalidArgument(format!(
            "unknown telemetry mode '{word}' (use off|summary|jsonl|trace)"
        ))
    })?;
    mphpc_telemetry::set_mode(mode);
    Ok(())
}

fn req<'a>(opts: &'a HashMap<String, String>, key: &str) -> Result<&'a str, MphpcError> {
    opts.get(key)
        .map(String::as_str)
        .filter(|v| !v.is_empty())
        .ok_or_else(|| MphpcError::InvalidArgument(format!("missing required option --{key}")))
}

fn seed(opts: &HashMap<String, String>) -> u64 {
    opts.get("seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024)
}

fn cmd_collect(opts: &HashMap<String, String>) -> Result<(), MphpcError> {
    let out = req(opts, "out")?;
    let n_apps: usize = opts.get("apps").and_then(|s| s.parse().ok()).unwrap_or(20);
    let inputs: Option<usize> = opts.get("inputs").and_then(|s| s.parse().ok());
    let reps: u32 = opts.get("reps").and_then(|s| s.parse().ok()).unwrap_or(2);
    let cfg = CollectionConfig {
        apps: Some(
            mphpc_workloads::AppKind::ALL
                .into_iter()
                .take(n_apps.clamp(1, 20))
                .collect(),
        ),
        inputs_per_app: inputs,
        reps,
        seed: seed(opts),
    };
    eprintln!("collecting {} runs ...", cfg.specs().len());
    let dataset = collect(&cfg)?;
    dataset.write_csv(out)?;
    println!("wrote {} rows to {out}", dataset.n_rows());
    Ok(())
}

fn parse_model(word: Option<&String>) -> Result<ModelKind, MphpcError> {
    fleet::model_kind_from_name(word.map(String::as_str).unwrap_or("gbt"))
}

fn cmd_train(opts: &HashMap<String, String>) -> Result<(), MphpcError> {
    let dataset = MpHpcDataset::read_csv(req(opts, "dataset")?)?;
    let out = req(opts, "out")?;
    let kind = parse_model(opts.get("model"))?;
    eprintln!("training {} on {} rows ...", kind.name(), dataset.n_rows());
    let predictor = train_predictor(&dataset, kind, seed(opts))?;
    // Atomic: a crash (or a concurrent `mphpc serve` loading the model)
    // must never observe a half-written export.
    mphpc_storage::atomic_write_file(out, predictor.to_json()?.as_bytes())
        .map_err(|e| MphpcError::io(out, e))?;
    println!("wrote {} model to {out}", kind.name());
    Ok(())
}

fn parse_scale(word: &str) -> Result<Scale, MphpcError> {
    match word {
        "1core" => Ok(Scale::OneCore),
        "1node" => Ok(Scale::OneNode),
        "2node" | "2nodes" => Ok(Scale::TwoNodes),
        other => Err(MphpcError::InvalidArgument(format!(
            "unknown scale '{other}' (use 1core|1node|2node)"
        ))),
    }
}

fn parse_machine(word: &str) -> Result<SystemId, MphpcError> {
    SystemId::TABLE1
        .into_iter()
        .find(|s| s.name().eq_ignore_ascii_case(word))
        .ok_or_else(|| {
            MphpcError::InvalidArgument(format!(
                "unknown machine '{word}' (Quartz|Ruby|Lassen|Corona)"
            ))
        })
}

fn cmd_predict(opts: &HashMap<String, String>) -> Result<(), MphpcError> {
    let model_path = req(opts, "model")?;
    let json = std::fs::read_to_string(model_path).map_err(|e| MphpcError::io(model_path, e))?;
    let predictor = PerfPredictor::from_json(&json)?;
    let app = app_by_name(req(opts, "app")?).ok_or_else(|| {
        MphpcError::InvalidArgument("unknown application (see `mphpc info`)".into())
    })?;
    let input = req(opts, "input")?;
    let scale = parse_scale(req(opts, "scale")?)?;
    let machine = parse_machine(req(opts, "machine")?)?;

    eprintln!(
        "profiling {} {input} at {} on {} ...",
        app.name(),
        scale.label(),
        machine.name()
    );
    let profile = profile_one(app.spec.kind, input, scale, machine, seed(opts))?;
    let rpv = predictor.predict_rpv(&profile)?;

    println!(
        "predicted relative runtimes (vs {}, lower = faster), model = {}:",
        machine.name(),
        predictor.model().model_name()
    );
    for (sys, v) in SystemId::TABLE1.iter().zip(rpv) {
        println!("  {:<8} {v:.3}", sys.name());
    }
    let best = SystemId::TABLE1[mphpc_dataset::rpv::argmin(&rpv).unwrap()];
    println!("fastest predicted system: {}", best.name());
    Ok(())
}

fn cmd_sched(opts: &HashMap<String, String>) -> Result<(), MphpcError> {
    let dataset = MpHpcDataset::read_csv(req(opts, "dataset")?)?;
    let model_path = req(opts, "model")?;
    let json = std::fs::read_to_string(model_path).map_err(|e| MphpcError::io(model_path, e))?;
    let predictor = PerfPredictor::from_json(&json)?;
    let n_jobs: usize = opts
        .get("jobs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let rate: f64 = opts.get("rate").and_then(|s| s.parse().ok()).unwrap_or(0.0);

    let templates = templates_from_dataset(&dataset, &predictor)?;
    eprintln!("simulating {n_jobs} jobs under 5 strategies ...");
    let outcomes = run_strategy_comparison(&templates, n_jobs, rate, seed(opts))?;
    println!(
        "{:<14} {:>12} {:>22}",
        "strategy", "makespan (h)", "avg bounded slowdown"
    );
    for o in &outcomes {
        println!(
            "{:<14} {:>12.3} {:>22.2}",
            o.strategy,
            o.makespan / 3600.0,
            o.avg_bounded_slowdown
        );
    }
    Ok(())
}

/// End-to-end demo on a synthetic campaign: collect → evaluate → train →
/// schedule, all in one process — the run that exercises every
/// instrumented layer (training rounds, batch inference, sim events), so
/// `mphpc pipeline --telemetry summary` prints the full span tree.
fn cmd_pipeline(opts: &HashMap<String, String>) -> Result<(), MphpcError> {
    let _span = mphpc_telemetry::span!("pipeline");
    let n_apps: usize = opts.get("apps").and_then(|s| s.parse().ok()).unwrap_or(6);
    let inputs: usize = opts.get("inputs").and_then(|s| s.parse().ok()).unwrap_or(2);
    let reps: u32 = opts.get("reps").and_then(|s| s.parse().ok()).unwrap_or(2);
    let n_jobs: usize = opts
        .get("jobs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let rate: f64 = opts.get("rate").and_then(|s| s.parse().ok()).unwrap_or(0.0);
    let seed = seed(opts);

    let cfg = CollectionConfig::small(n_apps.clamp(1, 20), inputs, reps, seed);
    eprintln!("collecting {} runs ...", cfg.specs().len());
    let dataset = collect(&cfg)?;

    let kind = parse_model(opts.get("model"))?;
    eprintln!(
        "evaluating {} on {} rows ...",
        kind.name(),
        dataset.n_rows()
    );
    let evals = evaluate_models(&dataset, &[kind], seed)?;
    for e in &evals {
        println!(
            "{:<10} test MAE {:.4}  pooled R2 {:.4}  per-output R2 {:?}",
            e.model,
            e.test_mae,
            e.test_r2,
            e.test_r2_per_output
                .iter()
                .map(|v| (v * 1e4).round() / 1e4)
                .collect::<Vec<_>>()
        );
    }

    let predictor = train_predictor(&dataset, kind, seed)?;
    let templates = templates_from_dataset(&dataset, &predictor)?;
    eprintln!("simulating {n_jobs} jobs under 5 strategies ...");
    let outcomes = run_strategy_comparison(&templates, n_jobs, rate, seed)?;
    println!(
        "{:<14} {:>12} {:>22}",
        "strategy", "makespan (h)", "avg bounded slowdown"
    );
    for o in &outcomes {
        println!(
            "{:<14} {:>12.3} {:>22.2}",
            o.strategy,
            o.makespan / 3600.0,
            o.avg_bounded_slowdown
        );
    }
    Ok(())
}

/// Host a trained model over HTTP: load the `mphpc train` export, start
/// the micro-batching server, and block until `POST /shutdown` drains it.
fn cmd_serve(opts: &HashMap<String, String>) -> Result<(), MphpcError> {
    let model_path = req(opts, "model")?;
    let json = std::fs::read_to_string(model_path).map_err(|e| MphpcError::io(model_path, e))?;
    let registry = std::sync::Arc::new(mphpc_serve::ModelRegistry::new(
        mphpc_core::serving::predictor_loader(),
    ));
    let loaded = registry.load_json("default", &json)?;
    eprintln!(
        "loaded {} ({}, {} features) from {model_path}",
        loaded.tag(),
        loaded.model.kind(),
        loaded.model.n_features()
    );

    let mut cfg = mphpc_serve::ServeConfig {
        addr: opts
            .get("addr")
            .filter(|a| !a.is_empty())
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:8077".to_string()),
        ..Default::default()
    };
    if let Some(n) = opts.get("shards").and_then(|s| s.parse().ok()) {
        cfg.shards = n;
    }
    if let Some(n) = opts.get("max-conns").and_then(|s| s.parse().ok()) {
        cfg.max_conns = n;
    }
    if let Some(ms) = opts.get("read-deadline-ms").and_then(|s| s.parse().ok()) {
        cfg.read_deadline = std::time::Duration::from_millis(ms);
    }
    if let Some(ms) = opts.get("idle-timeout-ms").and_then(|s| s.parse().ok()) {
        cfg.idle_timeout = std::time::Duration::from_millis(ms);
    }
    match opts.get("poller").map(String::as_str) {
        None | Some("epoll") => {}
        Some("poll") => cfg.force_poll = true,
        Some(other) => {
            return Err(MphpcError::InvalidArgument(format!(
                "unknown poller '{other}' (use epoll|poll)"
            )))
        }
    }
    if let Some(n) = opts.get("max-batch").and_then(|s| s.parse().ok()) {
        cfg.batch.max_batch = n;
    }
    if let Some(us) = opts.get("linger-us").and_then(|s| s.parse().ok()) {
        cfg.batch.linger = std::time::Duration::from_micros(us);
    }
    if let Some(n) = opts.get("queue-cap").and_then(|s| s.parse().ok()) {
        cfg.batch.queue_cap = n;
    }
    if let Some(ms) = opts.get("deadline-ms").and_then(|s| s.parse().ok()) {
        cfg.batch.deadline = std::time::Duration::from_millis(ms);
    }

    let handle = mphpc_serve::serve(cfg, registry)?;
    // Scripts (and the CI smoke test) scrape the bound address from this
    // line, so print it eagerly on stdout.
    println!("mphpc-serve listening on {}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let stats = handle.join();
    println!("{}", stats.render());
    Ok(())
}

/// `mphpc watch` — the online-learning loop (DESIGN.md §17): tail the
/// store for fresh fleet shards, grow the versioned dataset, warm-start
/// retrain, shadow-score against the live server, and canary-promote.
fn cmd_watch(opts: &HashMap<String, String>) -> Result<(), MphpcError> {
    use mphpc_core::watch::{TickDecision, WatchConfig, Watcher};

    let store = mphpc_storage::LocalDirStorage::open(req(opts, "store")?)?;
    let model_path = req(opts, "model")?;
    let json = std::fs::read_to_string(model_path).map_err(|e| MphpcError::io(model_path, e))?;
    let base = PerfPredictor::from_json(&json)?;

    let mut cfg = WatchConfig::default();
    if let Some(addr) = opts.get("addr").filter(|a| !a.is_empty()) {
        cfg.addr = addr.clone();
    }
    if let Some(name) = opts.get("name").filter(|n| !n.is_empty()) {
        cfg.model = name.clone();
    }
    if let Some(n) = opts.get("holdout").and_then(|s| s.parse().ok()) {
        cfg.holdout = n;
    }
    if let Some(e) = opts.get("epsilon").and_then(|s| s.parse().ok()) {
        cfg.epsilon = e;
    }
    if let Some(n) = opts.get("extra").and_then(|s| s.parse().ok()) {
        cfg.extra = n;
    }
    if let Some(n) = opts.get("min-rows").and_then(|s| s.parse().ok()) {
        cfg.min_new_rows = n;
    }
    if let Some(n) = opts.get("min-shadow-rows").and_then(|s| s.parse().ok()) {
        cfg.min_shadow_rows = n;
    }
    if let Some(ms) = opts.get("shadow-wait-ms").and_then(|s| s.parse().ok()) {
        cfg.shadow_wait = std::time::Duration::from_millis(ms);
    }
    if let Some(ms) = opts.get("rollback-window-ms").and_then(|s| s.parse().ok()) {
        cfg.rollback_window = std::time::Duration::from_millis(ms);
    }
    if let Some(n) = opts.get("rollback-errors").and_then(|s| s.parse().ok()) {
        cfg.rollback_errors = n;
    }
    if let Some(n) = opts.get("drift-window").and_then(|s| s.parse().ok()) {
        cfg.drift_window = n;
    }
    let ticks: Option<u64> = opts.get("ticks").and_then(|s| s.parse().ok());
    let poll = std::time::Duration::from_millis(
        opts.get("poll-ms")
            .and_then(|s| s.parse().ok())
            .unwrap_or(500),
    );

    let addr = cfg.addr.clone();
    let mut watcher = Watcher::new(&store, cfg, base)?;
    eprintln!(
        "watching {} for shards (serving {addr}), {} row(s) committed so far",
        req(opts, "store")?,
        watcher.dataset_rows()
    );
    use std::io::Write as _;
    watcher.run(ticks, poll, |outcome| {
        match outcome {
            Ok(report) => {
                let prefix = format!(
                    "tick {}: +{} shard(s) (+{} row(s), {} quarantined){}{}",
                    report.tick,
                    report.ingested_shards,
                    report.new_rows,
                    report.quarantined_shards,
                    report
                        .dataset_version
                        .map(|v| format!(" -> dataset v{v}"))
                        .unwrap_or_default(),
                    if report.drift_fired { " [drift]" } else { "" },
                );
                match &report.decision {
                    TickDecision::Idle => {}
                    TickDecision::Deferred { pending_rows } => {
                        println!("{prefix}; deferred ({pending_rows} row(s) pending)")
                    }
                    TickDecision::Refused { reason } => {
                        println!("{prefix}; candidate refused: {reason}")
                    }
                    TickDecision::Promoted {
                        version,
                        shadow_rows,
                    } => println!(
                        "{prefix}; promoted v{version} after {shadow_rows} mirrored row(s)"
                    ),
                    TickDecision::RolledBack {
                        promoted,
                        restored,
                        errors,
                    } => println!(
                        "{prefix}; promoted v{promoted} then rolled back to v{restored} \
                         after {errors} serving error(s)"
                    ),
                }
            }
            Err(e) => eprintln!("watch tick failed: {}", e.render_chain()),
        }
        let _ = std::io::stdout().flush();
    })
}

/// `mphpc fleet <init|work|run|merge|status>` — storage-coordinated
/// multi-process collection and training (DESIGN.md §16).
///
/// `args` is everything after `fleet` (the action word plus flags);
/// `opts` are the already-parsed flags.
fn cmd_fleet(args: &[String], opts: &HashMap<String, String>) -> Result<(), MphpcError> {
    let Some(action) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err(MphpcError::InvalidArgument(
            "fleet wants an action: init|work|run|merge|status".into(),
        ));
    };
    let store = mphpc_storage::LocalDirStorage::open(req(opts, "store")?)?;
    let out_path = |key: &str| {
        opts.get(key)
            .filter(|v| !v.is_empty())
            .map(std::path::PathBuf::from)
    };
    match action.as_str() {
        "init" => {
            let n_apps: usize = opts.get("apps").and_then(|s| s.parse().ok()).unwrap_or(20);
            let inputs: Option<usize> = opts.get("inputs").and_then(|s| s.parse().ok());
            let reps: u32 = opts.get("reps").and_then(|s| s.parse().ok()).unwrap_or(2);
            let cfg = CollectionConfig {
                apps: Some(
                    mphpc_workloads::AppKind::ALL
                        .into_iter()
                        .take(n_apps.clamp(1, 20))
                        .collect(),
                ),
                inputs_per_app: inputs,
                reps,
                seed: seed(opts),
            };
            let n_shards: usize = opts.get("shards").and_then(|s| s.parse().ok()).unwrap_or(8);
            let ttl_ms: u64 = opts
                .get("ttl-ms")
                .and_then(|s| s.parse().ok())
                .unwrap_or(30_000);
            let model = match opts.get("model").map(String::as_str) {
                None | Some("none") => None,
                Some(word) => Some(word),
            };
            let manifest = fleet::fleet_init(
                &store,
                &cfg,
                n_shards,
                std::time::Duration::from_millis(ttl_ms),
                model,
                0,
            )?;
            println!(
                "initialised generation {}: {} specs in {} shards",
                manifest.generation,
                cfg.specs().len(),
                manifest.shards.len()
            );
        }
        "work" => {
            let worker = req(opts, "worker")?;
            let outcome = fleet::fleet_work(&store, worker)?;
            println!(
                "worker {worker}: completed {} shard(s) ({} reclaimed) in {} pass(es)",
                outcome.completed, outcome.reclaimed, outcome.passes
            );
        }
        "run" => {
            let n_workers: usize = opts
                .get("workers")
                .and_then(|s| s.parse().ok())
                .unwrap_or(3)
                .max(1);
            let exe = std::env::current_exe().map_err(|e| MphpcError::io("current_exe", e))?;
            let store_dir = req(opts, "store")?;
            eprintln!("spawning {n_workers} worker process(es) ...");
            let children: Vec<_> = (0..n_workers)
                .map(|i| {
                    let mut cmd = std::process::Command::new(&exe);
                    cmd.args(["fleet", "work", "--store", store_dir])
                        .args(["--worker", &format!("w{i}")]);
                    if let Some(mode) = opts.get("telemetry") {
                        cmd.args(["--telemetry", mode]);
                    }
                    cmd.spawn()
                        .map_err(|e| MphpcError::io(exe.display().to_string(), e))
                })
                .collect::<Result<_, _>>()?;
            for (i, mut child) in children.into_iter().enumerate() {
                let status = child
                    .wait()
                    .map_err(|e| MphpcError::io(format!("worker w{i}"), e))?;
                if !status.success() {
                    // Not fatal: surviving workers reclaim a dead worker's
                    // shards, and the merge below fails loudly if coverage
                    // is actually incomplete.
                    eprintln!("worker w{i} exited with {status}");
                }
            }
            let outcome = fleet::fleet_merge(
                &store,
                out_path("out").as_deref(),
                out_path("model-out").as_deref(),
            )?;
            report_merge(&outcome, opts);
        }
        "merge" => {
            let outcome = fleet::fleet_merge(
                &store,
                out_path("out").as_deref(),
                out_path("model-out").as_deref(),
            )?;
            report_merge(&outcome, opts);
        }
        "status" => print!("{}", fleet::fleet_status(&store)?),
        other => {
            return Err(MphpcError::InvalidArgument(format!(
                "unknown fleet action '{other}' (use init|work|run|merge|status)"
            )))
        }
    }
    Ok(())
}

fn report_merge(outcome: &fleet::MergeOutcome, opts: &HashMap<String, String>) {
    println!(
        "merged {} shard(s) into {} rows{}",
        outcome.shards,
        outcome.rows,
        if outcome.dataset_reused {
            " (dataset reused from a previous merge)"
        } else {
            ""
        }
    );
    if let Some(out) = opts.get("out").filter(|v| !v.is_empty()) {
        println!("wrote dataset to {out}");
    }
    if let Some(model) = &outcome.model {
        println!(
            "trained {model} model{}",
            if outcome.model_reused {
                " (reused from a previous merge)"
            } else {
                ""
            }
        );
        if let Some(path) = opts.get("model-out").filter(|v| !v.is_empty()) {
            println!("wrote model to {path}");
        }
    }
}

fn cmd_info() -> Result<(), MphpcError> {
    println!("machines (Table I):");
    for m in mphpc_archsim::machine::table1_machines() {
        let gpu = m
            .gpu
            .as_ref()
            .map(|g| format!("{} × {}", g.gpus_per_node, g.model))
            .unwrap_or_else(|| "—".into());
        println!(
            "  {:<8} {:<24} {:>3} cores @ {:.1} GHz   GPU: {gpu}",
            m.id.name(),
            m.cpu.model,
            m.cpu.cores_per_node,
            m.cpu.clock_ghz
        );
    }
    println!("\napplications (Table II):");
    for a in all_apps() {
        println!(
            "  {:<14} gpu={:<5} {}",
            a.name(),
            a.spec.gpu,
            a.spec.description
        );
    }
    Ok(())
}
