//! The end-to-end MP-HPC pipeline: collection, model comparison, and
//! final-model training (§IV's two phases).

use crate::predictor::PerfPredictor;
use mphpc_archsim::cache::CacheSimulator;
use mphpc_archsim::SystemId;
use mphpc_dataset::split::random_split;
use mphpc_dataset::{build_dataset, MpHpcDataset};
use mphpc_errors::{MphpcError, ResultExt};
use mphpc_ml::cv::{cross_validate, CvReport};
use mphpc_ml::{mae, r2, r2_per_output, same_order_score, ModelKind, Regressor};
use mphpc_profiler::{profile_run, RawProfile};
use mphpc_workloads::{full_matrix, small_matrix, AppKind, InputConfig, RunSpec, Scale};
use serde::{Deserialize, Serialize};

/// What to collect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectionConfig {
    /// Applications to include (`None` = all twenty).
    pub apps: Option<Vec<AppKind>>,
    /// Inputs per application (`None` = the app's full ladder).
    pub inputs_per_app: Option<usize>,
    /// Repetitions per run.
    pub reps: u32,
    /// Base seed for the whole campaign.
    pub seed: u64,
}

impl CollectionConfig {
    /// The paper-scale campaign: every app, every input, 6 reps —
    /// ≈ 11.3k rows, matching the MP-HPC dataset's size.
    pub fn full(seed: u64) -> Self {
        Self {
            apps: None,
            inputs_per_app: None,
            reps: 6,
            seed,
        }
    }

    /// A reduced campaign for tests and examples: the first `n_apps`
    /// applications, `n_inputs` inputs each, `reps` repetitions.
    pub fn small(n_apps: usize, n_inputs: usize, reps: u32, seed: u64) -> Self {
        Self {
            apps: Some(AppKind::ALL.into_iter().take(n_apps).collect()),
            inputs_per_app: Some(n_inputs),
            reps,
            seed,
        }
    }

    /// Expand into the run matrix.
    pub fn specs(&self) -> Vec<RunSpec> {
        match (&self.apps, self.inputs_per_app) {
            (None, None) => full_matrix(&SystemId::TABLE1, self.reps),
            (apps, n_inputs) => {
                let apps: Vec<AppKind> = apps.clone().unwrap_or_else(|| AppKind::ALL.to_vec());
                small_matrix(
                    &SystemId::TABLE1,
                    &apps,
                    n_inputs.unwrap_or(usize::MAX),
                    self.reps,
                )
            }
        }
    }
}

/// Phase 1: run the campaign and assemble the dataset.
pub fn collect(config: &CollectionConfig) -> Result<MpHpcDataset, MphpcError> {
    let specs = config.specs();
    let _span = mphpc_telemetry::span!("pipeline.collect", runs = specs.len());
    build_dataset(&specs, config.seed).context("collecting the dataset")
}

/// Profile a single (app, input, scale, machine) run — the inference-time
/// entry point for new jobs.
pub fn profile_one(
    app: AppKind,
    input_name: &str,
    scale: Scale,
    machine: SystemId,
    seed: u64,
) -> Result<RawProfile, MphpcError> {
    let application = mphpc_workloads::Application::new(app);
    let _span = mphpc_telemetry::span!("pipeline.profile_one", app = application.name());
    let input = application
        .inputs()
        .into_iter()
        .find(|i| i.name == input_name)
        .unwrap_or_else(|| InputConfig::new(input_name, 1.0));
    let spec = RunSpec {
        app,
        input,
        scale,
        machine,
        rep: 0,
    };
    let mut sim = CacheSimulator::new();
    profile_run(&spec, seed, &mut sim).map_err(MphpcError::Profile)
}

/// Evaluation results for one model family (one bar pair of Fig. 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelEvaluation {
    /// Family name.
    pub model: String,
    /// MAE on the held-out 10 % test set.
    pub test_mae: f64,
    /// Same-Order Score on the test set.
    pub test_sos: f64,
    /// Pooled R² over all four RPV outputs on the test set.
    pub test_r2: f64,
    /// Column-wise R² per RPV output (Table-I system order): pooled R²
    /// can hide one systematically mispredicted target behind three good
    /// ones.
    pub test_r2_per_output: Vec<f64>,
    /// 5-fold cross-validation report on the training portion.
    pub cv: CvReport,
}

/// Phase 2, Fig. 2: train every family on a 90-10 split with 5-fold CV on
/// the training side, and evaluate MAE / SOS on the held-out test set.
/// All test-set and CV predictions for the tree families run on the
/// compiled flat-ensemble engine (`mphpc_ml::compiled`).
pub fn evaluate_models(
    dataset: &MpHpcDataset,
    kinds: &[ModelKind],
    seed: u64,
) -> Result<Vec<ModelEvaluation>, MphpcError> {
    if dataset.n_rows() < 10 {
        return Err(MphpcError::InvalidDataset(format!(
            "evaluate_models needs at least 10 rows, got {}",
            dataset.n_rows()
        )));
    }
    let _span = mphpc_telemetry::span!(
        "pipeline.evaluate",
        rows = dataset.n_rows(),
        models = kinds.len()
    );
    let (train_rows, test_rows) = random_split(dataset, 0.1, seed)?;
    let normalizer = dataset.fit_normalizer(&train_rows)?;
    let train = dataset.to_ml(&train_rows, &normalizer)?;
    let test = dataset.to_ml(&test_rows, &normalizer)?;

    let mut evals = Vec::with_capacity(kinds.len());
    for kind in kinds {
        let _model_span = mphpc_telemetry::span!("pipeline.evaluate.model", model = kind.name());
        let model = kind
            .fit(&train)
            .context(format!("fitting {}", kind.name()))?;
        let pred = model
            .predict(&test.x)
            .context(format!("predicting with {}", kind.name()))?;
        evals.push(ModelEvaluation {
            model: kind.name().to_string(),
            test_mae: mae(&pred, &test.y)?,
            test_sos: same_order_score(&pred, &test.y)?,
            test_r2: r2(&pred, &test.y)?,
            test_r2_per_output: r2_per_output(&pred, &test.y)?,
            cv: cross_validate(*kind, &train, 5, seed ^ 0xCF01D)?,
        });
    }
    Ok(evals)
}

/// Train the production predictor on a 90 % training split and package it
/// with its normaliser.
pub fn train_predictor(
    dataset: &MpHpcDataset,
    kind: ModelKind,
    seed: u64,
) -> Result<PerfPredictor, MphpcError> {
    if dataset.n_rows() == 0 {
        return Err(MphpcError::EmptyInput("train_predictor: dataset"));
    }
    let _span = mphpc_telemetry::span!(
        "pipeline.train",
        rows = dataset.n_rows(),
        model = kind.name()
    );
    let (train_rows, _) = random_split(dataset, 0.1, seed)?;
    let normalizer = dataset.fit_normalizer(&train_rows)?;
    let train = dataset.to_ml(&train_rows, &normalizer)?;
    let model = kind
        .fit(&train)
        .context(format!("training {}", kind.name()))?;
    Ok(PerfPredictor::new(model, normalizer))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dataset() -> MpHpcDataset {
        collect(&CollectionConfig::small(4, 2, 2, 11)).unwrap()
    }

    #[test]
    fn collection_config_sizes() {
        assert_eq!(
            CollectionConfig::small(2, 3, 1, 0).specs().len(),
            2 * 3 * 3 * 4
        );
        let full = CollectionConfig::full(0).specs();
        assert!(full.len() > 10_000);
    }

    #[test]
    fn collect_and_evaluate() {
        let d = small_dataset();
        assert_eq!(d.n_rows(), 4 * 2 * 3 * 4 * 2);
        let evals = evaluate_models(&d, &ModelKind::paper_lineup(), 5).unwrap();
        assert_eq!(evals.len(), 4);
        let by_name = |n: &str| evals.iter().find(|e| e.model == n).unwrap();
        let mean = by_name("Mean");
        let gbt = by_name("XGBoost");
        assert!(gbt.test_r2 > mean.test_r2, "XGBoost R2 must beat mean");
        assert_eq!(gbt.test_r2_per_output.len(), 4);
        assert!(gbt.test_r2_per_output.iter().all(|v| v.is_finite()));
        assert!(
            gbt.test_mae < mean.test_mae,
            "XGBoost {} must beat mean {}",
            gbt.test_mae,
            mean.test_mae
        );
        assert!(gbt.test_sos > 0.0);
        assert_eq!(gbt.cv.fold_mae.len(), 5);
    }

    #[test]
    fn evaluate_rejects_tiny_dataset() {
        let d = collect(&CollectionConfig::small(1, 1, 1, 3)).unwrap();
        // 1 app × 1 input × 3 scales × 4 machines = 12 rows: fine.
        assert!(evaluate_models(&d, &[ModelKind::Mean], 1).is_ok());
    }

    #[test]
    fn predictor_round_trip() {
        let d = small_dataset();
        let p = train_predictor(&d, ModelKind::Gbt(Default::default()), 2).unwrap();
        let profile = profile_one(AppKind::Amg, "-s 3", Scale::OneNode, SystemId::Ruby, 7).unwrap();
        let rpv = p.predict_rpv(&profile).unwrap();
        assert!(rpv.iter().all(|v| v.is_finite() && *v > 0.0), "{rpv:?}");
        // Ruby is the source system: its own component should be near 1.
        let ruby = rpv[SystemId::Ruby.table1_index().unwrap()];
        assert!((ruby - 1.0).abs() < 0.5, "self-relative ≈ 1, got {ruby}");
    }

    #[test]
    fn profile_one_accepts_unknown_input_names() {
        let p = profile_one(
            AppKind::CoMd,
            "-s 99custom",
            Scale::OneCore,
            SystemId::Quartz,
            1,
        )
        .unwrap();
        assert_eq!(p.spec.input.name, "-s 99custom");
    }
}
