//! The deployable predictor: profile in, RPV out.
//!
//! Packages a trained model with its fitted normaliser so inference uses
//! exactly the training-time feature transform. Serialisable to JSON —
//! the paper's "model is exported and used in downstream relative
//! performance prediction tasks such as cross-architecture scheduling".
//!
//! Tree-ensemble predictors serve from the quantized bin-indexed
//! inference engine (`mphpc_ml::quantized`): the model lowers itself
//! into integer struct-of-arrays form on its first prediction —
//! including right after deserialisation, since the engine is derived
//! data that is never part of the JSON — and every later
//! [`PerfPredictor::predict_rpv`] / [`PerfPredictor::predict_features`]
//! call reuses it. Single-row calls take the interleaved-pack path;
//! both are bit-identical to the reference traversal.

use mphpc_dataset::features::{derive_features, FEATURE_NAMES};
use mphpc_dataset::Normalizer;
use mphpc_errors::MphpcError;
use mphpc_ml::{Matrix, Regressor, TrainedModel};
use mphpc_profiler::RawProfile;
use serde::{Deserialize, Serialize};

/// A trained cross-architecture performance predictor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfPredictor {
    model: TrainedModel,
    normalizer: Normalizer,
}

impl PerfPredictor {
    /// Package a trained model with its normaliser.
    pub fn new(model: TrainedModel, normalizer: Normalizer) -> Self {
        Self { model, normalizer }
    }

    /// Predict the RPV (relative runtimes across the four Table-I systems,
    /// relative to the profile's own system) for one profile.
    pub fn predict_rpv(&self, profile: &RawProfile) -> Result<[f64; 4], MphpcError> {
        let mut features = derive_features(profile);
        self.normalizer
            .transform_row(&FEATURE_NAMES, &mut features)?;
        let x = Matrix::from_vec(features.to_vec(), 1, FEATURE_NAMES.len());
        let y = self.model.predict(&x)?;
        Ok([y.get(0, 0), y.get(0, 1), y.get(0, 2), y.get(0, 3)])
    }

    /// Predict RPVs for a batch of pre-derived raw feature rows.
    pub fn predict_features(&self, raw_rows: &[[f64; 21]]) -> Result<Vec<[f64; 4]>, MphpcError> {
        let mut data = Vec::with_capacity(raw_rows.len() * FEATURE_NAMES.len());
        for row in raw_rows {
            let mut r = *row;
            self.normalizer.transform_row(&FEATURE_NAMES, &mut r)?;
            data.extend_from_slice(&r);
        }
        let x = Matrix::from_vec(data, raw_rows.len(), FEATURE_NAMES.len());
        let y = self.model.predict(&x)?;
        Ok((0..raw_rows.len())
            .map(|i| [y.get(i, 0), y.get(i, 1), y.get(i, 2), y.get(i, 3)])
            .collect())
    }

    /// The wrapped model.
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// The fitted feature normaliser (frozen at training time; warm
    /// starts must reuse it so the existing trees keep seeing the same
    /// feature transform).
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    /// Export to JSON.
    pub fn to_json(&self) -> Result<String, MphpcError> {
        serde_json::to_string(self).map_err(MphpcError::serde)
    }

    /// Load from JSON.
    pub fn from_json(json: &str) -> Result<Self, MphpcError> {
        serde_json::from_str(json).map_err(MphpcError::serde)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{collect, profile_one, train_predictor, CollectionConfig};
    use mphpc_archsim::SystemId;
    use mphpc_ml::ModelKind;
    use mphpc_workloads::{AppKind, Scale};

    #[test]
    fn json_round_trip_preserves_predictions() {
        let d = collect(&CollectionConfig::small(2, 2, 1, 21)).unwrap();
        let p = train_predictor(&d, ModelKind::Linear(Default::default()), 1).unwrap();
        let back = PerfPredictor::from_json(&p.to_json().unwrap()).unwrap();
        let profile =
            profile_one(AppKind::Amg, "-s 2", Scale::OneCore, SystemId::Quartz, 5).unwrap();
        assert_eq!(
            p.predict_rpv(&profile).unwrap(),
            back.predict_rpv(&profile).unwrap()
        );
        assert!(PerfPredictor::from_json("{").is_err());
    }

    #[test]
    fn batch_and_single_predictions_agree() {
        let d = collect(&CollectionConfig::small(2, 2, 1, 22)).unwrap();
        let p = train_predictor(&d, ModelKind::Gbt(Default::default()), 1).unwrap();
        let profile =
            profile_one(AppKind::CoMd, "-s 2", Scale::OneNode, SystemId::Lassen, 5).unwrap();
        let single = p.predict_rpv(&profile).unwrap();
        let features = mphpc_dataset::features::derive_features(&profile);
        let batch = p.predict_features(&[features]).unwrap();
        assert_eq!(single, batch[0]);
    }

    #[test]
    fn deserialised_predictor_compiles_and_matches_reference() {
        // The compile-after-deserialise path: a predictor loaded from
        // JSON has an empty compiled cache, lowers on first use, and
        // must agree bit-for-bit with the reference traversal of the
        // original model — for both tree-ensemble families, at several
        // worker counts.
        let d = collect(&CollectionConfig::small(3, 2, 1, 23)).unwrap();
        let seeds: Vec<[f64; 21]> = [
            (AppKind::Amg, "-s 2", Scale::OneCore, SystemId::Quartz),
            (AppKind::CoMd, "-s 2", Scale::OneNode, SystemId::Lassen),
            (AppKind::Amg, "-s 3", Scale::TwoNodes, SystemId::Corona),
        ]
        .into_iter()
        .map(|(app, input, scale, sys)| {
            let profile = profile_one(app, input, scale, sys, 7).unwrap();
            mphpc_dataset::features::derive_features(&profile)
        })
        .collect();
        // Tile the probes past one traversal block so the parallel batch
        // path (not just the inline small-batch path) is exercised.
        let probe: Vec<[f64; 21]> = seeds.iter().cycle().take(200).copied().collect();
        for kind in [
            ModelKind::Gbt(Default::default()),
            ModelKind::Forest(Default::default()),
        ] {
            let p = train_predictor(&d, kind, 1).unwrap();
            let back = PerfPredictor::from_json(&p.to_json().unwrap()).unwrap();
            assert_eq!(p, back, "round trip must preserve the model");
            // Reference oracle: the original model's per-row enum-tree
            // traversal over the normalised feature matrix.
            let mut data = Vec::with_capacity(probe.len() * FEATURE_NAMES.len());
            for row in &probe {
                let mut r = *row;
                p.normalizer.transform_row(&FEATURE_NAMES, &mut r).unwrap();
                data.extend_from_slice(&r);
            }
            let x = Matrix::from_vec(data, probe.len(), FEATURE_NAMES.len());
            let reference = p.model().predict_reference(&x).unwrap();
            let expected_rpvs = p.predict_features(&probe).unwrap();
            for threads in [1usize, 2, 8] {
                mphpc_par::set_thread_override(Some(threads));
                assert_eq!(
                    back.model().predict(&x).unwrap(),
                    reference,
                    "{} compiled-after-deserialise vs reference at {threads} threads",
                    kind.name()
                );
                assert_eq!(
                    back.predict_features(&probe).unwrap(),
                    expected_rpvs,
                    "{} predict_features at {threads} threads",
                    kind.name()
                );
            }
            mphpc_par::set_thread_override(None);
            // Single-row serving path: each distinct probe through the
            // quantized interleaved-pack kernel must match its batched
            // counterpart exactly.
            for (i, row) in probe.iter().take(seeds.len()).enumerate() {
                assert_eq!(
                    back.predict_features(std::slice::from_ref(row)).unwrap()[0],
                    expected_rpvs[i],
                    "{} single-row vs batch for probe {i}",
                    kind.name()
                );
            }
        }
    }
}
