//! Streaming drift detection over the serving feature distribution
//! (DESIGN.md §17).
//!
//! The online-learning loop needs a cheap, deterministic answer to "has
//! the traffic the model serves moved away from the data it was trained
//! on?". This module freezes a [`DriftReference`] from a training
//! feature matrix — per-feature mean, standard deviation, and 31
//! interior quantile edges (32 equal-mass buckets) — then streams
//! serving rows through a [`DriftDetector`] that maintains per-feature
//! Welford mean/variance and bucket counts over a fixed-size window.
//! At each window boundary three tests run per feature:
//!
//! * **mean shift** — `|mean_w − mean_ref| > mean_sigmas · σ_ref`;
//! * **variance ratio** — `var_w / var_ref` outside `[1/r, r]`;
//! * **quantile distance** — the max CDF difference at the reference
//!   bucket edges (a binned Kolmogorov–Smirnov statistic) above
//!   `max_cdf_diff`.
//!
//! A fourth, distribution-free channel counts serving errors reported
//! via [`DriftDetector::note_serving_errors`]: any window with at least
//! `error_threshold` of them fires regardless of feature statistics.
//!
//! Thresholds default to values far outside sampling noise at the
//! default 256-row window (the stationary proptest drives 10k windows
//! without a single firing), while firing reliably on a 1σ mean shift,
//! a ×3 variance change, or a same-mean/same-variance shape change.
//! All state is serde round-trippable so a restarted watch daemon
//! resumes mid-window.

use mphpc_errors::MphpcError;
use mphpc_ml::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Equal-mass histogram buckets per feature (edges = `BUCKETS − 1`).
pub const BUCKETS: usize = 32;

/// Drift thresholds and window size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Rows per evaluation window.
    pub window: usize,
    /// Mean-shift trigger, in units of the reference σ.
    pub mean_sigmas: f64,
    /// Variance-ratio trigger: fire outside `[1/var_ratio, var_ratio]`.
    pub var_ratio: f64,
    /// Binned-KS trigger: max CDF difference at the reference edges.
    pub max_cdf_diff: f64,
    /// Serving errors within one window at which the error channel
    /// fires.
    pub error_threshold: u64,
}

impl Default for DriftConfig {
    fn default() -> DriftConfig {
        DriftConfig {
            window: 256,
            mean_sigmas: 0.75,
            var_ratio: 2.0,
            max_cdf_diff: 0.2,
            error_threshold: 1,
        }
    }
}

/// Frozen per-feature statistics of the training distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureReference {
    /// Training mean.
    pub mean: f64,
    /// Training standard deviation (population).
    pub std: f64,
    /// 31 interior quantile edges, ascending (ties allowed for discrete
    /// features).
    pub edges: Vec<f64>,
    /// Empirical training CDF at each edge (fraction of values ≤ edge).
    pub cdf: Vec<f64>,
}

/// The frozen training distribution, one entry per feature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftReference {
    features: Vec<FeatureReference>,
}

impl DriftReference {
    /// Freeze a reference from a training feature matrix.
    pub fn fit(x: &Matrix) -> Result<DriftReference, MphpcError> {
        let n = x.rows();
        if n < BUCKETS {
            return Err(MphpcError::InvalidArgument(format!(
                "drift reference needs at least {BUCKETS} rows, got {n}"
            )));
        }
        let mut features = Vec::with_capacity(x.cols());
        for j in 0..x.cols() {
            let col = x.col(j);
            if col.iter().any(|v| !v.is_finite()) {
                return Err(MphpcError::NonFinite {
                    context: format!("drift reference feature {j}"),
                });
            }
            let mean = col.iter().sum::<f64>() / n as f64;
            let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
            let mut sorted = col.to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let mut edges = Vec::with_capacity(BUCKETS - 1);
            for b in 1..BUCKETS {
                let idx = (b * n / BUCKETS).min(n - 1);
                edges.push(sorted[idx]);
            }
            let cdf = edges
                .iter()
                .map(|e| sorted.partition_point(|v| v <= e) as f64 / n as f64)
                .collect();
            features.push(FeatureReference {
                mean,
                std: var.sqrt(),
                edges,
                cdf,
            });
        }
        Ok(DriftReference { features })
    }

    /// Features the reference was fit on.
    pub fn n_features(&self) -> usize {
        self.features.len()
    }

    /// Per-feature statistics.
    pub fn features(&self) -> &[FeatureReference] {
        &self.features
    }
}

/// Per-feature streaming window state: Welford accumulator + bucket
/// counts against the reference edges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct WindowAccum {
    count: u64,
    mean: f64,
    m2: f64,
    buckets: Vec<u64>,
}

impl WindowAccum {
    fn new() -> WindowAccum {
        WindowAccum {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            buckets: vec![0; BUCKETS],
        }
    }

    fn push(&mut self, value: f64, edges: &[f64]) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        // Bucket index = number of edges < value, so "value ≤ edge[j]"
        // ⇔ "bucket ≤ j" and cumulative bucket counts at edge j equal
        // the window's empirical CDF there.
        let bucket = edges.partition_point(|e| *e < value);
        self.buckets[bucket] += 1;
    }
}

/// One feature's window-boundary evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureDrift {
    /// Feature index.
    pub feature: usize,
    /// `|mean_w − mean_ref| / σ_ref`.
    pub mean_shift_sigmas: f64,
    /// `var_w / var_ref` (∞ when the reference is constant but the
    /// window is not).
    pub var_ratio: f64,
    /// Max CDF difference at the reference edges.
    pub max_cdf_diff: f64,
    /// Which tests fired.
    pub mean_fired: bool,
    /// Variance-ratio test fired.
    pub var_fired: bool,
    /// Quantile-distance test fired.
    pub cdf_fired: bool,
}

impl FeatureDrift {
    /// True when any of the three tests fired.
    pub fn fired(&self) -> bool {
        self.mean_fired || self.var_fired || self.cdf_fired
    }
}

/// One window-boundary report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftReport {
    /// 1-based index of the evaluated window.
    pub window_index: u64,
    /// Rows in the window (always `config.window`).
    pub rows: u64,
    /// Serving errors noted during the window.
    pub errors: u64,
    /// The error channel fired.
    pub error_spike: bool,
    /// Per-feature evaluations.
    pub features: Vec<FeatureDrift>,
}

impl DriftReport {
    /// True when any channel (feature statistics or serving errors)
    /// fired — the watch loop's retrain trigger.
    pub fn drifted(&self) -> bool {
        self.error_spike || self.features.iter().any(FeatureDrift::fired)
    }

    /// Indices of features whose statistics fired.
    pub fn drifted_features(&self) -> Vec<usize> {
        self.features
            .iter()
            .filter(|f| f.fired())
            .map(|f| f.feature)
            .collect()
    }
}

/// Streaming drift detector: feed serving rows, get a [`DriftReport`]
/// at every window boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftDetector {
    config: DriftConfig,
    reference: DriftReference,
    window: Vec<WindowAccum>,
    rows_in_window: u64,
    errors_in_window: u64,
    windows_evaluated: u64,
}

impl DriftDetector {
    /// A detector streaming against `reference` with `config`
    /// thresholds.
    pub fn new(reference: DriftReference, config: DriftConfig) -> Result<Self, MphpcError> {
        if config.window == 0 {
            return Err(MphpcError::InvalidArgument(
                "drift window must be nonzero".to_string(),
            ));
        }
        let window = (0..reference.n_features())
            .map(|_| WindowAccum::new())
            .collect();
        Ok(DriftDetector {
            config,
            reference,
            window,
            rows_in_window: 0,
            errors_in_window: 0,
            windows_evaluated: 0,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Windows evaluated so far.
    pub fn windows_evaluated(&self) -> u64 {
        self.windows_evaluated
    }

    /// Rows accumulated toward the next window boundary.
    pub fn rows_in_window(&self) -> u64 {
        self.rows_in_window
    }

    /// Report serving errors (failed predictions, expired requests)
    /// observed since the last call — the distribution-free drift
    /// channel.
    pub fn note_serving_errors(&mut self, n: u64) {
        self.errors_in_window += n;
    }

    /// Stream one serving row. Returns a report exactly at window
    /// boundaries (every `config.window` rows), `None` otherwise.
    /// Non-finite values are rejected — upstream the server already
    /// refuses them, so one here indicates a bug, not drift.
    pub fn push_row(&mut self, row: &[f64]) -> Result<Option<DriftReport>, MphpcError> {
        if row.len() != self.reference.n_features() {
            return Err(MphpcError::DimensionMismatch {
                context: "DriftDetector::push_row",
                expected: self.reference.n_features(),
                found: row.len(),
            });
        }
        if row.iter().any(|v| !v.is_finite()) {
            // Checked before any accumulator is touched, so a rejected
            // row leaves the window state unchanged.
            return Err(MphpcError::NonFinite {
                context: "DriftDetector::push_row".to_string(),
            });
        }
        for (accum, (value, reference)) in self
            .window
            .iter_mut()
            .zip(row.iter().zip(&self.reference.features))
        {
            accum.push(*value, &reference.edges);
        }
        self.rows_in_window += 1;
        if self.rows_in_window < self.config.window as u64 {
            return Ok(None);
        }
        Ok(Some(self.evaluate_window()))
    }

    fn evaluate_window(&mut self) -> DriftReport {
        self.windows_evaluated += 1;
        let n = self.rows_in_window;
        let mut features = Vec::with_capacity(self.window.len());
        for (j, (accum, reference)) in self.window.iter().zip(&self.reference.features).enumerate()
        {
            let sigma = reference.std.max(1e-12);
            let mean_shift_sigmas = (accum.mean - reference.mean).abs() / sigma;
            let var_w = accum.m2 / n as f64;
            let var_ref = reference.std * reference.std;
            let var_ratio = if var_ref > 0.0 {
                var_w / var_ref
            } else if var_w > 0.0 {
                f64::INFINITY
            } else {
                1.0
            };
            let mut cum = 0u64;
            let mut max_cdf_diff = 0.0f64;
            for (bucket, ref_cdf) in accum.buckets.iter().zip(&reference.cdf) {
                cum += bucket;
                let diff = (cum as f64 / n as f64 - ref_cdf).abs();
                if diff > max_cdf_diff {
                    max_cdf_diff = diff;
                }
            }
            features.push(FeatureDrift {
                feature: j,
                mean_shift_sigmas,
                var_ratio,
                max_cdf_diff,
                mean_fired: mean_shift_sigmas > self.config.mean_sigmas,
                var_fired: var_ratio > self.config.var_ratio
                    || var_ratio < 1.0 / self.config.var_ratio,
                cdf_fired: max_cdf_diff > self.config.max_cdf_diff,
            });
        }
        let errors = self.errors_in_window;
        let report = DriftReport {
            window_index: self.windows_evaluated,
            rows: n,
            errors,
            error_spike: errors >= self.config.error_threshold,
            features,
        };
        for accum in &mut self.window {
            *accum = WindowAccum::new();
        }
        self.rows_in_window = 0;
        self.errors_in_window = 0;
        mphpc_telemetry::counter_add("drift.windows", 1);
        if report.drifted() {
            mphpc_telemetry::counter_add("drift.fired", 1);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_matrix(n: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = 3.0f64.sqrt(); // uniform[-√3, √3]: mean 0, var 1
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..cols).map(|_| rng.gen_range(-s..s)).collect())
            .collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn reference_edges_are_sorted_quantiles() {
        let x = uniform_matrix(4096, 2, 7);
        let reference = DriftReference::fit(&x).unwrap();
        for f in reference.features() {
            assert_eq!(f.edges.len(), BUCKETS - 1);
            assert!(f.edges.windows(2).all(|w| w[0] <= w[1]));
            assert!(f.cdf.windows(2).all(|w| w[0] <= w[1]));
            assert!((f.mean).abs() < 0.1);
            assert!((f.std - 1.0).abs() < 0.1);
            // Equal-mass buckets: each edge's CDF is near (j+1)/32.
            for (j, c) in f.cdf.iter().enumerate() {
                assert!(
                    (c - (j + 1) as f64 / BUCKETS as f64).abs() < 0.02,
                    "edge {j} cdf {c}"
                );
            }
        }
    }

    #[test]
    fn reference_rejects_tiny_or_nonfinite_input() {
        assert!(DriftReference::fit(&uniform_matrix(BUCKETS - 1, 1, 0)).is_err());
        let mut x = uniform_matrix(64, 1, 0);
        x.set(5, 0, f64::NAN);
        assert!(DriftReference::fit(&x).is_err());
    }

    fn run_stream(
        detector: &mut DriftDetector,
        n: usize,
        seed: u64,
        gen: impl Fn(&mut StdRng) -> f64,
    ) -> Vec<DriftReport> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut reports = Vec::new();
        for _ in 0..n {
            if let Some(r) = detector.push_row(&[gen(&mut rng)]).unwrap() {
                reports.push(r);
            }
        }
        reports
    }

    fn detector_for(seed: u64) -> DriftDetector {
        let reference = DriftReference::fit(&uniform_matrix(4096, 1, seed)).unwrap();
        DriftDetector::new(reference, DriftConfig::default()).unwrap()
    }

    #[test]
    fn mean_shift_fires_at_documented_threshold() {
        let mut detector = detector_for(11);
        let s = 3.0f64.sqrt();
        // 1σ shift: well past the 0.75σ trigger.
        let reports = run_stream(&mut detector, 256, 12, |rng| rng.gen_range(-s..s) + 1.0);
        assert_eq!(reports.len(), 1);
        assert!(reports[0].drifted());
        assert!(reports[0].features[0].mean_fired);
        assert_eq!(reports[0].drifted_features(), [0]);
    }

    #[test]
    fn variance_shift_fires_without_mean_shift() {
        let mut detector = detector_for(13);
        let s = 3.0f64.sqrt();
        // Same mean, ×3 variance: ratio 3 > 2.
        let reports = run_stream(&mut detector, 256, 14, |rng| {
            rng.gen_range(-s..s) * 3.0f64.sqrt()
        });
        assert_eq!(reports.len(), 1);
        let f = &reports[0].features[0];
        assert!(f.var_fired, "var ratio {}", f.var_ratio);
        assert!(!f.mean_fired, "mean shift {}", f.mean_shift_sigmas);
    }

    #[test]
    fn shape_shift_with_matched_moments_fires_the_cdf_test() {
        let mut detector = detector_for(15);
        // Two-point ±1 has mean 0 and variance 1, exactly matching the
        // uniform reference moments; only the quantile channel can see
        // it (binned KS ≈ 0.28 > 0.2).
        let reports = run_stream(&mut detector, 256, 16, |rng| {
            if rng.gen_range(0.0..1.0) < 0.5 {
                -1.0
            } else {
                1.0
            }
        });
        assert_eq!(reports.len(), 1);
        let f = &reports[0].features[0];
        assert!(f.cdf_fired, "cdf diff {}", f.max_cdf_diff);
        assert!(!f.mean_fired);
        assert!(!f.var_fired);
    }

    #[test]
    fn error_channel_fires_regardless_of_features() {
        let mut detector = detector_for(17);
        let s = 3.0f64.sqrt();
        detector.note_serving_errors(1);
        let reports = run_stream(&mut detector, 256, 18, |rng| rng.gen_range(-s..s));
        assert_eq!(reports.len(), 1);
        assert!(reports[0].error_spike);
        assert!(reports[0].drifted());
        assert!(reports[0].drifted_features().is_empty());
        // The counter resets with the window.
        let reports = run_stream(&mut detector, 256, 19, |rng| rng.gen_range(-s..s));
        assert!(!reports[0].error_spike);
        assert!(!reports[0].drifted());
    }

    #[test]
    fn window_boundaries_are_exact_and_state_resets() {
        let mut detector = detector_for(21);
        let s = 3.0f64.sqrt();
        let reports = run_stream(&mut detector, 256 * 3 + 100, 22, |rng| rng.gen_range(-s..s));
        assert_eq!(reports.len(), 3);
        assert_eq!(detector.rows_in_window(), 100);
        assert_eq!(detector.windows_evaluated(), 3);
        assert_eq!(
            reports.iter().map(|r| r.window_index).collect::<Vec<_>>(),
            [1, 2, 3]
        );
        assert!(reports.iter().all(|r| r.rows == 256));
    }

    #[test]
    fn shape_checks_are_enforced() {
        let mut detector = detector_for(23);
        assert!(detector.push_row(&[0.0, 1.0]).is_err());
        assert!(detector.push_row(&[f64::NAN]).is_err());
        assert!(DriftDetector::new(
            DriftReference::fit(&uniform_matrix(64, 1, 0)).unwrap(),
            DriftConfig {
                window: 0,
                ..DriftConfig::default()
            }
        )
        .is_err());
    }
}
