//! Bridge between [`PerfPredictor`] and the `mphpc-serve` server.
//!
//! `mphpc-serve` is deliberately ignorant of the ML stack — it hosts
//! anything implementing its `PredictModel` trait. This module is the
//! one place the two meet: [`ServedPredictor`] adapts a predictor's
//! `[f64; 21] → [f64; 4]` batch API to the server's row-major slices,
//! and [`predictor_loader`] gives the registry the ability to
//! deserialise `mphpc train` JSON exports uploaded over HTTP.

use std::sync::Arc;

use mphpc_dataset::features::FEATURE_NAMES;
use mphpc_errors::MphpcError;
use mphpc_ml::Regressor;
use mphpc_serve::{ModelLoader, PredictModel};

use crate::predictor::PerfPredictor;

/// A [`PerfPredictor`] hosted behind the serving trait.
pub struct ServedPredictor {
    predictor: PerfPredictor,
}

impl ServedPredictor {
    /// Wrap a trained predictor for serving.
    pub fn new(predictor: PerfPredictor) -> ServedPredictor {
        ServedPredictor { predictor }
    }
}

impl PredictModel for ServedPredictor {
    fn n_features(&self) -> usize {
        FEATURE_NAMES.len()
    }

    fn n_outputs(&self) -> usize {
        4 // the RPV: relative runtime on each Table-I system
    }

    fn predict_batch(&self, rows: &[f64], n_rows: usize) -> Result<Vec<f64>, MphpcError> {
        if rows.len() != n_rows * FEATURE_NAMES.len() {
            return Err(MphpcError::DimensionMismatch {
                context: "ServedPredictor::predict_batch",
                expected: n_rows * FEATURE_NAMES.len(),
                found: rows.len(),
            });
        }
        let raw: Vec<[f64; 21]> = rows
            .chunks_exact(FEATURE_NAMES.len())
            .map(|chunk| {
                let mut row = [0.0; 21];
                row.copy_from_slice(chunk);
                row
            })
            .collect();
        let rpvs = self.predictor.predict_features(&raw)?;
        Ok(rpvs.into_iter().flatten().collect())
    }

    fn kind(&self) -> String {
        self.predictor.model().model_name().to_string()
    }
}

/// Registry loader for `mphpc train` JSON exports: what makes
/// `POST /models/<name>` accept the same artifact `mphpc serve --model`
/// starts from.
pub fn predictor_loader() -> ModelLoader {
    Arc::new(|json: &str| {
        let predictor = PerfPredictor::from_json(json)?;
        Ok(Arc::new(ServedPredictor::new(predictor)) as Arc<dyn PredictModel>)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{collect, profile_one, train_predictor, CollectionConfig};
    use mphpc_archsim::SystemId;
    use mphpc_ml::ModelKind;
    use mphpc_workloads::{AppKind, Scale};

    #[test]
    fn served_batches_match_predict_features_exactly() {
        let d = collect(&CollectionConfig::small(2, 2, 1, 31)).unwrap();
        let p = train_predictor(&d, ModelKind::Forest(Default::default()), 1).unwrap();
        let probe: Vec<[f64; 21]> = [
            (AppKind::Amg, "-s 2", Scale::OneCore, SystemId::Quartz),
            (AppKind::CoMd, "-s 2", Scale::OneNode, SystemId::Lassen),
        ]
        .into_iter()
        .map(|(app, input, scale, sys)| {
            let profile = profile_one(app, input, scale, sys, 7).unwrap();
            mphpc_dataset::features::derive_features(&profile)
        })
        .collect();
        let expected: Vec<f64> = p
            .predict_features(&probe)
            .unwrap()
            .into_iter()
            .flatten()
            .collect();

        let served = ServedPredictor::new(p);
        assert_eq!(served.n_features(), 21);
        assert_eq!(served.n_outputs(), 4);
        let rows: Vec<f64> = probe.iter().flatten().copied().collect();
        assert_eq!(served.predict_batch(&rows, probe.len()).unwrap(), expected);

        // Shape violations are typed errors, not panics.
        assert!(matches!(
            served.predict_batch(&rows[1..], probe.len()),
            Err(MphpcError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn loader_round_trips_train_exports() {
        let d = collect(&CollectionConfig::small(2, 2, 1, 32)).unwrap();
        let p = train_predictor(&d, ModelKind::Linear(Default::default()), 1).unwrap();
        let json = p.to_json().unwrap();
        let loader = predictor_loader();
        let model = loader(&json).unwrap();
        assert_eq!(model.n_features(), 21);
        assert_eq!(model.kind(), "Linear");
        assert!(loader("{ not a model").is_err());
    }
}
