//! The online-learning watch loop (DESIGN.md §17): streaming ingest →
//! warm-start retrain → shadow eval → canary promote → rollback.
//!
//! A [`Watcher`] tails an artifact store for shard results the fleet
//! publishes (`gen-N/shards/shard-XXXX`), folds them into an
//! append-only versioned dataset (committed atomically with the ingest
//! watermark — see `mphpc_storage::stream`), warm-starts a candidate
//! predictor from the live one on the grown data, and walks the
//! candidate through a three-stage promotion gate against a running
//! `mphpc serve` instance:
//!
//! 1. **Holdout gate** — per-output R² on a rolling holdout (a
//!    deterministic stride sample across the grown dataset) must not
//!    regress by more than [`WatchConfig::epsilon`] on *any* RPV
//!    output.
//! 2. **Shadow gate** — the candidate is attached as a shadow
//!    (`POST /shadow/<name>`) and scored on mirrored live traffic; it
//!    must survive [`WatchConfig::min_shadow_rows`] mirrored rows (or
//!    the shadow-wait deadline) with zero scoring errors.
//! 3. **Canary window** — after `POST /promote/<name>` installs the
//!    shadowed candidate, the watcher polls `GET /stats` for
//!    [`WatchConfig::rollback_window`]; a spike of `failed + expired`
//!    responses triggers `POST /rollback/<name>` and restores the
//!    previous predictor locally.
//!
//! A [`DriftDetector`](crate::drift::DriftDetector) rides on the ingest
//! stream (normalised features of every ingested row, plus serving
//! error deltas) and forces a retrain even when fewer than
//! [`WatchConfig::min_new_rows`] rows have arrived.
//!
//! Everything the watcher needs to resume after `kill -9` lives in the
//! store: the watermark and dataset advance together in one committed
//! version, and the last promoted model is persisted under
//! [`MODEL_KEY`] after every promotion or rollback.

use crate::drift::{DriftConfig, DriftDetector, DriftReference};
use crate::predictor::PerfPredictor;
use mphpc_dataset::MpHpcDataset;
use mphpc_errors::{MphpcError, ResultExt};
use mphpc_frame::read_csv_str;
use mphpc_ml::{r2_per_output, Matrix, Regressor};
use mphpc_serve::client::request_once;
use mphpc_storage::{stream, Storage};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Store key of the last promoted model (JSON), for restart resume.
pub const MODEL_KEY: &str = "watch/model.json";

/// Tuning for the watch loop. The defaults suit the integration tests
/// and the CI smoke run; a production deployment would stretch the
/// waits and windows.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchConfig {
    /// Address of the serving instance (`host:port`).
    pub addr: String,
    /// Served model name to shadow and promote (the registry key).
    pub model: String,
    /// Target size of the rolling holdout (stride-sampled rows).
    pub holdout: usize,
    /// Allowed per-output R² regression before a candidate is refused.
    pub epsilon: f64,
    /// Extra boosting rounds / trees per warm-start retrain.
    pub extra: usize,
    /// Ingested rows required before a retrain is attempted (drift
    /// firing overrides this).
    pub min_new_rows: usize,
    /// Mirrored rows the shadow must score before promotion.
    pub min_shadow_rows: u64,
    /// How long to wait for the shadow to see enough traffic.
    pub shadow_wait: Duration,
    /// Poll interval while waiting on the shadow.
    pub shadow_poll: Duration,
    /// Post-promote observation window.
    pub rollback_window: Duration,
    /// Poll interval inside the rollback window.
    pub rollback_poll: Duration,
    /// `failed + expired` responses inside the window that trigger a
    /// rollback.
    pub rollback_errors: u64,
    /// Dataset versions retained behind the current one.
    pub keep_versions: u64,
    /// Drift-detector window (rows per evaluation).
    pub drift_window: usize,
    /// Timeout for each HTTP request to the server.
    pub io_timeout: Duration,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig {
            addr: "127.0.0.1:8077".to_string(),
            model: "default".to_string(),
            holdout: 48,
            epsilon: 0.02,
            extra: 12,
            min_new_rows: 1,
            min_shadow_rows: 8,
            shadow_wait: Duration::from_secs(2),
            shadow_poll: Duration::from_millis(20),
            rollback_window: Duration::from_millis(500),
            rollback_poll: Duration::from_millis(25),
            rollback_errors: 1,
            keep_versions: 4,
            drift_window: 64,
            io_timeout: Duration::from_secs(5),
        }
    }
}

/// What one [`Watcher::tick`] decided.
#[derive(Debug, Clone, PartialEq)]
pub enum TickDecision {
    /// Nothing to do: no new rows and no drift trigger.
    Idle,
    /// Rows arrived but fewer than `min_new_rows`; they stay pending.
    Deferred {
        /// Rows accumulated towards the next retrain.
        pending_rows: usize,
    },
    /// A candidate was trained but not promoted.
    Refused {
        /// Human-readable gate verdict.
        reason: String,
    },
    /// The candidate was promoted and survived the canary window.
    Promoted {
        /// Registry version the candidate was installed as.
        version: u64,
        /// Mirrored rows the shadow scored before promotion.
        shadow_rows: u64,
    },
    /// The candidate was promoted, then rolled back on an error spike.
    RolledBack {
        /// Version the candidate was installed as.
        promoted: u64,
        /// Version the rollback installed.
        restored: u64,
        /// `failed + expired` responses observed inside the window.
        errors: u64,
    },
}

/// Outcome of one [`Watcher::tick`].
#[derive(Debug, Clone, PartialEq)]
pub struct TickReport {
    /// 1-based tick counter.
    pub tick: u64,
    /// Shard results folded into the dataset this tick.
    pub ingested_shards: usize,
    /// Shard results skipped as structurally invalid (marked seen so
    /// they are never retried).
    pub quarantined_shards: usize,
    /// Dataset rows added this tick.
    pub new_rows: usize,
    /// Dataset version committed this tick, if any.
    pub dataset_version: Option<u64>,
    /// True when the drift detector fired on this tick's rows.
    pub drift_fired: bool,
    /// The promotion decision.
    pub decision: TickDecision,
}

/// The watch daemon state: current predictor, ingest watermark, parsed
/// dataset, and the drift detector.
pub struct Watcher<'a> {
    store: &'a dyn Storage,
    cfg: WatchConfig,
    current: PerfPredictor,
    previous: Option<PerfPredictor>,
    dataset: Option<MpHpcDataset>,
    dataset_text: String,
    watermark: BTreeSet<String>,
    drift: Option<DriftDetector>,
    last_error_total: Option<u64>,
    rows_since_retrain: usize,
    ticks: u64,
}

impl<'a> Watcher<'a> {
    /// Build a watcher over `store`, serving decisions to
    /// `cfg.addr`. `base` seeds the live predictor; a model previously
    /// promoted by a watcher on this store ([`MODEL_KEY`]) takes
    /// precedence, so a restarted daemon resumes from its own last
    /// promotion.
    pub fn new(
        store: &'a dyn Storage,
        cfg: WatchConfig,
        base: PerfPredictor,
    ) -> Result<Watcher<'a>, MphpcError> {
        let current = match store.get(MODEL_KEY)? {
            Some(bytes) => {
                let json = String::from_utf8(bytes)
                    .map_err(|_| MphpcError::Storage("stored watch model is not utf-8".into()))?;
                PerfPredictor::from_json(&json).context("resuming the last promoted watch model")?
            }
            None => base,
        };
        let watermark = stream::load_watermark(store)?;
        let (dataset_text, dataset) = match stream::load_current_dataset(store)? {
            Some((_, bytes)) => {
                let text = String::from_utf8(bytes)
                    .map_err(|_| MphpcError::Storage("stored dataset is not utf-8".into()))?;
                let ds = parse_dataset(&text).context("parsing the committed watch dataset")?;
                (text, Some(ds))
            }
            None => (String::new(), None),
        };
        let mut watcher = Watcher {
            store,
            cfg,
            current,
            previous: None,
            dataset,
            dataset_text,
            watermark,
            drift: None,
            last_error_total: None,
            rows_since_retrain: 0,
            ticks: 0,
        };
        watcher.ensure_drift_reference()?;
        Ok(watcher)
    }

    /// The predictor the watcher currently believes is live.
    pub fn current(&self) -> &PerfPredictor {
        &self.current
    }

    /// Rows in the committed dataset.
    pub fn dataset_rows(&self) -> usize {
        self.dataset.as_ref().map_or(0, MpHpcDataset::n_rows)
    }

    /// Shard keys already folded in.
    pub fn watermark(&self) -> &BTreeSet<String> {
        &self.watermark
    }

    /// One full cycle: poll serving errors, ingest fresh shards, feed
    /// the drift detector, and (when warranted) retrain and walk the
    /// candidate through the promotion gates.
    pub fn tick(&mut self) -> Result<TickReport, MphpcError> {
        self.ticks += 1;
        mphpc_telemetry::counter_add("watch.ticks", 1);
        let mut report = TickReport {
            tick: self.ticks,
            ingested_shards: 0,
            quarantined_shards: 0,
            new_rows: 0,
            dataset_version: None,
            drift_fired: false,
            decision: TickDecision::Idle,
        };

        // Serving error delta since the last look, for the drift
        // detector's error channel. Best-effort: the watcher keeps
        // ingesting while the server is down.
        let error_delta = self.poll_serving_errors();

        let row_before = self.dataset_rows();
        self.ingest(&mut report)?;
        report.drift_fired = self.feed_drift(row_before, error_delta)?;
        self.rows_since_retrain += report.new_rows;

        if self.rows_since_retrain == 0 && !report.drift_fired {
            return Ok(report);
        }
        if self.rows_since_retrain < self.cfg.min_new_rows && !report.drift_fired {
            report.decision = TickDecision::Deferred {
                pending_rows: self.rows_since_retrain,
            };
            return Ok(report);
        }
        let Some(dataset) = self.dataset.as_ref() else {
            // Drift (error channel) fired before any data arrived.
            return Ok(report);
        };
        if dataset.n_rows() < 8 {
            report.decision = TickDecision::Deferred {
                pending_rows: self.rows_since_retrain,
            };
            return Ok(report);
        }

        mphpc_telemetry::counter_add("watch.retrains", 1);
        let (decision, consumed) = self.retrain_and_gate()?;
        if consumed {
            self.rows_since_retrain = 0;
        }
        match &decision {
            TickDecision::Promoted { .. } => mphpc_telemetry::counter_add("watch.promotions", 1),
            TickDecision::RolledBack { .. } => mphpc_telemetry::counter_add("watch.rollbacks", 1),
            TickDecision::Refused { .. } => mphpc_telemetry::counter_add("watch.refusals", 1),
            _ => {}
        }
        report.decision = decision;
        Ok(report)
    }

    /// Run the loop: `ticks` cycles (`None` = forever), sleeping `poll`
    /// between cycles. `on_tick` observes every outcome; transient tick
    /// errors are reported there and only abort the loop after five
    /// consecutive failures.
    pub fn run(
        &mut self,
        ticks: Option<u64>,
        poll: Duration,
        mut on_tick: impl FnMut(Result<&TickReport, &MphpcError>),
    ) -> Result<(), MphpcError> {
        let mut failures = 0u32;
        let mut done = 0u64;
        loop {
            match self.tick() {
                Ok(report) => {
                    failures = 0;
                    on_tick(Ok(&report));
                }
                Err(e) => {
                    failures += 1;
                    on_tick(Err(&e));
                    if failures >= 5 {
                        return Err(e).context("watch loop failed five consecutive ticks");
                    }
                }
            }
            done += 1;
            if ticks.is_some_and(|t| done >= t) {
                return Ok(());
            }
            std::thread::sleep(poll);
        }
    }

    /// Fold unseen shard results into the dataset and commit the grown
    /// version together with the advanced watermark. Structurally
    /// invalid shards are quarantined: marked seen (so they are never
    /// retried) without contributing rows.
    fn ingest(&mut self, report: &mut TickReport) -> Result<(), MphpcError> {
        let fresh = stream::unseen_shards(self.store, &self.watermark)?;
        if fresh.is_empty() {
            return Ok(());
        }
        let mut header: Option<String> = self
            .dataset_text
            .split_once('\n')
            .map(|(head, _)| head.to_string());
        let mut grown = self.dataset_text.clone();
        let mut new_rows = 0usize;
        for key in &fresh {
            let raw = self
                .store
                .get(key)?
                .ok_or_else(|| MphpcError::Storage(format!("shard {key} vanished mid-ingest")))?;
            match validate_shard(&raw, header.as_deref()) {
                Ok((head, body, rows)) => {
                    if header.is_none() {
                        grown.push_str(&head);
                        grown.push('\n');
                        header = Some(head);
                    }
                    grown.push_str(&body);
                    new_rows += rows;
                    report.ingested_shards += 1;
                    mphpc_telemetry::counter_add("watch.shards_ingested", 1);
                }
                Err(_) => {
                    report.quarantined_shards += 1;
                    mphpc_telemetry::counter_add("watch.shards_quarantined", 1);
                }
            }
            // Seen either way: a quarantined shard must not wedge the
            // loop by being re-examined forever.
            self.watermark.insert(key.clone());
        }
        let dataset = if new_rows > 0 {
            Some(parse_dataset(&grown).context("validating the grown watch dataset")?)
        } else {
            None
        };
        let version = stream::commit_ingest(self.store, grown.as_bytes(), &self.watermark)?;
        stream::prune_dataset_versions(self.store, self.cfg.keep_versions)?;
        mphpc_telemetry::counter_add("watch.rows_ingested", new_rows as u64);
        self.dataset_text = grown;
        if let Some(ds) = dataset {
            self.dataset = Some(ds);
        }
        report.new_rows = new_rows;
        report.dataset_version = Some(version);
        Ok(())
    }

    /// Fit the drift reference once the dataset is large enough.
    fn ensure_drift_reference(&mut self) -> Result<(), MphpcError> {
        if self.drift.is_some() {
            return Ok(());
        }
        let Some(dataset) = self.dataset.as_ref() else {
            return Ok(());
        };
        if dataset.n_rows() < crate::drift::BUCKETS {
            return Ok(());
        }
        let ml = dataset.to_ml(&dataset.all_rows(), self.current.normalizer())?;
        let reference = DriftReference::fit(&ml.x).context("fitting the drift reference")?;
        let config = DriftConfig {
            window: self.cfg.drift_window,
            ..DriftConfig::default()
        };
        self.drift = Some(DriftDetector::new(reference, config)?);
        Ok(())
    }

    /// Stream this tick's ingested rows (normalised features) and the
    /// serving-error delta through the drift detector.
    fn feed_drift(
        &mut self,
        start_row: usize,
        error_delta: Option<u64>,
    ) -> Result<bool, MphpcError> {
        self.ensure_drift_reference()?;
        let Some(detector) = self.drift.as_mut() else {
            return Ok(false);
        };
        if let Some(errors) = error_delta {
            detector.note_serving_errors(errors);
        }
        let Some(dataset) = self.dataset.as_ref() else {
            return Ok(false);
        };
        let end = dataset.n_rows();
        if start_row >= end {
            return Ok(false);
        }
        let rows: Vec<usize> = (start_row..end).collect();
        let ml = dataset.to_ml(&rows, self.current.normalizer())?;
        let mut fired = false;
        let mut row = vec![0.0; ml.x.cols()];
        for i in 0..ml.x.rows() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = ml.x.get(i, j);
            }
            if let Some(report) = detector.push_row(&row)? {
                if report.drifted() {
                    fired = true;
                    mphpc_telemetry::counter_add("watch.drift_fired", 1);
                }
            }
        }
        Ok(fired)
    }

    /// Warm-start a candidate on the grown dataset and walk it through
    /// the three gates. Returns the decision plus whether the pending
    /// rows were consumed (transport failures keep them pending so the
    /// retrain is retried when the server comes back).
    fn retrain_and_gate(&mut self) -> Result<(TickDecision, bool), MphpcError> {
        let dataset = self.dataset.as_ref().expect("caller checked");
        let n = dataset.n_rows();
        let (train_rows, holdout_rows) = rolling_split(n, self.cfg.holdout);
        let normalizer = self.current.normalizer();
        let train = dataset.to_ml(&train_rows, normalizer)?;
        let model = self
            .current
            .model()
            .warm_start(&train, self.cfg.extra)
            .context("warm-start retraining the watch candidate")?;
        let candidate = PerfPredictor::new(model, normalizer.clone());

        // Gate 1: rolling-holdout per-output R².
        if holdout_rows.len() >= 8 {
            let hold = dataset.to_ml(&holdout_rows, normalizer)?;
            let live_r2 = r2_per_output(&self.current.model().predict(&hold.x)?, &hold.y)?;
            let cand_r2 = r2_per_output(&candidate.model().predict(&hold.x)?, &hold.y)?;
            for (output, (cand, live)) in cand_r2.iter().zip(&live_r2).enumerate() {
                if *cand < live - self.cfg.epsilon {
                    return Ok((
                        TickDecision::Refused {
                            reason: format!(
                                "holdout R² regressed on output {output}: \
                                 candidate {cand:.4} < live {live:.4} - {:.4} \
                                 ({} holdout rows)",
                                self.cfg.epsilon,
                                holdout_rows.len()
                            ),
                        },
                        true,
                    ));
                }
            }
        }
        self.shadow_and_promote(candidate)
    }

    /// Gates 2 and 3: shadow eval on mirrored traffic, canary promote,
    /// and the post-promote rollback window.
    fn shadow_and_promote(
        &mut self,
        candidate: PerfPredictor,
    ) -> Result<(TickDecision, bool), MphpcError> {
        let name = self.cfg.model.clone();
        let json = candidate.to_json()?;
        let attach = match self.http("POST", &format!("/shadow/{name}"), &json) {
            Ok(reply) => reply,
            Err(e) => {
                // Transport failure: keep the rows pending and retry
                // next tick.
                return Ok((
                    TickDecision::Refused {
                        reason: format!("shadow attach unreachable: {e}"),
                    },
                    false,
                ));
            }
        };
        if attach.0 != 200 {
            return Ok((
                TickDecision::Refused {
                    reason: format!("shadow attach refused: {} {}", attach.0, attach.1),
                },
                true,
            ));
        }

        let deadline = Instant::now() + self.cfg.shadow_wait;
        let (mut rows, mut errors) = (0u64, 0u64);
        loop {
            match self.http("GET", "/shadow", "") {
                Ok((200, body)) => {
                    rows = json_u64_field(&body, "rows").unwrap_or(0);
                    errors = json_u64_field(&body, "errors").unwrap_or(0);
                }
                _ => {}
            }
            if errors > 0 || rows >= self.cfg.min_shadow_rows || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(self.cfg.shadow_poll);
        }
        if errors > 0 {
            let _ = self.http("POST", &format!("/shadow/{name}/drop"), "");
            return Ok((
                TickDecision::Refused {
                    reason: format!("shadow scored {errors} error(s) over {rows} mirrored row(s)"),
                },
                true,
            ));
        }

        let promote = match self.http("POST", &format!("/promote/{name}"), "") {
            Ok(reply) => reply,
            Err(e) => {
                let _ = self.http("POST", &format!("/shadow/{name}/drop"), "");
                return Ok((
                    TickDecision::Refused {
                        reason: format!("promote unreachable: {e}"),
                    },
                    false,
                ));
            }
        };
        if promote.0 != 200 {
            return Ok((
                TickDecision::Refused {
                    reason: format!("promote refused: {} {}", promote.0, promote.1),
                },
                true,
            ));
        }
        let version = json_u64_field(&promote.1, "version").unwrap_or(0);
        self.store.put_atomic(MODEL_KEY, json.as_bytes())?;
        self.previous = Some(std::mem::replace(&mut self.current, candidate));

        // Gate 3: the canary window.
        let baseline = self.read_error_total().unwrap_or(0);
        let deadline = Instant::now() + self.cfg.rollback_window;
        loop {
            std::thread::sleep(self.cfg.rollback_poll);
            let spike = self
                .read_error_total()
                .map(|total| total.saturating_sub(baseline))
                .unwrap_or(0);
            if spike >= self.cfg.rollback_errors {
                let restored = match self.http("POST", &format!("/rollback/{name}"), "") {
                    Ok((200, body)) => json_u64_field(&body, "version").unwrap_or(0),
                    Ok((status, body)) => {
                        return Err(MphpcError::Serve(format!(
                            "rollback of '{name}' failed: {status} {body}"
                        )))
                    }
                    Err(e) => return Err(e),
                };
                if let Some(prev) = self.previous.take() {
                    self.store
                        .put_atomic(MODEL_KEY, prev.to_json()?.as_bytes())?;
                    self.current = prev;
                }
                return Ok((
                    TickDecision::RolledBack {
                        promoted: version,
                        restored,
                        errors: spike,
                    },
                    true,
                ));
            }
            if Instant::now() >= deadline {
                break;
            }
        }
        Ok((
            TickDecision::Promoted {
                version,
                shadow_rows: rows,
            },
            true,
        ))
    }

    /// `failed + expired` from `GET /stats`, best-effort.
    fn poll_serving_errors(&mut self) -> Option<u64> {
        let previous = self.last_error_total;
        let total = self.read_error_total().ok()?;
        Some(total.saturating_sub(previous.unwrap_or(total)))
    }

    fn read_error_total(&mut self) -> Result<u64, MphpcError> {
        let (status, body) = self.http("GET", "/stats", "")?;
        if status != 200 {
            return Err(MphpcError::Serve(format!("GET /stats returned {status}")));
        }
        let total = json_u64_field(&body, "failed").unwrap_or(0)
            + json_u64_field(&body, "expired").unwrap_or(0);
        self.last_error_total = Some(total);
        Ok(total)
    }

    fn http(&self, method: &str, path: &str, body: &str) -> Result<(u16, String), MphpcError> {
        let response = request_once(&self.cfg.addr, method, path, body, self.cfg.io_timeout)
            .map_err(|e| MphpcError::Serve(format!("{method} {path} on {}: {e}", self.cfg.addr)))?;
        Ok((response.status, response.text()))
    }
}

/// Deterministic rolling holdout: every `stride`-th row (the last of
/// each stride block) across the whole dataset, targeting `holdout`
/// rows. Spreading the holdout over old *and* new data means a
/// poisoned ingest batch degrades the candidate's score on the clean
/// majority instead of letting it grade itself on its own poison.
pub fn rolling_split(n: usize, holdout: usize) -> (Vec<usize>, Vec<usize>) {
    let stride = (n / holdout.max(1)).max(2);
    let mut train = Vec::with_capacity(n);
    let mut hold = Vec::with_capacity(n / stride + 1);
    for i in 0..n {
        if i % stride == stride - 1 {
            hold.push(i);
        } else {
            train.push(i);
        }
    }
    (train, hold)
}

/// Parse and validate a committed dataset CSV.
fn parse_dataset(text: &str) -> Result<MpHpcDataset, MphpcError> {
    MpHpcDataset::from_frame(read_csv_str(text)?)
}

/// Validate one shard result standalone: UTF-8, a header line agreeing
/// with the dataset's, a parseable MP-HPC table, and finite features
/// and targets. Returns `(header, body, rows)`.
fn validate_shard(
    raw: &[u8],
    expected_header: Option<&str>,
) -> Result<(String, String, usize), MphpcError> {
    let text = std::str::from_utf8(raw)
        .map_err(|_| MphpcError::Storage("shard result is not utf-8".into()))?;
    let (head, body) = text
        .split_once('\n')
        .ok_or_else(|| MphpcError::Storage("shard result has no header line".into()))?;
    if expected_header.is_some_and(|h| h != head) {
        return Err(MphpcError::Storage(
            "shard header disagrees with the dataset header".into(),
        ));
    }
    let dataset = parse_dataset(text)?;
    let rows = dataset.n_rows();
    if rows == 0 {
        return Err(MphpcError::Storage("shard result has no rows".into()));
    }
    // Reject non-finite cells up front: one NaN target would otherwise
    // poison every later retrain.
    let ml = dataset.to_ml(&dataset.all_rows(), &mphpc_dataset::Normalizer::identity())?;
    if !matrix_is_finite(&ml.x) || !matrix_is_finite(&ml.y) {
        return Err(MphpcError::Storage(
            "shard result contains non-finite cells".into(),
        ));
    }
    Ok((head.to_string(), body.to_string(), rows))
}

fn matrix_is_finite(m: &Matrix) -> bool {
    (0..m.rows()).all(|i| (0..m.cols()).all(|j| m.get(i, j).is_finite()))
}

/// Extract `"field":<unsigned integer>` from a hand-rolled JSON body.
/// Enough for the server's flat numeric fields; no escaping concerns
/// because the pattern anchors on the quoted field name.
fn json_u64_field(body: &str, field: &str) -> Option<u64> {
    let pattern = format!("\"{field}\":");
    let at = body.find(&pattern)? + pattern.len();
    let rest = &body[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{collect, train_predictor, CollectionConfig};
    use mphpc_ml::ModelKind;
    use mphpc_storage::LocalDirStorage;

    fn temp_store(tag: &str) -> LocalDirStorage {
        let dir = std::env::temp_dir().join(format!(
            "mphpc_watch_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        LocalDirStorage::open(dir).unwrap()
    }

    fn shard_csv(seed: u64) -> String {
        let dataset = collect(&CollectionConfig::small(2, 1, 1, seed)).unwrap();
        mphpc_frame::write_csv_string(&dataset.frame)
    }

    fn offline_cfg() -> WatchConfig {
        WatchConfig {
            // A port nothing listens on: transport failures must leave
            // the ingest side fully functional.
            addr: "127.0.0.1:9".to_string(),
            io_timeout: Duration::from_millis(200),
            shadow_wait: Duration::from_millis(50),
            rollback_window: Duration::from_millis(50),
            // Never reach the retrain stage: these tests exercise the
            // ingest/commit/quarantine side, which must work with no
            // server (and, in the offline harness, no serde). The
            // promotion gates are covered end-to-end by
            // tests/online_loop.rs.
            min_new_rows: usize::MAX,
            ..WatchConfig::default()
        }
    }

    fn base_predictor(seed: u64) -> PerfPredictor {
        let dataset = collect(&CollectionConfig::small(2, 1, 1, seed)).unwrap();
        train_predictor(&dataset, ModelKind::Linear(Default::default()), seed).unwrap()
    }

    #[test]
    fn rolling_split_partitions_all_rows() {
        for (n, holdout) in [(100, 10), (24, 48), (7, 2), (1, 1)] {
            let (train, hold) = rolling_split(n, holdout);
            let mut all: Vec<usize> = train.iter().chain(&hold).copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..n).collect::<Vec<_>>(), "n={n} holdout={holdout}");
        }
        // Target size is honoured approximately, spread over the range.
        let (_, hold) = rolling_split(100, 10);
        assert_eq!(hold, vec![9, 19, 29, 39, 49, 59, 69, 79, 89, 99]);
    }

    #[test]
    fn json_field_scraper_reads_serve_bodies() {
        let body = r#"{"shadow":{"target":"default","candidate_kind":"Gbt","batches":3,"rows":41,"dropped_rows":2,"errors":0,"mean_abs_divergence":[0.1],"max_abs_divergence":0.5}}"#;
        assert_eq!(json_u64_field(body, "rows"), Some(41));
        assert_eq!(json_u64_field(body, "dropped_rows"), Some(2));
        assert_eq!(json_u64_field(body, "errors"), Some(0));
        assert_eq!(json_u64_field(body, "absent"), None);
        let stats = r#"{"connections":9,"requests":120,"ok":118,"rejected":0,"expired":1,"failed":1,"client_errors":0,"queue_depth":0}"#;
        assert_eq!(json_u64_field(stats, "failed"), Some(1));
        assert_eq!(json_u64_field(stats, "expired"), Some(1));
    }

    #[test]
    fn ingest_quarantines_garbage_and_never_retries_it() {
        let store = temp_store("quarantine");
        let good = shard_csv(301);
        store
            .put_atomic("gen-1/shards/shard-0000", good.as_bytes())
            .unwrap();
        store
            .put_atomic("gen-1/shards/shard-0001", b"not,a\nvalid,shard\n")
            .unwrap();

        let mut watcher = Watcher::new(&store, offline_cfg(), base_predictor(302)).unwrap();
        let report = watcher.tick().unwrap();
        assert_eq!(report.ingested_shards, 1);
        assert_eq!(report.quarantined_shards, 1);
        assert_eq!(report.new_rows, 24);
        assert_eq!(report.dataset_version, Some(1));
        assert_eq!(report.decision, TickDecision::Deferred { pending_rows: 24 });

        // Both shards (including the quarantined one) are now behind
        // the watermark: the next tick ingests nothing and the pending
        // rows stay pending.
        let report = watcher.tick().unwrap();
        assert_eq!(report.ingested_shards, 0);
        assert_eq!(report.quarantined_shards, 0);
        assert_eq!(report.new_rows, 0);
        assert_eq!(report.dataset_version, None);
        assert_eq!(report.decision, TickDecision::Deferred { pending_rows: 24 });
    }

    #[test]
    fn restart_resumes_from_the_committed_state() {
        let store = temp_store("resume");
        store
            .put_atomic("gen-1/shards/shard-0000", shard_csv(303).as_bytes())
            .unwrap();
        {
            let mut watcher = Watcher::new(&store, offline_cfg(), base_predictor(304)).unwrap();
            let report = watcher.tick().unwrap();
            assert_eq!(report.new_rows, 24);
        }
        // A fresh watcher (simulating a restart) sees the committed
        // dataset and watermark: nothing is re-ingested.
        let mut watcher = Watcher::new(&store, offline_cfg(), base_predictor(304)).unwrap();
        assert_eq!(watcher.dataset_rows(), 24);
        assert!(watcher.watermark().contains("gen-1/shards/shard-0000"));
        let report = watcher.tick().unwrap();
        assert_eq!(report.ingested_shards, 0);
        assert_eq!(report.new_rows, 0);
        // The restarted watcher lost the in-memory pending-rows count,
        // so with nothing new it idles rather than retraining.
        assert_eq!(report.decision, TickDecision::Idle);
    }

    #[test]
    fn mismatched_shard_headers_are_quarantined() {
        let store = temp_store("headers");
        store
            .put_atomic("gen-1/shards/shard-0000", shard_csv(305).as_bytes())
            .unwrap();
        let mut watcher = Watcher::new(&store, offline_cfg(), base_predictor(306)).unwrap();
        watcher.tick().unwrap();

        // A shard whose header disagrees (columns reordered) must be
        // quarantined, not spliced in.
        let good = shard_csv(307);
        let (head, body) = good.split_once('\n').unwrap();
        let mut cols: Vec<&str> = head.split(',').collect();
        cols.swap(0, 1);
        let twisted = format!("{}\n{}", cols.join(","), body);
        store
            .put_atomic("gen-2/shards/shard-0000", twisted.as_bytes())
            .unwrap();
        let report = watcher.tick().unwrap();
        assert_eq!(report.ingested_shards, 0);
        assert_eq!(report.quarantined_shards, 1);
        assert_eq!(report.new_rows, 0);
    }
}
