//! Storage-coordinated profiling/training fleet (DESIGN.md §16).
//!
//! A fleet job splits a collection campaign's run matrix into contiguous,
//! group-aligned shards described by an immutable
//! [`Manifest`](mphpc_storage::Manifest). Any number of *independent
//! worker processes* then race over the shards: each worker claims a shard
//! through the store's lease protocol, profiles its spec range with the
//! ordinary pipeline, and publishes the shard's partial dataset as an
//! atomic object. A resumable [`fleet_merge`] concatenates the completed
//! shards into the final dataset (and optionally trains the production
//! model on it).
//!
//! # Crash safety and bit-identity
//!
//! The design goal is that `kill -9` of any worker at any instant is
//! recoverable *and leaves no trace in the output*: a restarted fleet
//! converges to the byte-identical result of a single-process
//! `collect()` + `train_predictor()` run. Three properties make this hold:
//!
//! * **Content-derived seeds.** Every profiled run's RNG seed is derived
//!   from the run's own labels and the manifest's base seed — never from
//!   worker identity or shard numbering — so any sharding of the spec list
//!   reproduces identical profiles.
//! * **Group-aligned shards.** Runs are paired across the four Table-I
//!   systems per (app, input, scale, rep); the spec matrix keeps each
//!   pairing group inside a `machines × reps` block, and
//!   [`plan_shards`](mphpc_storage::plan_shards) only cuts on block
//!   boundaries. Every shard therefore builds complete rows, and the
//!   concatenation of shard CSVs in shard order *is* the single-process
//!   CSV, byte for byte.
//! * **Atomic publication.** Shard results, the merged dataset, and the
//!   model are all published with temp-file + fsync + rename, so a crashed
//!   writer leaves either nothing or a complete object.
//!
//! Claims are only a compute-dedup optimisation: if a stale claim is
//! reclaimed while the original worker is merely slow (not dead), both
//! workers eventually publish the *same bytes* and the race is harmless.

use crate::pipeline::{train_predictor, CollectionConfig};
use mphpc_dataset::{build_dataset, MpHpcDataset};
use mphpc_errors::{MphpcError, ResultExt};
use mphpc_frame::read_csv_str;
use mphpc_ml::ModelKind;
use mphpc_storage::{plan_shards, ClaimOutcome, Manifest, Storage};
use mphpc_workloads::AppKind;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Parse a model-family word (`gbt`, `forest`, `linear`, `mean`) as used
/// by both the CLI and fleet manifests.
pub fn model_kind_from_name(word: &str) -> Result<ModelKind, MphpcError> {
    match word {
        "gbt" | "xgboost" => Ok(ModelKind::Gbt(Default::default())),
        "forest" => Ok(ModelKind::Forest(Default::default())),
        "linear" => Ok(ModelKind::Linear(Default::default())),
        "mean" => Ok(ModelKind::Mean),
        other => Err(MphpcError::InvalidArgument(format!(
            "unknown model '{other}'"
        ))),
    }
}

/// Build the generation manifest for a collection campaign.
///
/// `model` is the model-family word to train at merge time, or `None` for
/// a dataset-only fleet. Shards are aligned to the campaign's pairing
/// block (`machines × reps`) so every shard yields complete dataset rows.
pub fn manifest_for(
    cfg: &CollectionConfig,
    n_shards: usize,
    claim_ttl: Duration,
    model: Option<&str>,
    generation: u64,
) -> Result<Manifest, MphpcError> {
    if let Some(word) = model {
        model_kind_from_name(word)?; // validate before anything is published
    }
    let n_specs = cfg.specs().len();
    let align = mphpc_archsim::SystemId::TABLE1.len() * cfg.reps as usize;
    let mut params = BTreeMap::new();
    params.insert(
        "apps".to_string(),
        cfg.apps
            .as_ref()
            .map_or("all".to_string(), |v| v.len().to_string()),
    );
    params.insert(
        "inputs".to_string(),
        cfg.inputs_per_app
            .map_or("all".to_string(), |n| n.to_string()),
    );
    params.insert("reps".to_string(), cfg.reps.to_string());
    params.insert("model".to_string(), model.unwrap_or("none").to_string());
    Ok(Manifest {
        generation,
        seed: cfg.seed,
        claim_ttl,
        shards: plan_shards(n_specs, align, n_shards),
        params,
    })
}

/// Reconstruct the collection campaign a manifest describes.
///
/// Application selection is prefix-based (the first N of
/// [`AppKind::ALL`]), exactly like `mphpc collect --apps N`, so the
/// manifest only needs a count.
pub fn collection_from_manifest(m: &Manifest) -> Result<CollectionConfig, MphpcError> {
    let count = |key: &str| -> Result<Option<usize>, MphpcError> {
        match m.param(key)? {
            "all" => Ok(None),
            n => n.parse().map(Some).map_err(|_| {
                MphpcError::Storage(format!("manifest param '{key}' is not a count or 'all'"))
            }),
        }
    };
    let apps = count("apps")?.map(|n| AppKind::ALL.into_iter().take(n).collect::<Vec<_>>());
    if let Some(v) = &apps {
        if v.is_empty() || v.len() > AppKind::ALL.len() {
            return Err(MphpcError::Storage(format!(
                "manifest names {} apps, expected 1..={}",
                v.len(),
                AppKind::ALL.len()
            )));
        }
    }
    let reps: u32 = m
        .param("reps")?
        .parse()
        .map_err(|_| MphpcError::Storage("manifest param 'reps' is not a number".to_string()))?;
    Ok(CollectionConfig {
        apps,
        inputs_per_app: count("inputs")?,
        reps,
        seed: m.seed,
    })
}

/// Publish the manifest for a new fleet generation. Idempotent: re-running
/// with the same configuration is a no-op, a conflicting configuration is
/// an error.
pub fn fleet_init(
    store: &dyn Storage,
    cfg: &CollectionConfig,
    n_shards: usize,
    claim_ttl: Duration,
    model: Option<&str>,
    generation: u64,
) -> Result<Manifest, MphpcError> {
    let manifest = manifest_for(cfg, n_shards, claim_ttl, model, generation)?;
    manifest.publish(store)?;
    Ok(manifest)
}

/// What one [`fleet_work`] invocation did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerOutcome {
    /// Shards this worker executed to completion.
    pub completed: usize,
    /// Of those, shards whose stale claim was taken over from another
    /// worker.
    pub reclaimed: usize,
    /// Passes over the shard list (≥ 2 means the worker waited on peers).
    pub passes: usize,
}

/// Run one worker until every shard of the generation has a published
/// result (whether produced by this worker or a peer).
///
/// The worker repeatedly scans the shard list: shards with a result are
/// skipped, claimable shards are executed, and shards held by live peers
/// are left alone. When nothing was claimable but work remains, the
/// worker sleeps briefly and rescans — a peer will either finish the
/// shard or let its claim expire, at which point this worker takes over.
/// Safe to invoke from any number of processes or threads concurrently.
pub fn fleet_work(store: &dyn Storage, worker: &str) -> Result<WorkerOutcome, MphpcError> {
    if worker.is_empty() || worker.contains(|c: char| c.is_whitespace() || c == '/') {
        return Err(MphpcError::InvalidArgument(format!(
            "invalid worker id '{worker}'"
        )));
    }
    let manifest = Manifest::load(store)?;
    let specs = collection_from_manifest(&manifest)?.specs();
    let covered = manifest.shards.first().map(|s| s.start) == Some(0)
        && manifest.shards.last().map(|s| s.end) == Some(specs.len());
    if !covered {
        return Err(MphpcError::Storage(format!(
            "manifest shards do not tile the {}-spec campaign",
            specs.len()
        )));
    }
    let poll =
        (manifest.claim_ttl / 4).clamp(Duration::from_millis(10), Duration::from_millis(500));
    let mut outcome = WorkerOutcome::default();
    loop {
        outcome.passes += 1;
        let mut remaining = false;
        let mut progressed = false;
        for (id, range) in manifest.shards.iter().enumerate() {
            if store.exists(&manifest.result_key(id))? {
                continue;
            }
            remaining = true;
            match store.claim(&manifest.claim_key(id), worker, manifest.claim_ttl)? {
                ClaimOutcome::Acquired { reclaimed } => {
                    mphpc_telemetry::counter_add("fleet.shard.claimed", 1);
                    if reclaimed {
                        mphpc_telemetry::counter_add("fleet.shard.reclaimed", 1);
                        outcome.reclaimed += 1;
                    }
                    execute_shard(store, &manifest, id, &specs[range.start..range.end], worker)
                        .context(format!("executing fleet shard {id}"))?;
                    mphpc_telemetry::counter_add("fleet.shard.completed", 1);
                    outcome.completed += 1;
                    progressed = true;
                }
                ClaimOutcome::Held { .. } => {}
            }
        }
        if !remaining {
            return Ok(outcome);
        }
        if !progressed {
            std::thread::sleep(poll);
        }
    }
}

/// Crash-test hook: when `MPHPC_FLEET_STALL_SHARD` names this shard, hang
/// (once per process) for `MPHPC_FLEET_STALL_MS` right after the claim is
/// won and *before* heartbeats start — exactly the window where a wedged
/// or killed worker leaves a stale claim behind.
fn maybe_stall(id: usize) {
    static STALLED: AtomicBool = AtomicBool::new(false);
    let Ok(target) = std::env::var("MPHPC_FLEET_STALL_SHARD") else {
        return;
    };
    if target.parse() != Ok(id) || STALLED.swap(true, Ordering::Relaxed) {
        return;
    }
    let ms = std::env::var("MPHPC_FLEET_STALL_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(600_000);
    std::thread::sleep(Duration::from_millis(ms));
}

/// Profile one claimed shard and publish its partial dataset.
///
/// A background thread heartbeats the claim while the profiling runs, so
/// the lease stays live for as long as the worker is; the heartbeats stop
/// the moment the process dies. The result object is the shard's dataset
/// as CSV — rendered rows depend only on the specs and the manifest seed,
/// so duplicated executions publish identical bytes.
fn execute_shard(
    store: &dyn Storage,
    manifest: &Manifest,
    id: usize,
    specs: &[mphpc_workloads::RunSpec],
    worker: &str,
) -> Result<(), MphpcError> {
    let _span = mphpc_telemetry::span!("fleet.shard", runs = specs.len());
    maybe_stall(id);
    let claim_key = manifest.claim_key(id);
    let interval =
        (manifest.claim_ttl / 3).clamp(Duration::from_millis(5), Duration::from_millis(200));
    let done = AtomicBool::new(false);
    let dataset = std::thread::scope(|scope| {
        scope.spawn(|| {
            let step = Duration::from_millis(2).min(interval);
            loop {
                let mut slept = Duration::ZERO;
                while slept < interval && !done.load(Ordering::Relaxed) {
                    std::thread::sleep(step);
                    slept += step;
                }
                if done.load(Ordering::Relaxed) {
                    return;
                }
                // A false/failed heartbeat means the claim moved on; keep
                // computing anyway — the result is deterministic and the
                // publish below is atomic, so finishing is always safe.
                let _ = store.heartbeat(&claim_key, worker);
            }
        });
        let result = build_dataset(specs, manifest.seed);
        done.store(true, Ordering::Relaxed);
        result
    })?;
    let csv = mphpc_frame::write_csv_string(&dataset.frame);
    store.put_atomic(&manifest.result_key(id), csv.as_bytes())?;
    store.put_atomic(
        &manifest.meta_key(id),
        format!(
            "worker = {worker}\nrows = {}\nincomplete_groups = {}\n",
            dataset.n_rows(),
            dataset.incomplete_groups
        )
        .as_bytes(),
    )?;
    store.delete(&claim_key)
}

/// What [`fleet_merge`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeOutcome {
    /// Rows in the merged dataset.
    pub rows: usize,
    /// Shards folded in.
    pub shards: usize,
    /// True when a previous merge's dataset object was reused as-is.
    pub dataset_reused: bool,
    /// Model family trained (merge-time `model` manifest param), if any.
    pub model: Option<String>,
    /// True when a previous merge's model object was reused as-is.
    pub model_reused: bool,
}

/// Fold the completed shards into the final dataset (and optionally train
/// the production model), publishing both into the store and, when given,
/// to local output paths — every write atomic.
///
/// Resumable: the merged dataset and model are themselves store objects,
/// so a merge killed halfway restarts cleanly and a finished merge is
/// reused rather than recomputed. Errors if any shard result is missing.
pub fn fleet_merge(
    store: &dyn Storage,
    out: Option<&Path>,
    model_out: Option<&Path>,
) -> Result<MergeOutcome, MphpcError> {
    let manifest = Manifest::load(store)?;
    let missing: Vec<usize> = (0..manifest.shards.len())
        .filter(|&id| !store.exists(&manifest.result_key(id)).unwrap_or(false))
        .collect();
    if !missing.is_empty() {
        return Err(MphpcError::Storage(format!(
            "cannot merge: shards {missing:?} have no result yet (run `fleet work`)"
        )));
    }
    let _span = mphpc_telemetry::span!("fleet.merge", shards = manifest.shards.len());

    let dataset_key = format!("{}/dataset.csv", manifest.gen_prefix());
    let (bytes, dataset_reused) = match store.get(&dataset_key)? {
        Some(bytes) => (bytes, true),
        None => {
            // Shard CSVs share one header and hold this shard's rows in
            // spec order; concatenating bodies in shard order reproduces
            // the single-process CSV byte-for-byte (no re-rendering, so
            // no float round-trip anywhere).
            let mut merged = String::new();
            let mut header: Option<&str> = None;
            let chunks: Vec<String> = (0..manifest.shards.len())
                .map(|id| {
                    let raw = store.get(&manifest.result_key(id))?.expect("checked above");
                    String::from_utf8(raw)
                        .map_err(|_| MphpcError::Storage(format!("shard {id} result is not UTF-8")))
                })
                .collect::<Result<_, _>>()?;
            for (id, chunk) in chunks.iter().enumerate() {
                let (head, body) = chunk.split_once('\n').ok_or_else(|| {
                    MphpcError::Storage(format!("shard {id} result has no header line"))
                })?;
                match header {
                    None => {
                        merged.push_str(head);
                        merged.push('\n');
                        header = Some(head);
                    }
                    Some(h) if h != head => {
                        return Err(MphpcError::Storage(format!(
                            "shard {id} header disagrees with shard 0 \
                             (mixed generations in one store?)"
                        )))
                    }
                    Some(_) => {}
                }
                merged.push_str(body);
            }
            let bytes = merged.into_bytes();
            store.put_atomic(&dataset_key, &bytes)?;
            (bytes, false)
        }
    };

    let text = std::str::from_utf8(&bytes)
        .map_err(|_| MphpcError::Storage("merged dataset is not UTF-8".to_string()))?;
    let dataset =
        MpHpcDataset::from_frame(read_csv_str(text).context("parsing the merged fleet dataset")?)
            .context("validating the merged fleet dataset")?;
    if let Some(path) = out {
        mphpc_storage::atomic_write_file(path, &bytes)
            .map_err(|e| MphpcError::io(path.display().to_string(), e))?;
    }

    let model_word = manifest.param("model").unwrap_or("none").to_string();
    let mut model_reused = false;
    let model = if model_word == "none" {
        None
    } else {
        let model_key = format!("{}/model.json", manifest.gen_prefix());
        let json = match store.get(&model_key)? {
            Some(raw) => {
                model_reused = true;
                String::from_utf8(raw)
                    .map_err(|_| MphpcError::Storage("stored model is not UTF-8".to_string()))?
            }
            None => {
                let kind = model_kind_from_name(&model_word)?;
                let predictor = train_predictor(&dataset, kind, manifest.seed)
                    .context("training the fleet model on the merged dataset")?;
                let json = predictor.to_json()?;
                store.put_atomic(&model_key, json.as_bytes())?;
                json
            }
        };
        if let Some(path) = model_out {
            mphpc_storage::atomic_write_file(path, json.as_bytes())
                .map_err(|e| MphpcError::io(path.display().to_string(), e))?;
        }
        Some(model_word)
    };

    Ok(MergeOutcome {
        rows: dataset.n_rows(),
        shards: manifest.shards.len(),
        dataset_reused,
        model,
        model_reused,
    })
}

/// Render a human-readable per-shard progress report.
pub fn fleet_status(store: &dyn Storage) -> Result<String, MphpcError> {
    let manifest = Manifest::load(store)?;
    let mut out = format!(
        "generation {} — seed {}, {} shards, claim ttl {} ms, model {}\n",
        manifest.generation,
        manifest.seed,
        manifest.shards.len(),
        manifest.claim_ttl.as_millis(),
        manifest.param("model").unwrap_or("none"),
    );
    let mut done = 0usize;
    for (id, range) in manifest.shards.iter().enumerate() {
        let state = if store.exists(&manifest.result_key(id))? {
            done += 1;
            let by = store
                .get(&manifest.meta_key(id))
                .ok()
                .flatten()
                .and_then(|raw| {
                    String::from_utf8(raw).ok().and_then(|meta| {
                        meta.lines()
                            .find_map(|l| l.strip_prefix("worker = ").map(str::to_string))
                    })
                });
            match by {
                Some(w) => format!("done (by {w})"),
                None => "done".to_string(),
            }
        } else {
            match store.get(&manifest.claim_key(id))? {
                Some(owner) => format!("claimed by {}", String::from_utf8_lossy(&owner).trim_end()),
                None => "pending".to_string(),
            }
        };
        out.push_str(&format!(
            "  shard {id:>3}  specs {:>5}..{:<5}  {state}\n",
            range.start, range.end
        ));
    }
    let dataset_key = format!("{}/dataset.csv", manifest.gen_prefix());
    out.push_str(&format!(
        "{done}/{} shards complete; merged dataset {}\n",
        manifest.shards.len(),
        if store.exists(&dataset_key)? {
            "published"
        } else {
            "not yet merged"
        }
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::collect;
    use mphpc_storage::LocalDirStorage;

    fn temp_store(tag: &str) -> LocalDirStorage {
        let dir = std::env::temp_dir().join(format!(
            "mphpc_fleet_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        LocalDirStorage::open(dir).unwrap()
    }

    fn small_cfg() -> CollectionConfig {
        CollectionConfig::small(3, 2, 2, 77)
    }

    #[test]
    fn manifest_round_trips_the_collection_config() {
        let cfg = small_cfg();
        let m = manifest_for(&cfg, 4, Duration::from_secs(30), Some("gbt"), 0).unwrap();
        assert_eq!(collection_from_manifest(&m).unwrap(), cfg);
        // Shards tile the matrix on 4·reps boundaries.
        assert_eq!(m.shards.last().unwrap().end, cfg.specs().len());
        for s in &m.shards {
            assert_eq!(s.start % 8, 0, "pairing blocks must not be split");
        }
        // Full campaign maps through "all" params.
        let full = CollectionConfig::full(5);
        let mf = manifest_for(&full, 8, Duration::from_secs(30), None, 1).unwrap();
        assert_eq!(mf.param("apps").unwrap(), "all");
        assert_eq!(collection_from_manifest(&mf).unwrap(), full);
        // Bad model words are rejected before anything is published.
        assert!(manifest_for(&cfg, 4, Duration::from_secs(30), Some("svm"), 0).is_err());
    }

    #[test]
    fn fleet_of_threads_matches_single_process_bytes() {
        let store = temp_store("threads");
        let cfg = small_cfg();
        fleet_init(&store, &cfg, 3, Duration::from_secs(30), None, 0).unwrap();

        let outcomes: Vec<WorkerOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|i| {
                    let store = &store;
                    s.spawn(move || fleet_work(store, &format!("t{i}")).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            outcomes.iter().map(|o| o.completed).sum::<usize>(),
            3,
            "{outcomes:?}"
        );

        let merged = fleet_merge(&store, None, None).unwrap();
        assert_eq!(merged.shards, 3);
        assert!(!merged.dataset_reused);
        assert_eq!(merged.model, None);

        // Byte-identical to the single-process pipeline.
        let reference = mphpc_frame::write_csv_string(&collect(&cfg).unwrap().frame);
        let fleet_bytes = store.get("gen-0/dataset.csv").unwrap().unwrap();
        assert_eq!(merged.rows, reference.lines().count() - 1);
        assert_eq!(
            fleet_bytes,
            reference.as_bytes(),
            "merged fleet CSV must equal the single-process CSV"
        );

        // Merging again reuses the published dataset.
        let again = fleet_merge(&store, None, None).unwrap();
        assert!(again.dataset_reused);
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn merge_refuses_incomplete_generations() {
        let store = temp_store("incomplete");
        fleet_init(&store, &small_cfg(), 2, Duration::from_secs(30), None, 0).unwrap();
        let err = fleet_merge(&store, None, None).unwrap_err();
        assert!(err.to_string().contains("no result"), "{err}");
        let status = fleet_status(&store).unwrap();
        assert!(status.contains("pending"), "{status}");
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn worker_ids_are_validated() {
        let store = temp_store("badid");
        fleet_init(&store, &small_cfg(), 2, Duration::from_secs(30), None, 0).unwrap();
        for bad in ["", "a b", "a/b"] {
            assert!(fleet_work(&store, bad).is_err(), "{bad:?}");
        }
        std::fs::remove_dir_all(store.root()).ok();
    }
}
