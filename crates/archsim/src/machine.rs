//! Machine descriptions and the Table-I system registry.

use serde::{Deserialize, Serialize};

/// Identifier for one of the paper's four systems, or a user-defined one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SystemId {
    /// Intel Xeon E5-2695 v4 (Broadwell), CPU-only.
    Quartz,
    /// Intel Xeon CLX-8276 (Cascade Lake), CPU-only.
    Ruby,
    /// IBM Power9 + 4× NVIDIA V100.
    Lassen,
    /// AMD Rome + 8× AMD MI50.
    Corona,
    /// A system outside the Table-I set (index into a user registry).
    Custom(u32),
}

impl SystemId {
    /// The four Table-I systems in the paper's canonical order
    /// (the one-hot architecture feature uses this ordering).
    pub const TABLE1: [SystemId; 4] = [
        SystemId::Quartz,
        SystemId::Ruby,
        SystemId::Lassen,
        SystemId::Corona,
    ];

    /// Display name.
    pub fn name(&self) -> String {
        match self {
            SystemId::Quartz => "Quartz".to_string(),
            SystemId::Ruby => "Ruby".to_string(),
            SystemId::Lassen => "Lassen".to_string(),
            SystemId::Corona => "Corona".to_string(),
            SystemId::Custom(i) => format!("Custom{i}"),
        }
    }

    /// Index in the canonical Table-I ordering, if this is a Table-I system.
    pub fn table1_index(&self) -> Option<usize> {
        Self::TABLE1.iter().position(|s| s == self)
    }
}

/// One cache level of the CPU hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheLevelSpec {
    /// Capacity in bytes (per core for private levels, per node for shared).
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: u32,
    /// Cache line size in bytes.
    pub line_bytes: u32,
    /// Load-to-use latency in cycles on a hit at this level.
    pub latency_cycles: f64,
    /// True if shared by all cores on the node (affects effective capacity).
    pub shared: bool,
}

impl CacheLevelSpec {
    /// Number of sets (rounded down when capacity is not an exact multiple
    /// of `ways × line`, as with Ruby's 11-way LLC); at least 1.
    pub fn n_sets(&self) -> u64 {
        let line = self.line_bytes as u64;
        let ways = self.associativity as u64;
        assert!(line > 0 && ways > 0, "cache level geometry must be nonzero");
        let lines = self.capacity_bytes / line;
        (lines / ways).max(1)
    }
}

/// CPU side of a machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Marketing / family name (e.g. "Intel Xeon E5-2695 v4").
    pub model: String,
    /// Physical cores per node.
    pub cores_per_node: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Sustainable scalar instructions-per-cycle for integer-ish code.
    pub base_ipc: f64,
    /// SIMD vector width in 64-bit lanes (e.g. AVX2 = 4, AVX-512 = 8).
    pub simd_lanes_f64: f64,
    /// Branch predictor accuracy on perfectly regular branches (0..1).
    pub branch_predictor: f64,
    /// Penalty in cycles for a mispredicted branch.
    pub branch_misp_penalty: f64,
    /// Cache hierarchy, ordered L1 → last level.
    pub cache_levels: Vec<CacheLevelSpec>,
    /// DRAM latency in cycles (after a last-level miss).
    pub mem_latency_cycles: f64,
    /// Node memory bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Memory-level parallelism: how many outstanding misses overlap;
    /// effective stall = latency / mlp.
    pub mlp: f64,
}

/// GPU side of a machine (absent on CPU-only systems).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name (e.g. "NVIDIA V100").
    pub model: String,
    /// GPUs per node.
    pub gpus_per_node: u32,
    /// Peak FP32 throughput per GPU in TFLOP/s.
    pub fp32_tflops: f64,
    /// Peak FP64 throughput per GPU in TFLOP/s.
    pub fp64_tflops: f64,
    /// Device memory bandwidth per GPU in GB/s.
    pub mem_bw_gbps: f64,
    /// Device memory capacity in GB.
    pub mem_gb: f64,
    /// Host↔device link bandwidth in GB/s (NVLink / PCIe).
    pub host_link_gbps: f64,
    /// Kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Achievable fraction of peak for well-behaved kernels (0..1).
    pub efficiency: f64,
    /// Fractional throughput lost per unit of branch divergence (0..1 scale).
    pub divergence_penalty: f64,
    /// Relative run-to-run counter noise of this GPU's profiling stack
    /// (the paper observes AMD counters are noisier than NVIDIA's).
    pub counter_noise: f64,
}

/// Inter-node network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Per-message latency in microseconds.
    pub latency_us: f64,
    /// Point-to-point bandwidth in GB/s.
    pub bw_gbps: f64,
    /// Per-node injection bandwidth in GB/s.
    pub injection_gbps: f64,
}

/// Parallel filesystem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoSpec {
    /// Aggregate filesystem bandwidth available to a job in GB/s.
    pub bw_gbps: f64,
    /// Per-operation latency in milliseconds.
    pub latency_ms: f64,
}

/// A complete machine description: one row of Table I plus the model
/// parameters the simulator needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// System identity.
    pub id: SystemId,
    /// CPU description.
    pub cpu: CpuSpec,
    /// GPU description, if the system has GPUs.
    pub gpu: Option<GpuSpec>,
    /// Network description.
    pub network: NetworkSpec,
    /// Filesystem description.
    pub io: IoSpec,
    /// Nodes available to the scheduler (actual partition sizes).
    pub nodes_available: u32,
    /// System-level run-to-run runtime variability (log-normal sigma).
    pub runtime_noise: f64,
    /// CPU counter measurement noise (log-normal sigma).
    pub cpu_counter_noise: f64,
}

impl MachineSpec {
    /// True if the machine has GPUs.
    pub fn has_gpu(&self) -> bool {
        self.gpu.is_some()
    }

    /// Validate the spec's invariants (used when accepting user-defined
    /// machines): positive cores/clock/bandwidth and at least one cache
    /// level, since the execution model indexes the hierarchy.
    pub fn validate(&self) -> Result<(), String> {
        let c = &self.cpu;
        if c.cores_per_node == 0 {
            return Err("cores_per_node must be positive".into());
        }
        let positive = |v: f64| v.is_finite() && v > 0.0;
        if !positive(c.clock_ghz) || !positive(c.base_ipc) || !positive(c.mem_bw_gbps) {
            return Err("clock, IPC and memory bandwidth must be positive".into());
        }
        if c.cache_levels.is_empty() {
            return Err("at least one cache level is required".into());
        }
        for (i, lvl) in c.cache_levels.iter().enumerate() {
            if lvl.capacity_bytes == 0 || lvl.associativity == 0 || lvl.line_bytes == 0 {
                return Err(format!("cache level {i} has zero geometry"));
            }
        }
        if let Some(g) = &self.gpu {
            if g.gpus_per_node == 0 || !positive(g.fp32_tflops) || !positive(g.mem_bw_gbps) {
                return Err("GPU spec must have positive counts and rates".into());
            }
        }
        if self.nodes_available == 0 {
            return Err("nodes_available must be positive".into());
        }
        Ok(())
    }

    /// Hardware threads a single-node job can use.
    pub fn cores(&self) -> u32 {
        self.cpu.cores_per_node
    }
}

fn kib(n: u64) -> u64 {
    n * 1024
}
fn mib(n: u64) -> u64 {
    n * 1024 * 1024
}

/// Quartz: Intel Xeon E5-2695 v4 (Broadwell), 36 cores @ 2.1 GHz, CPU-only.
pub fn quartz() -> MachineSpec {
    MachineSpec {
        id: SystemId::Quartz,
        cpu: CpuSpec {
            model: "Intel Xeon E5-2695 v4".into(),
            cores_per_node: 36,
            clock_ghz: 2.1,
            base_ipc: 1.7,
            simd_lanes_f64: 4.0, // AVX2
            branch_predictor: 0.965,
            branch_misp_penalty: 16.0,
            cache_levels: vec![
                CacheLevelSpec {
                    capacity_bytes: kib(32),
                    associativity: 8,
                    line_bytes: 64,
                    latency_cycles: 4.0,
                    shared: false,
                },
                CacheLevelSpec {
                    capacity_bytes: kib(256),
                    associativity: 8,
                    line_bytes: 64,
                    latency_cycles: 12.0,
                    shared: false,
                },
                CacheLevelSpec {
                    capacity_bytes: mib(45),
                    associativity: 20,
                    line_bytes: 64,
                    latency_cycles: 42.0,
                    shared: true,
                },
            ],
            mem_latency_cycles: 220.0,
            mem_bw_gbps: 130.0,
            mlp: 6.0,
        },
        gpu: None,
        network: NetworkSpec {
            latency_us: 1.5,
            bw_gbps: 12.0,
            injection_gbps: 12.0,
        },
        io: IoSpec {
            bw_gbps: 4.0,
            latency_ms: 1.2,
        },
        nodes_available: 3004,
        runtime_noise: 0.015,
        cpu_counter_noise: 0.01,
    }
}

/// Ruby: Intel Xeon CLX-8276 (Cascade Lake), 56 cores @ 2.2 GHz, CPU-only.
pub fn ruby() -> MachineSpec {
    MachineSpec {
        id: SystemId::Ruby,
        cpu: CpuSpec {
            model: "Intel Xeon CLX-8276".into(),
            cores_per_node: 56,
            clock_ghz: 2.2,
            base_ipc: 2.0,
            simd_lanes_f64: 8.0, // AVX-512
            branch_predictor: 0.975,
            branch_misp_penalty: 17.0,
            cache_levels: vec![
                CacheLevelSpec {
                    capacity_bytes: kib(32),
                    associativity: 8,
                    line_bytes: 64,
                    latency_cycles: 4.0,
                    shared: false,
                },
                CacheLevelSpec {
                    capacity_bytes: mib(1),
                    associativity: 16,
                    line_bytes: 64,
                    latency_cycles: 14.0,
                    shared: false,
                },
                CacheLevelSpec {
                    capacity_bytes: mib(38),
                    associativity: 11,
                    line_bytes: 64,
                    latency_cycles: 44.0,
                    shared: true,
                },
            ],
            mem_latency_cycles: 230.0,
            mem_bw_gbps: 280.0,
            mlp: 8.0,
        },
        gpu: None,
        network: NetworkSpec {
            latency_us: 1.2,
            bw_gbps: 23.0,
            injection_gbps: 23.0,
        },
        io: IoSpec {
            bw_gbps: 6.0,
            latency_ms: 1.0,
        },
        nodes_available: 1480,
        runtime_noise: 0.015,
        cpu_counter_noise: 0.01,
    }
}

/// Lassen: IBM Power9 (44 cores @ 3.5 GHz) + 4× NVIDIA V100 per node.
pub fn lassen() -> MachineSpec {
    MachineSpec {
        id: SystemId::Lassen,
        cpu: CpuSpec {
            model: "IBM Power9".into(),
            cores_per_node: 44,
            clock_ghz: 3.5,
            base_ipc: 1.6,
            simd_lanes_f64: 2.0, // VSX
            branch_predictor: 0.955,
            branch_misp_penalty: 13.0,
            cache_levels: vec![
                CacheLevelSpec {
                    capacity_bytes: kib(32),
                    associativity: 8,
                    line_bytes: 128,
                    latency_cycles: 4.0,
                    shared: false,
                },
                CacheLevelSpec {
                    capacity_bytes: kib(512),
                    associativity: 8,
                    line_bytes: 128,
                    latency_cycles: 13.0,
                    shared: false,
                },
                CacheLevelSpec {
                    capacity_bytes: mib(110),
                    associativity: 20,
                    line_bytes: 128,
                    latency_cycles: 55.0,
                    shared: true,
                },
            ],
            mem_latency_cycles: 260.0,
            mem_bw_gbps: 170.0,
            mlp: 7.0,
        },
        gpu: Some(GpuSpec {
            model: "NVIDIA V100".into(),
            gpus_per_node: 4,
            fp32_tflops: 15.7,
            fp64_tflops: 7.8,
            mem_bw_gbps: 900.0,
            mem_gb: 16.0,
            host_link_gbps: 75.0, // NVLink2
            launch_overhead_us: 8.0,
            efficiency: 0.55,
            divergence_penalty: 0.75,
            counter_noise: 0.05,
        }),
        network: NetworkSpec {
            latency_us: 1.0,
            bw_gbps: 25.0,
            injection_gbps: 25.0,
        },
        io: IoSpec {
            bw_gbps: 10.0,
            latency_ms: 0.8,
        },
        nodes_available: 795,
        runtime_noise: 0.02,
        cpu_counter_noise: 0.015,
    }
}

/// Corona: AMD Rome (48 cores @ 2.8 GHz) + 8× AMD MI50 per node.
pub fn corona() -> MachineSpec {
    MachineSpec {
        id: SystemId::Corona,
        cpu: CpuSpec {
            model: "AMD Rome".into(),
            cores_per_node: 48,
            clock_ghz: 2.8,
            base_ipc: 1.9,
            simd_lanes_f64: 4.0, // AVX2
            branch_predictor: 0.97,
            branch_misp_penalty: 18.0,
            cache_levels: vec![
                CacheLevelSpec {
                    capacity_bytes: kib(32),
                    associativity: 8,
                    line_bytes: 64,
                    latency_cycles: 4.0,
                    shared: false,
                },
                CacheLevelSpec {
                    capacity_bytes: kib(512),
                    associativity: 8,
                    line_bytes: 64,
                    latency_cycles: 12.0,
                    shared: false,
                },
                CacheLevelSpec {
                    capacity_bytes: mib(128),
                    associativity: 16,
                    line_bytes: 64,
                    latency_cycles: 46.0,
                    shared: true,
                },
            ],
            mem_latency_cycles: 240.0,
            mem_bw_gbps: 190.0,
            mlp: 7.0,
        },
        gpu: Some(GpuSpec {
            model: "AMD MI50".into(),
            gpus_per_node: 8,
            fp32_tflops: 13.3,
            fp64_tflops: 6.6,
            mem_bw_gbps: 1024.0,
            mem_gb: 32.0,
            host_link_gbps: 32.0, // PCIe gen4
            launch_overhead_us: 12.0,
            efficiency: 0.45,
            divergence_penalty: 0.8,
            counter_noise: 0.12,
        }),
        network: NetworkSpec {
            latency_us: 1.3,
            bw_gbps: 21.0,
            injection_gbps: 21.0,
        },
        io: IoSpec {
            bw_gbps: 8.0,
            latency_ms: 1.0,
        },
        nodes_available: 121,
        runtime_noise: 0.03,
        cpu_counter_noise: 0.012,
    }
}

/// The four Table-I systems in canonical order.
pub fn table1_machines() -> Vec<MachineSpec> {
    vec![quartz(), ruby(), lassen(), corona()]
}

/// Look up a Table-I machine by id; `None` for custom ids.
pub fn machine_by_id(id: SystemId) -> Option<MachineSpec> {
    match id {
        SystemId::Quartz => Some(quartz()),
        SystemId::Ruby => Some(ruby()),
        SystemId::Lassen => Some(lassen()),
        SystemId::Corona => Some(corona()),
        SystemId::Custom(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_core_counts() {
        let ms = table1_machines();
        assert_eq!(ms.len(), 4);
        assert_eq!(ms[0].cpu.cores_per_node, 36);
        assert_eq!(ms[1].cpu.cores_per_node, 56);
        assert_eq!(ms[2].cpu.cores_per_node, 44);
        assert_eq!(ms[3].cpu.cores_per_node, 48);
        assert!((ms[0].cpu.clock_ghz - 2.1).abs() < 1e-12);
        assert!((ms[2].cpu.clock_ghz - 3.5).abs() < 1e-12);
    }

    #[test]
    fn gpu_presence_matches_table1() {
        assert!(!quartz().has_gpu());
        assert!(!ruby().has_gpu());
        assert_eq!(lassen().gpu.as_ref().unwrap().gpus_per_node, 4);
        assert_eq!(corona().gpu.as_ref().unwrap().gpus_per_node, 8);
    }

    #[test]
    fn cache_geometry_consistent() {
        for m in table1_machines() {
            for lvl in &m.cpu.cache_levels {
                assert!(lvl.n_sets() > 0);
            }
        }
    }

    #[test]
    fn canonical_order_and_indexing() {
        for (i, id) in SystemId::TABLE1.iter().enumerate() {
            assert_eq!(id.table1_index(), Some(i));
        }
        assert_eq!(SystemId::Custom(3).table1_index(), None);
        assert_eq!(SystemId::Custom(3).name(), "Custom3");
    }

    #[test]
    fn table1_specs_validate() {
        for m in table1_machines() {
            assert!(m.validate().is_ok(), "{:?}", m.id);
        }
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        let mut m = quartz();
        m.cpu.cache_levels.clear();
        assert!(m.validate().is_err());
        let mut m = quartz();
        m.cpu.cores_per_node = 0;
        assert!(m.validate().is_err());
        let mut m = lassen();
        m.gpu.as_mut().unwrap().gpus_per_node = 0;
        assert!(m.validate().is_err());
        let mut m = ruby();
        m.nodes_available = 0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn specs_serde_round_trip() {
        let m = lassen();
        let json = serde_json::to_string(&m).unwrap();
        let back: MachineSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn amd_counters_noisier_than_nvidia() {
        // §VIII-B: AMD GPU counters are less reliable; the noise model must
        // reflect that or the per-architecture ablation loses its shape.
        let nv = lassen().gpu.unwrap().counter_noise;
        let amd = corona().gpu.unwrap().counter_noise;
        assert!(amd > nv);
    }
}
