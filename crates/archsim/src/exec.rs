//! Run orchestration: demands × machine × run configuration → wall time and
//! ground-truth counters.
//!
//! [`simulate_run`] executes each kernel of an application (sequentially, as
//! phases of a time step) on either the CPU or GPU model, adds communication
//! and I/O costs, applies the machine's run-to-run jitter, and returns both
//! the total and a per-kernel breakdown (which the profiler crate turns into
//! a calling-context tree).

use crate::cache::CacheSimulator;
use crate::counters::GroundTruthCounters;
use crate::cpu;
use crate::demand::{KernelDemand, RunConfig};
use crate::gpu;
use crate::machine::MachineSpec;
use crate::network::CommModel;
use crate::noise::{lognormal_perturb, rng_for};

/// Fraction of offloaded work that must be re-executed as host-side driver
/// instructions (kernel launches, argument marshalling, staging), spread
/// over the ranks driving the devices.
pub const HOST_DRIVER_FRACTION: f64 = 0.10;

/// Per-kernel slice of a run result.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelOutcome {
    /// Kernel name (CCT frame label).
    pub name: String,
    /// Wall seconds attributed to this kernel (compute + comm + I/O).
    pub seconds: f64,
    /// Per-rank ground-truth counters for this kernel.
    pub counters: GroundTruthCounters,
    /// True if the kernel executed on the GPU.
    pub on_gpu: bool,
}

/// Result of simulating one application run on one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Machine the run executed on.
    pub machine: crate::machine::SystemId,
    /// Run layout.
    pub config: RunConfig,
    /// True if any kernel executed on the GPU (the paper's "Uses GPU"
    /// feature and the counter-set selector).
    pub used_gpu: bool,
    /// Total wall seconds including jitter.
    pub wall_seconds: f64,
    /// Per-kernel breakdown (pre-jitter).
    pub kernels: Vec<KernelOutcome>,
    /// Run totals (per-rank mean counters, summed over kernels).
    pub totals: GroundTruthCounters,
}

/// Simulate a run with a caller-provided cache simulator (reusable across
/// runs to avoid re-allocating trace buffers).
pub fn simulate_run_with(
    machine: &MachineSpec,
    demands: &[KernelDemand],
    config: RunConfig,
    seed: u64,
    cache_sim: &mut CacheSimulator,
) -> Result<RunResult, String> {
    if demands.is_empty() {
        return Err("run has no kernels".to_string());
    }
    for d in demands {
        d.validate()?;
    }
    let _run_span = mphpc_telemetry::span!(
        "archsim.run",
        machine = machine.id.name(),
        kernels = demands.len()
    );
    let ranks = config.total_ranks().max(1);
    let ranks_on_node = config.ranks_per_node.max(1);
    let single_core = ranks == 1;
    let comm = CommModel::new(&machine.network, ranks, config.nodes);

    let mut kernels = Vec::with_capacity(demands.len());
    let mut totals = GroundTruthCounters::default();
    let mut wall = 0.0;
    let mut n_gpu_kernels = 0u64;

    for (ki, d) in demands.iter().enumerate() {
        let offload = config.use_gpu && machine.has_gpu() && d.gpu_offloadable;
        let mut rng = rng_for(seed, &[0xCAC4E, ki as u64]);

        let mix = d.mix;
        let iters = d.iterations as f64;
        let instr_rank =
            cpu::instructions_per_rank(d.instructions, d.parallel_fraction, ranks) * iters;

        let loads = instr_rank * mix.load;
        let stores = instr_rank * mix.store;
        let store_fraction = if mix.load + mix.store > 0.0 {
            mix.store / (mix.load + mix.store)
        } else {
            0.0
        };

        let mut counters = GroundTruthCounters {
            total_instructions: instr_rank,
            branch_instructions: instr_rank * mix.branch,
            load_instructions: loads,
            store_instructions: stores,
            fp32_ops: instr_rank * mix.fp32,
            fp64_ops: instr_rank * mix.fp64,
            int_ops: instr_rank * mix.int_arith,
            ept_bytes: page_table_bytes(d.locality.working_set_bytes),
            io_bytes_read: d.io.read_bytes / ranks as f64,
            io_bytes_written: d.io.write_bytes / ranks as f64,
            ..GroundTruthCounters::default()
        };

        let (compute_seconds, on_gpu) = if offload {
            let gspec = machine.gpu.as_ref().expect("offload implies GPU");
            let n_gpus = gpu::gpus_used(gspec, config.nodes, single_core);
            let out = gpu::run_kernel(d, gspec, n_gpus);
            // The serial portion runs on one host core at a nominal
            // 2 cycles/instruction (issue + typical stalls).
            let serial_instr = d.instructions * (1.0 - d.parallel_fraction) * iters;
            let t_serial = serial_instr * 2.0 / (machine.cpu.clock_ghz * 1e9);
            // Host driver work: launching kernels, marshalling arguments,
            // and staging data costs a fixed fraction of the offloaded work
            // in host instructions, divided across the ranks driving the
            // GPUs. This is what keeps one-core-plus-one-GPU runs from
            // showing unphysical speedups over one-core CPU runs — the
            // single host core becomes the feeder bottleneck.
            let driver_instr =
                HOST_DRIVER_FRACTION * d.instructions * d.parallel_fraction * iters / ranks as f64;
            let t_driver = driver_instr * 2.0 / (machine.cpu.clock_ghz * 1e9);
            // Device cache behaviour: analytic miss ratios at nominal V100/
            // MI50-class L1 (128 KiB/CU-share) and L2 (4 MiB) capacities.
            let l1_miss = d.locality.analytic_miss_ratio(128.0 * 1024.0);
            let l2_miss = d.locality.analytic_miss_ratio(4.0 * 1024.0 * 1024.0);
            counters.l1_load_misses = loads * l1_miss;
            counters.l1_store_misses = stores * l1_miss;
            counters.l2_load_misses = loads * l2_miss.min(l1_miss);
            counters.l2_store_misses = stores * l2_miss.min(l1_miss);
            // Nominal 1.4 GHz device clock for stall-cycle accounting.
            counters.mem_stall_cycles = out.mem_stall_fraction * out.seconds * 1.4e9;
            ((out.seconds + t_serial + t_driver), true)
        } else {
            let hierarchy = cache_sim.run(
                &d.locality,
                store_fraction,
                &machine.cpu,
                ranks_on_node,
                &mut rng,
            );
            let out = cpu::run_kernel(d, &machine.cpu, ranks, config.nodes, &hierarchy);
            counters.l1_load_misses = loads * hierarchy.global_load_miss_ratio(0);
            counters.l1_store_misses = stores * hierarchy.global_store_miss_ratio(0);
            let l2 = 1.min(hierarchy.levels.len() - 1);
            counters.l2_load_misses = loads * hierarchy.global_load_miss_ratio(l2);
            counters.l2_store_misses = stores * hierarchy.global_store_miss_ratio(l2);
            counters.mem_stall_cycles = out.mem_stall_cycles;
            (out.seconds, false)
        };
        n_gpu_kernels += u64::from(on_gpu);

        let comm_seconds = comm.iteration_cost(&d.comm) * iters;
        let io_seconds = io_time(machine, d);
        let seconds = compute_seconds + comm_seconds + io_seconds;
        wall += seconds;
        totals.accumulate(&counters);
        kernels.push(KernelOutcome {
            name: d.name.clone(),
            seconds,
            counters,
            on_gpu,
        });
    }

    if mphpc_telemetry::enabled() {
        mphpc_telemetry::counter_add("archsim.runs", 1);
        mphpc_telemetry::counter_add("archsim.kernels.cpu", demands.len() as u64 - n_gpu_kernels);
        mphpc_telemetry::counter_add("archsim.kernels.gpu", n_gpu_kernels);
    }
    let used_gpu = kernels.iter().any(|k| k.on_gpu);
    let mut jitter_rng = rng_for(seed, &[0x71773]);
    let wall_seconds = lognormal_perturb(wall, machine.runtime_noise, &mut jitter_rng);

    Ok(RunResult {
        machine: machine.id,
        config,
        used_gpu,
        wall_seconds,
        kernels,
        totals,
    })
}

/// Simulate a run with a fresh trace-driven cache simulator.
pub fn simulate_run(
    machine: &MachineSpec,
    demands: &[KernelDemand],
    config: RunConfig,
    seed: u64,
) -> Result<RunResult, String> {
    let mut sim = CacheSimulator::new();
    simulate_run_with(machine, demands, config, seed, &mut sim)
}

fn io_time(machine: &MachineSpec, d: &KernelDemand) -> f64 {
    let bytes = d.io.read_bytes + d.io.write_bytes;
    if bytes <= 0.0 && d.io.ops == 0 {
        return 0.0;
    }
    bytes / (machine.io.bw_gbps * 1e9) + d.io.ops as f64 * machine.io.latency_ms * 1e-3
}

/// Size of the page-table mapping for a working set (4 KiB pages × 8-byte
/// entries), the source of the paper's "Extended Page Table" feature.
pub fn page_table_bytes(working_set_bytes: f64) -> f64 {
    (working_set_bytes / 4096.0).ceil() * 8.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{CommPattern, InstructionMix, IoDemand, LocalityProfile};
    use crate::machine::{corona, lassen, quartz, ruby};

    fn kernel(name: &str, gpu: bool, entropy: f64, fp: f64) -> KernelDemand {
        KernelDemand {
            name: name.into(),
            instructions: 5e9,
            mix: InstructionMix {
                branch: 0.1,
                load: 0.25,
                store: 0.1,
                fp32: fp / 2.0,
                fp64: fp / 2.0,
                int_arith: 0.15,
            }
            .normalized(0.98),
            locality: LocalityProfile {
                working_set_bytes: 5e7,
                theta: 0.3,
                streaming: 0.1,
            },
            parallel_fraction: 0.98,
            simd_fraction: 0.6,
            branch_entropy: entropy,
            gpu_offloadable: gpu,
            gpu_transfer_fraction: 0.02,
            comm: CommPattern {
                p2p_neighbors: 6,
                p2p_bytes: 32_768.0,
                allreduce_bytes: 8.0,
                alltoall_bytes: 0.0,
                barriers: 0,
            },
            io: IoDemand {
                read_bytes: 1e8,
                write_bytes: 1e7,
                ops: 10,
            },
            iterations: 5,
        }
    }

    #[test]
    fn empty_run_rejected() {
        assert!(simulate_run(&quartz(), &[], RunConfig::one_core(false), 1).is_err());
    }

    #[test]
    fn invalid_kernel_rejected() {
        let mut k = kernel("bad", false, 0.2, 0.3);
        k.iterations = 0;
        assert!(simulate_run(&quartz(), &[k], RunConfig::one_core(false), 1).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let ks = vec![kernel("a", false, 0.2, 0.3), kernel("b", false, 0.5, 0.1)];
        let r1 = simulate_run(&quartz(), &ks, RunConfig::one_node(36, false), 9).unwrap();
        let r2 = simulate_run(&quartz(), &ks, RunConfig::one_node(36, false), 9).unwrap();
        assert_eq!(r1, r2);
        let r3 = simulate_run(&quartz(), &ks, RunConfig::one_node(36, false), 10).unwrap();
        assert_ne!(r1.wall_seconds, r3.wall_seconds, "seed changes jitter");
    }

    #[test]
    fn totals_sum_kernels_and_are_consistent() {
        let ks = vec![kernel("a", false, 0.2, 0.3), kernel("b", false, 0.5, 0.1)];
        let r = simulate_run(&ruby(), &ks, RunConfig::one_node(56, false), 3).unwrap();
        assert_eq!(r.kernels.len(), 2);
        let sum: f64 = r
            .kernels
            .iter()
            .map(|k| k.counters.total_instructions)
            .sum();
        assert!((sum - r.totals.total_instructions).abs() < 1e-6 * sum);
        assert!(r.totals.is_sane());
        assert!(r.totals.is_consistent());
        assert!(!r.used_gpu);
    }

    #[test]
    fn gpu_machine_offloads_gpu_kernels() {
        let ks = vec![
            kernel("a", true, 0.1, 0.5),
            kernel("serial", false, 0.1, 0.1),
        ];
        let r = simulate_run(&lassen(), &ks, RunConfig::one_node(44, true), 4).unwrap();
        assert!(r.used_gpu);
        assert!(r.kernels[0].on_gpu);
        assert!(!r.kernels[1].on_gpu);
        // Same app on a CPU-only machine never uses a GPU.
        let rc = simulate_run(&quartz(), &ks, RunConfig::one_node(36, true), 4).unwrap();
        assert!(!rc.used_gpu);
    }

    #[test]
    fn data_parallel_fp_app_prefers_gpus() {
        let ks = vec![kernel("sweep", true, 0.05, 0.6)];
        let cfg_gpu = RunConfig::one_node(44, true);
        let t_lassen = simulate_run(&lassen(), &ks, cfg_gpu, 5)
            .unwrap()
            .wall_seconds;
        let t_quartz = simulate_run(&quartz(), &ks, RunConfig::one_node(36, true), 5)
            .unwrap()
            .wall_seconds;
        assert!(
            t_lassen < t_quartz,
            "GPU run {t_lassen} should beat CPU {t_quartz}"
        );
    }

    #[test]
    fn branchy_app_prefers_cpus() {
        // Fully random branching, almost no FP, cache-resident working set:
        // the regime where warp divergence erases the GPU's advantage.
        let mut k = kernel("walk", true, 1.0, 0.02);
        k.mix.branch = 0.35;
        k.mix.int_arith = 0.3;
        k.mix.load = 0.2;
        k.mix.store = 0.05;
        k.mix = k.mix.normalized(0.98);
        k.locality.working_set_bytes = 1e6;
        k.locality.theta = 0.1;
        k.parallel_fraction = 0.95;
        let ks = vec![k];
        let t_gpu = simulate_run(&corona(), &ks, RunConfig::one_node(48, true), 6)
            .unwrap()
            .wall_seconds;
        let t_cpu = simulate_run(&ruby(), &ks, RunConfig::one_node(56, false), 6)
            .unwrap()
            .wall_seconds;
        assert!(
            t_cpu < t_gpu,
            "branchy code: ruby {t_cpu} should beat corona-gpu {t_gpu}"
        );
    }

    #[test]
    fn two_nodes_add_comm_but_split_work() {
        let ks = vec![kernel("halo", false, 0.2, 0.3)];
        let one = simulate_run(&quartz(), &ks, RunConfig::one_node(36, false), 7)
            .unwrap()
            .wall_seconds;
        let two = simulate_run(&quartz(), &ks, RunConfig::two_nodes(36, false), 7)
            .unwrap()
            .wall_seconds;
        // Parallelisable work: two nodes should help despite comm.
        assert!(two < one, "two nodes {two} vs one {one}");
    }

    #[test]
    fn io_time_component() {
        let m = quartz();
        let mut k = kernel("io", false, 0.1, 0.1);
        k.io = IoDemand {
            read_bytes: 4e9,
            write_bytes: 4e9,
            ops: 100,
        };
        assert!(io_time(&m, &k) > 1.0, "8 GB at 4 GB/s is at least 2 s");
        k.io = IoDemand::default();
        assert_eq!(io_time(&m, &k), 0.0);
    }

    #[test]
    fn page_table_scales_with_working_set() {
        assert_eq!(page_table_bytes(4096.0), 8.0);
        assert_eq!(page_table_bytes(8192.0), 16.0);
        assert!(page_table_bytes(1e9) > page_table_bytes(1e6));
    }

    #[test]
    fn per_rank_counters_shrink_with_scale() {
        let ks = vec![kernel("a", false, 0.2, 0.3)];
        let one_core = simulate_run(&quartz(), &ks, RunConfig::one_core(false), 8).unwrap();
        let one_node = simulate_run(&quartz(), &ks, RunConfig::one_node(36, false), 8).unwrap();
        assert!(
            one_node.totals.total_instructions < one_core.totals.total_instructions,
            "per-rank mean instructions must fall as ranks rise"
        );
    }
}
