//! CPU execution-time model: cycle accounting bounded by memory bandwidth.
//!
//! For one kernel the model computes, per rank:
//!
//! * issue cycles — effective instructions / base IPC, with SIMD shrinking
//!   the vectorisable FP portion;
//! * branch stall cycles — mispredictions × penalty, where the
//!   misprediction rate interpolates between the machine's predictor floor
//!   and 50 % as the kernel's branch entropy grows;
//! * memory stall cycles — per-level cache misses (from the trace-driven
//!   simulation) × level latency, divided by the machine's memory-level
//!   parallelism.
//!
//! Node time is the max of the per-rank compute time and the node's
//! bandwidth bound (DRAM traffic / memory bandwidth) — a roofline-style
//! ceiling that makes bandwidth-hungry kernels insensitive to core count,
//! which is the behaviour that separates Quartz from Ruby in the dataset.

use crate::cache::HierarchyResult;
use crate::demand::KernelDemand;
use crate::machine::CpuSpec;

/// Outcome of running one kernel on the CPU side of a machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuKernelOutcome {
    /// Wall seconds for the kernel (all iterations, compute only — comm and
    /// I/O are added by the run orchestrator).
    pub seconds: f64,
    /// Per-rank instructions actually executed (serial part replicated).
    pub instructions_per_rank: f64,
    /// Per-rank memory stall cycles.
    pub mem_stall_cycles: f64,
    /// Per-rank branch mispredictions.
    pub branch_mispredictions: f64,
}

/// Branch misprediction rate for a kernel on a given predictor:
/// interpolates from the predictor's floor (perfectly structured code) to
/// 50 % (random branches) with the kernel's branch entropy.
pub fn mispredict_rate(branch_entropy: f64, predictor_accuracy: f64) -> f64 {
    let floor = (1.0 - predictor_accuracy).clamp(0.0, 1.0);
    let e = branch_entropy.clamp(0.0, 1.0);
    floor + (0.5 - floor) * e
}

/// Per-rank instruction count under Amdahl decomposition: the serial
/// fraction is replicated on every rank, the parallel fraction is divided.
pub fn instructions_per_rank(total: f64, parallel_fraction: f64, ranks: u32) -> f64 {
    let ranks = ranks.max(1) as f64;
    let p = parallel_fraction.clamp(0.0, 1.0);
    total * (1.0 - p) + total * p / ranks
}

/// Execute one kernel's demand on `cpu` with `ranks` total MPI ranks spread
/// over `nodes` nodes, given the kernel's cache behaviour.
pub fn run_kernel(
    demand: &KernelDemand,
    cpu: &CpuSpec,
    ranks: u32,
    nodes: u32,
    cache: &HierarchyResult,
) -> CpuKernelOutcome {
    let iters = demand.iterations as f64;
    let instr_rank =
        instructions_per_rank(demand.instructions, demand.parallel_fraction, ranks) * iters;

    // SIMD shrinks the vectorisable FP work. fp32 packs twice as many lanes.
    let lanes64 = cpu.simd_lanes_f64.max(1.0);
    let fp64_saving = demand.mix.fp64 * demand.simd_fraction * (1.0 - 1.0 / lanes64);
    let fp32_saving = demand.mix.fp32 * demand.simd_fraction * (1.0 - 1.0 / (2.0 * lanes64));
    let eff_instr = instr_rank * (1.0 - fp64_saving - fp32_saving).max(0.05);

    let issue_cycles = eff_instr / cpu.base_ipc.max(0.1);

    let branches = instr_rank * demand.mix.branch;
    let mispredictions = branches * mispredict_rate(demand.branch_entropy, cpu.branch_predictor);
    let branch_cycles = mispredictions * cpu.branch_misp_penalty;

    // Memory stalls: accesses that hit level i pay that level's latency
    // (L1 hits are covered by base IPC); DRAM pays full memory latency.
    let mem_accesses = instr_rank * (demand.mix.load + demand.mix.store);
    let total_refs = cache.total_refs.max(1) as f64;
    let mut stall_per_access = 0.0;
    for (i, level) in cache.levels.iter().enumerate().skip(1) {
        let served_here = (cache.levels[i - 1].load_misses + cache.levels[i - 1].store_misses)
            as f64
            - (level.load_misses + level.store_misses) as f64;
        stall_per_access += (served_here / total_refs) * cpu.cache_levels[i].latency_cycles;
    }
    stall_per_access += (cache.dram_accesses as f64 / total_refs) * cpu.mem_latency_cycles;
    let mem_stall_cycles = mem_accesses * stall_per_access / cpu.mlp.max(1.0);

    let cycles = issue_cycles + branch_cycles + mem_stall_cycles;
    let t_rank = cycles / (cpu.clock_ghz * 1e9);

    // Bandwidth roofline per node.
    let ranks_per_node = (ranks as f64 / nodes.max(1) as f64).max(1.0);
    let line = cpu
        .cache_levels
        .first()
        .map(|l| l.line_bytes as f64)
        .unwrap_or(64.0);
    let dram_ratio = cache.dram_accesses as f64 / total_refs;
    let node_dram_bytes = mem_accesses * dram_ratio * line * ranks_per_node;
    let t_bw = node_dram_bytes / (cpu.mem_bw_gbps * 1e9);

    CpuKernelOutcome {
        seconds: t_rank.max(t_bw),
        instructions_per_rank: instr_rank,
        mem_stall_cycles,
        branch_mispredictions: mispredictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheSimulator;
    use crate::demand::{CommPattern, InstructionMix, IoDemand, LocalityProfile};
    use crate::machine::{quartz, ruby};
    use crate::noise::rng_for;

    fn demand(entropy: f64, theta: f64, ws: f64) -> KernelDemand {
        KernelDemand {
            name: "k".into(),
            instructions: 2e9,
            mix: InstructionMix {
                branch: 0.1,
                load: 0.25,
                store: 0.1,
                fp32: 0.05,
                fp64: 0.25,
                int_arith: 0.15,
            },
            locality: LocalityProfile {
                working_set_bytes: ws,
                theta,
                streaming: 0.05,
            },
            parallel_fraction: 0.98,
            simd_fraction: 0.6,
            branch_entropy: entropy,
            gpu_offloadable: false,
            gpu_transfer_fraction: 0.0,
            comm: CommPattern::none(),
            io: IoDemand::default(),
            iterations: 5,
        }
    }

    fn outcome(
        d: &KernelDemand,
        cpu: &CpuSpec,
        ranks: u32,
        nodes: u32,
        seed: u64,
    ) -> CpuKernelOutcome {
        let mut sim = CacheSimulator::new();
        let store_frac = d.mix.store / (d.mix.load + d.mix.store);
        let ranks_on_node = (ranks / nodes.max(1)).max(1);
        let cache = sim.run(
            &d.locality,
            store_frac,
            cpu,
            ranks_on_node,
            &mut rng_for(seed, &[]),
        );
        run_kernel(d, cpu, ranks, nodes, &cache)
    }

    #[test]
    fn mispredict_rate_bounds() {
        assert!((mispredict_rate(0.0, 0.97) - 0.03).abs() < 1e-12);
        assert!((mispredict_rate(1.0, 0.97) - 0.5).abs() < 1e-12);
        let mid = mispredict_rate(0.5, 0.97);
        assert!(mid > 0.03 && mid < 0.5);
    }

    #[test]
    fn amdahl_instruction_split() {
        assert_eq!(instructions_per_rank(100.0, 1.0, 4), 25.0);
        assert_eq!(instructions_per_rank(100.0, 0.0, 4), 100.0);
        let half = instructions_per_rank(100.0, 0.5, 4);
        assert!((half - 62.5).abs() < 1e-12);
    }

    #[test]
    fn more_ranks_is_faster_until_amdahl() {
        let d = demand(0.2, 0.5, 1e7);
        let cpu = quartz().cpu;
        let t1 = outcome(&d, &cpu, 1, 1, 1).seconds;
        let t36 = outcome(&d, &cpu, 36, 1, 1).seconds;
        assert!(t36 < t1, "one node ({t36}) must beat one core ({t1})");
        assert!(t1 / t36 < 36.0, "speedup bounded by Amdahl + bandwidth");
        assert!(t1 / t36 > 4.0, "parallel code should still scale");
    }

    #[test]
    fn branchy_code_slower() {
        // Cache-resident working set so branch stalls are visible over
        // memory stalls.
        let cpu = quartz().cpu;
        let regular = outcome(&demand(0.05, 0.12, 2e6), &cpu, 1, 1, 2).seconds;
        let branchy = outcome(&demand(0.95, 0.12, 2e6), &cpu, 1, 1, 2).seconds;
        assert!(branchy > regular * 1.1, "branchy {branchy} vs {regular}");
    }

    #[test]
    fn cache_hostile_code_slower() {
        let cpu = quartz().cpu;
        let friendly = outcome(&demand(0.1, 0.4, 1e6), &cpu, 1, 1, 3).seconds;
        let hostile = outcome(&demand(0.1, 1.0, 4e9), &cpu, 1, 1, 3).seconds;
        assert!(hostile > friendly * 1.5, "hostile {hostile} vs {friendly}");
    }

    #[test]
    fn ruby_beats_quartz_on_node_runs() {
        // Ruby: more cores, wider SIMD, higher IPC, more bandwidth — the
        // dataset's CPU-side ordering depends on this.
        let d = demand(0.2, 0.6, 5e7);
        let tq = outcome(&d, &quartz().cpu, 36, 1, 4).seconds;
        let tr = outcome(&d, &ruby().cpu, 56, 1, 4).seconds;
        assert!(tr < tq, "ruby {tr} should beat quartz {tq}");
    }

    #[test]
    fn bandwidth_roofline_caps_node_time() {
        // With memory latency fully hidden (huge MLP), a streaming kernel's
        // node time must equal the DRAM-traffic / bandwidth bound and stop
        // scaling with rank count.
        let mut cpu = quartz().cpu;
        cpu.mlp = 1000.0;
        let mut d = demand(0.05, 1.0, 8e9);
        d.locality.streaming = 0.95;
        d.mix.load = 0.45;
        d.mix.store = 0.15;
        d.mix.fp64 = 0.05;
        d.mix.int_arith = 0.05;
        let o18 = outcome(&d, &cpu, 18, 1, 5);
        let o36 = outcome(&d, &cpu, 36, 1, 5);
        assert!(
            o36.seconds > o18.seconds * 0.7,
            "bandwidth-bound kernel should not scale: {} -> {}",
            o18.seconds,
            o36.seconds
        );
    }
}
