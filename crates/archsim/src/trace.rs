//! Synthetic memory-reference trace generation from a [`LocalityProfile`].
//!
//! The generator is reuse-distance driven: it keeps an LRU stack of
//! previously touched cache lines; for each reference it either touches a
//! brand-new line (with the profile's `streaming` probability, or when the
//! drawn reuse distance exceeds the lines touched so far) or re-touches the
//! line at a stack depth drawn from the profile's reuse-distance CDF. This
//! produces address streams whose fully-associative LRU miss curve matches
//! [`LocalityProfile::analytic_miss_ratio`] by construction, while still
//! exhibiting realistic set-conflict behaviour in the set-associative
//! simulator.
//!
//! The LRU stack is backed by a Fenwick tree over access-time slots
//! ([`IndexedLru`]), making depth-indexed access O(log n) instead of the
//! O(n) of a naive `Vec` stack — the trace generator is on the per-kernel
//! hot path of every simulated run in the dataset.

use crate::demand::LocalityProfile;
use rand::Rng;
use std::collections::HashMap;

/// A single memory reference in a synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Line-granular address (already divided by line size).
    pub line: u64,
    /// True for stores, false for loads.
    pub is_store: bool,
}

/// Fenwick (binary indexed) tree over `1..=n` supporting point add and
/// prefix-sum select.
#[derive(Debug)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    fn len(&self) -> usize {
        self.tree.len() - 1
    }

    fn add(&mut self, mut i: usize, delta: i32) {
        debug_assert!(i >= 1 && i <= self.len());
        while i <= self.len() {
            self.tree[i] = (self.tree[i] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Smallest index `i` with `prefix_sum(i) >= rank` (rank >= 1);
    /// `None` if the total is below `rank`.
    fn select(&self, rank: u32) -> Option<usize> {
        if rank == 0 {
            return None;
        }
        let mut pos = 0usize;
        let mut remaining = rank;
        let mut mask = self.len().next_power_of_two();
        while mask > 0 {
            let next = pos + mask;
            if next <= self.len() && self.tree[next] < remaining {
                remaining -= self.tree[next];
                pos = next;
            }
            mask >>= 1;
        }
        let idx = pos + 1;
        if idx <= self.len() {
            Some(idx)
        } else {
            None
        }
    }
}

/// An LRU stack supporting "touch the k-th most recently used item" in
/// O(log n), for a known bound on total touches.
#[derive(Debug)]
pub struct IndexedLru {
    bit: Fenwick,
    slot_line: Vec<u64>,
    line_slot: HashMap<u64, usize>,
    now: usize,
    active: usize,
    next_line: u64,
}

impl IndexedLru {
    /// Create an LRU stack that can absorb at most `capacity` touches.
    pub fn new(capacity: usize) -> Self {
        Self {
            bit: Fenwick::new(capacity.max(1)),
            slot_line: vec![0; capacity.max(1) + 1],
            line_slot: HashMap::with_capacity(capacity / 4),
            now: 1,
            active: 0,
            next_line: 0,
        }
    }

    /// Number of distinct lines currently on the stack.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Touch a brand-new line and return its id.
    pub fn touch_fresh(&mut self) -> u64 {
        let line = self.next_line;
        self.next_line += 1;
        self.place(line);
        self.active += 1;
        line
    }

    /// Touch the line at LRU depth `depth` (0 = most recent) and return it.
    /// Panics if `depth >= active()`.
    pub fn touch_depth(&mut self, depth: usize) -> u64 {
        assert!(
            depth < self.active,
            "depth {depth} >= active {}",
            self.active
        );
        // The k-th most recent active slot has rank (active - depth) in
        // ascending slot order.
        let rank = (self.active - depth) as u32;
        let slot = self.bit.select(rank).expect("rank within active count");
        let line = self.slot_line[slot];
        self.bit.add(slot, -1);
        self.line_slot.remove(&line);
        self.place(line);
        line
    }

    fn place(&mut self, line: u64) {
        let slot = self.now;
        assert!(slot <= self.bit.len(), "IndexedLru capacity exhausted");
        self.now += 1;
        self.bit.add(slot, 1);
        self.slot_line[slot] = line;
        self.line_slot.insert(line, slot);
    }
}

/// Generates synthetic reference streams; reusable across kernels.
#[derive(Debug, Default)]
pub struct TraceGenerator {}

impl TraceGenerator {
    /// New generator.
    pub fn new() -> Self {
        Self {}
    }

    /// Fill `out` with `n` references drawn from `profile`.
    ///
    /// `store_fraction` is the probability a reference is a store;
    /// `line_bytes` converts the profile's byte distances to line depths.
    pub fn generate_into(
        &mut self,
        profile: &LocalityProfile,
        n: usize,
        store_fraction: f64,
        line_bytes: u32,
        rng: &mut impl Rng,
        out: &mut Vec<MemRef>,
    ) {
        out.clear();
        out.reserve(n);
        let mut lru = IndexedLru::new(n);
        let line_bytes = line_bytes.max(1) as f64;
        let ws_lines = (profile.working_set_bytes / line_bytes).max(1.0);
        for _ in 0..n {
            let is_store = rng.gen::<f64>() < store_fraction;
            let line = if rng.gen::<f64>() < profile.streaming {
                lru.touch_fresh()
            } else {
                // Inverse-transform sample of the reuse-distance CDF
                // F(d) = (d / ws)^theta, in line units.
                let u: f64 = rng.gen();
                let depth_lines = ws_lines * u.powf(1.0 / profile.theta);
                let depth = depth_lines as usize;
                if depth >= lru.active() {
                    lru.touch_fresh()
                } else {
                    lru.touch_depth(depth)
                }
            };
            out.push(MemRef { line, is_store });
        }
    }
}

/// Default number of sampled references used to estimate miss ratios for a
/// kernel. The estimate's error scales as 1/√n; 32k keeps the cache
/// simulation fast while staying well under the counter-noise floor.
pub const DEFAULT_TRACE_LEN: usize = 32_768;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::rng_for;

    fn profile(theta: f64, streaming: f64, ws: f64) -> LocalityProfile {
        LocalityProfile {
            working_set_bytes: ws,
            theta,
            streaming,
        }
    }

    #[test]
    fn fenwick_select_finds_kth() {
        let mut f = Fenwick::new(10);
        for i in [2usize, 5, 7, 10] {
            f.add(i, 1);
        }
        assert_eq!(f.select(1), Some(2));
        assert_eq!(f.select(2), Some(5));
        assert_eq!(f.select(3), Some(7));
        assert_eq!(f.select(4), Some(10));
        assert_eq!(f.select(5), None);
        assert_eq!(f.select(0), None);
        f.add(5, -1);
        assert_eq!(f.select(2), Some(7));
    }

    #[test]
    fn indexed_lru_matches_naive_stack() {
        use rand::Rng;
        let mut rng = rng_for(5, &[]);
        let mut lru = IndexedLru::new(4000);
        let mut naive: Vec<u64> = Vec::new();
        for _ in 0..2000 {
            if naive.is_empty() || rng.gen::<f64>() < 0.3 {
                let line = lru.touch_fresh();
                naive.insert(0, line);
            } else {
                let depth = rng.gen_range(0..naive.len());
                let got = lru.touch_depth(depth);
                let expect = naive.remove(depth);
                assert_eq!(got, expect, "depth {depth}");
                naive.insert(0, expect);
            }
            assert_eq!(lru.active(), naive.len());
        }
    }

    #[test]
    fn trace_has_requested_length_and_store_fraction() {
        let mut gen = TraceGenerator::new();
        let mut out = Vec::new();
        let mut rng = rng_for(1, &[]);
        gen.generate_into(&profile(0.5, 0.1, 1e6), 20_000, 0.3, 64, &mut rng, &mut out);
        assert_eq!(out.len(), 20_000);
        let stores = out.iter().filter(|r| r.is_store).count() as f64 / 20_000.0;
        assert!((stores - 0.3).abs() < 0.02, "store fraction {stores}");
    }

    #[test]
    fn streaming_profile_touches_mostly_fresh_lines() {
        let mut gen = TraceGenerator::new();
        let mut out = Vec::new();
        let mut rng = rng_for(2, &[]);
        gen.generate_into(
            &profile(0.9, 0.95, 1e8),
            10_000,
            0.0,
            64,
            &mut rng,
            &mut out,
        );
        let distinct: std::collections::HashSet<u64> = out.iter().map(|r| r.line).collect();
        assert!(
            distinct.len() > 9_000,
            "expected mostly unique lines, got {}",
            distinct.len()
        );
    }

    #[test]
    fn cache_friendly_profile_reuses_lines() {
        let mut gen = TraceGenerator::new();
        let mut out = Vec::new();
        let mut rng = rng_for(3, &[]);
        gen.generate_into(
            &profile(0.3, 0.0, 64.0 * 100.0),
            10_000,
            0.0,
            64,
            &mut rng,
            &mut out,
        );
        let distinct: std::collections::HashSet<u64> = out.iter().map(|r| r.line).collect();
        assert!(
            distinct.len() < 500,
            "expected heavy reuse, got {} distinct lines",
            distinct.len()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut g1 = TraceGenerator::new();
        let mut g2 = TraceGenerator::new();
        let (mut o1, mut o2) = (Vec::new(), Vec::new());
        let p = profile(0.5, 0.2, 1e6);
        g1.generate_into(&p, 5000, 0.25, 64, &mut rng_for(9, &[1]), &mut o1);
        g2.generate_into(&p, 5000, 0.25, 64, &mut rng_for(9, &[1]), &mut o2);
        assert_eq!(o1, o2);
    }

    #[test]
    fn larger_working_set_means_more_distinct_lines() {
        let distinct = |ws: f64| {
            let mut gen = TraceGenerator::new();
            let mut out = Vec::new();
            let mut rng = rng_for(11, &[ws.to_bits()]);
            gen.generate_into(&profile(0.8, 0.0, ws), 16_000, 0.0, 64, &mut rng, &mut out);
            out.iter()
                .map(|r| r.line)
                .collect::<std::collections::HashSet<u64>>()
                .len()
        };
        assert!(distinct(64.0 * 1e5) > distinct(64.0 * 1e3));
    }
}
