//! MPI communication cost model.
//!
//! Standard latency/bandwidth (Hockney-style) costs with log-tree
//! collectives. Intra-node communication goes through shared memory and is
//! modelled with a fraction of the network latency and a multiple of its
//! bandwidth; multi-node runs pay the full network, which is what makes the
//! two-node configurations communication-sensitive (Ember, SWFFT).

use crate::demand::CommPattern;
use crate::machine::NetworkSpec;

/// Communication cost parameters resolved for a concrete run layout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommModel {
    latency_s: f64,
    bw_bytes_per_s: f64,
    ranks: u32,
}

/// Shared-memory transport is much faster than the NIC.
const INTRA_NODE_LATENCY_SCALE: f64 = 0.15;
const INTRA_NODE_BW_SCALE: f64 = 4.0;

impl CommModel {
    /// Build a model for a run of `ranks` total ranks over `nodes` nodes on
    /// a machine with network `net`.
    pub fn new(net: &NetworkSpec, ranks: u32, nodes: u32) -> Self {
        let (lat, bw) = if nodes <= 1 {
            (
                net.latency_us * 1e-6 * INTRA_NODE_LATENCY_SCALE,
                net.bw_gbps * 1e9 * INTRA_NODE_BW_SCALE,
            )
        } else {
            (net.latency_us * 1e-6, net.bw_gbps * 1e9)
        };
        Self {
            latency_s: lat,
            bw_bytes_per_s: bw,
            ranks: ranks.max(1),
        }
    }

    /// Cost of one point-to-point message of `bytes`.
    pub fn p2p(&self, bytes: f64) -> f64 {
        self.latency_s + bytes / self.bw_bytes_per_s
    }

    /// Cost of an all-reduce of `bytes` per rank (recursive doubling:
    /// 2·log2(p) rounds).
    pub fn allreduce(&self, bytes: f64) -> f64 {
        if self.ranks <= 1 {
            return 0.0;
        }
        let rounds = 2.0 * (self.ranks as f64).log2().ceil();
        rounds * (self.latency_s + bytes / self.bw_bytes_per_s)
    }

    /// Cost of an all-to-all with `bytes` per rank (p−1 exchanges of
    /// bytes/p each, pairwise).
    pub fn alltoall(&self, bytes: f64) -> f64 {
        if self.ranks <= 1 {
            return 0.0;
        }
        let p = self.ranks as f64;
        (p - 1.0) * (self.latency_s + (bytes / p) / self.bw_bytes_per_s)
    }

    /// Cost of a barrier (log-tree of empty messages).
    pub fn barrier(&self) -> f64 {
        if self.ranks <= 1 {
            return 0.0;
        }
        (self.ranks as f64).log2().ceil() * self.latency_s
    }

    /// Total communication seconds for one iteration of `pattern`.
    pub fn iteration_cost(&self, pattern: &CommPattern) -> f64 {
        if self.ranks <= 1 {
            // A single rank has nobody to talk to.
            return 0.0;
        }
        let mut t = 0.0;
        if pattern.p2p_neighbors > 0 {
            t += pattern.p2p_neighbors as f64 * self.p2p(pattern.p2p_bytes);
        }
        if pattern.allreduce_bytes > 0.0 {
            t += self.allreduce(pattern.allreduce_bytes);
        }
        if pattern.alltoall_bytes > 0.0 {
            t += self.alltoall(pattern.alltoall_bytes);
        }
        t += pattern.barriers as f64 * self.barrier();
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::quartz;

    fn net() -> NetworkSpec {
        quartz().network
    }

    fn halo() -> CommPattern {
        CommPattern {
            p2p_neighbors: 6,
            p2p_bytes: 64.0 * 1024.0,
            allreduce_bytes: 8.0,
            alltoall_bytes: 0.0,
            barriers: 1,
        }
    }

    #[test]
    fn single_rank_communicates_nothing() {
        let m = CommModel::new(&net(), 1, 1);
        assert_eq!(m.iteration_cost(&halo()), 0.0);
        assert_eq!(m.allreduce(1e6), 0.0);
        assert_eq!(m.barrier(), 0.0);
    }

    #[test]
    fn intra_node_cheaper_than_inter_node() {
        let intra = CommModel::new(&net(), 36, 1);
        let inter = CommModel::new(&net(), 72, 2);
        assert!(intra.p2p(1e6) < inter.p2p(1e6));
        assert!(intra.iteration_cost(&halo()) < inter.iteration_cost(&halo()));
    }

    #[test]
    fn allreduce_scales_logarithmically() {
        let small = CommModel::new(&net(), 4, 2);
        let large = CommModel::new(&net(), 64, 2);
        let ratio = large.allreduce(8.0) / small.allreduce(8.0);
        // log2(64)/log2(4) = 3.
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn alltoall_grows_with_ranks() {
        let p8 = CommModel::new(&net(), 8, 2).alltoall(1e6);
        let p64 = CommModel::new(&net(), 64, 2).alltoall(1e6);
        assert!(p64 > p8);
    }

    #[test]
    fn bigger_messages_cost_more() {
        let m = CommModel::new(&net(), 16, 2);
        assert!(m.p2p(1e7) > m.p2p(1e3));
        assert!(m.allreduce(1e7) > m.allreduce(8.0));
    }

    #[test]
    fn iteration_cost_sums_components() {
        let m = CommModel::new(&net(), 16, 2);
        let p = halo();
        let sum = 6.0 * m.p2p(p.p2p_bytes) + m.allreduce(8.0) + m.barrier();
        assert!((m.iteration_cost(&p) - sum).abs() < 1e-15);
    }
}
