//! GPU execution-time model: roofline with divergence derating, launch
//! overhead, and host-transfer costs.
//!
//! The parallel portion of a kernel offloaded to the GPU is modelled as
//! `max(compute time, device-memory time)` per iteration. Both terms are
//! derated exponentially in the kernel's branch entropy: divergent warps
//! serialise execution (compute derate) and issue uncoalesced accesses
//! (bandwidth derate). This is the mechanism that makes branchy,
//! control-flow-heavy codes lose their GPU advantage — the key CPU/GPU
//! discriminator the paper's model learns from the branch-intensity
//! feature. The serial (non-parallelisable) portion of the kernel runs on
//! the host and is accounted for by the run orchestrator in [`crate::exec`].

use crate::demand::KernelDemand;
use crate::machine::GpuSpec;

/// Steepness of the compute derate in branch entropy. At full entropy a
/// `divergence_penalty = 0.8` GPU retains `exp(-11.2) ≈ 10⁻⁵` of its peak;
/// the CPU-node crossover sits near entropy ≈ 0.5.
const COMPUTE_DERATE_STEEPNESS: f64 = 14.0;
/// Steepness of the bandwidth derate (uncoalesced access penalty).
const MEM_DERATE_STEEPNESS: f64 = 7.0;
/// Achievable fraction of peak device bandwidth for fully coalesced code.
const MEM_BASE_EFFICIENCY: f64 = 0.8;

/// Outcome of running one kernel's parallel portion on the GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuKernelOutcome {
    /// Wall seconds for the kernel's parallel portion (all iterations,
    /// device compute + transfers + launches).
    pub seconds: f64,
    /// Fraction of device time stalled on memory (feeds the
    /// `MemUnitStalled` / `GINST:STL_ANY`-style counters).
    pub mem_stall_fraction: f64,
    /// Throughput fraction lost to divergence (0..1, for diagnostics).
    pub divergence_loss: f64,
}

/// Compute-throughput multiplier from warp divergence.
pub fn compute_derate(branch_entropy: f64, penalty: f64) -> f64 {
    (-penalty * COMPUTE_DERATE_STEEPNESS * branch_entropy.clamp(0.0, 1.0)).exp()
}

/// Memory-bandwidth multiplier from uncoalesced (divergent) access.
pub fn mem_derate(branch_entropy: f64, penalty: f64) -> f64 {
    MEM_BASE_EFFICIENCY * (-penalty * MEM_DERATE_STEEPNESS * branch_entropy.clamp(0.0, 1.0)).exp()
}

/// Number of GPUs a run uses: one for single-core runs, all GPUs on the
/// allocated nodes otherwise (matching the paper's run configurations).
pub fn gpus_used(gpu: &GpuSpec, nodes: u32, single_core: bool) -> u32 {
    if single_core {
        1
    } else {
        gpu.gpus_per_node * nodes.max(1)
    }
}

/// Execute the parallel portion of one kernel's demand on `gpu` across
/// `n_gpus` devices.
pub fn run_kernel(demand: &KernelDemand, gpu: &GpuSpec, n_gpus: u32) -> GpuKernelOutcome {
    let iters = demand.iterations as f64;
    let n_gpus = n_gpus.max(1) as f64;
    // Only the parallelisable work goes to the device.
    let work = demand.instructions * demand.parallel_fraction;

    let c_derate = compute_derate(demand.branch_entropy, gpu.divergence_penalty);
    let eff = gpu.efficiency.clamp(0.01, 1.0) * c_derate;

    // Split FP work by precision; integer, branch, and unclassified
    // instructions run at a rate tied to the FP32 pipes (typical for both
    // vendors' SIMT cores).
    let mix = demand.mix;
    let fp32_ops = work * mix.fp32;
    let fp64_ops = work * mix.fp64;
    let other_ops = work * (mix.int_arith + mix.branch + mix.other());
    let t_fp32 = fp32_ops / (n_gpus * gpu.fp32_tflops * 1e12 * eff);
    let t_fp64 = fp64_ops / (n_gpus * gpu.fp64_tflops * 1e12 * eff);
    let t_other = other_ops / (n_gpus * gpu.fp32_tflops * 1e12 * eff);
    let t_compute = t_fp32 + t_fp64 + t_other;

    // Device-memory traffic: accesses that miss the device cache hierarchy,
    // approximated with the analytic stack-distance model at a nominal 4 MiB
    // device L2 (per-GPU share of the working set).
    let accesses = work * (mix.load + mix.store);
    let per_gpu_ws = demand.locality.working_set_bytes / n_gpus;
    let device_l2 = 4.0 * 1024.0 * 1024.0;
    let miss = crate::demand::LocalityProfile {
        working_set_bytes: per_gpu_ws.max(1.0),
        ..demand.locality
    }
    .analytic_miss_ratio(device_l2);
    let bytes = accesses * 8.0 * miss;
    let m_derate = mem_derate(demand.branch_entropy, gpu.divergence_penalty);
    let t_mem = bytes / (n_gpus * gpu.mem_bw_gbps * 1e9 * m_derate);

    let t_kernel = t_compute.max(t_mem);

    // Host transfers and launches are per iteration; divergence doesn't
    // help or hurt there.
    let transfer_bytes = demand.locality.working_set_bytes * demand.gpu_transfer_fraction;
    let t_transfer = transfer_bytes / (gpu.host_link_gbps * 1e9);
    let t_launch = gpu.launch_overhead_us * 1e-6;

    let per_iter = t_kernel + t_transfer + t_launch;
    let seconds = per_iter * iters;

    GpuKernelOutcome {
        seconds,
        mem_stall_fraction: if t_kernel > 0.0 {
            (t_mem / t_kernel).min(1.0)
        } else {
            0.0
        },
        divergence_loss: 1.0 - c_derate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{CommPattern, InstructionMix, IoDemand, LocalityProfile};
    use crate::machine::{corona, lassen};

    fn demand(entropy: f64, fp32: f64, fp64: f64, ws: f64) -> KernelDemand {
        KernelDemand {
            name: "k".into(),
            instructions: 5e10,
            mix: InstructionMix {
                branch: 0.08,
                load: 0.2,
                store: 0.08,
                fp32,
                fp64,
                int_arith: 0.1,
            }
            .normalized(0.98),
            locality: LocalityProfile {
                working_set_bytes: ws,
                theta: 0.3,
                streaming: 0.1,
            },
            parallel_fraction: 0.99,
            simd_fraction: 0.8,
            branch_entropy: entropy,
            gpu_offloadable: true,
            gpu_transfer_fraction: 0.02,
            comm: CommPattern::none(),
            io: IoDemand::default(),
            iterations: 20,
        }
    }

    #[test]
    fn derates_are_monotone_in_entropy() {
        let mut prev_c = f64::INFINITY;
        let mut prev_m = f64::INFINITY;
        for e in [0.0, 0.2, 0.5, 0.8, 1.0] {
            let c = compute_derate(e, 0.8);
            let m = mem_derate(e, 0.8);
            assert!(c < prev_c || e == 0.0);
            assert!(m < prev_m || e == 0.0);
            assert!(c > 0.0 && m > 0.0);
            prev_c = c;
            prev_m = m;
        }
        assert_eq!(compute_derate(0.0, 0.8), 1.0);
        assert!((mem_derate(0.0, 0.8) - MEM_BASE_EFFICIENCY).abs() < 1e-12);
    }

    #[test]
    fn gpus_used_matches_run_configs() {
        let gpu = lassen().gpu.unwrap();
        assert_eq!(gpus_used(&gpu, 1, true), 1);
        assert_eq!(gpus_used(&gpu, 1, false), 4);
        assert_eq!(gpus_used(&gpu, 2, false), 8);
    }

    #[test]
    fn branchy_kernels_pay_divergence() {
        let gpu = lassen().gpu.unwrap();
        let clean = run_kernel(&demand(0.05, 0.3, 0.1, 1e8), &gpu, 4);
        let branchy = run_kernel(&demand(0.9, 0.3, 0.1, 1e8), &gpu, 4);
        assert!(
            branchy.seconds > clean.seconds * 5.0,
            "branchy {} vs clean {}",
            branchy.seconds,
            clean.seconds
        );
        assert!(branchy.divergence_loss > clean.divergence_loss);
    }

    #[test]
    fn fp64_heavy_slower_than_fp32_heavy_when_compute_bound() {
        let gpu = lassen().gpu.unwrap();
        // Cache-resident, non-streaming working set keeps memory out of
        // the way.
        let mut sp_d = demand(0.05, 0.5, 0.0, 1e5);
        sp_d.locality.streaming = 0.0;
        let mut dp_d = demand(0.05, 0.0, 0.5, 1e5);
        dp_d.locality.streaming = 0.0;
        let sp = run_kernel(&sp_d, &gpu, 4);
        let dp = run_kernel(&dp_d, &gpu, 4);
        assert!(
            dp.seconds > sp.seconds,
            "fp64 {} vs fp32 {}",
            dp.seconds,
            sp.seconds
        );
    }

    #[test]
    fn more_gpus_faster() {
        let gpu = corona().gpu.unwrap();
        let one = run_kernel(&demand(0.1, 0.3, 0.1, 1e9), &gpu, 1);
        let eight = run_kernel(&demand(0.1, 0.3, 0.1, 1e9), &gpu, 8);
        assert!(eight.seconds < one.seconds);
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        let gpu = lassen().gpu.unwrap();
        let mut d = demand(0.1, 0.3, 0.1, 1e3);
        d.instructions = 1e3;
        d.gpu_transfer_fraction = 0.0;
        let out = run_kernel(&d, &gpu, 4);
        let floor = gpu.launch_overhead_us * 1e-6 * d.iterations as f64;
        assert!(out.seconds >= floor * 0.99, "launch overhead is a floor");
        assert!(out.seconds <= floor * 1.5, "tiny kernel ≈ pure overhead");
    }

    #[test]
    fn mem_stall_fraction_rises_with_streaming() {
        let gpu = lassen().gpu.unwrap();
        let mut stream = demand(0.05, 0.05, 0.02, 4e9);
        stream.locality.streaming = 0.9;
        stream.locality.theta = 1.2;
        stream.mix.load = 0.4;
        stream.mix.store = 0.15;
        let mut compute = demand(0.05, 0.5, 0.3, 1e5);
        compute.locality.streaming = 0.0;
        let s = run_kernel(&stream, &gpu, 4);
        let c = run_kernel(&compute, &gpu, 4);
        assert!(
            s.mem_stall_fraction > c.mem_stall_fraction,
            "stream {} vs compute {}",
            s.mem_stall_fraction,
            c.mem_stall_fraction
        );
    }

    #[test]
    fn only_parallel_fraction_reaches_device() {
        let gpu = lassen().gpu.unwrap();
        let mut lo = demand(0.1, 0.3, 0.1, 1e8);
        lo.parallel_fraction = 0.5;
        let hi = demand(0.1, 0.3, 0.1, 1e8);
        let t_lo = run_kernel(&lo, &gpu, 4).seconds;
        let t_hi = run_kernel(&hi, &gpu, 4).seconds;
        assert!(t_lo < t_hi, "less offloaded work => less device time");
    }
}
