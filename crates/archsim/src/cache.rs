//! Trace-driven multi-level cache simulation.
//!
//! [`SetAssocCache`] is a classic set-associative LRU cache model;
//! [`CacheSimulator`] drives a synthetic reference trace (from
//! [`crate::trace`]) through the machine's hierarchy and reports per-level
//! load/store miss ratios, which the execution model turns into stall cycles
//! and the counter model into `PAPI_L*_LDM/STM`-style values.
//!
//! Shared levels (e.g. L3) are modelled by dividing their capacity among the
//! ranks co-resident on the node, which is what makes full-node runs miss
//! more than single-core runs on the same input — a relationship the ML
//! model must be able to learn (Fig. 4's scale ablation).

use crate::demand::LocalityProfile;
use crate::machine::{CacheLevelSpec, CpuSpec};
use crate::trace::{MemRef, TraceGenerator, DEFAULT_TRACE_LEN};
use rand::Rng;

/// Hit/miss counts for one cache level, split by access type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Load accesses that hit.
    pub load_hits: u64,
    /// Load accesses that missed.
    pub load_misses: u64,
    /// Store accesses that hit.
    pub store_hits: u64,
    /// Store accesses that missed.
    pub store_misses: u64,
}

impl LevelStats {
    /// Total accesses observed at this level.
    pub fn accesses(&self) -> u64 {
        self.load_hits + self.load_misses + self.store_hits + self.store_misses
    }

    /// Miss ratio over all accesses at this level (0 if none).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            return 0.0;
        }
        (self.load_misses + self.store_misses) as f64 / total as f64
    }

    /// Load miss ratio relative to loads at this level.
    pub fn load_miss_ratio(&self) -> f64 {
        let loads = self.load_hits + self.load_misses;
        if loads == 0 {
            return 0.0;
        }
        self.load_misses as f64 / loads as f64
    }

    /// Store miss ratio relative to stores at this level.
    pub fn store_miss_ratio(&self) -> f64 {
        let stores = self.store_hits + self.store_misses;
        if stores == 0 {
            return 0.0;
        }
        self.store_misses as f64 / stores as f64
    }
}

/// A set-associative cache with true-LRU replacement.
#[derive(Debug)]
pub struct SetAssocCache {
    n_sets: u64,
    ways: usize,
    /// `sets[s]` holds up to `ways` tags, most recently used first.
    sets: Vec<Vec<u64>>,
    /// Statistics accumulated since construction or [`SetAssocCache::reset`].
    pub stats: LevelStats,
}

impl SetAssocCache {
    /// Build from a level spec with an optional capacity divisor for shared
    /// levels (how many ranks share it).
    pub fn from_spec(spec: &CacheLevelSpec, sharing: u32) -> Self {
        let sharing = sharing.max(1) as u64;
        let capacity = (spec.capacity_bytes / sharing).max(spec.line_bytes as u64);
        let lines = (capacity / spec.line_bytes as u64).max(1);
        let ways = (spec.associativity as u64).min(lines).max(1);
        let n_sets = (lines / ways).max(1);
        Self {
            n_sets,
            ways: ways as usize,
            sets: vec![Vec::new(); n_sets as usize],
            stats: LevelStats::default(),
        }
    }

    /// Number of sets (after sharing adjustment).
    pub fn n_sets(&self) -> u64 {
        self.n_sets
    }

    /// Associativity (after sharing adjustment).
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Access a line; returns true on hit. Updates LRU order and stats.
    pub fn access(&mut self, line: u64, is_store: bool) -> bool {
        let set_idx = (line % self.n_sets) as usize;
        let set = &mut self.sets[set_idx];
        let hit = match set.iter().position(|&t| t == line) {
            Some(pos) => {
                // Move to MRU position.
                let tag = set.remove(pos);
                set.insert(0, tag);
                true
            }
            None => {
                if set.len() == self.ways {
                    set.pop();
                }
                set.insert(0, line);
                false
            }
        };
        match (is_store, hit) {
            (false, true) => self.stats.load_hits += 1,
            (false, false) => self.stats.load_misses += 1,
            (true, true) => self.stats.store_hits += 1,
            (true, false) => self.stats.store_misses += 1,
        }
        hit
    }

    /// Clear contents and statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.stats = LevelStats::default();
    }
}

/// Result of simulating a kernel's reference stream through a hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyResult {
    /// Per-level statistics, L1 first.
    pub levels: Vec<LevelStats>,
    /// References that missed every level (went to DRAM).
    pub dram_accesses: u64,
    /// Total references simulated.
    pub total_refs: u64,
}

impl HierarchyResult {
    /// Global miss ratio of level `i` relative to *all* references (not just
    /// those that reached the level): what `PAPI_L2_LDM / PAPI_LD_INS`-style
    /// derived features measure.
    pub fn global_load_miss_ratio(&self, level: usize) -> f64 {
        let total_loads: u64 = self.levels[0].load_hits + self.levels[0].load_misses;
        if total_loads == 0 {
            return 0.0;
        }
        self.levels[level].load_misses as f64 / total_loads as f64
    }

    /// Store analogue of [`HierarchyResult::global_load_miss_ratio`].
    pub fn global_store_miss_ratio(&self, level: usize) -> f64 {
        let total_stores: u64 = self.levels[0].store_hits + self.levels[0].store_misses;
        if total_stores == 0 {
            return 0.0;
        }
        self.levels[level].store_misses as f64 / total_stores as f64
    }
}

/// How miss ratios are obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheModel {
    /// Trace-driven set-associative simulation (default; slower, captures
    /// conflict misses).
    #[default]
    Trace,
    /// Closed-form stack-distance model (fast; fully-associative
    /// approximation). Used by the ablation benches and as a fallback for
    /// very large sweeps.
    Analytic,
}

/// Reusable cache-hierarchy simulator (owns trace buffers).
#[derive(Debug)]
pub struct CacheSimulator {
    gen: TraceGenerator,
    buf: Vec<MemRef>,
    /// Number of sampled references per kernel.
    pub trace_len: usize,
    /// Selected model.
    pub model: CacheModel,
}

impl Default for CacheSimulator {
    fn default() -> Self {
        Self::new()
    }
}

impl CacheSimulator {
    /// Trace-driven simulator with the default sample size.
    pub fn new() -> Self {
        Self {
            gen: TraceGenerator::new(),
            buf: Vec::with_capacity(DEFAULT_TRACE_LEN),
            trace_len: DEFAULT_TRACE_LEN,
            model: CacheModel::Trace,
        }
    }

    /// Analytic-model simulator (no traces).
    pub fn analytic() -> Self {
        Self {
            model: CacheModel::Analytic,
            ..Self::new()
        }
    }

    /// Simulate one rank's reference stream through `cpu`'s hierarchy.
    ///
    /// `store_fraction` is stores / (loads + stores) from the instruction
    /// mix; `ranks_on_node` divides shared-level capacity.
    pub fn run(
        &mut self,
        profile: &LocalityProfile,
        store_fraction: f64,
        cpu: &CpuSpec,
        ranks_on_node: u32,
        rng: &mut impl Rng,
    ) -> HierarchyResult {
        match self.model {
            CacheModel::Trace => self.run_trace(profile, store_fraction, cpu, ranks_on_node, rng),
            CacheModel::Analytic => self.run_analytic(profile, store_fraction, cpu, ranks_on_node),
        }
    }

    fn run_trace(
        &mut self,
        profile: &LocalityProfile,
        store_fraction: f64,
        cpu: &CpuSpec,
        ranks_on_node: u32,
        rng: &mut impl Rng,
    ) -> HierarchyResult {
        let line_bytes = cpu.cache_levels.first().map(|l| l.line_bytes).unwrap_or(64);
        self.gen.generate_into(
            profile,
            self.trace_len,
            store_fraction,
            line_bytes,
            rng,
            &mut self.buf,
        );
        let mut caches: Vec<SetAssocCache> = cpu
            .cache_levels
            .iter()
            .map(|spec| {
                let sharing = if spec.shared { ranks_on_node } else { 1 };
                SetAssocCache::from_spec(spec, sharing)
            })
            .collect();
        let mut dram = 0u64;
        for r in &self.buf {
            let mut served = false;
            for cache in caches.iter_mut() {
                if cache.access(r.line, r.is_store) {
                    served = true;
                    break;
                }
            }
            if !served {
                dram += 1;
            }
        }
        HierarchyResult {
            levels: caches.into_iter().map(|c| c.stats).collect(),
            dram_accesses: dram,
            total_refs: self.buf.len() as u64,
        }
    }

    fn run_analytic(
        &self,
        profile: &LocalityProfile,
        store_fraction: f64,
        cpu: &CpuSpec,
        ranks_on_node: u32,
    ) -> HierarchyResult {
        // Model each level as fully-associative LRU of its (shared-adjusted)
        // capacity; the level sees only the misses of the previous one.
        let n = DEFAULT_TRACE_LEN as f64;
        let loads = n * (1.0 - store_fraction);
        let stores = n * store_fraction;
        let mut levels = Vec::with_capacity(cpu.cache_levels.len());
        let mut in_loads = loads;
        let mut in_stores = stores;
        for spec in &cpu.cache_levels {
            let sharing = if spec.shared {
                ranks_on_node.max(1) as f64
            } else {
                1.0
            };
            let capacity = spec.capacity_bytes as f64 / sharing;
            // Cumulative miss ratio relative to all references.
            let cum_miss = profile.analytic_miss_ratio(capacity);
            let out_loads = (loads * cum_miss).min(in_loads);
            let out_stores = (stores * cum_miss).min(in_stores);
            levels.push(LevelStats {
                load_hits: (in_loads - out_loads).round() as u64,
                load_misses: out_loads.round() as u64,
                store_hits: (in_stores - out_stores).round() as u64,
                store_misses: out_stores.round() as u64,
            });
            in_loads = out_loads;
            in_stores = out_stores;
        }
        HierarchyResult {
            dram_accesses: (in_loads + in_stores).round() as u64,
            total_refs: n as u64,
            levels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{quartz, ruby};
    use crate::noise::rng_for;

    fn friendly() -> LocalityProfile {
        LocalityProfile {
            working_set_bytes: 16.0 * 1024.0,
            theta: 0.5,
            streaming: 0.0,
        }
    }

    fn hostile() -> LocalityProfile {
        LocalityProfile {
            working_set_bytes: 512.0 * 1024.0 * 1024.0,
            theta: 1.0,
            streaming: 0.5,
        }
    }

    #[test]
    fn small_cache_spec_geometry() {
        let spec = CacheLevelSpec {
            capacity_bytes: 1024,
            associativity: 4,
            line_bytes: 64,
            latency_cycles: 1.0,
            shared: false,
        };
        let c = SetAssocCache::from_spec(&spec, 1);
        assert_eq!(c.n_sets(), 4);
        assert_eq!(c.ways(), 4);
    }

    #[test]
    fn direct_access_pattern_hits_after_warmup() {
        let spec = CacheLevelSpec {
            capacity_bytes: 64 * 16,
            associativity: 16,
            line_bytes: 64,
            latency_cycles: 1.0,
            shared: false,
        };
        let mut c = SetAssocCache::from_spec(&spec, 1);
        for line in 0..8u64 {
            assert!(!c.access(line, false), "cold miss expected");
        }
        for line in 0..8u64 {
            assert!(c.access(line, false), "warm hit expected");
        }
        assert_eq!(c.stats.load_hits, 8);
        assert_eq!(c.stats.load_misses, 8);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 1 set, 2 ways.
        let spec = CacheLevelSpec {
            capacity_bytes: 128,
            associativity: 2,
            line_bytes: 64,
            latency_cycles: 1.0,
            shared: false,
        };
        let mut c = SetAssocCache::from_spec(&spec, 1);
        assert_eq!(c.n_sets(), 1);
        c.access(0, false); // [0]
        c.access(1, false); // [1,0]
        c.access(0, false); // hit, [0,1]
        c.access(2, false); // evicts 1, [2,0]
        assert!(c.access(0, false), "0 should still be cached");
        assert!(!c.access(1, false), "1 was evicted");
    }

    #[test]
    fn friendly_profile_hits_l1_hostile_misses() {
        let cpu = quartz().cpu;
        let mut sim = CacheSimulator::new();
        let f = sim.run(&friendly(), 0.25, &cpu, 1, &mut rng_for(1, &[]));
        let h = sim.run(&hostile(), 0.25, &cpu, 1, &mut rng_for(2, &[]));
        assert!(
            f.levels[0].miss_ratio() < 0.2,
            "friendly L1 miss {}",
            f.levels[0].miss_ratio()
        );
        assert!(
            h.levels[0].miss_ratio() > 0.5,
            "hostile L1 miss {}",
            h.levels[0].miss_ratio()
        );
        assert!(h.dram_accesses > f.dram_accesses);
    }

    #[test]
    fn sharing_reduces_effective_capacity() {
        let cpu = ruby().cpu;
        let mid = LocalityProfile {
            working_set_bytes: 4.0 * 1024.0 * 1024.0,
            theta: 0.8,
            streaming: 0.0,
        };
        let mut sim = CacheSimulator::new();
        let solo = sim.run(&mid, 0.25, &cpu, 1, &mut rng_for(3, &[]));
        let packed = sim.run(&mid, 0.25, &cpu, 56, &mut rng_for(3, &[]));
        let last = cpu.cache_levels.len() - 1;
        assert!(
            packed.levels[last].miss_ratio() > solo.levels[last].miss_ratio(),
            "shared LLC must miss more when divided among ranks"
        );
    }

    #[test]
    fn analytic_and_trace_models_agree_on_ordering() {
        let cpu = quartz().cpu;
        let mut tr = CacheSimulator::new();
        let an = CacheSimulator::analytic();
        let f_t = tr.run(&friendly(), 0.2, &cpu, 1, &mut rng_for(4, &[]));
        let h_t = tr.run(&hostile(), 0.2, &cpu, 1, &mut rng_for(5, &[]));
        let f_a = an.run_analytic(&friendly(), 0.2, &cpu, 1);
        let h_a = an.run_analytic(&hostile(), 0.2, &cpu, 1);
        assert!(f_t.dram_accesses < h_t.dram_accesses);
        assert!(f_a.dram_accesses < h_a.dram_accesses);
    }

    #[test]
    fn global_miss_ratios_are_monotone_down_the_hierarchy() {
        let cpu = quartz().cpu;
        let mut sim = CacheSimulator::new();
        let r = sim.run(&hostile(), 0.3, &cpu, 1, &mut rng_for(6, &[]));
        let l1 = r.global_load_miss_ratio(0);
        let l2 = r.global_load_miss_ratio(1);
        assert!(l2 <= l1 + 1e-12, "L2 global misses cannot exceed L1's");
    }

    #[test]
    fn stats_reset() {
        let spec = CacheLevelSpec {
            capacity_bytes: 1024,
            associativity: 4,
            line_bytes: 64,
            latency_cycles: 1.0,
            shared: false,
        };
        let mut c = SetAssocCache::from_spec(&spec, 1);
        c.access(1, true);
        c.reset();
        assert_eq!(c.stats, LevelStats::default());
        assert!(!c.access(1, true), "reset must clear contents too");
    }
}
