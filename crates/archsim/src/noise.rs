//! Deterministic randomness utilities: sub-seed derivation and log-normal
//! measurement noise.
//!
//! All stochastic behaviour in the workspace flows from explicit `u64`
//! seeds. [`derive_seed`] mixes a parent seed with a stream of labels
//! (SplitMix64 finalisers), so every (application, input, scale, machine,
//! repetition, counter) tuple gets an independent, reproducible stream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 finaliser: a high-quality 64-bit mixing function.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Derive a child seed from a parent seed and a list of labels.
///
/// Order matters: `derive_seed(s, &[1, 2]) != derive_seed(s, &[2, 1])`.
pub fn derive_seed(parent: u64, labels: &[u64]) -> u64 {
    let mut state = splitmix64(parent ^ 0xA076_1D64_78BD_642F);
    for (i, &label) in labels.iter().enumerate() {
        state = splitmix64(state ^ label.rotate_left((i as u32 % 63) + 1));
    }
    state
}

/// Seeded RNG from a parent seed and labels.
pub fn rng_for(parent: u64, labels: &[u64]) -> StdRng {
    StdRng::seed_from_u64(derive_seed(parent, labels))
}

/// A standard normal sample via Box–Muller (avoids an extra crate).
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Draw u1 in (0, 1] so ln is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Multiplicative log-normal noise: returns `value * exp(sigma * z)` with
/// `z ~ N(0,1)`. `sigma = 0` returns the value unchanged; negative sigma is
/// treated as 0.
pub fn lognormal_perturb(value: f64, sigma: f64, rng: &mut impl Rng) -> f64 {
    if sigma <= 0.0 {
        return value;
    }
    value * (sigma * standard_normal(rng)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic_and_label_sensitive() {
        let a = derive_seed(42, &[1, 2, 3]);
        let b = derive_seed(42, &[1, 2, 3]);
        assert_eq!(a, b);
        assert_ne!(a, derive_seed(42, &[3, 2, 1]));
        assert_ne!(a, derive_seed(43, &[1, 2, 3]));
        assert_ne!(derive_seed(42, &[]), derive_seed(42, &[0]));
    }

    #[test]
    fn splitmix_distinct_on_small_inputs() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64(i)));
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = rng_for(7, &[]);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
    }

    #[test]
    fn lognormal_preserves_positivity_and_zero_sigma() {
        let mut rng = rng_for(9, &[]);
        assert_eq!(lognormal_perturb(5.0, 0.0, &mut rng), 5.0);
        assert_eq!(lognormal_perturb(5.0, -1.0, &mut rng), 5.0);
        for _ in 0..1000 {
            assert!(lognormal_perturb(5.0, 0.3, &mut rng) > 0.0);
        }
    }

    #[test]
    fn lognormal_sigma_controls_spread() {
        let spread = |sigma: f64| {
            let mut rng = rng_for(11, &[sigma.to_bits()]);
            let xs: Vec<f64> = (0..20_000)
                .map(|_| lognormal_perturb(1.0, sigma, &mut rng).ln())
                .collect();
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
        };
        let s_small = spread(0.05);
        let s_big = spread(0.3);
        assert!((s_small - 0.05).abs() < 0.01);
        assert!((s_big - 0.3).abs() < 0.02);
    }
}
