//! Roofline analysis: the classical peak-FLOP/s vs memory-bandwidth model
//! the paper's motivation invokes ("hardware properties, such as peak
//! flop/s, memory bandwidth, and cache sizes are easy to obtain").
//!
//! Used by the `roofline_report` example and the workload-design tests to
//! sanity-check where each kernel archetype sits on each machine: the
//! attainable performance at arithmetic intensity `ai` is
//! `min(peak, ai × bandwidth)`, with the ridge point `peak / bandwidth`
//! separating memory-bound from compute-bound kernels.

use crate::demand::KernelDemand;
use crate::machine::MachineSpec;
use serde::{Deserialize, Serialize};

/// A single roofline: peak compute vs sustainable memory bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Peak double-precision throughput in FLOP/s.
    pub peak_flops: f64,
    /// Sustainable memory bandwidth in bytes/s.
    pub mem_bw: f64,
}

impl Roofline {
    /// Arithmetic intensity (FLOP/byte) at which compute and memory limits
    /// meet.
    pub fn ridge_point(&self) -> f64 {
        if self.mem_bw <= 0.0 {
            return f64::INFINITY;
        }
        self.peak_flops / self.mem_bw
    }

    /// Attainable FLOP/s at arithmetic intensity `ai`.
    pub fn attainable_flops(&self, ai: f64) -> f64 {
        (ai.max(0.0) * self.mem_bw).min(self.peak_flops)
    }

    /// True if a kernel at `ai` is limited by memory on this machine.
    pub fn is_memory_bound(&self, ai: f64) -> bool {
        ai < self.ridge_point()
    }
}

/// Which resource limits a kernel on a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// Limited by FP throughput.
    Compute,
    /// Limited by memory bandwidth.
    Memory,
}

impl MachineSpec {
    /// CPU-side node roofline: fp64 peak = cores × clock × SIMD lanes ×
    /// 2 (FMA), against the node's memory bandwidth.
    pub fn cpu_roofline(&self) -> Roofline {
        let c = &self.cpu;
        Roofline {
            peak_flops: c.cores_per_node as f64
                * c.clock_ghz
                * 1e9
                * c.simd_lanes_f64.max(1.0)
                * 2.0,
            mem_bw: c.mem_bw_gbps * 1e9,
        }
    }

    /// GPU-side node roofline (all GPUs on the node), if present.
    pub fn gpu_roofline(&self) -> Option<Roofline> {
        self.gpu.as_ref().map(|g| Roofline {
            peak_flops: g.gpus_per_node as f64 * g.fp64_tflops * 1e12,
            mem_bw: g.gpus_per_node as f64 * g.mem_bw_gbps * 1e9,
        })
    }
}

/// Arithmetic intensity of a kernel demand: FP operations per byte of
/// expected DRAM traffic (misses past a nominal last-level capacity).
pub fn arithmetic_intensity(demand: &KernelDemand, llc_bytes: f64) -> f64 {
    let flops = demand.instructions * (demand.mix.fp32 + demand.mix.fp64);
    let accesses = demand.instructions * (demand.mix.load + demand.mix.store);
    let miss = demand.locality.analytic_miss_ratio(llc_bytes);
    let bytes = accesses * 8.0 * miss;
    if bytes <= 0.0 {
        return f64::INFINITY;
    }
    flops / bytes
}

/// Classify a kernel on a machine's CPU roofline.
pub fn classify(demand: &KernelDemand, machine: &MachineSpec) -> Bound {
    let llc = machine
        .cpu
        .cache_levels
        .last()
        .map(|l| l.capacity_bytes as f64)
        .unwrap_or(32.0 * 1024.0 * 1024.0);
    let ai = arithmetic_intensity(demand, llc);
    if machine.cpu_roofline().is_memory_bound(ai) {
        Bound::Memory
    } else {
        Bound::Compute
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{CommPattern, InstructionMix, IoDemand, LocalityProfile};
    use crate::machine::{lassen, quartz, ruby};

    fn demand(fp: f64, loads: f64, streaming: f64, ws: f64) -> KernelDemand {
        KernelDemand {
            name: "k".into(),
            instructions: 1e10,
            mix: InstructionMix {
                branch: 0.05,
                load: loads,
                store: loads / 3.0,
                fp32: 0.0,
                fp64: fp,
                int_arith: 0.1,
            }
            .normalized(0.95),
            locality: LocalityProfile {
                working_set_bytes: ws,
                theta: 0.6,
                streaming,
            },
            parallel_fraction: 0.98,
            simd_fraction: 0.8,
            branch_entropy: 0.1,
            gpu_offloadable: false,
            gpu_transfer_fraction: 0.0,
            comm: CommPattern::none(),
            io: IoDemand::default(),
            iterations: 1,
        }
    }

    #[test]
    fn ridge_point_and_attainability() {
        let r = Roofline {
            peak_flops: 1e12,
            mem_bw: 1e11,
        };
        assert!((r.ridge_point() - 10.0).abs() < 1e-12);
        assert_eq!(r.attainable_flops(1.0), 1e11);
        assert_eq!(r.attainable_flops(100.0), 1e12);
        assert!(r.is_memory_bound(5.0));
        assert!(!r.is_memory_bound(20.0));
    }

    #[test]
    fn machine_rooflines_are_ordered_sensibly() {
        // Ruby (AVX-512, 280 GB/s) out-peaks Quartz (AVX2, 130 GB/s).
        let q = quartz().cpu_roofline();
        let r = ruby().cpu_roofline();
        assert!(r.peak_flops > q.peak_flops);
        assert!(r.mem_bw > q.mem_bw);
        // Lassen's V100s dwarf its Power9 host.
        let l = lassen();
        let gpu = l.gpu_roofline().unwrap();
        assert!(gpu.peak_flops > l.cpu_roofline().peak_flops * 5.0);
        assert!(quartz().gpu_roofline().is_none());
    }

    #[test]
    fn streaming_kernel_is_memory_bound_dense_kernel_compute_bound() {
        let q = quartz();
        let stream = demand(0.1, 0.45, 0.9, 8e9);
        assert_eq!(classify(&stream, &q), Bound::Memory);
        // Heavy FP, cache-resident working set: effectively no DRAM bytes.
        let dense = demand(0.6, 0.1, 0.0, 1e6);
        assert_eq!(classify(&dense, &q), Bound::Compute);
    }

    #[test]
    fn arithmetic_intensity_monotone_in_locality() {
        let hostile = demand(0.3, 0.3, 0.8, 8e9);
        let friendly = demand(0.3, 0.3, 0.0, 1e6);
        let llc = 45e6;
        assert!(arithmetic_intensity(&friendly, llc) > arithmetic_intensity(&hostile, llc));
    }

    #[test]
    fn zero_bandwidth_degenerate() {
        let r = Roofline {
            peak_flops: 1e12,
            mem_bw: 0.0,
        };
        assert!(r.ridge_point().is_infinite());
        assert_eq!(r.attainable_flops(5.0), 0.0);
    }
}
