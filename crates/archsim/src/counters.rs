//! Canonical (architecture-independent) ground-truth counter values.
//!
//! The simulator produces these per run; the profiler crate renames them to
//! the architecture-specific counters of Table III (`PAPI_BR_INS`,
//! `cf_executed`, `TCC_MISS_sum`, ...) and adds measurement noise. Keeping a
//! canonical layer mirrors the paper's observation that "counter names are
//! not consistent across architectures ... however we have tried to identify
//! similar counters that model the same underlying performance
//! characteristics".

use serde::{Deserialize, Serialize};

/// Ground-truth counters for one run, expressed per MPI rank (mean across
/// ranks, which is exactly how the paper aggregates multi-process runs).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GroundTruthCounters {
    /// Total dynamic instructions.
    pub total_instructions: f64,
    /// Branch instructions.
    pub branch_instructions: f64,
    /// Load instructions.
    pub load_instructions: f64,
    /// Store instructions.
    pub store_instructions: f64,
    /// Single-precision FP operations.
    pub fp32_ops: f64,
    /// Double-precision FP operations.
    pub fp64_ops: f64,
    /// Integer arithmetic operations.
    pub int_ops: f64,
    /// L1 data-cache load misses.
    pub l1_load_misses: f64,
    /// L1 data-cache store misses.
    pub l1_store_misses: f64,
    /// L2 load misses.
    pub l2_load_misses: f64,
    /// L2 store misses.
    pub l2_store_misses: f64,
    /// Cycles stalled on memory.
    pub mem_stall_cycles: f64,
    /// Bytes read from the filesystem.
    pub io_bytes_read: f64,
    /// Bytes written to the filesystem.
    pub io_bytes_written: f64,
    /// Extended-page-table footprint in bytes (derived from working set).
    pub ept_bytes: f64,
}

impl GroundTruthCounters {
    /// Element-wise accumulate (kernels sum into the run totals).
    pub fn accumulate(&mut self, other: &GroundTruthCounters) {
        self.total_instructions += other.total_instructions;
        self.branch_instructions += other.branch_instructions;
        self.load_instructions += other.load_instructions;
        self.store_instructions += other.store_instructions;
        self.fp32_ops += other.fp32_ops;
        self.fp64_ops += other.fp64_ops;
        self.int_ops += other.int_ops;
        self.l1_load_misses += other.l1_load_misses;
        self.l1_store_misses += other.l1_store_misses;
        self.l2_load_misses += other.l2_load_misses;
        self.l2_store_misses += other.l2_store_misses;
        self.mem_stall_cycles += other.mem_stall_cycles;
        self.io_bytes_read += other.io_bytes_read;
        self.io_bytes_written += other.io_bytes_written;
        // EPT is a footprint, not a flow: take the max across kernels.
        self.ept_bytes = self.ept_bytes.max(other.ept_bytes);
    }

    /// All values finite and non-negative.
    pub fn is_sane(&self) -> bool {
        let vals = [
            self.total_instructions,
            self.branch_instructions,
            self.load_instructions,
            self.store_instructions,
            self.fp32_ops,
            self.fp64_ops,
            self.int_ops,
            self.l1_load_misses,
            self.l1_store_misses,
            self.l2_load_misses,
            self.l2_store_misses,
            self.mem_stall_cycles,
            self.io_bytes_read,
            self.io_bytes_written,
            self.ept_bytes,
        ];
        vals.iter().all(|v| v.is_finite() && *v >= 0.0)
    }

    /// Class counts cannot exceed total instructions; misses cannot exceed
    /// their access class; L2 misses cannot exceed L1 misses.
    pub fn is_consistent(&self) -> bool {
        let classes = self.branch_instructions
            + self.load_instructions
            + self.store_instructions
            + self.fp32_ops
            + self.fp64_ops
            + self.int_ops;
        let eps = 1e-6 * self.total_instructions.max(1.0);
        classes <= self.total_instructions + eps
            && self.l1_load_misses <= self.load_instructions + eps
            && self.l1_store_misses <= self.store_instructions + eps
            && self.l2_load_misses <= self.l1_load_misses + eps
            && self.l2_store_misses <= self.l1_store_misses + eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GroundTruthCounters {
        GroundTruthCounters {
            total_instructions: 1000.0,
            branch_instructions: 100.0,
            load_instructions: 250.0,
            store_instructions: 100.0,
            fp32_ops: 50.0,
            fp64_ops: 200.0,
            int_ops: 150.0,
            l1_load_misses: 25.0,
            l1_store_misses: 10.0,
            l2_load_misses: 5.0,
            l2_store_misses: 2.0,
            mem_stall_cycles: 400.0,
            io_bytes_read: 1e6,
            io_bytes_written: 2e6,
            ept_bytes: 8192.0,
        }
    }

    #[test]
    fn accumulate_sums_flows_and_maxes_footprint() {
        let mut a = sample();
        let mut b = sample();
        b.ept_bytes = 4096.0;
        a.accumulate(&b);
        assert_eq!(a.total_instructions, 2000.0);
        assert_eq!(a.io_bytes_read, 2e6);
        assert_eq!(a.ept_bytes, 8192.0, "EPT takes the max");
    }

    #[test]
    fn sanity_and_consistency() {
        let c = sample();
        assert!(c.is_sane());
        assert!(c.is_consistent());
        let mut bad = c;
        bad.l2_load_misses = 1e9;
        assert!(!bad.is_consistent());
        let mut neg = c;
        neg.fp32_ops = -1.0;
        assert!(!neg.is_sane());
    }
}
