//! The workload-facing demand model: what an application asks of a machine.
//!
//! A run is described *architecture-independently*: per-rank instruction
//! counts and mix, a locality profile for the memory reference stream,
//! communication per iteration, and I/O volume. The execution models in
//! [`crate::cpu`] / [`crate::gpu`] translate demands into time on a concrete
//! [`crate::MachineSpec`].

use serde::{Deserialize, Serialize};

/// Fraction of dynamic instructions in each class. Fractions are
/// non-negative; `branch + load + store + fp32 + fp64 + int_arith <= 1`,
/// with the remainder treated as "other" (moves, address arithmetic, ...).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstructionMix {
    /// Branch instructions.
    pub branch: f64,
    /// Memory loads.
    pub load: f64,
    /// Memory stores.
    pub store: f64,
    /// Single-precision floating-point arithmetic.
    pub fp32: f64,
    /// Double-precision floating-point arithmetic.
    pub fp64: f64,
    /// Integer arithmetic.
    pub int_arith: f64,
}

impl InstructionMix {
    /// Sum of the classified fractions (must be ≤ 1).
    pub fn classified(&self) -> f64 {
        self.branch + self.load + self.store + self.fp32 + self.fp64 + self.int_arith
    }

    /// Remainder fraction attributed to unclassified instructions.
    pub fn other(&self) -> f64 {
        (1.0 - self.classified()).max(0.0)
    }

    /// True if all fractions are non-negative and sum to at most 1 + ε.
    pub fn is_valid(&self) -> bool {
        let parts = [
            self.branch,
            self.load,
            self.store,
            self.fp32,
            self.fp64,
            self.int_arith,
        ];
        parts.iter().all(|&p| (0.0..=1.0).contains(&p)) && self.classified() <= 1.0 + 1e-9
    }

    /// Rescale so that the classified fractions sum to at most `max_total`.
    pub fn normalized(mut self, max_total: f64) -> Self {
        let total = self.classified();
        if total > max_total && total > 0.0 {
            let s = max_total / total;
            self.branch *= s;
            self.load *= s;
            self.store *= s;
            self.fp32 *= s;
            self.fp64 *= s;
            self.int_arith *= s;
        }
        self
    }
}

/// Parametric model of the memory reference stream's temporal locality.
///
/// The fraction of references with reuse distance ≤ `d` bytes is
/// `(1 - streaming) * min(1, (d / working_set)^theta)`; the `streaming`
/// fraction never reuses (compulsory misses). `theta < 1` concentrates
/// reuse at short distances (cache friendly), `theta → 1` spreads it
/// uniformly over the working set (cache hostile).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalityProfile {
    /// Working-set size per rank, in bytes.
    pub working_set_bytes: f64,
    /// Locality exponent in (0, 1.5]; smaller = more cache friendly.
    pub theta: f64,
    /// Fraction of references that stream (no reuse), in [0, 1).
    pub streaming: f64,
}

impl LocalityProfile {
    /// CDF of reuse distance at `d` bytes (over all references).
    pub fn reuse_cdf(&self, d: f64) -> f64 {
        if d <= 0.0 || self.working_set_bytes <= 0.0 {
            return 0.0;
        }
        let frac = (d / self.working_set_bytes).min(1.0).powf(self.theta);
        (1.0 - self.streaming) * frac
    }

    /// Analytical miss ratio for a fully-associative LRU cache of
    /// `capacity` bytes (used as the closed-form fallback and as a sanity
    /// check on the trace-driven simulator).
    pub fn analytic_miss_ratio(&self, capacity: f64) -> f64 {
        (1.0 - self.reuse_cdf(capacity)).clamp(0.0, 1.0)
    }

    /// True if parameters are in their documented ranges.
    pub fn is_valid(&self) -> bool {
        self.working_set_bytes > 0.0
            && self.theta > 0.0
            && self.theta <= 1.5
            && (0.0..1.0).contains(&self.streaming)
    }
}

/// Per-iteration MPI communication demands of a kernel (per rank).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CommPattern {
    /// Point-to-point neighbours exchanged with per iteration (halo).
    pub p2p_neighbors: u32,
    /// Bytes sent to each neighbour per iteration.
    pub p2p_bytes: f64,
    /// Bytes all-reduced per iteration (0 = none).
    pub allreduce_bytes: f64,
    /// Bytes per rank in an all-to-all per iteration (0 = none).
    pub alltoall_bytes: f64,
    /// Barriers per iteration.
    pub barriers: u32,
}

impl CommPattern {
    /// A kernel with no communication.
    pub fn none() -> Self {
        Self::default()
    }

    /// True if the pattern implies any network traffic.
    pub fn is_communicating(&self) -> bool {
        self.p2p_neighbors > 0
            || self.allreduce_bytes > 0.0
            || self.alltoall_bytes > 0.0
            || self.barriers > 0
    }
}

/// File I/O demands of a kernel for the whole run (job-wide, not per rank).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct IoDemand {
    /// Bytes read from the filesystem.
    pub read_bytes: f64,
    /// Bytes written to the filesystem.
    pub write_bytes: f64,
    /// Number of I/O operations (latency-bound component).
    pub ops: u64,
}

/// Everything the simulator needs to know about one kernel of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelDemand {
    /// Kernel label (becomes a calling-context-tree frame).
    pub name: String,
    /// Dynamic instructions per rank (CPU semantics; the GPU model derives
    /// thread-level work from the same number).
    pub instructions: f64,
    /// Instruction class mix.
    pub mix: InstructionMix,
    /// Memory locality of the reference stream.
    pub locality: LocalityProfile,
    /// Fraction of the kernel's work that is parallelisable (Amdahl).
    pub parallel_fraction: f64,
    /// Fraction of FP work that vectorises on CPUs (0..1).
    pub simd_fraction: f64,
    /// Branch unpredictability in [0, 1]: 0 = perfectly predictable,
    /// 1 = random. Drives CPU mispredictions and GPU divergence.
    pub branch_entropy: f64,
    /// Whether this kernel has a GPU implementation.
    pub gpu_offloadable: bool,
    /// Fraction of the working set shipped host→device per iteration when
    /// offloaded (0 for resident data).
    pub gpu_transfer_fraction: f64,
    /// Communication per iteration.
    pub comm: CommPattern,
    /// I/O for the whole run.
    pub io: IoDemand,
    /// Iterations of this kernel in the run.
    pub iterations: u32,
}

impl KernelDemand {
    /// Validate the demand's invariants; returns a description of the first
    /// violation, if any.
    pub fn validate(&self) -> Result<(), String> {
        if !self.instructions.is_finite() || self.instructions < 0.0 {
            return Err(format!("{}: invalid instruction count", self.name));
        }
        if !self.mix.is_valid() {
            return Err(format!("{}: invalid instruction mix", self.name));
        }
        if !self.locality.is_valid() {
            return Err(format!("{}: invalid locality profile", self.name));
        }
        if !(0.0..=1.0).contains(&self.parallel_fraction) {
            return Err(format!("{}: parallel_fraction out of range", self.name));
        }
        if !(0.0..=1.0).contains(&self.simd_fraction) {
            return Err(format!("{}: simd_fraction out of range", self.name));
        }
        if !(0.0..=1.0).contains(&self.branch_entropy) {
            return Err(format!("{}: branch_entropy out of range", self.name));
        }
        if !(0.0..=1.0).contains(&self.gpu_transfer_fraction) {
            return Err(format!("{}: gpu_transfer_fraction out of range", self.name));
        }
        if self.iterations == 0 {
            return Err(format!("{}: iterations must be >= 1", self.name));
        }
        Ok(())
    }
}

/// How a run is laid out on the machine: the paper's three configurations
/// are 1 core / 1 node / 2 nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Nodes used.
    pub nodes: u32,
    /// MPI ranks per node (the paper uses all cores on full-node runs).
    pub ranks_per_node: u32,
    /// Whether GPU-offloadable kernels run on the GPUs (requires a GPU
    /// machine; ignored otherwise).
    pub use_gpu: bool,
}

impl RunConfig {
    /// The single-core configuration (one rank, one node; one GPU if used).
    pub fn one_core(use_gpu: bool) -> Self {
        Self {
            nodes: 1,
            ranks_per_node: 1,
            use_gpu,
        }
    }

    /// Full single-node configuration for a machine with `cores` cores.
    pub fn one_node(cores: u32, use_gpu: bool) -> Self {
        Self {
            nodes: 1,
            ranks_per_node: cores,
            use_gpu,
        }
    }

    /// Two-node configuration.
    pub fn two_nodes(cores: u32, use_gpu: bool) -> Self {
        Self {
            nodes: 2,
            ranks_per_node: cores,
            use_gpu,
        }
    }

    /// Total MPI ranks.
    pub fn total_ranks(&self) -> u32 {
        self.nodes * self.ranks_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> InstructionMix {
        InstructionMix {
            branch: 0.1,
            load: 0.25,
            store: 0.1,
            fp32: 0.05,
            fp64: 0.2,
            int_arith: 0.15,
        }
    }

    #[test]
    fn mix_other_is_remainder() {
        let m = mix();
        assert!((m.classified() - 0.85).abs() < 1e-12);
        assert!((m.other() - 0.15).abs() < 1e-12);
        assert!(m.is_valid());
    }

    #[test]
    fn mix_normalization_caps_total() {
        let m = InstructionMix {
            branch: 0.5,
            load: 0.5,
            store: 0.5,
            fp32: 0.0,
            fp64: 0.0,
            int_arith: 0.0,
        }
        .normalized(0.9);
        assert!((m.classified() - 0.9).abs() < 1e-9);
        assert!(m.is_valid());
    }

    #[test]
    fn locality_cdf_monotone_and_bounded() {
        let l = LocalityProfile {
            working_set_bytes: 1e8,
            theta: 0.4,
            streaming: 0.2,
        };
        assert!(l.is_valid());
        assert_eq!(l.reuse_cdf(0.0), 0.0);
        let mut prev = 0.0;
        for exp in 10..30 {
            let d = (1u64 << exp) as f64;
            let c = l.reuse_cdf(d);
            assert!(c >= prev - 1e-12, "CDF must be monotone");
            assert!(c <= 1.0 - l.streaming + 1e-12);
            prev = c;
        }
        // Cache as big as the working set still misses the streaming part.
        assert!((l.analytic_miss_ratio(1e8) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn demand_validation_catches_bad_fields() {
        let mut d = KernelDemand {
            name: "k".into(),
            instructions: 1e9,
            mix: mix(),
            locality: LocalityProfile {
                working_set_bytes: 1e7,
                theta: 0.5,
                streaming: 0.1,
            },
            parallel_fraction: 0.99,
            simd_fraction: 0.5,
            branch_entropy: 0.3,
            gpu_offloadable: true,
            gpu_transfer_fraction: 0.05,
            comm: CommPattern::none(),
            io: IoDemand::default(),
            iterations: 10,
        };
        assert!(d.validate().is_ok());
        d.parallel_fraction = 1.5;
        assert!(d.validate().is_err());
        d.parallel_fraction = 0.9;
        d.iterations = 0;
        assert!(d.validate().is_err());
        d.iterations = 1;
        d.locality.theta = -1.0;
        assert!(d.validate().is_err());
    }

    #[test]
    fn run_configs() {
        let c = RunConfig::one_core(false);
        assert_eq!(c.total_ranks(), 1);
        let n = RunConfig::two_nodes(36, true);
        assert_eq!(n.total_ranks(), 72);
        assert!(n.use_gpu);
    }

    #[test]
    fn comm_pattern_detection() {
        assert!(!CommPattern::none().is_communicating());
        assert!(CommPattern {
            allreduce_bytes: 8.0,
            ..CommPattern::none()
        }
        .is_communicating());
    }
}
