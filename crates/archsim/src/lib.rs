//! Architecture simulator: the substitute for the paper's four physical HPC
//! systems (Table I — Quartz, Ruby, Lassen, Corona).
//!
//! The paper's pipeline needs two things from a machine: a **runtime** for an
//! application run, and **hardware counters** observed during that run. This
//! crate provides both via a hybrid analytical / trace-driven model:
//!
//! * [`machine`] — parametric machine descriptions ([`MachineSpec`]): CPU
//!   (cores, clock, IPC, SIMD, cache hierarchy), optional GPU (SMs, peak
//!   FLOP/s, memory bandwidth, host link), network, and filesystem. The four
//!   Table-I systems ship as constants via [`machine::table1_machines`].
//! * [`demand`] — the workload-facing interface: a run is a list of
//!   [`KernelDemand`]s (instruction mix, locality profile, communication and
//!   I/O demands) plus a [`RunConfig`] (nodes, ranks, GPU use).
//! * [`cache`] — a set-associative LRU multi-level cache simulator fed by a
//!   reuse-distance-driven synthetic address trace ([`trace`]), and a closed
//!   form analytical fallback. Produces per-level load/store miss ratios.
//! * [`cpu`] / [`gpu`] — execution-time models: cycle accounting (issue,
//!   branch misprediction, memory stalls, SIMD) bounded by node memory
//!   bandwidth for CPUs; a roofline-with-divergence model for GPUs.
//! * [`network`] — MPI cost model (point-to-point halo exchange and
//!   log-tree collectives) used for multi-node runs.
//! * [`exec`] — ties it together: [`exec::simulate_run`] returns the wall
//!   time and ground-truth [`counters::GroundTruthCounters`].
//! * [`roofline`] — classical roofline analysis (machine balance points,
//!   kernel compute/memory classification) for reporting and tests.
//! * [`noise`] — deterministic seeded log-normal perturbations modelling
//!   run-to-run variability (machine jitter) and a SplitMix64 sub-seed
//!   derivation shared across the workspace.
//!
//! Everything is deterministic given a seed; the simulator is `Send + Sync`
//! and allocation-free on the per-kernel hot path except for the trace
//! buffer, which is reused.

#![warn(missing_docs)]

pub mod cache;
pub mod counters;
pub mod cpu;
pub mod demand;
pub mod exec;
pub mod gpu;
pub mod machine;
pub mod network;
pub mod noise;
pub mod roofline;
pub mod trace;

pub use counters::GroundTruthCounters;
pub use demand::{CommPattern, InstructionMix, IoDemand, KernelDemand, LocalityProfile, RunConfig};
pub use exec::{simulate_run, RunResult};
pub use machine::{CacheLevelSpec, CpuSpec, GpuSpec, IoSpec, MachineSpec, NetworkSpec, SystemId};
