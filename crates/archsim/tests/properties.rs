//! Property-based tests of the architecture simulator's invariants.

use mphpc_archsim::cache::CacheSimulator;
use mphpc_archsim::machine::{machine_by_id, quartz, ruby, table1_machines};
use mphpc_archsim::noise::rng_for;
use mphpc_archsim::{
    simulate_run, CommPattern, InstructionMix, IoDemand, KernelDemand, LocalityProfile, RunConfig,
    SystemId,
};
use proptest::prelude::*;

prop_compose! {
    fn arb_mix()(
        branch in 0.0f64..0.3,
        load in 0.05f64..0.4,
        store in 0.0f64..0.2,
        fp32 in 0.0f64..0.4,
        fp64 in 0.0f64..0.4,
        int_arith in 0.0f64..0.3,
    ) -> InstructionMix {
        InstructionMix { branch, load, store, fp32, fp64, int_arith }.normalized(0.95)
    }
}

prop_compose! {
    fn arb_locality()(
        ws in 1.0e5f64..1.0e9,
        theta in 0.05f64..1.4,
        streaming in 0.0f64..0.9,
    ) -> LocalityProfile {
        LocalityProfile { working_set_bytes: ws, theta, streaming }
    }
}

prop_compose! {
    fn arb_demand()(
        mix in arb_mix(),
        locality in arb_locality(),
        instructions in 1.0e8f64..1.0e11,
        parallel in 0.3f64..1.0,
        simd in 0.0f64..1.0,
        entropy in 0.0f64..1.0,
        gpu in any::<bool>(),
        transfer in 0.0f64..0.2,
        iterations in 1u32..40,
        io_read in 0.0f64..1.0e9,
    ) -> KernelDemand {
        KernelDemand {
            name: "arb".into(),
            instructions,
            mix,
            locality,
            parallel_fraction: parallel,
            simd_fraction: simd,
            branch_entropy: entropy,
            gpu_offloadable: gpu,
            gpu_transfer_fraction: transfer,
            comm: CommPattern {
                p2p_neighbors: 4,
                p2p_bytes: 1e4,
                allreduce_bytes: 8.0,
                alltoall_bytes: 0.0,
                barriers: 1,
            },
            io: IoDemand { read_bytes: io_read, write_bytes: 0.0, ops: 3 },
            iterations,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any valid demand on any Table-I machine yields positive, finite,
    /// internally-consistent results.
    #[test]
    fn simulate_run_is_sane_for_arbitrary_demands(
        demand in arb_demand(),
        machine_idx in 0usize..4,
        use_gpu in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let machine = machine_by_id(SystemId::TABLE1[machine_idx]).unwrap();
        let config = RunConfig::one_node(machine.cores(), use_gpu);
        let result = simulate_run(&machine, &[demand], config, seed).unwrap();
        prop_assert!(result.wall_seconds.is_finite() && result.wall_seconds > 0.0);
        prop_assert!(result.totals.is_sane(), "{:?}", result.totals);
        prop_assert!(result.totals.is_consistent(), "{:?}", result.totals);
        prop_assert_eq!(result.kernels.len(), 1);
    }

    /// Runs are bit-reproducible for a fixed seed.
    #[test]
    fn simulate_run_deterministic(demand in arb_demand(), seed in any::<u64>()) {
        let machine = quartz();
        let config = RunConfig::one_node(36, true);
        let a = simulate_run(&machine, std::slice::from_ref(&demand), config, seed).unwrap();
        let b = simulate_run(&machine, &[demand], config, seed).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Scaling out can never increase the per-rank instruction count.
    #[test]
    fn per_rank_work_shrinks_with_ranks(demand in arb_demand(), seed in any::<u64>()) {
        let machine = ruby();
        let one = simulate_run(&machine, std::slice::from_ref(&demand), RunConfig::one_core(false), seed).unwrap();
        let node = simulate_run(&machine, &[demand], RunConfig::one_node(56, false), seed).unwrap();
        prop_assert!(node.totals.total_instructions <= one.totals.total_instructions * (1.0 + 1e-9));
    }

    /// Cache-hierarchy accounting: per-level accesses never grow down the
    /// hierarchy and DRAM accesses never exceed total references.
    #[test]
    fn cache_hierarchy_accounting(locality in arb_locality(), store_frac in 0.0f64..0.9, seed in any::<u64>()) {
        let cpu = quartz().cpu;
        let mut sim = CacheSimulator::new();
        let r = sim.run(&locality, store_frac, &cpu, 36, &mut rng_for(seed, &[]));
        prop_assert_eq!(r.levels[0].accesses(), r.total_refs);
        for w in r.levels.windows(2) {
            prop_assert!(w[1].accesses() <= w[0].accesses());
            prop_assert_eq!(w[1].accesses(), w[0].load_misses + w[0].store_misses);
        }
        let last = r.levels.last().unwrap();
        prop_assert_eq!(r.dram_accesses, last.load_misses + last.store_misses);
    }

    /// The analytic cache model and the trace model agree on the direction
    /// of capacity changes: larger caches never miss more.
    #[test]
    fn analytic_miss_ratio_monotone_in_capacity(locality in arb_locality()) {
        let mut prev = f64::INFINITY;
        for kb in [8u64, 32, 256, 1024, 8192, 65536] {
            let miss = locality.analytic_miss_ratio((kb * 1024) as f64);
            prop_assert!(miss <= prev + 1e-12);
            prop_assert!((0.0..=1.0).contains(&miss));
            prev = miss;
        }
    }

    /// Wall time decomposes over kernels: the run total equals the kernel
    /// sum up to the multiplicative jitter bound.
    #[test]
    fn wall_time_decomposes(demands in proptest::collection::vec(arb_demand(), 1..4), seed in any::<u64>()) {
        for machine in table1_machines() {
            let config = RunConfig::one_node(machine.cores(), true);
            if let Ok(result) = simulate_run(&machine, &demands, config, seed) {
                let kernel_sum: f64 = result.kernels.iter().map(|k| k.seconds).sum();
                // Jitter is log-normal with sigma <= 0.03; allow 5 sigma.
                let ratio = result.wall_seconds / kernel_sum;
                prop_assert!(ratio > 0.8 && ratio < 1.25, "ratio {ratio}");
            }
        }
    }
}
